//! Round accounting for the lock-step implementations.
//!
//! The composed algorithms (ParallelNibble, Partition, the decomposition)
//! are executed in lock-step round-driven form (see DESIGN.md §3): global
//! loops structured exactly as synchronous rounds, with a [`RoundLedger`]
//! charging CONGEST rounds per the paper's implementation lemmas:
//!
//! * Lemma 9 (ApproximateNibble): `t₀` rounds for the walk; per `(t, x)`
//!   candidate pair, `O(t₀·log n)` rounds for the random binary search and
//!   `O(t₀)` for the condition check.
//! * Lemma 10 (ParallelNibble): instance generation `O(D + log n)`,
//!   simultaneous execution = max over instances (they run in parallel,
//!   sharing edges within the congestion cap `w`), selection `O(D·log n)`.
//! * Lemma 11 (Partition): sum over its sequential ParallelNibble calls.
//! * Lemma 21 (LDD): `O(a·b²) + O(a·b·log²n)` construction + `O(log n/β)`
//!   clustering epochs.
//!
//! Every charge is *measured* (actual loop trip counts), not formula-
//! evaluated, so the ledger reflects what the executed run actually did;
//! the integration test `rounds_validation.rs` cross-checks ledger charges
//! for the exactly-simulable primitives against the real simulator.

use std::collections::BTreeMap;

/// An accumulating ledger of CONGEST rounds, broken down by category.
///
/// # Example
///
/// ```
/// use expander::rounds::RoundLedger;
///
/// let mut ledger = RoundLedger::new();
/// ledger.charge("nibble.walk", 100);
/// ledger.charge("nibble.sweep_search", 40);
/// ledger.charge("nibble.walk", 60);
/// assert_eq!(ledger.total(), 200);
/// assert_eq!(ledger.category("nibble.walk"), 160);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundLedger {
    entries: BTreeMap<String, u64>,
    total: u64,
}

impl RoundLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `rounds` to `category`.
    pub fn charge(&mut self, category: &str, rounds: u64) {
        if rounds == 0 {
            return;
        }
        *self.entries.entry(category.to_string()).or_insert(0) += rounds;
        self.total += rounds;
    }

    /// Total rounds across all categories.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Rounds charged to one category (0 if never charged).
    pub fn category(&self, name: &str) -> u64 {
        self.entries.get(name).copied().unwrap_or(0)
    }

    /// Iterator over `(category, rounds)` in category order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Absorbs another ledger that ran *sequentially after* this one.
    pub fn absorb(&mut self, other: &RoundLedger) {
        for (k, &v) in &other.entries {
            *self.entries.entry(k.clone()).or_insert(0) += v;
            self.total += v;
        }
    }

    /// Absorbs the **maximum** of a set of ledgers that ran *in parallel*
    /// (e.g. the per-component recursions of Phase 1, which proceed
    /// simultaneously on disjoint parts of the network).
    ///
    /// The per-category breakdown keeps the max contributor's split,
    /// scaled so the categories still sum to the parallel total.
    pub fn absorb_parallel<'a, I>(&mut self, ledgers: I)
    where
        I: IntoIterator<Item = &'a RoundLedger>,
    {
        let mut best: Option<&RoundLedger> = None;
        for l in ledgers {
            if best.map_or(true, |b| l.total > b.total) {
                best = Some(l);
            }
        }
        if let Some(b) = best.cloned() {
            self.absorb(&b);
        }
    }
}

impl std::fmt::Display for RoundLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "total rounds: {}", self.total)?;
        for (k, v) in &self.entries {
            writeln!(f, "  {k:<32} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut l = RoundLedger::new();
        l.charge("a", 5);
        l.charge("b", 3);
        l.charge("a", 2);
        assert_eq!(l.total(), 10);
        assert_eq!(l.category("a"), 7);
        assert_eq!(l.category("missing"), 0);
    }

    #[test]
    fn zero_charge_is_noop() {
        let mut l = RoundLedger::new();
        l.charge("a", 0);
        assert_eq!(l.total(), 0);
        assert_eq!(l.iter().count(), 0);
    }

    #[test]
    fn sequential_absorb_adds() {
        let mut a = RoundLedger::new();
        a.charge("x", 4);
        let mut b = RoundLedger::new();
        b.charge("x", 6);
        b.charge("y", 1);
        a.absorb(&b);
        assert_eq!(a.total(), 11);
        assert_eq!(a.category("x"), 10);
    }

    #[test]
    fn parallel_absorb_takes_max() {
        let mut base = RoundLedger::new();
        let mut a = RoundLedger::new();
        a.charge("x", 4);
        let mut b = RoundLedger::new();
        b.charge("x", 9);
        let mut c = RoundLedger::new();
        c.charge("y", 2);
        base.absorb_parallel([&a, &b, &c]);
        assert_eq!(base.total(), 9);
        assert_eq!(base.category("x"), 9);
        assert_eq!(base.category("y"), 0);
    }

    #[test]
    fn parallel_absorb_of_none_is_noop() {
        let mut base = RoundLedger::new();
        base.absorb_parallel(std::iter::empty::<&RoundLedger>());
        assert_eq!(base.total(), 0);
    }

    #[test]
    fn display_lists_categories() {
        let mut l = RoundLedger::new();
        l.charge("ldd.clustering", 12);
        let s = l.to_string();
        assert!(s.contains("ldd.clustering") && s.contains("12"));
    }
}
