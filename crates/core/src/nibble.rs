//! `Nibble` and `ApproximateNibble` (paper Appendix A.1–A.2).
//!
//! `Nibble(G, v, φ, b)` simulates a truncated lazy random walk from `v` for
//! `t₀` steps. If `v` sits inside a sparse cut `S`, most of the walk's mass
//! stays trapped in `S`, so some prefix of the vertices ordered by
//! normalized mass `ρ̃_t(u) = p̃_t(u)/deg(u)` is itself a sparse cut. At
//! every step the walk is truncated — mass below `2·ε_b·deg(u)` is zeroed —
//! which keeps the support (and hence the distributed work) small.
//!
//! `Nibble` checks **every** prefix length `j`, which a CONGEST
//! implementation cannot afford; `ApproximateNibble` checks only the
//! `O(φ⁻¹·log Vol)` geometrically-spaced prefixes `(j_x)` and compensates
//! with slightly relaxed conditions (C.1*)–(C.3*). Lemma 5 shows the
//! output still overlaps the target cut enough for the balance argument.

use crate::params::NibbleParams;
use crate::rounds::RoundLedger;
use graph::walks::WalkDistribution;
use graph::{Graph, VertexId, VertexSet};

/// Result of one (Approximate)Nibble run.
#[derive(Debug, Clone)]
pub struct NibbleOutcome {
    /// The sweep cut found, if any (vertex ids of the input graph).
    pub cut: Option<VertexSet>,
    /// Union of the walk supports over all `t ∈ 0..=t₀` — every vertex
    /// that *participated*. The edge set `P*` of Definition 2 is exactly
    /// the edges with at least one endpoint in this set.
    pub participants: VertexSet,
    /// Measured CONGEST round charges per Lemma 9.
    pub ledger: RoundLedger,
}

impl NibbleOutcome {
    /// Whether the run produced a non-empty cut.
    pub fn found(&self) -> bool {
        self.cut.is_some()
    }
}

/// Shared sweep state at one time step `t`: support ordered by decreasing
/// `ρ̃_t`, with prefix volumes and prefix boundaries. The vectors are
/// reused across the `t₀` steps of a run (cleared, capacity kept) — a
/// fresh `O(support)` allocation triple per step was almost pure
/// mmap/munmap traffic once walks spread over large components.
#[derive(Default)]
struct Sweep {
    order: Vec<VertexId>,
    /// `vol[i]` = volume of the first `i+1` vertices.
    vol: Vec<usize>,
    /// `boundary[i]` = `|∂(prefix of length i+1)|`.
    boundary: Vec<usize>,
    /// Sort-key scratch: `(ρ̃, v)` pairs, so each vertex's normalized
    /// mass is computed once instead of twice per sort comparison.
    keyed: Vec<(f64, VertexId)>,
}

impl Sweep {
    /// Rebuilds the sweep state for the walk's current support. `scratch`
    /// is an all-false mark vector of length `g.n()` that is restored to
    /// all-false before returning.
    fn fill(&mut self, g: &Graph, p: &WalkDistribution, scratch: &mut [bool]) {
        self.order.clear();
        self.vol.clear();
        self.boundary.clear();
        // The paper's permutation π̃_t: support by decreasing ρ̃, ties by id.
        p.support_by_rho_into(g, &mut self.keyed, &mut self.order);
        let in_prefix = scratch;
        let mut v_acc = 0usize;
        let mut b_acc = 0usize;
        for &v in &self.order {
            in_prefix[v as usize] = true;
            v_acc += g.degree(v);
            for &w in g.neighbors(v) {
                if in_prefix[w as usize] {
                    b_acc -= 1;
                } else {
                    b_acc += 1;
                }
            }
            self.vol.push(v_acc);
            self.boundary.push(b_acc);
        }
        for &v in &self.order {
            in_prefix[v as usize] = false;
        }
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    /// Conductance of the prefix of length `j` (1-based) against total
    /// volume `total_vol`; `None` when a side has zero volume.
    fn conductance(&self, j: usize, total_vol: usize) -> Option<f64> {
        let v = self.vol[j - 1];
        let rest = total_vol.checked_sub(v)?;
        if v == 0 || rest == 0 {
            return None;
        }
        Some(self.boundary[j - 1] as f64 / v.min(rest) as f64)
    }
}

/// The geometrically-spaced candidate prefix lengths `(j_x)` of A.2:
/// `j₁ = 1`, and `j_i = max(j_{i−1}+1, argmax_j {Vol(1..j) ≤ (1+φ)·Vol(1..j_{i−1})})`.
fn candidate_sequence(sweep: &Sweep, phi: f64) -> Vec<usize> {
    let jmax = sweep.len();
    if jmax == 0 {
        return Vec::new();
    }
    let mut seq = vec![1usize];
    loop {
        let j_prev = *seq.last().expect("non-empty");
        if j_prev >= jmax {
            break;
        }
        let limit = (1.0 + phi) * sweep.vol[j_prev - 1] as f64;
        // Largest j with Vol(1..j) ≤ limit (prefix volumes are
        // non-decreasing).
        let by_volume = sweep.vol.partition_point(|&v| v as f64 <= limit);
        let next = (j_prev + 1).max(by_volume).min(jmax);
        seq.push(next);
    }
    seq
}

/// Which condition set a candidate must pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Conditions {
    /// (C.1)–(C.3): exact conditions, used by `Nibble` for every `j` and by
    /// `ApproximateNibble` when `j_x = 1` or `j_x = j_{x−1}+1`.
    Exact,
    /// (C.1*)–(C.3*): relaxed conditions with the previous candidate
    /// `j_{x−1}` for the mass test.
    Relaxed {
        /// The previous candidate `j_{x−1}`.
        j_prev: usize,
    },
}

// The paper's Nibble condition check takes exactly these eight inputs
// (graph, walk, sweep, params, scale, candidate, mode, volume); bundling
// them into a struct would only rename the problem.
#[allow(clippy::too_many_arguments)]
fn check_candidate(
    g: &Graph,
    p: &WalkDistribution,
    sweep: &Sweep,
    params: &NibbleParams,
    b: u32,
    j: usize,
    conditions: Conditions,
    total_vol: usize,
) -> bool {
    let phi = params.phi;
    let gamma = params.gamma;
    let vol_j = sweep.vol[j - 1] as f64;
    let floor_b = (5.0 / 7.0) * (1u64 << (b - 1).min(62)) as f64;
    let Some(cond) = sweep.conductance(j, total_vol) else {
        return false;
    };
    match conditions {
        Conditions::Exact => {
            // (C.1) Φ ≤ φ.
            if cond > phi {
                return false;
            }
            // (C.2) ρ̃_t(π̃_t(j)) ≥ γ/Vol(1..j).
            if p.rho(g, sweep.order[j - 1]) < gamma / vol_j {
                return false;
            }
            // (C.3) (5/6)·Vol(V) ≥ Vol(1..j) ≥ (5/7)·2^{b−1}.
            vol_j <= (5.0 / 6.0) * total_vol as f64 && vol_j >= floor_b
        }
        Conditions::Relaxed { j_prev } => {
            // (C.1*) Φ ≤ relaxed_factor·φ (paper: 12φ).
            if cond > params.relaxed_factor * phi {
                return false;
            }
            // (C.2*) ρ̃_t(π̃_t(j_{x−1})) ≥ γ/Vol(1..j_x).
            if p.rho(g, sweep.order[j_prev - 1]) < gamma / vol_j {
                return false;
            }
            // (C.3*) (11/12)·Vol(V) ≥ Vol(1..j_x) ≥ (5/7)·2^{b−1}.
            vol_j <= (11.0 / 12.0) * total_vol as f64 && vol_j >= floor_b
        }
    }
}

/// The exact `Nibble(G, v, φ, b)` of A.1: checks conditions (C.1)–(C.3)
/// at **every** prefix length. Not distributable — kept as the reference
/// implementation that `ApproximateNibble` is validated against.
///
/// # Panics
///
/// Panics if `start` is out of range or `b ∉ 1..=ℓ`.
pub fn nibble(g: &Graph, start: VertexId, params: &NibbleParams, b: u32) -> NibbleOutcome {
    run(g, start, params, b, Variant::Exact)
}

/// `ApproximateNibble(G, v, φ, b)` of A.2: checks only the candidate
/// sequence `(j_x)`, testing (C.1)–(C.3) on fresh candidates and
/// (C.1*)–(C.3*) on geometric jumps. This is the distributable variant;
/// its round charges follow Lemma 9.
///
/// # Panics
///
/// Panics if `start` is out of range or `b ∉ 1..=ℓ`.
pub fn approximate_nibble(
    g: &Graph,
    start: VertexId,
    params: &NibbleParams,
    b: u32,
) -> NibbleOutcome {
    run(g, start, params, b, Variant::Approximate)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    Exact,
    Approximate,
}

fn run(
    g: &Graph,
    start: VertexId,
    params: &NibbleParams,
    b: u32,
    variant: Variant,
) -> NibbleOutcome {
    assert!((start as usize) < g.n(), "start vertex out of range");
    assert!(
        b >= 1 && b <= params.ell,
        "scale b = {b} outside 1..={}",
        params.ell
    );
    let eps = params.eps_b(b);
    let total_vol = g.total_volume();
    let n = g.n().max(2);
    let log_n = (n as f64).log2().ceil() as u64;
    let mut ledger = RoundLedger::new();
    // Participants accumulate via a mark vector + member list (a sorted
    // VertexSet insert per support vertex per step was quadratic in the
    // support size); the set is materialized once on return.
    let mut part_seen = vec![false; g.n()];
    let mut part_members: Vec<VertexId> = Vec::new();
    part_seen[start as usize] = true;
    part_members.push(start);
    let mut sweep_scratch = vec![false; g.n()];
    let mut sweep = Sweep::default();
    // Previous step's (support, masses) snapshot for the fixed-point
    // check below; double-buffered, O(support) per step.
    let mut prev_state: Vec<(VertexId, f64)> = Vec::new();
    let mut cur_state: Vec<(VertexId, f64)> = Vec::new();
    // The sweep-search rounds charged by the latest step, so the
    // fixed-point early-out can charge the identical remaining steps.
    let mut last_search_charge = 0u64;

    let mut p = WalkDistribution::dirac(g, start);
    // Lemma 9: computing p̃_t, ρ̃_t for all t takes t₀ rounds (charged in
    // full up front — the fixed-point early-out below saves simulation
    // wall-clock, not model rounds).
    ledger.charge("nibble.walk", params.t0 as u64);

    for t in 1..=params.t0 {
        p.step(g);
        p.truncate(g, eps);
        // Fixed point: the truncated walk map is deterministic, so if
        // p̃_t == p̃_{t−1} bit-for-bit, every remaining step yields the
        // same distribution, the same sweep, and the same (failing)
        // candidates — the loop's outcome is already decided. On small
        // components the truncation threshold can sit below the
        // stationary mass, so the walk parks at its fixpoint and would
        // otherwise burn the full t₀ budget doing provably nothing.
        cur_state.clear();
        cur_state.extend(p.iter());
        if cur_state == prev_state {
            // Every skipped step would have re-examined the identical
            // candidate list; charge those rounds as the full loop would
            // have, so the model accounting is unchanged by the early-out.
            ledger.charge(
                "nibble.sweep_search",
                last_search_charge * (params.t0 - t + 1) as u64,
            );
            break;
        }
        std::mem::swap(&mut prev_state, &mut cur_state);
        for (v, _) in p.iter() {
            if !part_seen[v as usize] {
                part_seen[v as usize] = true;
                part_members.push(v);
            }
        }
        if p.support_size() == 0 {
            break;
        }
        sweep.fill(g, &p, &mut sweep_scratch);
        let candidates: Vec<(usize, Conditions)> = match variant {
            Variant::Exact => (1..=sweep.len()).map(|j| (j, Conditions::Exact)).collect(),
            Variant::Approximate => {
                let seq = candidate_sequence(&sweep, params.phi);
                seq.iter()
                    .enumerate()
                    .map(|(x, &jx)| {
                        let cond = if x == 0 || jx == seq[x - 1] + 1 {
                            Conditions::Exact
                        } else {
                            Conditions::Relaxed { j_prev: seq[x - 1] }
                        };
                        (jx, cond)
                    })
                    .collect()
            }
        };
        // Lemma 9 round charges: per examined candidate, a random binary
        // search costs O(t₀·log n) and the condition check O(t₀). (The
        // exact variant is not distributable; we charge it identically so
        // comparisons are apples-to-apples.)
        let search = (sweep.len().max(2) as f64).log2().ceil() as u64;
        last_search_charge = candidates.len() as u64 * (search + 1) * params.t0 as u64;
        ledger.charge("nibble.sweep_search", last_search_charge);
        let _ = log_n;
        for (j, cond) in candidates {
            if check_candidate(g, &p, &sweep, params, b, j, cond, total_vol) {
                let cut = VertexSet::from_iter(g.n(), sweep.order[..j].iter().copied());
                return NibbleOutcome {
                    cut: Some(cut),
                    participants: VertexSet::from_iter(g.n(), part_members),
                    ledger,
                };
            }
        }
    }
    NibbleOutcome {
        cut: None,
        participants: VertexSet::from_iter(g.n(), part_members),
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamMode;
    use graph::gen;

    fn params_for(g: &Graph, phi: f64) -> NibbleParams {
        NibbleParams::new(phi, g.m(), ParamMode::Practical)
    }

    #[test]
    fn finds_planted_cut_on_barbell() {
        let (g, left) = gen::barbell(12).unwrap();
        let params = params_for(&g, 0.05);
        let out = approximate_nibble(&g, 0, &params, 5);
        let cut = out.cut.expect("barbell cut should be found");
        let phi_c = g.conductance(&cut).unwrap();
        assert!(
            phi_c <= params.relaxed_factor * params.phi + 1e-12,
            "Φ(C) = {phi_c}"
        );
        // The cut should be (essentially) the left clique.
        let overlap = cut.intersection(&left).len();
        assert!(overlap >= 10, "cut {:?} misses the clique", cut);
    }

    #[test]
    fn exact_nibble_also_finds_barbell_cut() {
        let (g, _) = gen::barbell(10).unwrap();
        let params = params_for(&g, 0.05);
        let out = nibble(&g, 3, &params, 5);
        let cut = out.cut.expect("exact nibble finds the cut");
        assert!(g.conductance(&cut).unwrap() <= params.phi + 1e-12);
    }

    #[test]
    fn returns_empty_on_expander() {
        let g = gen::complete(24).unwrap();
        let params = params_for(&g, 0.02);
        let out = approximate_nibble(&g, 0, &params, 3);
        assert!(out.cut.is_none(), "no sparse cut exists in K24");
    }

    #[test]
    fn output_satisfies_volume_window() {
        let (g, _) = gen::barbell(12).unwrap();
        let params = params_for(&g, 0.05);
        for b in [3u32, 5, 6] {
            if let Some(cut) = approximate_nibble(&g, 0, &params, b).cut {
                let vol = g.volume(&cut) as f64;
                let total = g.total_volume() as f64;
                assert!(vol <= (11.0 / 12.0) * total, "C.3* upper violated");
                assert!(
                    vol >= (5.0 / 7.0) * (1u64 << (b - 1)) as f64,
                    "C.3* lower violated at b={b}: vol {vol}"
                );
            }
        }
    }

    #[test]
    fn participants_contain_cut_and_start() {
        let (g, _) = gen::barbell(8).unwrap();
        let params = params_for(&g, 0.05);
        let out = approximate_nibble(&g, 2, &params, 4);
        assert!(out.participants.contains(2));
        if let Some(cut) = &out.cut {
            for v in cut.iter() {
                assert!(
                    out.participants.contains(v),
                    "cut vertex {v} not a participant"
                );
            }
        }
    }

    #[test]
    fn participation_volume_respects_lemma3_shape() {
        // Lemma 3: Vol(Z_{u,φ,b}) ≤ (t₀+1)/(2·ε_b). The participants of a
        // *single* run are ⊆ Z, so their volume obeys the same bound.
        let g = gen::gnp(120, 0.08, 11).unwrap();
        let params = params_for(&g, 0.08);
        for b in [1u32, 3] {
            let out = approximate_nibble(&g, 0, &params, b);
            let vol: usize = out.participants.iter().map(|v| g.degree(v)).sum();
            let bound = (params.t0 as f64 + 1.0) / (2.0 * params.eps_b(b));
            assert!(
                (vol as f64) <= bound,
                "participation volume {vol} exceeds Lemma 3 bound {bound} at b={b}"
            );
        }
    }

    #[test]
    fn candidate_sequence_is_strictly_increasing_and_covers() {
        let (g, _) = gen::barbell(10).unwrap();
        let params = params_for(&g, 0.1);
        let mut p = WalkDistribution::dirac(&g, 0);
        for _ in 0..10 {
            p.step(&g);
            p.truncate(&g, params.eps_b(3));
        }
        let mut scratch = vec![false; g.n()];
        let mut sweep = Sweep::default();
        sweep.fill(&g, &p, &mut scratch);
        let seq = candidate_sequence(&sweep, params.phi);
        assert_eq!(*seq.first().unwrap(), 1);
        assert_eq!(*seq.last().unwrap(), sweep.len());
        for w in seq.windows(2) {
            assert!(w[1] > w[0], "sequence must strictly increase: {seq:?}");
        }
        // A.2: the sequence has O(φ⁻¹·log Vol) entries.
        let bound = 4.0 * (1.0 / params.phi) * (g.total_volume() as f64).ln() + 2.0;
        assert!(
            (seq.len() as f64) <= bound,
            "sequence too long: {}",
            seq.len()
        );
    }

    #[test]
    fn ledger_charges_walk_and_search() {
        let (g, _) = gen::barbell(6).unwrap();
        let params = params_for(&g, 0.1);
        let out = approximate_nibble(&g, 0, &params, 3);
        assert_eq!(out.ledger.category("nibble.walk"), params.t0 as u64);
        assert!(out.ledger.category("nibble.sweep_search") > 0);
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn scale_out_of_range_panics() {
        let g = gen::complete(4).unwrap();
        let params = params_for(&g, 0.1);
        let _ = approximate_nibble(&g, 0, &params, 99);
    }

    #[test]
    fn isolated_start_returns_empty() {
        // A vertex with only self loops: mass never spreads, no valid cut
        // (its prefix has the full loop volume but zero boundary and a
        // zero-volume... actually conductance 0 — but C.3 lower bound and
        // the complement volume keep it honest).
        let g = graph::Graph::from_edges(3, [(0, 1), (2, 2), (2, 2)]).unwrap();
        let params = NibbleParams::new(0.1, 2, ParamMode::Practical);
        let out = approximate_nibble(&g, 2, &params, 1);
        // Vertex 2's prefix {2} has boundary 0 ⇒ conductance 0 ≤ φ, C.2
        // holds (all mass stays), C.3 needs vol ≥ 5/7·2⁰ ≈ 0.71 — deg 2.
        // So nibble legitimately cuts the isolated vertex off.
        let cut = out
            .cut
            .expect("isolated loop vertex is a 0-conductance cut");
        assert!(cut.contains(2));
        assert_eq!(g.boundary(&cut), 0);
    }
}
