//! The cluster-recursion scheduler: deterministic fan-out of independent
//! per-cluster jobs over rayon-scoped worker tasks.
//!
//! The decomposition recurses independently on each cluster and on the
//! inter-cluster remainder, so each recursion level presents a list of
//! *pure* jobs (one per non-trivial cluster). [`run_jobs`] executes such a
//! list with work stealing — worker tasks pull the next job from a shared
//! queue, so a level dominated by one giant cluster cannot idle the other
//! workers behind a static split — while keeping the output *bit-for-bit
//! identical* to the sequential loop:
//!
//! 1. **Pure jobs.** The job closure gets `(index, job)` and shared
//!    read-only context only; all mutation happens in the returned value.
//! 2. **Index-ordered merge.** Results are reassembled by job index, so
//!    the caller folds them in exactly the order the sequential loop
//!    would have produced.
//! 3. **Logical seeds.** Any randomness inside a job must be seeded with
//!    [`derive_seed`]`(parent_seed, index)` — a function of the job's
//!    logical position, never of the executing worker or of time.
//!
//! [`ScratchPool`] recycles per-job scratch arenas across jobs and across
//! recursion levels instead of reallocating them. The arenas hold
//! *snapshots read through the level's `graph::WorkingGraph` overlay*
//! (adjacency buffers filled from live slots) — never a cloned `Graph`,
//! so arena refill cost tracks the cluster's live volume, not the level's
//! total edge count. And
//! [`RecursionReport`]/[`LevelExecution`] record what the scheduler did:
//! per-level job counts, steal and imbalance statistics, and wall-clock
//! per phase — the operational counterpart to the round-complexity
//! ledgers ([`crate::rounds::RoundLedger`], `congest::PhaseLedger`).

pub use graph::seed::derive_seed;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How [`run_jobs`] executes a job list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerPolicy {
    /// Whether sibling jobs may run on worker tasks concurrently. With
    /// `false`, jobs run inline on the caller's thread in index order.
    pub parallel: bool,
    /// Worker-task cap. `0` means one worker per available thread
    /// (`rayon::current_num_threads()`); the effective count is always
    /// additionally capped by the job count and
    /// [`rayon::MAX_SCOPED_TASKS`].
    pub workers: usize,
}

impl SchedulerPolicy {
    /// Inline, single-threaded execution.
    pub fn sequential() -> Self {
        SchedulerPolicy {
            parallel: false,
            workers: 1,
        }
    }

    /// Parallel execution with one worker per available thread.
    pub fn parallel() -> Self {
        SchedulerPolicy {
            parallel: true,
            workers: 0,
        }
    }

    /// Parallel execution with an explicit worker cap (`0` = auto).
    pub fn with_workers(workers: usize) -> Self {
        SchedulerPolicy {
            parallel: true,
            workers,
        }
    }

    /// The worker count a batch of `jobs` jobs would actually get.
    pub fn effective_workers(&self, jobs: usize) -> usize {
        if !self.parallel || jobs <= 1 {
            return 1;
        }
        let cap = if self.workers == 0 {
            rayon::current_num_threads()
        } else {
            self.workers
        };
        cap.clamp(1, rayon::MAX_SCOPED_TASKS).min(jobs)
    }
}

impl Default for SchedulerPolicy {
    /// Defaults to [`SchedulerPolicy::parallel`].
    fn default() -> Self {
        SchedulerPolicy::parallel()
    }
}

/// What one [`run_jobs`] batch did, for the [`RecursionReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Number of jobs in the batch.
    pub jobs: usize,
    /// Worker tasks the batch ran on (1 = inline sequential).
    pub workers: usize,
    /// Jobs executed by each worker (length = `workers`).
    pub per_worker: Vec<usize>,
    /// Jobs that ran on a different worker than the one a static
    /// contiguous split would have assigned them to — the scheduler's
    /// measure of how much dynamic pulling actually rebalanced the level.
    pub steals: usize,
    /// Wall-clock of the whole batch (spawn to last result).
    pub wall: Duration,
}

impl JobStats {
    /// Max-over-mean job count across workers (1.0 = perfectly even;
    /// meaningful only when `workers > 1`).
    pub fn imbalance(&self) -> f64 {
        if self.per_worker.is_empty() || self.jobs == 0 {
            return 1.0;
        }
        let max = *self.per_worker.iter().max().expect("non-empty") as f64;
        let mean = self.jobs as f64 / self.per_worker.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Executes `jobs` under `policy` and returns the results **in job-index
/// order** plus the batch statistics.
///
/// `run` must be pure per `(index, job)` (its only channel back is the
/// return value) and must derive any internal randomness from the job
/// index via [`derive_seed`]; under those two conditions the returned
/// vector is identical for every policy — the property
/// `tests/scheduler_equivalence.rs` enforces end to end.
///
/// # Panics
///
/// Panics if a worker task panics (the panic is propagated).
pub fn run_jobs<J, R, F>(jobs: Vec<J>, policy: &SchedulerPolicy, run: F) -> (Vec<R>, JobStats)
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
{
    let start = Instant::now();
    let total = jobs.len();
    let workers = policy.effective_workers(total);
    if workers <= 1 {
        let results: Vec<R> = jobs
            .into_iter()
            .enumerate()
            .map(|(idx, job)| run(idx, job))
            .collect();
        return (
            results,
            JobStats {
                jobs: total,
                workers: 1,
                per_worker: vec![total],
                steals: 0,
                wall: start.elapsed(),
            },
        );
    }

    // Shared pull queue: the next undone job, in index order. Workers that
    // finish early keep pulling — that is the whole work-stealing story
    // for a flat job list (stealing from the one shared deque).
    let queue = Mutex::new(jobs.into_iter().enumerate());
    let sink: Mutex<Vec<(usize, usize, R)>> = Mutex::new(Vec::with_capacity(total));
    rayon::scope(|s| {
        let queue = &queue;
        let sink = &sink;
        let run = &run;
        for w in 0..workers {
            s.spawn(move || {
                let mut local: Vec<(usize, usize, R)> = Vec::new();
                loop {
                    let next = queue.lock().expect("job queue poisoned").next();
                    match next {
                        Some((idx, job)) => local.push((idx, w, run(idx, job))),
                        None => break,
                    }
                }
                sink.lock().expect("result sink poisoned").extend(local);
            });
        }
    });

    let mut tagged = sink.into_inner().expect("result sink poisoned");
    debug_assert_eq!(tagged.len(), total, "every job must produce a result");
    tagged.sort_unstable_by_key(|&(idx, _, _)| idx);

    let mut per_worker = vec![0usize; workers];
    let mut steals = 0usize;
    let mut results = Vec::with_capacity(total);
    for (idx, w, r) in tagged {
        per_worker[w] += 1;
        // Static owner under a contiguous even split of the index space.
        if (idx * workers) / total != w {
            steals += 1;
        }
        results.push(r);
    }
    (
        results,
        JobStats {
            jobs: total,
            workers,
            per_worker,
            steals,
            wall: start.elapsed(),
        },
    )
}

/// A lock-protected pool of reusable scratch values: recursion levels
/// acquire a scratch arena per job and return it on drop, so steady-state
/// execution allocates `O(workers)` arenas total instead of one per job.
///
/// The pool hands values back **dirty** — a job must reset the fields it
/// uses (cheap `clear()`s that keep capacity) before reading them.
#[derive(Debug, Default)]
pub struct ScratchPool<T> {
    pool: Mutex<Vec<T>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<T: Default> ScratchPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        ScratchPool {
            pool: Mutex::new(Vec::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Takes a scratch value (recycled if available, `T::default()`
    /// otherwise). The guard returns it to the pool on drop.
    pub fn acquire(&self) -> Scratch<'_, T> {
        Scratch {
            pool: self,
            value: Some(self.take()),
        }
    }

    /// Takes a scratch value **out** of the pool (recycled if available,
    /// `T::default()` otherwise) without a guard — for values whose
    /// lifetime crosses the job boundary (e.g. per-job output buffers the
    /// caller merges later). Pair with [`ScratchPool::put`].
    pub fn take(&self) -> T {
        match self.pool.lock().expect("scratch pool poisoned").pop() {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                T::default()
            }
        }
    }

    /// Returns a value previously obtained with [`ScratchPool::take`]
    /// (or any compatible value) to the pool for reuse.
    pub fn put(&self, value: T) {
        self.pool.lock().expect("scratch pool poisoned").push(value);
    }

    /// Acquisitions served from the pool (reuses).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Acquisitions that had to allocate a fresh value.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

/// RAII guard for a [`ScratchPool`] value. Derefs to `T`; returns the
/// value to the pool on drop.
#[derive(Debug)]
pub struct Scratch<'a, T: Default> {
    pool: &'a ScratchPool<T>,
    value: Option<T>,
}

impl<T: Default> Deref for Scratch<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value.as_ref().expect("present until drop")
    }
}

impl<T: Default> DerefMut for Scratch<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("present until drop")
    }
}

impl<T: Default> Drop for Scratch<'_, T> {
    fn drop(&mut self) {
        if let Some(v) = self.value.take() {
            self.pool
                .pool
                .lock()
                .expect("scratch pool poisoned")
                .push(v);
        }
    }
}

/// Per-level execution record of a scheduled recursion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelExecution {
    /// Recursion depth of the level (0 = the input graph).
    pub depth: usize,
    /// Cluster jobs scheduled at this level.
    pub jobs: usize,
    /// Worker tasks the level's batch ran on.
    pub workers: usize,
    /// Jobs that ran away from their static owner (see
    /// [`JobStats::steals`]).
    pub steals: usize,
    /// Heaviest worker's job count.
    pub max_jobs_per_worker: usize,
    /// Lightest worker's job count.
    pub min_jobs_per_worker: usize,
    /// Wall-clock of the level's decomposition phase.
    pub wall_decompose: Duration,
    /// Wall-clock of the cluster batch (routing + enumeration jobs).
    pub wall_clusters: Duration,
    /// Wall-clock of the index-ordered merge.
    pub wall_merge: Duration,
}

impl LevelExecution {
    /// Builds the record from a batch's [`JobStats`] (the wall fields for
    /// the other phases start at zero and are filled by the caller).
    pub fn from_stats(depth: usize, stats: &JobStats) -> Self {
        LevelExecution {
            depth,
            jobs: stats.jobs,
            workers: stats.workers,
            steals: stats.steals,
            max_jobs_per_worker: stats.per_worker.iter().copied().max().unwrap_or(0),
            min_jobs_per_worker: stats.per_worker.iter().copied().min().unwrap_or(0),
            wall_decompose: Duration::ZERO,
            wall_clusters: stats.wall,
            wall_merge: Duration::ZERO,
        }
    }

    /// Total wall-clock across the level's phases.
    pub fn wall(&self) -> Duration {
        self.wall_decompose + self.wall_clusters + self.wall_merge
    }
}

/// What the recursion scheduler did across a whole run: one
/// [`LevelExecution`] per recursion level plus the scratch-arena reuse
/// counters. Carried by the triangle pipeline's report next to the
/// round-complexity ledgers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecursionReport {
    /// Per-level records, in recursion order.
    pub levels: Vec<LevelExecution>,
    /// Scratch acquisitions served by reuse.
    pub scratch_hits: usize,
    /// Scratch acquisitions that allocated.
    pub scratch_misses: usize,
}

impl RecursionReport {
    /// Total jobs across all levels.
    pub fn total_jobs(&self) -> usize {
        self.levels.iter().map(|l| l.jobs).sum()
    }

    /// Total steals across all levels.
    pub fn total_steals(&self) -> usize {
        self.levels.iter().map(|l| l.steals).sum()
    }

    /// Total wall-clock across all levels and phases.
    pub fn total_wall(&self) -> Duration {
        self.levels.iter().map(LevelExecution::wall).sum()
    }

    /// Worst per-level max/mean job imbalance (1.0 when nothing ran on
    /// more than one worker).
    pub fn max_imbalance(&self) -> f64 {
        self.levels
            .iter()
            .filter(|l| l.workers > 1 && l.jobs > 0)
            .map(|l| l.max_jobs_per_worker as f64 * l.workers as f64 / l.jobs as f64)
            .fold(1.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_jobs(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn parallel_results_match_sequential_in_order() {
        let jobs = square_jobs(37);
        let (seq, seq_stats) = run_jobs(jobs.clone(), &SchedulerPolicy::sequential(), |i, j| {
            (i, j * j, derive_seed(9, i as u64))
        });
        let (par, par_stats) = run_jobs(jobs, &SchedulerPolicy::with_workers(4), |i, j| {
            (i, j * j, derive_seed(9, i as u64))
        });
        assert_eq!(seq, par);
        assert_eq!(seq_stats.workers, 1);
        assert_eq!(seq_stats.steals, 0);
        assert_eq!(par_stats.jobs, 37);
        assert_eq!(par_stats.workers, 4);
        assert_eq!(par_stats.per_worker.iter().sum::<usize>(), 37);
    }

    #[test]
    fn uneven_jobs_still_merge_in_index_order() {
        // Job i sleeps inversely to its index, so late indices finish
        // first under parallel execution; the merge must still be 0..n.
        let (results, _) = run_jobs(
            square_jobs(16),
            &SchedulerPolicy::with_workers(4),
            |i, _| {
                std::thread::sleep(Duration::from_micros(((16 - i) * 50) as u64));
                i
            },
        );
        assert_eq!(results, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_batches() {
        let (r, stats) = run_jobs(Vec::<u8>::new(), &SchedulerPolicy::parallel(), |_, j| j);
        assert!(r.is_empty());
        assert_eq!(stats.jobs, 0);
        assert_eq!(stats.workers, 1);
        let (r, stats) = run_jobs(vec![5u8], &SchedulerPolicy::with_workers(8), |_, j| j * 2);
        assert_eq!(r, vec![10]);
        assert_eq!(stats.workers, 1, "single job runs inline");
    }

    #[test]
    fn effective_workers_respects_caps() {
        assert_eq!(SchedulerPolicy::sequential().effective_workers(100), 1);
        assert_eq!(SchedulerPolicy::with_workers(4).effective_workers(2), 2);
        assert_eq!(SchedulerPolicy::with_workers(4).effective_workers(100), 4);
        assert!(
            SchedulerPolicy::with_workers(10_000).effective_workers(100_000)
                <= rayon::MAX_SCOPED_TASKS
        );
    }

    #[test]
    fn imbalance_and_steals_are_consistent() {
        let (_, stats) = run_jobs(square_jobs(64), &SchedulerPolicy::with_workers(4), |i, _| i);
        assert!(stats.imbalance() >= 1.0);
        assert!(stats.steals <= stats.jobs);
        let report = RecursionReport {
            levels: vec![LevelExecution::from_stats(0, &stats)],
            scratch_hits: 3,
            scratch_misses: 1,
        };
        assert_eq!(report.total_jobs(), 64);
        assert!(report.max_imbalance() >= 1.0);
        assert_eq!(report.total_steals(), stats.steals);
    }

    #[test]
    fn scratch_pool_recycles() {
        let pool: ScratchPool<Vec<u32>> = ScratchPool::new();
        {
            let mut a = pool.acquire();
            a.extend([1, 2, 3]);
        } // returned dirty
        assert_eq!(pool.misses(), 1);
        {
            let b = pool.acquire();
            assert_eq!(&*b, &[1, 2, 3], "pool hands values back dirty");
        }
        assert_eq!(pool.hits(), 1);
        // Concurrent jobs each get an exclusive value.
        let (results, _) = run_jobs(square_jobs(8), &SchedulerPolicy::with_workers(4), |i, _| {
            let mut s = pool.acquire();
            s.clear();
            s.push(i as u32);
            s[0]
        });
        assert_eq!(results, (0..8u32).collect::<Vec<_>>());
        assert!(pool.hits() + pool.misses() >= 9);
    }

    #[test]
    fn seed_derivation_is_reexported() {
        assert_eq!(derive_seed(1, 2), graph::seed::derive_seed(1, 2));
    }
}
