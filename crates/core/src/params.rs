//! The paper's parameter schedule, in both paper-faithful and practical
//! calibrations.
//!
//! Appendix A defines, for a conductance parameter `φ` and edge count `m`:
//!
//! ```text
//! ℓ     = ⌈log₂ m⌉
//! t₀    = 49·ln(m·e²)/φ²
//! f(φ)  = φ³ / (144·ln²(m·e⁴))
//! γ     = 5φ / (7·7·8·ln(m·e⁴))
//! ε_b   = φ / (7·8·ln(m·e⁴)·t₀·2^b)
//! ```
//!
//! and §2 defines the decomposition-level schedule
//!
//! ```text
//! h(θ)  = Θ(θ^{1/3}·log^{5/3} n)        (output conductance of Theorem 3)
//! φ₀    = O(ε²/log⁷ n)  s.t. h(φ₀) ≤ (ε/6)/log(n²)
//! φ_i   = h⁻¹(φ_{i−1})
//! d     = smallest integer with (1−ε/12)^d·2·(n choose 2) < 1
//! β     = (ε/3)/d
//! τ     = ((ε/6)·Vol(U))^{1/k},  m₁ = (ε/6)·Vol(U),  m_{i+1} = m_i/τ
//! ```
//!
//! **Why two calibrations.** The faithful constants are astronomically
//! conservative: at `n = 10⁴`, `ε = 0.1` they give `φ₀ ≈ 10⁻¹⁰` and
//! `t₀ ≈ 10²²` — correct asymptotically, useless on any machine. The
//! [`ParamMode::Practical`] calibration keeps every *functional dependence*
//! (`t₀ ∝ log m/φ²`, `ε_b ∝ φ/(t₀·2^b·log m)`, `φ_i = h⁻¹(φ_{i−1})`, …)
//! but replaces the worst-case safety constants with small ones, and caps
//! the iteration counts that the w.h.p. analysis inflates. Every experiment
//! in EXPERIMENTS.md reports which mode produced it; the faithful formulas
//! themselves are unit-tested below.

/// Which constant calibration to use. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParamMode {
    /// The paper's constants, verbatim. Only usable for formula inspection
    /// and asymptotic reasoning — the iteration counts are astronomical.
    PaperFaithful,
    /// Same functional forms with small constants and capped iteration
    /// counts; the default for every runnable experiment.
    #[default]
    Practical,
}

/// Parameters for one Nibble run at conductance parameter `φ` on a graph
/// with `m` edges (Appendix A.1–A.2).
#[derive(Debug, Clone, PartialEq)]
pub struct NibbleParams {
    /// Conductance parameter `φ` of this run.
    pub phi: f64,
    /// Number of volume scales `ℓ = ⌈log₂ m⌉` (the parameter `b` ranges
    /// over `1..=ell`).
    pub ell: u32,
    /// Walk length `t₀`.
    pub t0: usize,
    /// Sweep-condition constant `γ` (condition C.2).
    pub gamma: f64,
    /// `ε_b = eps_base / 2^b` — truncation threshold at scale `b`.
    pub eps_base: f64,
    /// Multiplier of the relaxed sweep condition (C.1*): candidates on
    /// geometric jumps must satisfy `Φ ≤ relaxed_factor·φ`. The paper uses
    /// 12; Practical mode uses 3 because with `φ` capped at `1/12` a
    /// factor of 12 makes the condition vacuous (`Φ ≤ 1`), admitting junk
    /// cuts.
    pub relaxed_factor: f64,
    /// Which calibration produced these values.
    pub mode: ParamMode,
}

impl NibbleParams {
    /// Builds the parameter set for conductance `phi` on an `m`-edge graph.
    ///
    /// # Panics
    ///
    /// Panics if `phi` is not in `(0, 1)` or `m == 0`.
    pub fn new(phi: f64, m: usize, mode: ParamMode) -> Self {
        assert!(phi > 0.0 && phi < 1.0, "phi = {phi} outside (0, 1)");
        assert!(m > 0, "graph has no edges");
        let ln_m = (m as f64).ln();
        let ell = (m as f64).log2().ceil().max(1.0) as u32;
        match mode {
            ParamMode::PaperFaithful => {
                let t0 = (49.0 * (ln_m + 2.0) / (phi * phi)).ceil() as usize;
                let gamma = 5.0 * phi / (7.0 * 7.0 * 8.0 * (ln_m + 4.0));
                let eps_base = phi / (7.0 * 8.0 * (ln_m + 4.0) * t0 as f64);
                NibbleParams {
                    phi,
                    ell,
                    t0,
                    gamma,
                    eps_base,
                    relaxed_factor: 12.0,
                    mode,
                }
            }
            ParamMode::Practical => {
                // Same shapes: t₀ ∝ ln m/φ², γ ∝ φ/ln m, ε_b ∝ φ/(ln m·t₀·2^b),
                // but t₀ capped at 512: the 1/φ² walk length is a worst-case
                // guarantee; cuts of conductance ≳ 1/√t₀ are still found, and
                // the experiments verify detection empirically.
                let t0 = ((ln_m + 2.0) / (phi * phi)).ceil().clamp(8.0, 512.0) as usize;
                let gamma = phi / (8.0 * (ln_m + 1.0));
                let eps_base = phi / (2.0 * (ln_m + 1.0) * t0 as f64);
                NibbleParams {
                    phi,
                    ell,
                    t0,
                    gamma,
                    eps_base,
                    relaxed_factor: 3.0,
                    mode,
                }
            }
        }
    }

    /// Truncation threshold `ε_b` for volume scale `b ∈ 1..=ell`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn eps_b(&self, b: u32) -> f64 {
        assert!(
            b >= 1 && b <= self.ell,
            "scale b = {b} outside 1..={}",
            self.ell
        );
        self.eps_base / (1u64 << b.min(63)) as f64
    }
}

/// Parameters for the nearly-most-balanced sparse cut (Theorem 3) and its
/// Partition driver (Appendix A.4).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseCutParams {
    /// The *target* conductance `φ` of Theorem 3 (detection threshold).
    pub phi_target: f64,
    /// The conductance parameter the Partition loop actually runs Nibble
    /// with: `φ_run = min(f⁻¹(φ_target), 1/12)`.
    pub phi_run: f64,
    /// Nibble parameters at `phi_run`.
    pub nibble: NibbleParams,
    /// Number of parallel RandomNibble instances per ParallelNibble call.
    pub k_parallel: usize,
    /// Congestion cap `w`: abort if any edge participates in more than `w`
    /// instances.
    pub w_cap: usize,
    /// Number of sequential ParallelNibble iterations in Partition.
    pub s_iterations: usize,
    /// Practical-mode early exit: stop Partition after this many
    /// *consecutive* empty ParallelNibble results (each iteration uses
    /// fresh random starts, so a streak of empties is strong evidence the
    /// remaining graph is an expander). `usize::MAX` disables it
    /// (faithful mode).
    pub empty_streak_break: usize,
    /// Failure probability target `p` (drives `s_iterations` in the paper).
    pub p_fail: f64,
}

impl SparseCutParams {
    /// Builds the Theorem 3 parameter set for target conductance
    /// `phi_target` on an `m`-edge graph of volume `vol`.
    ///
    /// # Panics
    ///
    /// Panics if `phi_target` is not in `(0, 1)` or `m == 0`.
    pub fn new(phi_target: f64, m: usize, vol: usize, mode: ParamMode) -> Self {
        assert!(phi_target > 0.0 && phi_target < 1.0);
        assert!(m > 0);
        let ln_m = (m as f64).ln();
        // f(φ_run) = φ_target  ⇒  φ_run = (c_f·φ_target·ln²m)^{1/3}.
        let phi_run = match mode {
            ParamMode::PaperFaithful => {
                (144.0 * phi_target * (ln_m + 4.0) * (ln_m + 4.0)).powf(1.0 / 3.0)
            }
            ParamMode::Practical => (phi_target * (ln_m + 1.0) * (ln_m + 1.0)).powf(1.0 / 3.0),
        }
        .min(1.0 / 12.0);
        let nibble = NibbleParams::new(phi_run, m, mode);
        let t0 = nibble.t0 as f64;
        let ell = nibble.ell as f64;
        // k = ⌈Vol / (56·ℓ·(t₀+1)·t₀·ln(m·e⁴)·φ⁻¹)⌉  (A.4).
        let k_formula = (vol as f64 / (56.0 * ell * (t0 + 1.0) * t0 * (ln_m + 4.0) / phi_run))
            .ceil()
            .max(1.0) as usize;
        // w = 10·⌈ln Vol⌉.
        let w_cap = (10.0 * (vol.max(2) as f64).ln().ceil()) as usize;
        match mode {
            ParamMode::PaperFaithful => {
                let p_fail = 1.0 / (vol.max(2) as f64); // 1/poly(n)
                                                        // g = ⌈10·w·(56·ℓ·(t₀+1)·t₀·ln(m·e⁴)·φ⁻¹)⌉;
                                                        // s = 4·g·⌈log_{7/4}(1/p)⌉.
                let g =
                    (10.0 * w_cap as f64) * (56.0 * ell * (t0 + 1.0) * t0 * (ln_m + 4.0) / phi_run);
                let s = 4.0 * g.ceil() * (1.0 / p_fail).log(7.0 / 4.0).ceil();
                SparseCutParams {
                    phi_target,
                    phi_run,
                    nibble,
                    k_parallel: k_formula,
                    w_cap,
                    s_iterations: s as usize,
                    empty_streak_break: usize::MAX,
                    p_fail,
                }
            }
            ParamMode::Practical => {
                // Keep k's shape but allow more useful parallelism on small
                // graphs, and cap s at a workable number of sequential
                // sweeps. These caps trade the w.h.p. guarantee for
                // an empirically-checked constant failure probability.
                let k = k_formula.clamp(8, 32);
                SparseCutParams {
                    phi_target,
                    phi_run,
                    nibble,
                    k_parallel: k,
                    w_cap,
                    s_iterations: 24,
                    empty_streak_break: 4,
                    p_fail: 0.05,
                }
            }
        }
    }

    /// Builds a parameter set that runs Partition **directly** at
    /// `phi_run`, skipping the `f⁻¹` re-parameterization. Used by the
    /// decomposition, whose level schedule is expressed in run
    /// conductances. The nominal Theorem 3 target is reported as
    /// `f(phi_run)`.
    ///
    /// # Panics
    ///
    /// Panics if `phi_run` is not in `(0, 1/12]` or `m == 0`.
    pub fn from_phi_run(phi_run: f64, m: usize, vol: usize, mode: ParamMode) -> Self {
        assert!(phi_run > 0.0 && phi_run <= 1.0 / 12.0 + 1e-12);
        assert!(m > 0);
        let ln_m = (m as f64).ln();
        let phi_target = match mode {
            ParamMode::PaperFaithful => {
                (phi_run.powi(3) / (144.0 * (ln_m + 4.0) * (ln_m + 4.0))).max(1e-300)
            }
            ParamMode::Practical => (phi_run.powi(3) / ((ln_m + 1.0) * (ln_m + 1.0))).max(1e-300),
        };
        let mut params = Self::new(phi_target.min(0.999), m, vol, mode);
        // Overwrite the derived run conductance with the requested one and
        // rebuild the Nibble constants at that value.
        params.phi_run = phi_run;
        params.nibble = NibbleParams::new(phi_run, m, mode);
        params
    }

    /// `h(θ)`: the conductance guarantee of the cut Theorem 3 returns for a
    /// target `θ`, i.e. `O(φ_run·log n)` = `O(θ^{1/3}·log^{5/3} n)`.
    ///
    /// The multiplicative constant is `276·w` in Lemma 7 for the faithful
    /// mode and 1 for the practical mode (where the measured value is what
    /// experiments compare against).
    pub fn h_bound(&self, n: usize) -> f64 {
        let ln_n = (n.max(2) as f64).ln();
        let bound = match self.nibble.mode {
            ParamMode::PaperFaithful => 276.0 * self.w_cap as f64 * self.phi_run * ln_n,
            // Every constituent cut passes (C.1*) at relaxed_factor·φ_run;
            // the union loses at most the O(log n) congestion factor
            // (Lemma 7).
            ParamMode::Practical => self.nibble.relaxed_factor * self.phi_run * ln_n,
        };
        // Conductance never exceeds 1 (each boundary edge contributes at
        // least one unit to the small side's volume).
        bound.min(1.0)
    }
}

/// Parameters for the full expander decomposition (Theorem 1, §2).
#[derive(Debug, Clone, PartialEq)]
pub struct DecompositionParams {
    /// Inter-cluster edge budget `ε`.
    pub epsilon: f64,
    /// Trade-off integer `k ≥ 1` (`n^{2/k}` rounds vs `φ = (ε/log n)^{2^{O(k)}}`).
    pub k: usize,
    /// Nominal Theorem-3 *target* conductances `φ₀ > φ₁ > … > φ_k`
    /// (`φ_i = h⁻¹(φ_{i−1})`); the final component guarantee is `φ_k`.
    pub phi_schedule: Vec<f64>,
    /// The conductance parameters the Partition loop is actually run with
    /// at each level (`φ_run = f⁻¹(φ_i)` capped at 1/12). Practical mode
    /// calibrates `run₀ = ε/6` — the sparsest cuts the ε budget can afford
    /// to remove — and shrinks by `1/ln n` per
    /// level (a gentler shrink than the faithful cube, so multiple levels
    /// stay meaningful on laptop-scale graphs; the ε budget is enforced at
    /// runtime by the decomposition's budget guards).
    pub run_schedule: Vec<f64>,
    /// Phase 1 recursion depth bound `d`.
    pub d_max: usize,
    /// Low-diameter decomposition parameter `β = (ε/3)/d`.
    pub beta: f64,
    /// Calibration mode.
    pub mode: ParamMode,
}

impl DecompositionParams {
    /// Builds the Theorem 1 parameter set for an `n`-vertex graph.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon < 1` and `k ≥ 1`.
    pub fn new(epsilon: f64, k: usize, n: usize, mode: ParamMode) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon outside (0,1)");
        assert!(k >= 1, "k must be >= 1");
        let n = n.max(4);
        let ln_n = (n as f64).ln();
        // d: smallest integer with (1−ε/12)^d · 2·C(n,2) < 1.
        let pairs2 = (n * (n - 1)) as f64; // 2·(n choose 2)
        let d = (pairs2.ln() / -(1.0 - epsilon / 12.0).ln()).ceil().max(1.0) as usize;
        let beta = (epsilon / 3.0) / d as f64;
        // φ₀: h(φ₀) ≤ (ε/6)/log(n²)  ⇒ paper: φ₀ = O(ε²/log⁷n).
        // We solve h(φ₀) = target numerically via the h shape
        // h(θ) ≈ c·θ^{1/3}·ln^{5/3} n (same inversion both modes, the
        // constant differs).
        let target = (epsilon / 6.0) / (2.0 * (n as f64).log2());
        let c_h = match mode {
            ParamMode::PaperFaithful => 276.0 * 10.0 * ln_n.ceil(), // 276·w shape
            ParamMode::Practical => 1.0,
        };
        let h = |theta: f64| c_h * theta.powf(1.0 / 3.0) * ln_n.powf(5.0 / 3.0);
        let h_inv = |y: f64| {
            let base = y / (c_h * ln_n.powf(5.0 / 3.0));
            (base * base * base).clamp(1e-300, 0.5)
        };
        debug_assert!((h(h_inv(0.01)) - 0.01).abs() < 1e-9 || h_inv(0.01) == 0.5);
        let mut phi_schedule = Vec::with_capacity(k + 1);
        let phi0 = h_inv(target);
        phi_schedule.push(phi0);
        for i in 1..=k {
            let prev = phi_schedule[i - 1];
            phi_schedule.push(h_inv(prev).min(prev));
        }
        let run_schedule = match mode {
            ParamMode::PaperFaithful => {
                // φ_run_i = f⁻¹(φ_i) evaluated at the reference edge count
                // m = n² (an upper bound; per-component counts only shrink
                // the log factors).
                let ln_m = 2.0 * ln_n;
                phi_schedule
                    .iter()
                    .map(|&phi| {
                        (144.0 * phi * (ln_m + 4.0) * (ln_m + 4.0))
                            .powf(1.0 / 3.0)
                            .clamp(1e-12, 1.0 / 12.0)
                    })
                    .collect()
            }
            ParamMode::Practical => {
                // run₀ = ε/6: on laptop-scale graphs the candidate
                // sequence of A.2 degenerates to consecutive indices
                // (volume grows by ≥ one vertex per step, faster than the
                // (1+φ) geometric spacing), so candidates face the *exact*
                // condition Φ ≤ φ_run — the detection bar is φ_run itself.
                // ε/6 cuts exactly the cuts the ε budget can afford; the
                // runtime budget guards enforce the rest.
                let mut rs = Vec::with_capacity(k + 1);
                let mut r = (epsilon / 6.0).min(1.0 / 12.0);
                for _ in 0..=k {
                    rs.push(r.max(1e-6));
                    r /= ln_n;
                }
                rs
            }
        };
        DecompositionParams {
            epsilon,
            k,
            phi_schedule,
            run_schedule,
            d_max: d,
            beta,
            mode,
        }
    }

    /// `φ = φ_k`: the conductance every final component is guaranteed.
    ///
    /// Practical mode reports `f(run_k)` — the nominal Theorem-3 target of
    /// the last level actually run.
    pub fn phi_final(&self) -> f64 {
        match self.mode {
            ParamMode::PaperFaithful => *self.phi_schedule.last().expect("schedule non-empty"),
            ParamMode::Practical => {
                let r = *self.run_schedule.last().expect("schedule non-empty");
                r.powi(3).max(1e-300)
            }
        }
    }

    /// Phase 2 geometric scale `τ = ((ε/6)·vol)^{1/k}` for a component of
    /// volume `vol`.
    pub fn tau(&self, vol: usize) -> f64 {
        ((self.epsilon / 6.0) * vol as f64)
            .powf(1.0 / self.k as f64)
            .max(1.0 + 1e-9)
    }

    /// The Phase 2 volume thresholds `m₁ > m₂ > … > m_{k+1}` for a
    /// component of volume `vol` (`m₁ = (ε/6)·vol`, `m_{i+1} = m_i/τ`).
    pub fn volume_schedule(&self, vol: usize) -> Vec<f64> {
        let tau = self.tau(vol);
        let mut ms = Vec::with_capacity(self.k + 1);
        let mut m = (self.epsilon / 6.0) * vol as f64;
        for _ in 0..=self.k {
            ms.push(m);
            m /= tau;
        }
        ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faithful_t0_matches_paper_formula() {
        // t₀ = 49·ln(m·e²)/φ² = 49·(ln m + 2)/φ².
        let p = NibbleParams::new(0.1, 1000, ParamMode::PaperFaithful);
        let want = (49.0 * ((1000.0f64).ln() + 2.0) / 0.01).ceil() as usize;
        assert_eq!(p.t0, want);
    }

    #[test]
    fn faithful_gamma_and_eps_match_paper() {
        let m = 4096usize;
        let phi = 0.05;
        let p = NibbleParams::new(phi, m, ParamMode::PaperFaithful);
        let ln_me4 = (m as f64).ln() + 4.0;
        let gamma_want = 5.0 * phi / (392.0 * ln_me4);
        assert!((p.gamma - gamma_want).abs() < 1e-15);
        let eps1_want = phi / (56.0 * ln_me4 * p.t0 as f64) / 2.0;
        assert!((p.eps_b(1) - eps1_want).abs() < 1e-18);
        // ε_b halves with each scale.
        assert!((p.eps_b(3) - p.eps_b(2) / 2.0).abs() < 1e-20);
    }

    #[test]
    fn ell_is_log2_m() {
        let p = NibbleParams::new(0.1, 1024, ParamMode::Practical);
        assert_eq!(p.ell, 10);
        let p = NibbleParams::new(0.1, 1025, ParamMode::Practical);
        assert_eq!(p.ell, 11);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn rejects_bad_phi() {
        let _ = NibbleParams::new(1.5, 10, ParamMode::Practical);
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn eps_b_range_checked() {
        let p = NibbleParams::new(0.1, 16, ParamMode::Practical);
        let _ = p.eps_b(p.ell + 1);
    }

    #[test]
    fn practical_t0_scales_inverse_square() {
        // Use φ values large enough that the 512-step cap stays inactive.
        let a = NibbleParams::new(0.4, 1000, ParamMode::Practical);
        let b = NibbleParams::new(0.2, 1000, ParamMode::Practical);
        let ratio = b.t0 as f64 / a.t0 as f64;
        assert!(
            (ratio - 4.0).abs() < 0.2,
            "t0 should scale as 1/φ²: {ratio}"
        );
        // And the cap engages for tiny φ.
        let c = NibbleParams::new(0.001, 1000, ParamMode::Practical);
        assert_eq!(c.t0, 512);
    }

    #[test]
    fn sparse_cut_run_phi_capped_at_twelfth() {
        let p = SparseCutParams::new(0.05, 10_000, 20_000, ParamMode::Practical);
        assert!(p.phi_run <= 1.0 / 12.0 + 1e-12);
        assert!(p.phi_run > 0.0);
    }

    #[test]
    fn sparse_cut_phi_run_is_cube_root_shape() {
        // Far below the cap, φ_run ∝ φ_target^{1/3}.
        let p1 = SparseCutParams::new(1e-9, 10_000, 20_000, ParamMode::Practical);
        let p2 = SparseCutParams::new(8e-9, 10_000, 20_000, ParamMode::Practical);
        let ratio = p2.phi_run / p1.phi_run;
        assert!(
            (ratio - 2.0).abs() < 1e-6,
            "expected cube-root scaling, ratio {ratio}"
        );
    }

    #[test]
    fn faithful_s_iterations_are_astronomical() {
        // Documents *why* Practical mode exists.
        let p = SparseCutParams::new(0.01, 10_000, 20_000, ParamMode::PaperFaithful);
        assert!(p.s_iterations > 1_000_000);
        let q = SparseCutParams::new(0.01, 10_000, 20_000, ParamMode::Practical);
        assert!(q.s_iterations <= 64);
    }

    #[test]
    fn w_cap_matches_formula() {
        let p = SparseCutParams::new(0.01, 1000, 5000, ParamMode::Practical);
        let want = (10.0 * (5000.0f64).ln().ceil()) as usize;
        assert_eq!(p.w_cap, want);
    }

    #[test]
    fn decomposition_schedule_is_decreasing() {
        let d = DecompositionParams::new(0.1, 3, 4096, ParamMode::Practical);
        assert_eq!(d.phi_schedule.len(), 4);
        assert_eq!(d.run_schedule.len(), 4);
        for w in d.phi_schedule.windows(2) {
            assert!(
                w[1] <= w[0],
                "targets must be non-increasing: {:?}",
                d.phi_schedule
            );
        }
        for w in d.run_schedule.windows(2) {
            assert!(
                w[1] <= w[0],
                "run schedule must be non-increasing: {:?}",
                d.run_schedule
            );
        }
        assert!(d.phi_final() > 0.0);
        assert!(d.run_schedule[0] <= 1.0 / 12.0 + 1e-12);
    }

    #[test]
    fn from_phi_run_roundtrip() {
        let p = SparseCutParams::from_phi_run(0.05, 1000, 2000, ParamMode::Practical);
        assert!((p.phi_run - 0.05).abs() < 1e-15);
        assert!((p.nibble.phi - 0.05).abs() < 1e-15);
        assert!(p.phi_target > 0.0);
    }

    #[test]
    fn decomposition_d_satisfies_defining_inequality() {
        let n = 2048;
        let eps = 0.2;
        let d = DecompositionParams::new(eps, 2, n, ParamMode::Practical);
        let shrink: f64 = 1.0 - eps / 12.0;
        let pairs2 = (n * (n - 1)) as f64;
        assert!(shrink.powi(d.d_max as i32) * pairs2 < 1.0);
        assert!(
            shrink.powi(d.d_max as i32 - 1) * pairs2 >= 1.0,
            "d not minimal"
        );
    }

    #[test]
    fn beta_is_eps_over_3d() {
        let d = DecompositionParams::new(0.3, 2, 1024, ParamMode::Practical);
        assert!((d.beta - (0.3 / 3.0) / d.d_max as f64).abs() < 1e-15);
    }

    #[test]
    fn tau_and_volume_schedule() {
        let d = DecompositionParams::new(0.3, 3, 1024, ParamMode::Practical);
        let vol = 10_000;
        let tau = d.tau(vol);
        let want = (0.05f64 * vol as f64).powf(1.0 / 3.0);
        assert!((tau - want).abs() < 1e-9);
        let ms = d.volume_schedule(vol);
        assert_eq!(ms.len(), 4);
        assert!((ms[0] - 500.0).abs() < 1e-9);
        for w in ms.windows(2) {
            assert!((w[1] - w[0] / tau).abs() < 1e-9);
        }
        // m_k/(2τ) < 1 — the paper's guarantee that L never exceeds k.
        assert!(ms[d.k] / (2.0 * tau) < 1.0);
    }

    #[test]
    fn larger_k_means_smaller_phi() {
        let d1 = DecompositionParams::new(0.1, 1, 4096, ParamMode::Practical);
        let d3 = DecompositionParams::new(0.1, 3, 4096, ParamMode::Practical);
        assert!(d3.phi_final() <= d1.phi_final());
    }

    #[test]
    fn modes_produce_comparable_shapes() {
        let f = DecompositionParams::new(0.1, 2, 4096, ParamMode::PaperFaithful);
        let p = DecompositionParams::new(0.1, 2, 4096, ParamMode::Practical);
        // Faithful φ₀ is (much) smaller, never larger.
        assert!(f.phi_schedule[0] <= p.phi_schedule[0]);
        assert_eq!(f.d_max, p.d_max); // d doesn't depend on the mode
    }
}
