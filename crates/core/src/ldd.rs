//! **Theorem 4** — low-diameter decomposition with a w.h.p. guarantee
//! (Appendix B).
//!
//! The base algorithm is Miller–Peng–Xu `Clustering(β)`: every vertex
//! draws an exponential shift `δ_v ~ Exp(β)` and wakes at epoch
//! `start_v = max(1, 2·ln n/β − ⌊δ_v⌋)`; an awake unclustered vertex
//! becomes a center, and unclustered vertices join any already-clustered
//! neighbor. Each cluster has radius ≤ `2·ln n/β` epochs and each edge is
//! cut with probability ≤ 2β (Lemma 12) — but only **in expectation** over
//! the whole graph.
//!
//! The paper's contribution is upgrading the cut-edge bound to hold
//! **w.h.p.** without spending diameter time: compute a partition
//! `V = V_D ∪ V_S` such that `V_D` already induces low-diameter clusters
//! that are pairwise far apart (invariant `H`), and the edges incident to
//! `V_S` are "good" — every such edge's cut indicator depends on few
//! others, so a Chernoff bound with bounded dependence applies. Then run
//! `Clustering(β)` but cut only the inter-cluster edges incident to `V_S`.

use crate::rounds::RoundLedger;
use graph::traversal;
use graph::{Graph, VertexId, VertexSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Components up to this size are classified by the exact per-vertex ball
/// estimator; larger ones take the single-BFS eccentricity bound (see the
/// classify step in [`low_diameter_decomposition`]).
const EXACT_CLASSIFY_LIMIT: usize = 2048;

/// Result of `Clustering(β)` (MPX): a cluster id per vertex.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster id of each vertex (cluster ids are center vertex ids).
    pub cluster_of: Vec<VertexId>,
    /// Epochs executed (= measured CONGEST rounds of the procedure).
    pub epochs: usize,
}

impl Clustering {
    /// The inter-cluster edges, each reported once.
    pub fn cut_edges(&self, g: &Graph) -> Vec<(VertexId, VertexId)> {
        g.edges()
            .filter(|&(u, v)| self.cluster_of[u as usize] != self.cluster_of[v as usize])
            .collect()
    }

    /// The clusters as vertex sets (non-empty ones only).
    pub fn clusters(&self, n: usize) -> Vec<VertexSet> {
        use std::collections::HashMap;
        let mut groups: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
        for (v, &c) in self.cluster_of.iter().enumerate() {
            groups.entry(c).or_default().push(v as VertexId);
        }
        let mut keys: Vec<VertexId> = groups.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter()
            .map(|k| VertexSet::from_iter(n, groups.remove(&k).expect("key exists")))
            .collect()
    }
}

/// Samples `Exp(β)` by inverse transform: `−ln(U)/β`.
fn sample_exponential(beta: f64, rng: &mut StdRng) -> f64 {
    let u: f64 = rng.random::<f64>();
    -(1.0 - u).ln() / beta
}

/// `Clustering(β)` of Miller–Peng–Xu, in the Haeupler–Wajc presentation
/// the paper uses. Runs in `2·ln n/β` synchronous epochs.
///
/// Every vertex ends up clustered: any vertex whose `start_v` epoch
/// arrives while it is unclustered becomes a center itself.
///
/// # Panics
///
/// Panics unless `0 < beta < 1`.
pub fn clustering(g: &Graph, beta: f64, seed: u64) -> Clustering {
    assert!(beta > 0.0 && beta < 1.0, "beta = {beta} outside (0, 1)");
    let n = g.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let horizon = (2.0 * (n.max(2) as f64).ln() / beta).ceil() as usize;
    let start: Vec<usize> = (0..n)
        .map(|_| {
            let delta = sample_exponential(beta, &mut rng);
            // start_v = max(1, 2·ln n/β − ⌊δ_v⌋).
            let s = horizon as f64 - delta.floor();
            s.max(1.0) as usize
        })
        .collect();
    clustering_with_starts(g, &start, horizon)
}

/// `Clustering` driven by explicit start epochs (the deterministic core of
/// [`clustering`], exposed so the exact CONGEST simulation can be run with
/// identical randomness and compared epoch for epoch).
///
/// The simulation is event-driven: epochs in which no start fires and no
/// wave can advance are skipped in `O(1)`, and each live epoch touches
/// only the still-unclustered worklist. With `Exp(β)` shifts at small `β`
/// the nominal horizon is `Θ(log n/β)` epochs of which only `O(diam)` do
/// anything — the naive loop scanned all `n` vertices in every one of
/// them, which was a scale wall for the decomposition's LDD step. The
/// produced labels and epoch count are bit-identical to the naive loop.
///
/// # Panics
///
/// Panics if `starts.len() != g.n()`.
pub fn clustering_with_starts(g: &Graph, starts: &[usize], horizon: usize) -> Clustering {
    let n = g.n();
    assert_eq!(starts.len(), n, "one start epoch per vertex");
    let mut cluster_of: Vec<Option<VertexId>> = vec![None; n];
    // Epoch at which each vertex became clustered (`usize::MAX` = never):
    // "clustered before epoch t" ⇔ `clustered_at[w] < t`, replacing the
    // per-epoch snapshot clone of the whole assignment vector.
    let mut clustered_at: Vec<usize> = vec![usize::MAX; n];
    let mut unclustered: Vec<VertexId> = (0..n as VertexId).collect();
    let mut epochs = 0usize;
    let mut t = 1usize;
    while !unclustered.is_empty() && t <= horizon {
        epochs = t;
        let mut progress = false;
        let mut rest: Vec<VertexId> = Vec::with_capacity(unclustered.len());
        for &v in &unclustered {
            let decided = if starts[v as usize] == t {
                Some(v)
            } else if starts[v as usize] > t {
                // Join the smallest-id cluster among neighbors clustered
                // strictly before this epoch (ties arbitrary).
                g.neighbors(v)
                    .iter()
                    .filter(|&&w| clustered_at[w as usize] < t)
                    .filter_map(|&w| cluster_of[w as usize])
                    .min()
            } else {
                // Unreachable: v centers itself at its own start epoch.
                None
            };
            match decided {
                Some(c) => {
                    cluster_of[v as usize] = Some(c);
                    clustered_at[v as usize] = t;
                    progress = true;
                }
                None => rest.push(v),
            }
        }
        unclustered = rest;
        if unclustered.is_empty() {
            break;
        }
        if progress {
            t += 1;
        } else {
            // Dead stretch: nothing clustered at t, so joins stay
            // impossible until the next start epoch fires — jump there.
            match unclustered
                .iter()
                .map(|&v| starts[v as usize])
                .filter(|&s| s > t)
                .min()
            {
                Some(next) if next <= horizon => t = next,
                _ => break,
            }
        }
    }
    if !unclustered.is_empty() && horizon > 0 {
        // The naive loop would have idled through every remaining epoch.
        epochs = horizon;
    }
    // Stragglers whose start epoch never fired (can't happen: start ≤
    // horizon by construction) — defensive fallback to singletons.
    let cluster_of = cluster_of
        .into_iter()
        .enumerate()
        .map(|(v, c)| c.unwrap_or(v as VertexId))
        .collect();
    Clustering { cluster_of, epochs }
}

/// Parameters of the Theorem 4 procedure, exposing the `a`/`b` radii so
/// experiments can sweep them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LddParams {
    /// Cut-edge budget `β`.
    pub beta: f64,
    /// Separation radius `a` (paper: `5·ln n/β`).
    pub a: usize,
    /// Density threshold divisor `b` (paper: `K·ln n/β`).
    pub b: usize,
    /// Radius used for the reference ball when classifying `V_D`/`V_S`
    /// (paper: `100·a·b`; capped at `n` — a ball can never exceed the
    /// graph).
    pub reference_radius: usize,
}

impl LddParams {
    /// Paper-faithful radii for an `n`-vertex graph.
    pub fn paper(beta: f64, n: usize) -> Self {
        let ln_n = (n.max(2) as f64).ln();
        let a = (5.0 * ln_n / beta).ceil() as usize;
        let b = (20.0 * ln_n / beta).ceil() as usize; // K = 20
        LddParams {
            beta,
            a,
            b,
            reference_radius: (100 * a * b).min(n),
        }
    }

    /// Practical radii: same `Θ(log n/β)` shape with halved constants, so
    /// the machinery engages on laptop-sized graphs.
    pub fn practical(beta: f64, n: usize) -> Self {
        let ln_n = (n.max(2) as f64).ln();
        let a = (0.5 * ln_n / beta).ceil().max(1.0) as usize;
        let b = (0.5 * ln_n / beta).ceil().max(2.0) as usize;
        LddParams {
            beta,
            a,
            b,
            reference_radius: (4 * a * b).min(n),
        }
    }
}

/// Result of `LowDiamDecomposition(β)` (Theorem 4).
#[derive(Debug, Clone)]
pub struct LddOutcome {
    /// The final partition `V = V₁ ∪ … ∪ V_x`.
    pub parts: Vec<VertexSet>,
    /// The inter-part edges that were cut.
    pub cut_edges: Vec<(VertexId, VertexId)>,
    /// The dense side `V_D` of the auxiliary partition.
    pub v_dense: VertexSet,
    /// Measured round charges (Lemma 21 accounting).
    pub ledger: RoundLedger,
}

impl LddOutcome {
    /// Fraction of edges cut, relative to `m`.
    pub fn cut_fraction(&self, g: &Graph) -> f64 {
        if g.m() == 0 {
            return 0.0;
        }
        self.cut_edges.len() as f64 / g.m() as f64
    }

    /// Maximum diameter over the parts (`None` if some part is
    /// internally disconnected, which the guarantee forbids).
    pub fn max_part_diameter(&self, g: &Graph) -> Option<u32> {
        let mut worst = 0;
        for p in &self.parts {
            match traversal::set_diameter(g, p) {
                Ok(d) => worst = worst.max(d),
                Err(_) => return None,
            }
        }
        Some(worst)
    }
}

/// `LowDiamDecomposition(β)`: each output part has diameter
/// `O(log²n/β²)` and w.h.p. at most `3β·|E|` edges are cut.
///
/// # Panics
///
/// Panics unless `0 < β < 1`.
pub fn low_diameter_decomposition(g: &Graph, params: &LddParams, seed: u64) -> LddOutcome {
    let n = g.n();
    let mut ledger = RoundLedger::new();
    if n == 0 {
        return LddOutcome {
            parts: Vec::new(),
            cut_edges: Vec::new(),
            v_dense: VertexSet::empty(0),
            ledger,
        };
    }
    // Step 2a: classify V'_D vs V'_S by ball edge-counts (Lemmas 14–16;
    // we compute the counts exactly and charge the estimator's rounds:
    // O(a·b·log²n) per Lemma 16 with d = reference radius).
    let a = params.a.max(1) as u32;
    let radius = params.reference_radius.max(params.a) as u32;
    // Round charges cap every radius at n: a BFS/estimator over a graph of
    // n vertices finishes within its diameter regardless of the nominal
    // radius parameter (Lemma 16 with d clamped to the graph).
    let a_eff = (params.a as u64).min(n as u64);
    let b_eff = (params.b as u64).min(n as u64);
    let radius_eff = (radius as u64).min(n as u64);
    let log_n = (n.max(2) as f64).ln();
    ledger.charge("ldd.classify", radius_eff * (log_n * log_n).ceil() as u64);
    let comps = traversal::connected_components(g);
    let mut dense_seed: Vec<VertexId> = Vec::new();
    for comp in &comps {
        if comp.len() <= EXACT_CLASSIFY_LIMIT {
            // Fast path: if the a-ball covers the whole component, every
            // vertex sees near == reference ≥ reference/2b, i.e. dense.
            let comp_diam_ub = traversal::set_diameter(g, comp).unwrap_or(u32::MAX);
            if comp_diam_ub <= a {
                dense_seed.extend(comp.iter());
                continue;
            }
            for v in comp.iter() {
                let near = traversal::ball_edge_count(g, v, a);
                let reference = traversal::ball_edge_count(g, v, radius);
                if (near as f64) >= reference as f64 / (2.0 * params.b as f64) {
                    dense_seed.push(v);
                }
            }
        } else {
            // Large component: the exact classifier above is
            // O(|comp|·Vol(comp)) — a scale wall. One BFS bounds the
            // diameter by 2·ecc(root); a component whose doubled
            // eccentricity fits in `a` is entirely dense (near ==
            // reference for every member). A wider large component is
            // left entirely sparse: all its MPX inter-cluster edges get
            // cut, and the decomposition's ε/3 budget guard remains the
            // backstop (documented practical-mode approximation).
            let root = comp.as_slice()[0];
            let dist = traversal::bfs_distances(g, root);
            let ecc = comp.iter().map(|v| dist[v as usize]).max().unwrap_or(0);
            if ecc.saturating_mul(2) <= a {
                dense_seed.extend(comp.iter());
            }
        }
    }
    let v_dense_core = VertexSet::from_iter(n, dense_seed);

    // Step 2b: grow W₀ = {u : dist(u, V'_D) ≤ a} and merge any two
    // components within distance a until none remain (invariant H bounds
    // the iteration count by 2b and each component's diameter by O(ab)).
    // W-components in different *graph* components can never come within
    // distance a of each other, so only graph components hosting ≥ 2
    // W-components enter the (ball-growing, hence costly) merge step.
    let mut w = expand_by_distance(g, &v_dense_core, a);
    let mut comp_id = vec![usize::MAX; n];
    for (ci, c) in comps.iter().enumerate() {
        for v in c.iter() {
            comp_id[v as usize] = ci;
        }
    }
    let mut merge_iters = 0usize;
    loop {
        merge_iters += 1;
        let wcomps = components_within(g, &w);
        let mut per_graph_comp = vec![0usize; comps.len()];
        for wc in &wcomps {
            per_graph_comp[comp_id[wc.as_slice()[0] as usize]] += 1;
        }
        let candidates: Vec<VertexSet> = wcomps
            .into_iter()
            .filter(|wc| per_graph_comp[comp_id[wc.as_slice()[0] as usize]] >= 2)
            .collect();
        if candidates.len() <= 1 {
            break;
        }
        let (merged, changed) = merge_close_components(g, &w, &candidates, a);
        w = merged;
        if !changed || merge_iters > 2 * params.b + 2 {
            break;
        }
    }
    // Lemma 21: O(a·b) per iteration (radii capped at the graph).
    ledger.charge(
        "ldd.dense_merge",
        (merge_iters as u64) * a_eff * b_eff.max(1),
    );
    let v_dense = w;

    // Step 3: run Clustering(β), but cut only inter-cluster edges with an
    // endpoint in V_S.
    let clus = clustering(g, params.beta, seed.wrapping_add(0x9E3779B97F4A7C15));
    ledger.charge("ldd.clustering", clus.epochs as u64);
    let mut cut_edges = Vec::new();
    for (u, v) in g.edges() {
        if clus.cluster_of[u as usize] != clus.cluster_of[v as usize]
            && (!v_dense.contains(u) || !v_dense.contains(v))
        {
            cut_edges.push((u, v));
        }
    }
    let remaining = g.remove_edges(cut_edges.iter().copied(), false);
    let parts = traversal::connected_components(&remaining);
    LddOutcome {
        parts,
        cut_edges,
        v_dense,
        ledger,
    }
}

/// `{u : dist(u, S) ≤ r}` — multi-source BFS ball around a set.
fn expand_by_distance(g: &Graph, s: &VertexSet, r: u32) -> VertexSet {
    use std::collections::VecDeque;
    let n = g.n();
    if s.is_empty() {
        return VertexSet::empty(n);
    }
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    for v in s.iter() {
        dist[v as usize] = 0;
        queue.push_back(v);
    }
    let mut members: Vec<VertexId> = s.iter().collect();
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        if du == r {
            continue;
        }
        for &w in g.neighbors(u) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = du + 1;
                members.push(w);
                queue.push_back(w);
            }
        }
    }
    VertexSet::from_iter(n, members)
}

/// Connected components of the subgraph induced by `w` (as parent-id sets).
fn components_within(g: &Graph, w: &VertexSet) -> Vec<VertexSet> {
    use std::collections::VecDeque;
    let n = g.n();
    let mut seen = vec![false; n];
    let mut comps = Vec::new();
    for start in w.iter() {
        if seen[start as usize] {
            continue;
        }
        let mut queue = VecDeque::from([start]);
        seen[start as usize] = true;
        let mut members = vec![start];
        while let Some(u) = queue.pop_front() {
            for &x in g.neighbors(u) {
                if w.contains(x) && !seen[x as usize] {
                    seen[x as usize] = true;
                    members.push(x);
                    queue.push_back(x);
                }
            }
        }
        comps.push(VertexSet::from_iter(n, members));
    }
    comps
}

/// One merge iteration: any component with another component within
/// distance `a` absorbs its `a`-ball. Returns the new `W` and whether
/// anything changed.
fn merge_close_components(
    g: &Graph,
    w: &VertexSet,
    comps: &[VertexSet],
    a: u32,
) -> (VertexSet, bool) {
    let n = g.n();
    if comps.len() <= 1 {
        return (w.clone(), false);
    }
    // Label vertices by component; BFS out to distance a from each
    // component to detect proximity.
    let mut comp_of = vec![usize::MAX; n];
    for (ci, c) in comps.iter().enumerate() {
        for v in c.iter() {
            comp_of[v as usize] = ci;
        }
    }
    let mut grow: Vec<bool> = vec![false; comps.len()];
    for (ci, c) in comps.iter().enumerate() {
        let ball = expand_by_distance(g, c, a);
        for v in ball.iter() {
            let other = comp_of[v as usize];
            if other != usize::MAX && other != ci {
                grow[ci] = true;
                grow[other] = true;
            }
        }
    }
    if grow.iter().all(|&x| !x) {
        return (w.clone(), false);
    }
    let mut next = w.clone();
    for (ci, c) in comps.iter().enumerate() {
        if grow[ci] {
            next = next.union(&expand_by_distance(g, c, a));
        }
    }
    (next, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn clustering_covers_every_vertex() {
        let g = gen::gnp(80, 0.05, 3).unwrap();
        let c = clustering(&g, 0.3, 7);
        assert_eq!(c.cluster_of.len(), 80);
        // Every cluster id is a real center.
        for &cid in &c.cluster_of {
            assert!((cid as usize) < 80);
        }
    }

    #[test]
    fn clustering_respects_radius_bound() {
        // Each cluster has (strong) diameter ≤ 4·ln n/β in the paper; check
        // on a path where distances are easy.
        let g = gen::path(200).unwrap();
        let beta = 0.3;
        let c = clustering(&g, beta, 11);
        let bound = (4.0 * (200f64).ln() / beta).ceil() as u32;
        for cl in c.clusters(200) {
            let d = traversal::set_diameter(&g, &cl).expect("clusters are connected");
            assert!(d <= bound, "cluster diameter {d} exceeds {bound}");
        }
    }

    #[test]
    fn clustering_clusters_are_connected() {
        let g = gen::gnp(60, 0.08, 9).unwrap();
        let c = clustering(&g, 0.4, 13);
        for cl in c.clusters(60) {
            if cl.len() > 1 {
                assert!(
                    traversal::set_diameter(&g, &cl).is_ok(),
                    "cluster must induce a connected subgraph"
                );
            }
        }
    }

    #[test]
    fn mpx_cut_probability_bound_empirically() {
        // Lemma 12: Pr[edge cut] ≤ 2β. Average over seeds on a path.
        let g = gen::path(120).unwrap();
        let beta = 0.1;
        let trials = 200;
        let mut cut_total = 0usize;
        for seed in 0..trials {
            cut_total += clustering(&g, beta, seed).cut_edges(&g).len();
        }
        let avg_fraction = cut_total as f64 / (trials as f64 * g.m() as f64);
        assert!(
            avg_fraction <= 2.0 * beta * 1.2,
            "empirical cut fraction {avg_fraction} above 2β = {}",
            2.0 * beta
        );
    }

    #[test]
    fn ldd_parts_partition_the_graph() {
        let g = gen::gnp(70, 0.07, 21).unwrap();
        let params = LddParams::practical(0.2, 70);
        let out = low_diameter_decomposition(&g, &params, 3);
        let mut seen = [false; 70];
        for p in &out.parts {
            for v in p.iter() {
                assert!(!seen[v as usize], "vertex {v} in two parts");
                seen[v as usize] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "some vertex missing from the partition"
        );
    }

    #[test]
    fn ldd_diameter_bound_on_path() {
        let n = 300;
        let g = gen::path(n).unwrap();
        let beta = 0.4;
        let params = LddParams::practical(beta, n);
        let out = low_diameter_decomposition(&g, &params, 5);
        // Theorem 4: each part has diameter O(log²n/β²); with practical
        // constants the bound is c·(ln n/β)² with a generous c.
        let ln_n = (n as f64).ln();
        let bound = 8.0 * (ln_n / beta) * (ln_n / beta);
        let d = out.max_part_diameter(&g).expect("parts connected") as f64;
        assert!(d <= bound, "diameter {d} above bound {bound}");
        // A 300-path must actually be split.
        assert!(out.parts.len() > 1, "path should be cut into pieces");
    }

    #[test]
    fn ldd_cut_fraction_within_budget_on_average() {
        let g = gen::gnp(100, 0.06, 2).unwrap();
        let beta = 0.15;
        let params = LddParams::practical(beta, 100);
        let mut worst: f64 = 0.0;
        let mut total = 0.0;
        let trials = 30;
        for seed in 0..trials {
            let out = low_diameter_decomposition(&g, &params, seed);
            let f = out.cut_fraction(&g);
            worst = worst.max(f);
            total += f;
        }
        let avg = total / trials as f64;
        assert!(avg <= 3.0 * beta, "average cut fraction {avg} above 3β");
    }

    #[test]
    fn dense_core_suppresses_cuts() {
        // On a clique everything is dense: V_D = V and no edge is cut.
        let g = gen::complete(30).unwrap();
        let params = LddParams::practical(0.2, 30);
        let out = low_diameter_decomposition(&g, &params, 9);
        assert_eq!(out.v_dense.len(), 30);
        assert!(out.cut_edges.is_empty());
        assert_eq!(out.parts.len(), 1);
    }

    #[test]
    fn ledger_has_all_phases() {
        let g = gen::path(100).unwrap();
        let params = LddParams::practical(0.3, 100);
        let out = low_diameter_decomposition(&g, &params, 4);
        assert!(out.ledger.category("ldd.classify") > 0);
        assert!(out.ledger.category("ldd.clustering") > 0);
    }

    #[test]
    fn paper_params_scale_with_beta() {
        let p1 = LddParams::paper(0.1, 1000);
        let p2 = LddParams::paper(0.2, 1000);
        assert!(p1.a > p2.a, "a ∝ 1/β");
        assert!(p1.b > p2.b);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn clustering_rejects_bad_beta() {
        let g = gen::path(4).unwrap();
        let _ = clustering(&g, 1.5, 0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = graph::Graph::from_edges(0, []).unwrap();
        let params = LddParams::practical(0.2, 1);
        let out = low_diameter_decomposition(&g, &params, 0);
        assert!(out.parts.is_empty());
    }
}
