//! Decomposition certificates: machine-checkable evidence that an output
//! actually satisfies Theorem 1's two guarantees.
//!
//! 1. **Inter-cluster budget** — removed edges ≤ `ε·|E|`: counted exactly.
//! 2. **Per-part conductance** — `Φ(G{Vᵢ}) ≥ φ`: certified exactly by cut
//!    enumeration for parts with ≤ 16 vertices, and bounded from below by
//!    the spectral Cheeger inequality (`Φ ≥ 1 − λ₂` for the lazy walk) on
//!    larger parts. Sweep cuts supply complementary *upper* bounds so the
//!    report also shows how tight the certificate is.

use crate::decomposition::DecompositionResult;
use graph::view::{AdjacencyView, Subgraph};
use graph::{spectral, Graph, VertexSet};

/// Conductance evidence for one part.
#[derive(Debug, Clone)]
pub struct PartCertificate {
    /// Number of vertices in the part.
    pub size: usize,
    /// A certified lower bound on `Φ(G{Vᵢ})` (exact value for small
    /// parts; Cheeger bound otherwise). `f64::INFINITY` for parts whose
    /// conductance is vacuous (singletons: no cut exists).
    pub conductance_lower: f64,
    /// Whether the lower bound is exact (small-part enumeration).
    pub exact: bool,
    /// A sweep-cut upper bound (`f64::INFINITY` when no non-trivial
    /// sweep prefix exists).
    pub conductance_upper: f64,
}

/// Result of verifying a decomposition.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// Whether the parts form a partition of `V`.
    pub is_partition: bool,
    /// Measured inter-cluster edge fraction.
    pub inter_cluster_fraction: f64,
    /// The ε that was promised.
    pub epsilon: f64,
    /// The φ that was promised.
    pub phi: f64,
    /// Per-part conductance evidence.
    pub parts: Vec<PartCertificate>,
}

impl VerificationReport {
    /// Whether the ε budget held.
    pub fn edge_budget_ok(&self) -> bool {
        self.inter_cluster_fraction <= self.epsilon + 1e-12
    }

    /// Minimum certified conductance lower bound across non-singleton
    /// parts (`f64::INFINITY` when all parts are singletons).
    pub fn min_certified_conductance(&self) -> f64 {
        self.parts
            .iter()
            .map(|p| p.conductance_lower)
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether every part met the promised φ, judged by the certified
    /// lower bounds.
    pub fn conductance_ok(&self) -> bool {
        self.min_certified_conductance() >= self.phi
    }
}

/// Verifies `result` against the original input graph.
///
/// The conductance of each part is evaluated on `G{Vᵢ}` built from the
/// **original** graph (degrees never changed, so loop augmentation against
/// the original reproduces the working graph's view exactly).
pub fn verify_decomposition(g: &Graph, result: &DecompositionResult) -> VerificationReport {
    let n = g.n();
    let mut seen = vec![false; n];
    let mut is_partition = true;
    for p in &result.parts {
        for v in p.iter() {
            if seen[v as usize] {
                is_partition = false;
            }
            seen[v as usize] = true;
        }
    }
    if !seen.iter().all(|&b| b) {
        is_partition = false;
    }
    let parts = result
        .parts
        .iter()
        .map(|p| certify_part(g, result, p))
        .collect();
    VerificationReport {
        is_partition,
        inter_cluster_fraction: result.inter_cluster_fraction(),
        epsilon: result.params.epsilon,
        phi: result.phi,
        parts,
    }
}

/// Builds `G{Vᵢ}` as the *final working view*: the induced subgraph of the
/// original graph plus loops compensating every incident removed edge.
fn part_view(g: &Graph, result: &DecompositionResult, part: &VertexSet) -> Graph {
    // Remove the recorded edges from the original, with compensation, then
    // take the loop-augmented subgraph — identical to the working graph's
    // G{Vᵢ} because degrees are preserved throughout.
    let stripped = g.remove_edges(result.removed_edges.iter().map(|&(u, v, _)| (u, v)), true);
    Subgraph::loop_augmented(&stripped, part).graph().clone()
}

fn certify_part(g: &Graph, result: &DecompositionResult, part: &VertexSet) -> PartCertificate {
    let size = part.len();
    if size <= 1 {
        return PartCertificate {
            size,
            conductance_lower: f64::INFINITY,
            exact: true,
            conductance_upper: f64::INFINITY,
        };
    }
    let view = part_view(g, result, part);
    certify_view(&view, size)
}

/// Certifies a part of the **current** graph `g` directly, without a
/// [`DecompositionResult`]: the view is `G{Vᵢ}` built by loop-augmenting
/// the induced subgraph, so every edge crossing out of `part` (including
/// edges churned in after decomposition) is compensated by a loop. This is
/// the certificate the churn tier re-checks per touched cluster — the
/// lower bound is sound against the paper's convention because
/// `Subgraph::loop_augmented` reproduces the working graph's per-part view
/// for any [`AdjacencyView`] source.
pub fn certify_current<A: AdjacencyView + ?Sized>(g: &A, part: &VertexSet) -> PartCertificate {
    let size = part.len();
    if size <= 1 {
        return PartCertificate {
            size,
            conductance_lower: f64::INFINITY,
            exact: true,
            conductance_upper: f64::INFINITY,
        };
    }
    let view = Subgraph::loop_augmented(g, part).graph().clone();
    certify_view(&view, size)
}

/// Shared certificate core: exact enumeration for small views, Cheeger
/// lower bound plus sweep-cut upper bound otherwise.
fn certify_view(view: &Graph, size: usize) -> PartCertificate {
    // Upper bound from a degree-ordered sweep.
    let mut order: Vec<graph::VertexId> = (0..view.n() as graph::VertexId).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(view.degree(v)));
    let upper = spectral::sweep_cut(view, &order)
        .map(|s| s.conductance)
        .unwrap_or(f64::INFINITY);
    if size <= 16 {
        let exact = spectral::exact_conductance(view).unwrap_or(f64::INFINITY);
        PartCertificate {
            size,
            conductance_lower: exact,
            exact: true,
            conductance_upper: upper.min(exact),
        }
    } else {
        let gap = spectral::lazy_walk_lambda2(view, 300)
            .map(|s| spectral::cheeger_lower_bound(&s))
            .unwrap_or(0.0);
        PartCertificate {
            size,
            conductance_lower: gap.max(0.0),
            exact: false,
            conductance_upper: upper,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::ExpanderDecomposition;
    use graph::gen;

    #[test]
    fn ring_of_cliques_certifies() {
        let (g, _) = gen::ring_of_cliques(6, 6).unwrap();
        let res = ExpanderDecomposition::builder()
            .epsilon(0.3)
            .seed(5)
            .build()
            .run(&g)
            .unwrap();
        let report = verify_decomposition(&g, &res);
        assert!(report.is_partition);
        assert!(report.edge_budget_ok());
        // Every part's certified conductance should beat the (tiny)
        // practical-mode φ.
        assert!(
            report.conductance_ok(),
            "min certified Φ {} below promised {}",
            report.min_certified_conductance(),
            report.phi
        );
    }

    #[test]
    fn certificates_have_consistent_bounds() {
        let pp = gen::planted_partition(&[20, 20], 0.5, 0.02, 3).unwrap();
        let res = ExpanderDecomposition::builder()
            .epsilon(0.4)
            .seed(9)
            .build()
            .run(&pp.graph)
            .unwrap();
        let report = verify_decomposition(&pp.graph, &res);
        for cert in &report.parts {
            assert!(
                cert.conductance_lower <= cert.conductance_upper + 1e-9,
                "lower {} above upper {}",
                cert.conductance_lower,
                cert.conductance_upper
            );
        }
    }

    #[test]
    fn singleton_parts_are_vacuously_expanding() {
        let g = gen::path(2).unwrap();
        let res = ExpanderDecomposition::builder()
            .seed(1)
            .build()
            .run(&g)
            .unwrap();
        let report = verify_decomposition(&g, &res);
        assert!(report.is_partition);
        for cert in &report.parts {
            if cert.size == 1 {
                assert!(cert.conductance_lower.is_infinite());
            }
        }
    }

    #[test]
    fn certify_current_reads_any_adjacency_view() {
        let (g, cliques) = gen::ring_of_cliques(4, 6).unwrap();
        let w = graph::working::WorkingGraph::new(&g);
        for part in &cliques {
            let cert = certify_current(&w, part);
            assert!(cert.conductance_lower <= cert.conductance_upper + 1e-9);
            assert!(
                cert.conductance_lower > 0.0,
                "an intact clique certifies as an expander"
            );
        }
    }

    #[test]
    fn certify_current_sees_churned_edges() {
        // Shredding a clique's internal edges must drop the certificate.
        let (g, cliques) = gen::ring_of_cliques(4, 8).unwrap();
        let mut w = graph::working::WorkingGraph::new(&g);
        let before = certify_current(&w, &cliques[0]);
        let members: Vec<graph::VertexId> = cliques[0].iter().collect();
        let hub = members[0];
        w.remove_edges(
            members[1..]
                .iter()
                .flat_map(|&a| members[1..].iter().map(move |&b| (a, b))),
            true,
        );
        let after = certify_current(&w, &cliques[0]);
        assert!(
            after.conductance_lower < before.conductance_lower,
            "star remnant around {hub} must certify strictly worse ({} vs {})",
            after.conductance_lower,
            before.conductance_lower
        );
    }

    #[test]
    fn detects_non_partition() {
        let g = gen::path(4).unwrap();
        let mut res = ExpanderDecomposition::builder()
            .seed(2)
            .build()
            .run(&g)
            .unwrap();
        // Corrupt: drop one part.
        if !res.parts.is_empty() {
            res.parts.pop();
        }
        let report = verify_decomposition(&g, &res);
        assert!(!report.is_partition);
    }
}
