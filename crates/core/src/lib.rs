//! # Distributed expander decomposition (Chang–Saranurak, PODC 2019)
//!
//! This crate is the paper's primary contribution, reproduced in full:
//!
//! * **Theorem 3** — the first distributed **nearly most balanced sparse
//!   cut** algorithm: [`sparse_cut::nearly_most_balanced_sparse_cut`],
//!   built from [`nibble`] → [`parallel_nibble`] → [`partition`]
//!   (Appendix A).
//! * **Theorem 4** — low-diameter decomposition with a **w.h.p.** bound on
//!   cut edges: [`ldd`] (Appendix B).
//! * **Theorem 1** — the `(ε, φ)`-expander decomposition with
//!   `φ = (ε/log n)^{2^{O(k)}}` in `O(n^{2/k}·poly(1/φ, log n))` rounds:
//!   [`decomposition`] (§2).
//!
//! Algorithms run in lock-step round-driven form with measured CONGEST
//! round charges ([`rounds::RoundLedger`]); see DESIGN.md §3 for the
//! fidelity discussion and [`params::ParamMode`] for the
//! paper-faithful vs practical constant calibrations.
//!
//! # Example
//!
//! ```
//! use expander::prelude::*;
//!
//! // A ring of 6 cliques: the decomposition should cut it into cliques.
//! let (g, _) = graph::gen::ring_of_cliques(6, 8).unwrap();
//! let result = ExpanderDecomposition::builder()
//!     .epsilon(0.3)
//!     .k(2)
//!     .seed(7)
//!     .build()
//!     .run(&g)
//!     .unwrap();
//! assert!(result.parts.len() >= 6);
//! assert!(result.inter_cluster_fraction() <= 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decomposition;
pub mod ldd;
pub mod nibble;
pub mod parallel_nibble;
pub mod params;
pub mod partition;
pub mod prelude;
pub mod quality;
pub mod recluster;
pub mod rounds;
pub mod scheduler;
pub mod sparse_cut;
pub mod verify;

pub use decomposition::{
    ClusterAssignment, ClusterCertificate, DecompositionResult, ExpanderDecomposition,
};
pub use params::{DecompositionParams, NibbleParams, ParamMode, SparseCutParams};
pub use quality::{QualityBounds, QualityReport};
pub use recluster::{recluster_broken, ReclusterParams, ReclusterReport};
pub use scheduler::{
    derive_seed, JobStats, LevelExecution, RecursionReport, SchedulerPolicy, ScratchPool,
};
pub use sparse_cut::{nearly_most_balanced_sparse_cut, SparseCutOutcome};
