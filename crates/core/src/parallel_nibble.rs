//! `RandomNibble` and `ParallelNibble` (Appendix A.3–A.4).
//!
//! `RandomNibble` runs `ApproximateNibble` from a start vertex sampled from
//! the degree distribution `ψ_V` and a volume scale `b` with
//! `Pr[b = i] ∝ 2^{−i}` — so larger target cuts get proportionally many
//! attempts at the right truncation scale.
//!
//! `ParallelNibble` runs `k` independent `RandomNibble` instances
//! *simultaneously*. Lemma 3 bounds each edge's participation probability,
//! so w.h.p. no edge serves more than `w = O(log n)` instances and the
//! simultaneous execution costs only a `w` factor over a single instance.
//! If the congestion cap is exceeded the algorithm aborts with `C = ∅`
//! (this is the low-probability event `B` of Lemma 7). Otherwise it
//! returns the union `U_{i*}` of the first `i*` cuts, where `i*` is the
//! largest prefix with volume at most `(23/24)·Vol(V)`.

use crate::nibble::approximate_nibble;
use crate::params::SparseCutParams;
use crate::rounds::RoundLedger;
use graph::{Graph, VertexId, VertexSet};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// Result of one `ParallelNibble` call.
#[derive(Debug, Clone)]
pub struct ParallelNibbleOutcome {
    /// The union cut `U_{i*}` (empty when nothing was found or the run
    /// aborted on congestion).
    pub cut: VertexSet,
    /// Whether the congestion cap `w` was exceeded (the event `B`).
    pub aborted_on_congestion: bool,
    /// Maximum number of instances any single edge participated in.
    pub max_edge_participation: usize,
    /// Measured round charges (Lemma 10 accounting).
    pub ledger: RoundLedger,
    /// How many of the `k` instances returned a non-empty cut.
    pub nonempty_instances: usize,
}

/// Samples a start vertex from the degree distribution `ψ_V`.
///
/// # Panics
///
/// Panics if the graph has zero volume.
pub fn sample_start(g: &Graph, rng: &mut StdRng) -> VertexId {
    let total = g.total_volume();
    assert!(total > 0, "cannot sample from a zero-volume graph");
    let mut target = rng.random_range(0..total);
    for v in 0..g.n() as VertexId {
        let d = g.degree(v);
        if target < d {
            return v;
        }
        target -= d;
    }
    unreachable!("degree distribution sums to the total volume")
}

/// Samples the volume scale `b ∈ 1..=ell` with `Pr[b = i] = 2^{−i}/(1 − 2^{−ℓ})`.
pub fn sample_scale(ell: u32, rng: &mut StdRng) -> u32 {
    let denom = 1.0 - 0.5f64.powi(ell as i32);
    let r: f64 = rng.random::<f64>() * denom;
    let mut acc = 0.0;
    for i in 1..=ell {
        acc += 0.5f64.powi(i as i32);
        if r < acc {
            return i;
        }
    }
    ell
}

/// `ParallelNibble(G, φ)` (A.4). `diameter_hint` is the diameter of the
/// communication graph the run is charged against (Phase 1 guarantees all
/// components have diameter `O(log²n/β²)`; standalone callers can pass a
/// double-sweep estimate).
pub fn parallel_nibble(
    g: &Graph,
    params: &SparseCutParams,
    diameter_hint: u32,
    rng: &mut StdRng,
) -> ParallelNibbleOutcome {
    let n = g.n();
    let mut ledger = RoundLedger::new();
    let log_n = (n.max(2) as f64).log2().ceil() as u64;
    let vol_total = g.total_volume();
    if vol_total == 0 {
        return ParallelNibbleOutcome {
            cut: VertexSet::empty(n),
            aborted_on_congestion: false,
            max_edge_participation: 0,
            ledger,
            nonempty_instances: 0,
        };
    }

    // Instance generation: O(D + log n) (Lemma 10, token descent on a BFS
    // tree with pipelining).
    ledger.charge("parallel_nibble.generation", diameter_hint as u64 + log_n);

    // Run all k instances; they execute simultaneously, so the round cost
    // of this block is the per-instance maximum times the congestion
    // factor (how many instances share an edge), charged below.
    //
    // Per-edge participation counts are tracked as per-vertex instance
    // bitmasks when k fits a word — an edge participates in instance i
    // iff either endpoint is in P_i, so its count is the popcount of the
    // endpoint-mask union. The HashMap over all touched edges this
    // replaces dominated the ParallelNibble profile at scale.
    let k = params.k_parallel;
    let use_masks = k <= u64::BITS as usize;
    let mut masks: Vec<u64> = if use_masks { vec![0; n] } else { Vec::new() };
    let mut touched: Vec<VertexId> = Vec::new();
    let mut participation: HashMap<(VertexId, VertexId), usize> = HashMap::new();
    let mut outcomes = Vec::with_capacity(k);
    let mut max_instance_rounds = 0u64;
    for i in 0..k {
        let start = sample_start(g, rng);
        let b = sample_scale(params.nibble.ell, rng);
        let out = approximate_nibble(g, start, &params.nibble, b);
        max_instance_rounds = max_instance_rounds.max(out.ledger.total());
        // P* of Definition 2: edges with ≥ 1 endpoint in the support.
        if use_masks {
            for u in out.participants.iter() {
                if masks[u as usize] == 0 {
                    touched.push(u);
                }
                masks[u as usize] |= 1u64 << i;
            }
        } else {
            for u in out.participants.iter() {
                let row = g.neighbors(u);
                for (i, &w) in row.iter().enumerate() {
                    if i > 0 && row[i - 1] == w {
                        continue; // each parallel copy participates once
                    }
                    if w > u || !out.participants.contains(w) {
                        let key = if u < w { (u, w) } else { (w, u) };
                        *participation.entry(key).or_insert(0) += 1;
                    }
                }
            }
        }
        outcomes.push(out);
    }
    let max_edge_participation = if use_masks {
        let mut best = 0u32;
        for &u in &touched {
            for &w in g.neighbors(u) {
                // Each participating edge evaluated once from inside the
                // touched set (or from its touched endpoint).
                if w > u || masks[w as usize] == 0 {
                    best = best.max((masks[u as usize] | masks[w as usize]).count_ones());
                }
            }
        }
        best as usize
    } else {
        participation.values().copied().max().unwrap_or(0)
    };
    let congestion = max_edge_participation.clamp(1, params.w_cap) as u64;
    ledger.charge(
        "parallel_nibble.execution",
        max_instance_rounds * congestion,
    );

    if max_edge_participation > params.w_cap {
        // Event B: notify everyone (one broadcast) and abort.
        ledger.charge("parallel_nibble.abort_broadcast", diameter_hint as u64);
        return ParallelNibbleOutcome {
            cut: VertexSet::empty(n),
            aborted_on_congestion: true,
            max_edge_participation,
            ledger,
            nonempty_instances: outcomes.iter().filter(|o| o.found()).count(),
        };
    }

    // Selection of i*: the instances carry random ids; a random binary
    // search finds the largest prefix with volume ≤ z = (23/24)·Vol(V).
    // (Our instance order is already a uniformly random labelling.)
    ledger.charge("parallel_nibble.selection", diameter_hint as u64 * log_n);
    let z = 23.0 / 24.0 * vol_total as f64;
    let mut union = VertexSet::empty(n);
    let mut nonempty = 0usize;
    let mut best: Option<VertexSet> = None;
    for out in &outcomes {
        if let Some(cut) = &out.cut {
            nonempty += 1;
            let candidate = union.union(cut);
            let vol: usize = candidate.iter().map(|v| g.degree(v)).sum();
            if (vol as f64) <= z {
                union = candidate;
                best = Some(union.clone());
            } else {
                break;
            }
        }
    }
    ParallelNibbleOutcome {
        cut: best.unwrap_or_else(|| VertexSet::empty(n)),
        aborted_on_congestion: false,
        max_edge_participation,
        ledger,
        nonempty_instances: nonempty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamMode;
    use graph::gen;
    use rand::SeedableRng as _;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn sc_params(g: &Graph, phi_target: f64) -> SparseCutParams {
        SparseCutParams::new(phi_target, g.m(), g.total_volume(), ParamMode::Practical)
    }

    #[test]
    fn degree_sampling_is_degree_biased() {
        let g = gen::star(41).unwrap(); // hub 0 has degree 40 of volume 80
        let mut r = rng(5);
        let hits = (0..2000).filter(|_| sample_start(&g, &mut r) == 0).count();
        // Hub holds half the volume.
        assert!(hits > 800 && hits < 1200, "hub sampled {hits}/2000");
    }

    #[test]
    fn scale_sampling_is_geometric() {
        let mut r = rng(9);
        let mut counts = [0usize; 6];
        for _ in 0..4000 {
            let b = sample_scale(5, &mut r);
            assert!((1..=5).contains(&b));
            counts[b as usize] += 1;
        }
        assert!(counts[1] > counts[2] && counts[2] > counts[3]);
        // Pr[b=1]/Pr[b=2] ≈ 2.
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 2.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn finds_union_cut_on_barbell() {
        let (g, left) = gen::barbell(12).unwrap();
        let params = sc_params(&g, 0.001);
        let out = parallel_nibble(&g, &params, 4, &mut rng(3));
        assert!(!out.aborted_on_congestion);
        assert!(
            !out.cut.is_empty(),
            "parallel nibble should find the barbell cut"
        );
        // Union volume respects the z threshold.
        let vol = g.volume(&out.cut);
        assert!((vol as f64) <= 23.0 / 24.0 * g.total_volume() as f64);
        // The union must overlap the planted cut substantially.
        let overlap = out
            .cut
            .intersection(&left)
            .len()
            .max(out.cut.intersection(&left.complement()).len());
        assert!(overlap >= 8, "cut should mostly sit in one clique");
    }

    #[test]
    fn empty_on_expander() {
        let g = gen::complete(20).unwrap();
        let params = sc_params(&g, 0.0005);
        let out = parallel_nibble(&g, &params, 1, &mut rng(7));
        assert!(out.cut.is_empty());
        assert!(!out.aborted_on_congestion);
        assert_eq!(out.nonempty_instances, 0);
    }

    #[test]
    fn zero_volume_graph_is_harmless() {
        let g = graph::Graph::from_edges(3, []).unwrap();
        // Params can't even be built for m = 0; craft via a dummy graph.
        let dummy = gen::path(4).unwrap();
        let params = sc_params(&dummy, 0.01);
        let out = parallel_nibble(&g, &params, 1, &mut rng(1));
        assert!(out.cut.is_empty());
    }

    #[test]
    fn participation_counts_are_tracked() {
        let (g, _) = gen::barbell(8).unwrap();
        let params = sc_params(&g, 0.001);
        let out = parallel_nibble(&g, &params, 2, &mut rng(11));
        // With k ≥ 4 instances on a tiny graph every edge participates in
        // several instances.
        assert!(out.max_edge_participation >= 2);
        assert!(out.ledger.category("parallel_nibble.execution") > 0);
    }

    #[test]
    fn congestion_abort_when_w_cap_tiny() {
        let (g, _) = gen::barbell(8).unwrap();
        let mut params = sc_params(&g, 0.001);
        params.w_cap = 1; // force the abort path
        params.k_parallel = 8;
        let out = parallel_nibble(&g, &params, 2, &mut rng(13));
        assert!(out.aborted_on_congestion);
        assert!(out.cut.is_empty());
        assert!(out.ledger.category("parallel_nibble.abort_broadcast") > 0);
    }
}
