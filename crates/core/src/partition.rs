//! `Partition(G, φ, p)` (Appendix A.4): the sequential driver that turns
//! ParallelNibble into a nearly most balanced sparse cut.
//!
//! Starting from `W₀ = V`, each iteration runs `ParallelNibble` on the
//! loop-augmented remainder `G{W_{i−1}}`, removes the returned cut `Cᵢ`
//! from `W`, and stops as soon as the remainder has lost a `1/48` fraction
//! of the volume (or after `s` iterations). The output is `C = ∪ᵢ Cᵢ`.
//!
//! Lemma 8 gives the three guarantees the decomposition relies on:
//! `Vol(C) ≤ (47/48)·Vol(V)`; if `C ≠ ∅` then `Φ(C) = O(φ·log n)`; and for
//! any sparse enough `S` (`Φ(S) ≤ f(φ)`), with probability `1 − p` either
//! `Vol(C) ≥ Vol(V)/48` or `C` captures half of `S`'s volume.

use crate::parallel_nibble::{parallel_nibble, ParallelNibbleOutcome};
use crate::params::SparseCutParams;
use crate::rounds::RoundLedger;
use graph::view::Subgraph;
use graph::{Graph, VertexSet};
use rand::rngs::StdRng;

/// Result of one `Partition` run.
#[derive(Debug, Clone)]
pub struct PartitionOutcome {
    /// The accumulated cut `C = ∪ᵢ Cᵢ` (possibly empty).
    pub cut: VertexSet,
    /// Number of ParallelNibble iterations actually executed.
    pub iterations: usize,
    /// Whether the run stopped because the volume threshold was crossed
    /// (as opposed to exhausting `s` iterations or the empty-streak break).
    pub hit_volume_threshold: bool,
    /// Measured round charges (Lemma 11 accounting: the sum of its
    /// sequential ParallelNibble calls).
    pub ledger: RoundLedger,
}

/// Runs `Partition(G, φ, p)` on `g` with the given parameter set.
///
/// `diameter_hint` is the diameter of the communication graph (all edges of
/// the enclosing component may be used even when `W` becomes disconnected —
/// §2 "Round Complexity").
pub fn partition(
    g: &Graph,
    params: &SparseCutParams,
    diameter_hint: u32,
    rng: &mut StdRng,
) -> PartitionOutcome {
    let n = g.n();
    let total_vol = g.total_volume();
    let mut ledger = RoundLedger::new();
    let mut w_set = VertexSet::full(n);
    let mut cut = VertexSet::empty(n);
    let mut iterations = 0usize;
    let mut hit_volume_threshold = false;
    let mut empty_streak = 0usize;

    if total_vol == 0 {
        return PartitionOutcome {
            cut,
            iterations,
            hit_volume_threshold,
            ledger,
        };
    }

    // G{W} is re-extracted only when W actually changed: iterations whose
    // nibble came back empty leave W (and hence the subgraph) untouched,
    // so the empty-streak tail reuses one extraction.
    let mut sub_cache: Option<Subgraph> = None;
    for _ in 0..params.s_iterations {
        iterations += 1;
        // Extract G{W_{i-1}}: degrees preserved by loop augmentation.
        let sub = sub_cache.get_or_insert_with(|| Subgraph::loop_augmented(g, &w_set));
        if sub.graph().total_volume() == 0 {
            break;
        }
        let out: ParallelNibbleOutcome = parallel_nibble(sub.graph(), params, diameter_hint, rng);
        ledger.absorb(&out.ledger);
        let c_local = out.cut;
        if c_local.is_empty() {
            empty_streak += 1;
            if empty_streak >= params.empty_streak_break {
                break;
            }
            continue;
        }
        empty_streak = 0;
        let c_parent = sub.set_to_parent(&c_local, n);
        sub_cache = None;
        cut = cut.union(&c_parent);
        w_set = w_set.difference(&c_parent);
        let w_vol: usize = w_set.iter().map(|v| g.degree(v)).sum();
        if (w_vol as f64) <= 47.0 / 48.0 * total_vol as f64 {
            hit_volume_threshold = true;
            break;
        }
    }
    PartitionOutcome {
        cut,
        iterations,
        hit_volume_threshold,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ParamMode, SparseCutParams};
    use graph::gen;
    use rand::SeedableRng;

    fn run(g: &Graph, phi_target: f64, seed: u64) -> PartitionOutcome {
        let params =
            SparseCutParams::new(phi_target, g.m(), g.total_volume(), ParamMode::Practical);
        let mut rng = StdRng::seed_from_u64(seed);
        partition(g, &params, 4, &mut rng)
    }

    #[test]
    fn cut_volume_respects_lemma8_bound() {
        let (g, _) = gen::barbell(10).unwrap();
        let out = run(&g, 0.001, 3);
        let vol = g.volume(&out.cut);
        assert!(
            (vol as f64) <= 47.0 / 48.0 * g.total_volume() as f64,
            "Vol(C) too large: {vol}"
        );
    }

    #[test]
    fn finds_balanced_cut_on_barbell() {
        let (g, _) = gen::barbell(12).unwrap();
        let out = run(&g, 0.001, 5);
        assert!(!out.cut.is_empty());
        let bal = g.balance(&out.cut).unwrap();
        // The barbell's most balanced sparse cut has balance 1/2; Theorem 3
        // promises ≥ min(b/2, 1/48).
        assert!(bal >= 1.0 / 48.0, "balance {bal} below Theorem 3 floor");
        let phi = g.conductance(&out.cut).unwrap();
        assert!(phi < 0.2, "conductance {phi} not sparse");
    }

    #[test]
    fn empty_on_expander_with_early_break() {
        let g = gen::complete(18).unwrap();
        let out = run(&g, 0.0005, 7);
        assert!(out.cut.is_empty());
        assert!(!out.hit_volume_threshold);
        // The empty-streak break must have fired well before s iterations.
        assert!(out.iterations <= 4, "took {} iterations", out.iterations);
    }

    #[test]
    fn ring_of_cliques_yields_large_cut() {
        let (g, _) = gen::ring_of_cliques(6, 6).unwrap();
        let out = run(&g, 0.001, 11);
        assert!(!out.cut.is_empty(), "ring of cliques has many sparse cuts");
        let phi = g.conductance(&out.cut).unwrap();
        assert!(phi < 0.3, "Φ(C) = {phi}");
    }

    #[test]
    fn ledger_accumulates_across_iterations() {
        let (g, _) = gen::barbell(8).unwrap();
        let out = run(&g, 0.001, 13);
        assert!(out.ledger.total() > 0);
        assert!(out.ledger.category("parallel_nibble.execution") > 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let (g, _) = gen::barbell(9).unwrap();
        let a = run(&g, 0.001, 42);
        let b = run(&g, 0.001, 42);
        assert_eq!(
            a.cut.iter().collect::<Vec<_>>(),
            b.cut.iter().collect::<Vec<_>>()
        );
        assert_eq!(a.iterations, b.iterations);
    }
}
