//! **Theorem 1** — the `(ε, φ)`-expander decomposition (paper §2).
//!
//! The algorithm maintains a working graph in which removed edges are
//! replaced by self loops at both endpoints (so degrees never change), and
//! removes edges at three tagged places:
//!
//! * **Remove-1** — inter-cluster edges of a low-diameter decomposition
//!   (run whenever a component might have high diameter, so the sparse-cut
//!   algorithm stays fast). Budget: `d·β·|E| ≤ (ε/3)|E|`.
//! * **Remove-2** — Phase 1 sparse-cut edges: when the nearly most
//!   balanced sparse cut of a component is reasonably balanced, cut it and
//!   recurse on both sides. Budget: `(log |E|)·h(φ₀)·2|E| ≤ (ε/3)|E|`.
//! * **Remove-3** — Phase 2 peeling: when a component's sparse cuts have
//!   become unbalanced (volume ≤ (ε/12)·Vol), repeatedly cut off small
//!   pieces, isolating their vertices entirely. Lemma 2 caps the total
//!   peeled volume by `m₁ = (ε/6)·Vol(U) ≤ (ε/3)|E|`.
//!
//! Phase 2's level schedule is where the `n^{2/k}` trade-off lives: level
//! `L` uses conductance `φ_L = h⁻¹(φ_{L−1})` and advances when the found
//! cut has volume ≤ `m_L/(2τ)`; each level runs at most `2τ` iterations
//! with `τ = ((ε/6)Vol)^{1/k}`.

use crate::ldd::{low_diameter_decomposition, LddParams};
use crate::params::{DecompositionParams, ParamMode, SparseCutParams};
use crate::partition::partition;
use crate::rounds::RoundLedger;
use crate::scheduler::{self, SchedulerPolicy};
use graph::view::Subgraph;
use graph::{Graph, VertexId, VertexSet, WorkingGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builder for [`ExpanderDecomposition`]. Construct via
/// [`ExpanderDecomposition::builder`].
#[derive(Debug, Clone)]
pub struct Builder {
    epsilon: f64,
    k: usize,
    mode: ParamMode,
    seed: u64,
}

impl Builder {
    /// Inter-cluster edge budget `ε ∈ (0, 1)` (default 0.3).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Trade-off integer `k ≥ 1` (default 2): larger `k` means fewer
    /// rounds (`n^{2/k}`) but a weaker conductance guarantee.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Constant calibration (default [`ParamMode::Practical`]).
    pub fn mode(mut self, mode: ParamMode) -> Self {
        self.mode = mode;
        self
    }

    /// Seed for all randomness (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> ExpanderDecomposition {
        ExpanderDecomposition {
            epsilon: self.epsilon,
            k: self.k,
            mode: self.mode,
            seed: self.seed,
        }
    }
}

/// The configured Theorem 1 algorithm. See the [crate docs](crate) for an
/// end-to-end example.
#[derive(Debug, Clone)]
pub struct ExpanderDecomposition {
    epsilon: f64,
    k: usize,
    mode: ParamMode,
    seed: u64,
}

/// Which removal rule cut an edge (for the per-budget audit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RemovalTag {
    /// Low-diameter decomposition inter-cluster edges.
    Remove1,
    /// Phase 1 balanced sparse-cut edges.
    Remove2,
    /// Phase 2 peeling (all edges incident to the peeled set).
    Remove3,
}

/// Output of the decomposition.
#[derive(Debug, Clone)]
pub struct DecompositionResult {
    /// The partition `V = V₁ ∪ … ∪ V_x`.
    pub parts: Vec<VertexSet>,
    /// Every removed (inter-cluster) edge with its removal tag.
    pub removed_edges: Vec<(VertexId, VertexId, RemovalTag)>,
    /// `|E|` of the input graph.
    pub m: usize,
    /// The conductance target `φ = φ_k` every part is expected to meet.
    pub phi: f64,
    /// The parameter schedule used.
    pub params: DecompositionParams,
    /// Measured CONGEST round charges.
    pub ledger: RoundLedger,
}

/// A reusable, pipeline-friendly view of a decomposition: cluster id per
/// vertex, the inter-cluster edge list, and per-cluster conductance
/// certificates. Built by [`DecompositionResult::cluster_assignment`].
///
/// This is the contract the triangle pipeline consumes (DESIGN.md §6):
/// every kept edge has both endpoints in the same cluster, every removed
/// edge appears exactly once in [`ClusterAssignment::inter_cluster`], and
/// each cluster carries the conductance promise `φ` plus cheap measured
/// evidence (volume, internal edge count) that downstream load-balancing
/// arguments rely on.
///
/// The assignment is also the repo's **shared build artifact**
/// (DESIGN.md §12): the triangle-query service freezes one behind an
/// `Arc` and reads it concurrently from many client threads for the
/// lifetime of the server. Nothing here may ever grow interior
/// mutability — the struct must stay plain owned data (`Send + Sync`,
/// asserted below), and all methods take `&self`.
#[derive(Debug, Clone)]
pub struct ClusterAssignment {
    /// Number of vertices of the underlying graph.
    pub n: usize,
    /// Cluster id of every vertex (dense ids `0..cluster_count`).
    pub cluster_of: Vec<u32>,
    /// The clusters themselves, indexed by cluster id.
    pub clusters: Vec<VertexSet>,
    /// Every inter-cluster (removed) edge with its removal tag.
    pub inter_cluster: Vec<(VertexId, VertexId, RemovalTag)>,
    /// The conductance target `φ` every cluster is promised to meet.
    pub phi: f64,
    /// Per-cluster certificates, indexed by cluster id.
    pub certificates: Vec<ClusterCertificate>,
}

/// Cheap per-cluster evidence backing the `φ` promise: the quantities the
/// triangle pipeline's load-balancing argument needs, measured exactly.
/// (For spectral certification of `φ` itself, see [`crate::verify`].)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterCertificate {
    /// Number of vertices in the cluster.
    pub size: usize,
    /// Edges with both endpoints inside the cluster (in the input graph).
    pub internal_edges: usize,
    /// Total input-graph degree of the cluster's vertices. Degrees are
    /// preserved by loop compensation, so this is `Vol(G{Vᵢ})` too.
    pub volume: usize,
    /// Removed edges with at least one endpoint in this cluster.
    pub incident_removed: usize,
    /// The promised conductance of `G{Vᵢ}` (`φ_k` of the schedule).
    pub phi_target: f64,
}

// The shared-artifact contract: a frozen assignment is read concurrently
// for the lifetime of a query server. Compile-time, so a future field
// with interior mutability fails the build, not the server.
const _: fn() = || {
    fn assert_shared<T: Send + Sync>() {}
    assert_shared::<ClusterAssignment>();
    assert_shared::<DecompositionResult>();
};

impl ClusterAssignment {
    /// Builds an assignment from an **explicit partition** — planted
    /// blocks of a generator, an external oracle, or a cached
    /// decomposition — rather than from running Theorem 1. The
    /// inter-cluster edge list is the measured set of crossing edges of
    /// `g` (tagged [`RemovalTag::Remove1`] by convention: the planted
    /// boundary plays the role of the LDD cut), `phi` is the caller's
    /// conductance promise for the parts, and certificates are measured
    /// exactly, as scheduler jobs under `policy`.
    ///
    /// This is how the scale tier drives the pipeline's cluster
    /// machinery on million-edge instances whose ground-truth clusters
    /// are known, where running the measured decomposition itself would
    /// be the bottleneck.
    ///
    /// # Panics
    ///
    /// Panics if `parts` does not cover every vertex of `g`.
    pub fn from_parts(
        g: &Graph,
        parts: &[VertexSet],
        phi: f64,
        policy: &SchedulerPolicy,
    ) -> ClusterAssignment {
        let mut cluster_of = vec![u32::MAX; g.n()];
        for (id, part) in parts.iter().enumerate() {
            for v in part.iter() {
                cluster_of[v as usize] = id as u32;
            }
        }
        assert!(
            cluster_of.iter().all(|&c| c != u32::MAX),
            "parts must cover every vertex of g"
        );
        let removed: Vec<(VertexId, VertexId, RemovalTag)> = g
            .edges()
            .filter(|&(u, v)| cluster_of[u as usize] != cluster_of[v as usize])
            .map(|(u, v)| (u, v, RemovalTag::Remove1))
            .collect();
        assemble(g, parts, removed, phi, policy)
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Cluster id of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn cluster_id(&self, v: VertexId) -> u32 {
        self.cluster_of[v as usize]
    }

    /// Whether `{u, v}` has both endpoints in the same cluster (kept edges
    /// always do; removed edges never).
    pub fn is_intra(&self, u: VertexId, v: VertexId) -> bool {
        self.cluster_of[u as usize] == self.cluster_of[v as usize]
    }

    /// The inter-cluster edges without their tags (the recursion input of
    /// the triangle pipeline).
    pub fn inter_cluster_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.inter_cluster.iter().map(|&(u, v, _)| (u, v))
    }
}

impl DecompositionResult {
    /// Builds the [`ClusterAssignment`] view against the input graph `g`
    /// (the graph `run` was called on — needed for the measured volumes).
    ///
    /// Equivalent to [`DecompositionResult::cluster_assignment_with`]
    /// under a sequential [`SchedulerPolicy`]; per-cluster certificate
    /// measurement is pure, so every policy yields the same assignment.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a different vertex count than the decomposed
    /// graph.
    pub fn cluster_assignment(&self, g: &Graph) -> ClusterAssignment {
        self.cluster_assignment_with(g, &SchedulerPolicy::sequential())
    }

    /// Builds the [`ClusterAssignment`] view, measuring the per-cluster
    /// certificates (volume + internal edge count, both `O(Vol(Vᵢ))`) as
    /// scheduler jobs under `policy` — the decomposition-layer entry
    /// point of the cluster-recursion scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a different vertex count than the decomposed
    /// graph.
    pub fn cluster_assignment_with(
        &self,
        g: &Graph,
        policy: &SchedulerPolicy,
    ) -> ClusterAssignment {
        assemble(g, &self.parts, self.removed_edges.clone(), self.phi, policy)
    }

    /// Fraction of edges removed: must be ≤ ε.
    pub fn inter_cluster_fraction(&self) -> f64 {
        if self.m == 0 {
            return 0.0;
        }
        self.removed_edges.len() as f64 / self.m as f64
    }
}

/// Shared assembly of a [`ClusterAssignment`] from a covering partition
/// plus the removed-edge list: dense ids, incident-removed tallies, and
/// the per-cluster certificates measured as scheduler jobs.
fn assemble(
    g: &Graph,
    parts: &[VertexSet],
    removed: Vec<(VertexId, VertexId, RemovalTag)>,
    phi: f64,
    policy: &SchedulerPolicy,
) -> ClusterAssignment {
    let n = g.n();
    let mut cluster_of = vec![u32::MAX; n];
    for (id, part) in parts.iter().enumerate() {
        for v in part.iter() {
            cluster_of[v as usize] = id as u32;
        }
    }
    assert!(
        cluster_of.iter().all(|&c| c != u32::MAX),
        "parts must cover every vertex of g"
    );
    let mut incident_removed = vec![0usize; parts.len()];
    for &(u, v, _) in &removed {
        incident_removed[cluster_of[u as usize] as usize] += 1;
        if cluster_of[u as usize] != cluster_of[v as usize] {
            incident_removed[cluster_of[v as usize] as usize] += 1;
        }
    }
    let (certificates, _stats) =
        scheduler::run_jobs(parts.iter().collect::<Vec<_>>(), policy, |id, part| {
            let volume = part.iter().map(|v| g.degree(v)).sum();
            ClusterCertificate {
                size: part.len(),
                internal_edges: g.internal_edges(part),
                volume,
                incident_removed: incident_removed[id],
                phi_target: phi,
            }
        });
    ClusterAssignment {
        n,
        cluster_of,
        clusters: parts.to_vec(),
        inter_cluster: removed,
        phi,
        certificates,
    }
}

impl DecompositionResult {
    /// Removed-edge count per tag, for auditing the three ε/3 budgets.
    pub fn removed_by_tag(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for &(_, _, tag) in &self.removed_edges {
            match tag {
                RemovalTag::Remove1 => counts[0] += 1,
                RemovalTag::Remove2 => counts[1] += 1,
                RemovalTag::Remove3 => counts[2] += 1,
            }
        }
        counts
    }
}

impl ExpanderDecomposition {
    /// Starts a builder with the defaults (`ε = 0.3`, `k = 2`,
    /// practical mode, seed 0).
    pub fn builder() -> Builder {
        Builder {
            epsilon: 0.3,
            k: 2,
            mode: ParamMode::Practical,
            seed: 0,
        }
    }

    /// Runs the decomposition on `g`.
    ///
    /// # Errors
    ///
    /// Returns [`graph::GraphError::Empty`] if `g` has no vertices.
    pub fn run(&self, g: &Graph) -> graph::Result<DecompositionResult> {
        if g.n() == 0 {
            return Err(graph::GraphError::Empty {
                what: "input graph",
            });
        }
        let params = DecompositionParams::new(self.epsilon, self.k, g.n(), self.mode);
        let budget_per_tag = ((self.epsilon / 3.0) * g.m() as f64).floor() as usize;
        let mut state = RunState {
            working: WorkingGraph::new(g),
            removed: Vec::new(),
            removed_counts: [0; 3],
            budget_per_tag,
            ledger: RoundLedger::new(),
            params,
            mode: self.mode,
            rng: StdRng::seed_from_u64(self.seed),
            final_parts: Vec::new(),
        };
        // Kick off Phase 1 on each connected component of the input (the
        // fresh overlay mirrors `g` exactly).
        let comps = graph::traversal::connected_components(g);
        let mut parallel: Vec<RoundLedger> = Vec::new();
        for comp in comps {
            let l = state.phase1(&comp, 0);
            parallel.push(l);
        }
        let mut ledger = std::mem::take(&mut state.ledger);
        ledger.absorb_parallel(parallel.iter());
        let phi = state.params.phi_final();
        Ok(DecompositionResult {
            parts: state.final_parts,
            removed_edges: state.removed,
            m: g.m(),
            phi,
            params: state.params,
            ledger,
        })
    }
}

/// Mutable state threaded through the recursion.
struct RunState {
    /// Working graph overlay: removed edges are tombstoned in place and
    /// compensated with self-loop *counts*, so one removal costs
    /// `O(log Δ)` instead of an `O(n + m)` CSR rebuild.
    working: WorkingGraph,
    removed: Vec<(VertexId, VertexId, RemovalTag)>,
    /// Removed-edge counts per tag, for the runtime budget guards.
    removed_counts: [usize; 3],
    /// Per-tag budget: `(ε/3)·|E|` each (the paper proves these hold by
    /// analysis with faithful constants; with practical constants we
    /// additionally enforce them, skipping any removal that would
    /// overflow its budget and finalizing the component instead).
    budget_per_tag: usize,
    ledger: RoundLedger,
    params: DecompositionParams,
    mode: ParamMode,
    rng: StdRng,
    final_parts: Vec<VertexSet>,
}

impl RunState {
    /// Removes edges from the working graph with loop compensation if the
    /// tag's `(ε/3)·|E|` budget allows it; returns whether the removal
    /// happened.
    fn try_remove(&mut self, edges: &[(VertexId, VertexId)], tag: RemovalTag) -> bool {
        if edges.is_empty() {
            return true;
        }
        let idx = match tag {
            RemovalTag::Remove1 => 0,
            RemovalTag::Remove2 => 1,
            RemovalTag::Remove3 => 2,
        };
        if self.removed_counts[idx] + edges.len() > self.budget_per_tag {
            return false;
        }
        self.removed_counts[idx] += edges.len();
        let removed = self.working.remove_edges(edges.iter().copied(), true);
        debug_assert_eq!(removed, edges.len(), "callers list live edges");
        self.removed.extend(edges.iter().map(|&(u, v)| (u, v, tag)));
        true
    }

    /// Phase 1 on the component `u_set` (parent ids). Returns the round
    /// ledger of this branch (branches on disjoint components run in
    /// parallel, so the caller takes a max).
    fn phase1(&mut self, u_set: &VertexSet, depth: usize) -> RoundLedger {
        let mut branch = RoundLedger::new();
        if u_set.is_empty() {
            return branch;
        }
        // Depth guard: Lemma 1 bounds the recursion depth by d; the guard
        // fires only if the practical-mode balance heuristics misbehave.
        if depth > self.params.d_max + 64 {
            self.final_parts.push(u_set.clone());
            return branch;
        }
        // Singleton or edgeless components are vacuous expanders. The
        // overlay counts internal live edges directly — no subgraph copy.
        let vol_internal = self.working.internal_edges(u_set);
        if u_set.len() == 1 || vol_internal == 0 {
            for v in u_set.iter() {
                self.final_parts
                    .push(VertexSet::from_iter(self.working.n(), [v]));
            }
            return branch;
        }

        // Step 1: low-diameter decomposition; remove inter-cluster edges
        // (Remove-1).
        let sub = Subgraph::loop_augmented(&self.working, u_set);
        let ldd_params = match self.mode {
            ParamMode::PaperFaithful => LddParams::paper(self.params.beta, sub.graph().n()),
            ParamMode::Practical => LddParams::practical(self.params.beta, sub.graph().n()),
        };
        let ldd = low_diameter_decomposition(sub.graph(), &ldd_params, self.rng.random());
        branch.absorb(&ldd.ledger);
        let cut_parent: Vec<(VertexId, VertexId)> = ldd
            .cut_edges
            .iter()
            .map(|&(a, b)| {
                (
                    sub.to_parent(a).expect("local id valid"),
                    sub.to_parent(b).expect("local id valid"),
                )
            })
            .collect();
        let ldd_applied = self.try_remove(&cut_parent, RemovalTag::Remove1);

        // The diameter bound the LDD guarantees — used as the round-
        // accounting hint for every sparse-cut call below.
        let ln_n = (self.working.n().max(2) as f64).ln();
        let diameter_hint = ((ln_n / self.params.beta).powi(2).ceil() as u32)
            .max(4)
            .min(self.working.n() as u32);

        // Step 2: per LDD component, run the nearly most balanced sparse
        // cut with parameter φ₀ on G{U'}. If the LDD cut was skipped by
        // the budget guard, the whole component proceeds as one piece.
        let ldd_parts: Vec<VertexSet> = if ldd_applied {
            ldd.parts
                .iter()
                .map(|p| sub.set_to_parent(p, self.working.n()))
                .collect()
        } else {
            vec![u_set.clone()]
        };
        let mut branch_children: Vec<RoundLedger> = Vec::new();
        for part in ldd_parts {
            let l = self.phase1_component(&part, depth, diameter_hint);
            branch_children.push(l);
        }
        branch.absorb_parallel(branch_children.iter());
        branch
    }

    /// Phase 1, step 2 for one low-diameter component.
    fn phase1_component(
        &mut self,
        u_set: &VertexSet,
        depth: usize,
        diameter_hint: u32,
    ) -> RoundLedger {
        let mut branch = RoundLedger::new();
        if u_set.is_empty() {
            return branch;
        }
        let sub = Subgraph::loop_augmented(&self.working, u_set);
        if sub.graph().m() == 0 {
            for v in u_set.iter() {
                self.final_parts
                    .push(VertexSet::from_iter(self.working.n(), [v]));
            }
            return branch;
        }
        let run0 = self.params.run_schedule[0];
        let sc_params = SparseCutParams::from_phi_run(
            run0,
            sub.graph().m(),
            sub.graph().total_volume(),
            self.mode,
        );
        // Up to 3 attempts: a cut that would blow the Remove-2 budget is
        // rejected and the partition re-randomized (the paper's analysis
        // makes rejected cuts impossible at faithful constants; at
        // practical constants an occasional too-dense cut appears and a
        // fresh draw usually yields a sparser one).
        for attempt in 0..3 {
            let out = partition(sub.graph(), &sc_params, diameter_hint, &mut self.rng);
            branch.absorb(&out.ledger);
            let c_local = out.cut;
            if c_local.is_empty() {
                // 2a: the component is certified; it becomes a final part.
                self.final_parts.push(u_set.clone());
                return branch;
            }
            let vol_c: usize = c_local.iter().map(|v| sub.graph().degree(v)).sum();
            let vol_u = sub.graph().total_volume();
            if (vol_c as f64) <= (self.params.epsilon / 12.0) * vol_u as f64 {
                // 2b: unbalanced cut — enter Phase 2 (do NOT remove it).
                let l = self.phase2(u_set, diameter_hint);
                branch.absorb(&l);
                return branch;
            }
            // 2c: balanced cut — remove E(C, U∖C) (Remove-2), recurse on
            // both sides (back into Phase 1 including the LDD).
            let c_parent = sub.set_to_parent(&c_local, self.working.n());
            let rest_parent = u_set.difference(&c_parent);
            let mut crossing: Vec<(VertexId, VertexId)> = Vec::new();
            for u in c_parent.iter() {
                for w in self.working.live_neighbors(u) {
                    if rest_parent.contains(w) {
                        crossing.push((u, w));
                    }
                }
            }
            if !self.try_remove(&crossing, RemovalTag::Remove2) {
                if attempt + 1 < 3 {
                    continue;
                }
                // Budget exhausted: finalize the component as-is.
                self.final_parts.push(u_set.clone());
                return branch;
            }
            let children = [
                self.phase1(&c_parent, depth + 1),
                self.phase1(&rest_parent, depth + 1),
            ];
            branch.absorb_parallel(children.iter());
            return branch;
        }
        unreachable!("the retry loop always returns")
    }

    /// Phase 2 on `G* = G{U}`: level schedule peeling.
    fn phase2(&mut self, u_set: &VertexSet, diameter_hint: u32) -> RoundLedger {
        let mut branch = RoundLedger::new();
        let n = self.working.n();
        let vol_u: usize = u_set.iter().map(|v| self.working.degree(v)).sum();
        let tau = self.params.tau(vol_u);
        let ms = self.params.volume_schedule(vol_u);
        let mut level = 1usize;
        let mut u_prime = u_set.clone();
        // Safety valve: Lemma 2 bounds each level at 2τ iterations.
        let per_level_cap = (2.0 * tau).ceil() as usize + 2;
        let mut level_iters = 0usize;
        loop {
            let sub = Subgraph::loop_augmented(&self.working, &u_prime);
            if sub.graph().m() == 0 {
                for v in u_prime.iter() {
                    self.final_parts.push(VertexSet::from_iter(n, [v]));
                }
                return branch;
            }
            let run_l = self.params.run_schedule[level.min(self.params.k)];
            let sc_params = SparseCutParams::from_phi_run(
                run_l,
                sub.graph().m(),
                sub.graph().total_volume(),
                self.mode,
            );
            let out = partition(sub.graph(), &sc_params, diameter_hint, &mut self.rng);
            branch.absorb(&out.ledger);
            if out.cut.is_empty() {
                // Quit: U' is a final part.
                self.final_parts.push(u_prime.clone());
                return branch;
            }
            let vol_c: usize = out.cut.iter().map(|v| sub.graph().degree(v)).sum();
            if (vol_c as f64) <= ms[level - 1] / (2.0 * tau) && level < self.params.k.max(1) {
                level += 1;
                level_iters = 0;
                continue;
            }
            level_iters += 1;
            if level_iters > per_level_cap {
                // Lemma 2 forbids this; practical-mode randomness can
                // stall — finalize what remains rather than loop.
                self.final_parts.push(u_prime.clone());
                return branch;
            }
            // Remove-3: peel C — remove ALL edges incident to C; each
            // vertex of C becomes an isolated final singleton.
            let c_parent = sub.set_to_parent(&out.cut, n);
            let mut incident: Vec<(VertexId, VertexId)> = Vec::new();
            for u in c_parent.iter() {
                for w in self.working.live_neighbors(u) {
                    if w > u || !c_parent.contains(w) {
                        incident.push((u, w));
                    }
                }
            }
            if !self.try_remove(&incident, RemovalTag::Remove3) {
                // Budget exhausted: finalize what remains.
                self.final_parts.push(u_prime.clone());
                return branch;
            }
            for v in c_parent.iter() {
                self.final_parts.push(VertexSet::from_iter(n, [v]));
            }
            u_prime = u_prime.difference(&c_parent);
            if u_prime.is_empty() {
                return branch;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;
    use graph::traversal;

    fn check_is_partition(parts: &[VertexSet], n: usize) {
        let mut seen = vec![false; n];
        for p in parts {
            for v in p.iter() {
                assert!(!seen[v as usize], "vertex {v} appears twice");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "partition must cover V");
    }

    #[test]
    fn ring_of_cliques_splits_into_cliques() {
        let (g, _) = gen::ring_of_cliques(6, 8).unwrap();
        let res = ExpanderDecomposition::builder()
            .epsilon(0.3)
            .k(2)
            .seed(7)
            .build()
            .run(&g)
            .unwrap();
        check_is_partition(&res.parts, g.n());
        assert!(res.inter_cluster_fraction() <= 0.3, "ε budget violated");
        // Should find ≥ the 6 planted clusters (possibly more splits).
        assert!(res.parts.len() >= 6, "found only {} parts", res.parts.len());
    }

    #[test]
    fn expander_input_stays_whole() {
        let g = gen::complete(24).unwrap();
        let res = ExpanderDecomposition::builder()
            .epsilon(0.2)
            .seed(3)
            .build()
            .run(&g)
            .unwrap();
        check_is_partition(&res.parts, g.n());
        assert_eq!(res.parts.len(), 1, "K24 is an expander — no cuts expected");
        assert!(res.removed_edges.is_empty());
    }

    #[test]
    fn barbell_is_cut_in_two() {
        let (g, _) = gen::barbell(10).unwrap();
        let res = ExpanderDecomposition::builder()
            .epsilon(0.3)
            .seed(11)
            .build()
            .run(&g)
            .unwrap();
        check_is_partition(&res.parts, g.n());
        assert!(res.parts.len() >= 2);
        assert!(res.inter_cluster_fraction() <= 0.3);
    }

    #[test]
    fn epsilon_budget_holds_across_families() {
        for (name, g) in [
            ("gnp", gen::gnp(60, 0.15, 5).unwrap()),
            ("grid", gen::grid(8, 8).unwrap()),
            (
                "sbm",
                gen::planted_partition(&[30, 30], 0.4, 0.02, 9)
                    .unwrap()
                    .graph,
            ),
        ] {
            let eps = 0.4;
            let res = ExpanderDecomposition::builder()
                .epsilon(eps)
                .seed(13)
                .build()
                .run(&g)
                .unwrap();
            check_is_partition(&res.parts, g.n());
            assert!(
                res.inter_cluster_fraction() <= eps,
                "{name}: fraction {} > ε {eps}",
                res.inter_cluster_fraction()
            );
        }
    }

    #[test]
    fn parts_induce_connected_subgraphs() {
        let pp = gen::planted_partition(&[25, 25, 25], 0.4, 0.02, 17).unwrap();
        let res = ExpanderDecomposition::builder()
            .epsilon(0.3)
            .seed(19)
            .build()
            .run(&pp.graph)
            .unwrap();
        for p in &res.parts {
            if p.len() > 1 {
                assert!(
                    traversal::set_diameter(&pp.graph, p).is_ok(),
                    "multi-vertex part must be connected"
                );
            }
        }
    }

    #[test]
    fn removal_tags_are_recorded() {
        let (g, _) = gen::ring_of_cliques(8, 6).unwrap();
        let res = ExpanderDecomposition::builder()
            .epsilon(0.3)
            .seed(23)
            .build()
            .run(&g)
            .unwrap();
        let tags = res.removed_by_tag();
        assert_eq!(tags.iter().sum::<usize>(), res.removed_edges.len());
        assert!(!res.removed_edges.is_empty(), "ring of cliques must be cut");
    }

    #[test]
    fn empty_graph_rejected() {
        let g = graph::Graph::from_edges(0, []).unwrap();
        let err = ExpanderDecomposition::builder()
            .build()
            .run(&g)
            .unwrap_err();
        assert!(matches!(err, graph::GraphError::Empty { .. }));
    }

    #[test]
    fn deterministic_per_seed() {
        let (g, _) = gen::ring_of_cliques(5, 5).unwrap();
        let run = |seed| {
            ExpanderDecomposition::builder()
                .epsilon(0.3)
                .seed(seed)
                .build()
                .run(&g)
                .unwrap()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.parts.len(), b.parts.len());
        assert_eq!(a.removed_edges.len(), b.removed_edges.len());
        assert_eq!(a.ledger.total(), b.ledger.total());
    }

    #[test]
    fn disconnected_input_handled_per_component() {
        // Two disjoint cliques: both should survive whole, nothing removed.
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v));
            }
        }
        for u in 8..16u32 {
            for v in (u + 1)..16 {
                edges.push((u, v));
            }
        }
        let g = graph::Graph::from_edges(16, edges).unwrap();
        let res = ExpanderDecomposition::builder()
            .seed(29)
            .build()
            .run(&g)
            .unwrap();
        check_is_partition(&res.parts, 16);
        assert_eq!(res.parts.len(), 2);
        assert!(res.removed_edges.is_empty());
    }

    #[test]
    fn cluster_assignment_is_consistent() {
        let (g, _) = gen::ring_of_cliques(6, 8).unwrap();
        let res = ExpanderDecomposition::builder()
            .epsilon(0.3)
            .seed(7)
            .build()
            .run(&g)
            .unwrap();
        let asg = res.cluster_assignment(&g);
        assert_eq!(asg.n, g.n());
        assert_eq!(asg.cluster_count(), res.parts.len());
        assert_eq!(asg.inter_cluster.len(), res.removed_edges.len());
        // cluster_of agrees with the parts.
        for (id, part) in asg.clusters.iter().enumerate() {
            for v in part.iter() {
                assert_eq!(asg.cluster_id(v), id as u32);
            }
        }
        // Every removed edge crosses clusters; every kept edge does not.
        for (u, v) in asg.inter_cluster_edges() {
            assert!(!asg.is_intra(u, v), "removed edge {u}-{v} intra-cluster");
        }
        let kept = g.remove_edges(asg.inter_cluster_edges(), false);
        for (u, v) in kept.edges() {
            assert!(asg.is_intra(u, v), "kept edge {u}-{v} crosses clusters");
        }
        // Certificates measure the input graph exactly.
        let total_internal: usize = asg.certificates.iter().map(|c| c.internal_edges).sum();
        assert_eq!(total_internal + asg.inter_cluster.len(), g.m());
        let total_vol: usize = asg.certificates.iter().map(|c| c.volume).sum();
        assert_eq!(total_vol, g.total_volume());
        for c in &asg.certificates {
            assert!((c.phi_target - res.phi).abs() < 1e-15);
        }
    }

    #[test]
    fn cluster_assignment_policy_is_immaterial() {
        let (g, _) = gen::ring_of_cliques(6, 8).unwrap();
        let res = ExpanderDecomposition::builder()
            .epsilon(0.3)
            .seed(7)
            .build()
            .run(&g)
            .unwrap();
        let seq = res.cluster_assignment_with(&g, &SchedulerPolicy::sequential());
        let par = res.cluster_assignment_with(&g, &SchedulerPolicy::with_workers(4));
        assert_eq!(seq.cluster_of, par.cluster_of);
        assert_eq!(seq.certificates, par.certificates);
        assert_eq!(seq.inter_cluster, par.inter_cluster);
    }

    #[test]
    fn from_parts_matches_planted_structure() {
        let (g, blocks) = gen::ring_of_expanders(4, 12, 4, 5).unwrap();
        let asg = ClusterAssignment::from_parts(&g, &blocks, 0.25, &SchedulerPolicy::sequential());
        assert_eq!(asg.cluster_count(), 4);
        assert_eq!(asg.inter_cluster.len(), 4, "one bridge per ring step");
        for (u, v) in asg.inter_cluster_edges() {
            assert!(!asg.is_intra(u, v));
        }
        let total_internal: usize = asg.certificates.iter().map(|c| c.internal_edges).sum();
        assert_eq!(total_internal + asg.inter_cluster.len(), g.m());
        for c in &asg.certificates {
            assert_eq!(c.size, 12);
            assert!((c.phi_target - 0.25).abs() < 1e-15);
            assert_eq!(c.incident_removed, 2);
        }
        // Policy-independent.
        let par =
            ClusterAssignment::from_parts(&g, &blocks, 0.25, &SchedulerPolicy::with_workers(4));
        assert_eq!(asg.certificates, par.certificates);
        assert_eq!(asg.cluster_of, par.cluster_of);
    }

    #[test]
    #[should_panic(expected = "cover every vertex")]
    fn from_parts_rejects_partial_cover() {
        let g = gen::path(4).unwrap();
        let parts = [VertexSet::from_iter(4, [0u32, 1])];
        ClusterAssignment::from_parts(&g, &parts, 0.1, &SchedulerPolicy::sequential());
    }

    #[test]
    fn cluster_assignment_covers_singletons() {
        // A path decomposes heavily; every vertex must still get a cluster.
        let g = gen::path(12).unwrap();
        let res = ExpanderDecomposition::builder()
            .seed(3)
            .build()
            .run(&g)
            .unwrap();
        let asg = res.cluster_assignment(&g);
        assert!(asg
            .cluster_of
            .iter()
            .all(|&c| (c as usize) < asg.cluster_count()));
    }

    #[test]
    fn ledger_total_is_positive_and_mode_matters() {
        let (g, _) = gen::barbell(8).unwrap();
        let res = ExpanderDecomposition::builder()
            .seed(1)
            .build()
            .run(&g)
            .unwrap();
        assert!(res.ledger.total() > 0);
        assert!(res.phi > 0.0);
    }
}
