//! **Theorem 3** — the nearly most balanced sparse cut.
//!
//! Given a target conductance `φ`, the driver re-parameterizes: it runs
//! [`crate::partition::partition`] at
//! `φ_run = min(f⁻¹(φ), 1/12)` so that any cut `S` with `Φ(S) ≤ φ`
//! satisfies the `Φ(S) ≤ f(φ_run)` precondition of Lemma 8. The returned
//! cut `C` then has `Φ(C) = O(φ_run·log n) = O(φ^{1/3}·log^{5/3} n) = h(φ)`
//! and balance `bal(C) ≥ min{b/2, 1/48}` where `b` is the balance of the
//! *most balanced* cut of conductance `≤ φ` — the guarantee no previous
//! distributed sparse-cut algorithm provided.

use crate::params::{ParamMode, SparseCutParams};
use crate::partition::{partition, PartitionOutcome};
use crate::rounds::RoundLedger;
use graph::{Cut, Graph, VertexSet};
use rand::rngs::StdRng;
use rand::SeedableRng as _;

/// Result of the Theorem 3 sparse-cut algorithm.
#[derive(Debug, Clone)]
pub struct SparseCutOutcome {
    /// The cut found, with its statistics — `None` means the algorithm
    /// certified (probabilistically) that no `φ`-sparse cut exists.
    pub cut: Option<Cut>,
    /// The parameters used (including the derived `φ_run`).
    pub params: SparseCutParams,
    /// Measured CONGEST round charges.
    pub ledger: RoundLedger,
    /// Iterations the Partition loop used.
    pub partition_iterations: usize,
}

impl SparseCutOutcome {
    /// The conductance bound `h(φ)` Theorem 3 promises for this run.
    pub fn promised_conductance(&self, n: usize) -> f64 {
        self.params.h_bound(n)
    }
}

/// Runs Theorem 3 on `g`: returns a nearly most balanced cut of
/// conductance `O(φ^{1/3} log^{5/3} n)` if `Φ(G) ≤ phi_target`, or (w.h.p.)
/// nothing if `G` is already an expander at that scale.
///
/// `diameter_hint` is the communication diameter used for round
/// accounting; `seed` fixes all randomness.
///
/// # Panics
///
/// Panics if `g` has no edges (the cut problem is vacuous) or
/// `phi_target ∉ (0, 1)`.
pub fn nearly_most_balanced_sparse_cut(
    g: &Graph,
    phi_target: f64,
    mode: ParamMode,
    diameter_hint: u32,
    seed: u64,
) -> SparseCutOutcome {
    let params = SparseCutParams::new(phi_target, g.m().max(1), g.total_volume(), mode);
    sparse_cut_with_params(g, &params, diameter_hint, seed)
}

/// Like [`nearly_most_balanced_sparse_cut`] with an explicit parameter
/// set (the decomposition reuses parameter objects across components).
pub fn sparse_cut_with_params(
    g: &Graph,
    params: &SparseCutParams,
    diameter_hint: u32,
    seed: u64,
) -> SparseCutOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let out: PartitionOutcome = partition(g, params, diameter_hint, &mut rng);
    let mut ledger = RoundLedger::new();
    ledger.absorb(&out.ledger);
    let cut = non_trivial_cut(g, out.cut);
    SparseCutOutcome {
        cut,
        params: params.clone(),
        ledger,
        partition_iterations: out.iterations,
    }
}

fn non_trivial_cut(g: &Graph, side: VertexSet) -> Option<Cut> {
    if side.is_empty() {
        return None;
    }
    Cut::new(g, side).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn barbell_cut_meets_theorem3_balance_floor() {
        let (g, _) = gen::barbell(12).unwrap();
        let out = nearly_most_balanced_sparse_cut(&g, 0.001, ParamMode::Practical, 3, 17);
        let cut = out.cut.expect("Φ(barbell) ≈ 0.007 … a cut must be found");
        // b = 1/2 ⇒ promised balance min(b/2, 1/48) = 1/48.
        assert!(cut.balance() >= 1.0 / 48.0, "balance {}", cut.balance());
    }

    #[test]
    fn dumbbell_with_small_planted_balance() {
        // Planted cut: the small clique; b ≈ Vol(K6)/Vol(total) ≈ 0.08.
        let (g, small_side) = gen::dumbbell(20, 6, 0).unwrap();
        let small = small_side.complement(); // right clique has small volume
        let b = g.balance(&small).unwrap();
        let out = nearly_most_balanced_sparse_cut(&g, 0.01, ParamMode::Practical, 3, 23);
        let cut = out.cut.expect("dumbbell has a very sparse cut");
        assert!(
            cut.balance() >= (b / 2.0).min(1.0 / 48.0) - 1e-9,
            "balance {} below min(b/2, 1/48) with b = {b}",
            cut.balance()
        );
    }

    #[test]
    fn expander_returns_none_or_sparse() {
        // Theorem 3 case 2: on Φ(G) > φ the algorithm may return ∅ or a
        // cut with the h(φ) conductance guarantee — never a dense cut.
        let g = gen::random_regular(48, 6, 5).unwrap();
        let out = nearly_most_balanced_sparse_cut(&g, 0.0001, ParamMode::Practical, 3, 29);
        if let Some(ref cut) = out.cut {
            assert!(
                cut.conductance() <= out.promised_conductance(g.n()),
                "cut conductance {} above promise {}",
                cut.conductance(),
                out.promised_conductance(g.n())
            );
        }
    }

    #[test]
    fn promised_conductance_has_cube_root_shape() {
        let (g, _) = gen::barbell(10).unwrap();
        let out1 = nearly_most_balanced_sparse_cut(&g, 1e-9, ParamMode::Practical, 3, 1);
        let out8 = nearly_most_balanced_sparse_cut(&g, 8e-9, ParamMode::Practical, 3, 1);
        let ratio = out8.promised_conductance(g.n()) / out1.promised_conductance(g.n());
        assert!((ratio - 2.0).abs() < 1e-6, "h(θ) ∝ θ^(1/3): ratio {ratio}");
    }

    #[test]
    fn ledger_and_iterations_populated() {
        let (g, _) = gen::barbell(8).unwrap();
        let out = nearly_most_balanced_sparse_cut(&g, 0.001, ParamMode::Practical, 3, 31);
        assert!(out.ledger.total() > 0);
        assert!(out.partition_iterations >= 1);
    }
}
