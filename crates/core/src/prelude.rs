//! Convenience re-exports for consumers of the `expander` crate.

pub use crate::decomposition::{
    ClusterAssignment, ClusterCertificate, DecompositionResult, ExpanderDecomposition, RemovalTag,
};
pub use crate::ldd::{
    clustering, clustering_with_starts, low_diameter_decomposition, LddOutcome, LddParams,
};
pub use crate::nibble::{approximate_nibble, nibble, NibbleOutcome};
pub use crate::parallel_nibble::{parallel_nibble, ParallelNibbleOutcome};
pub use crate::params::{DecompositionParams, NibbleParams, ParamMode, SparseCutParams};
pub use crate::partition::{partition, PartitionOutcome};
pub use crate::quality::{QualityBounds, QualityReport};
pub use crate::recluster::{recluster_broken, ReclusterParams, ReclusterReport};
pub use crate::rounds::RoundLedger;
pub use crate::scheduler::{
    derive_seed, JobStats, LevelExecution, RecursionReport, SchedulerPolicy, ScratchPool,
};
pub use crate::sparse_cut::{nearly_most_balanced_sparse_cut, SparseCutOutcome};
pub use crate::verify::{certify_current, verify_decomposition, VerificationReport};
