//! Certificate-driven reclustering: the decomposition-maintenance half of
//! the churn tier (DESIGN.md §15).
//!
//! Theorem 1's output is a partition whose parts each certify `Φ ≥ φ`.
//! Under edge churn most parts keep certifying — deleting a handful of
//! intra-cluster edges rarely breaks an expander, and inserted edges can
//! only *raise* internal connectivity or land between clusters (where
//! they join the inter-cluster budget). Following the maintenance view of
//! Chang–Saranurak's deterministic pruning line, [`recluster_broken`]
//! therefore re-decomposes **only** the clusters whose φ certificate
//! actually broke:
//!
//! 1. clusters with no incident churn are passed through untouched (and
//!    flagged reusable, so downstream artifact caches can keep their
//!    frozen snapshots by pointer);
//! 2. touched clusters are re-certified on the *current* graph via
//!    [`crate::verify::certify_current`] — the loop-augmented induced
//!    view, so crossing and churned edges are compensated exactly as the
//!    working graph would;
//! 3. clusters whose certified lower bound fell below the promised `φ`
//!    are re-decomposed in isolation (a fresh [`ExpanderDecomposition`]
//!    on the induced subgraph, deterministically seeded by old cluster
//!    id) and their sub-parts replace the broken part.
//!
//! The result is a covering partition ready for
//! [`ClusterAssignment::from_parts`], plus the reuse map that lets the
//! query engine's refreeze keep untouched per-cluster artifacts alive.
//!
//! The certificate is conservative: the Cheeger lower bound on large
//! parts can dip below `φ` while the true conductance still clears it, in
//! which case we re-decompose a healthy cluster — extra work, never a
//! wrong answer. The re-decomposition promises its own (sub-)schedule's
//! φ; the maintained assignment keeps reporting the original target, so a
//! later churn batch re-checks the new parts against the same bar.

use crate::decomposition::{ClusterAssignment, ExpanderDecomposition};
use crate::params::ParamMode;
use crate::verify::certify_current;
use graph::seed::derive_seed;
use graph::view::Subgraph;
use graph::working::WorkingGraph;
use graph::VertexSet;

/// Knobs for the per-cluster re-decomposition (the subset of the
/// decomposition builder the churn tier forwards).
#[derive(Debug, Clone, Copy)]
pub struct ReclusterParams {
    /// Inter-cluster budget for each isolated re-decomposition.
    pub epsilon: f64,
    /// Schedule index `k` of the re-decomposition.
    pub k: usize,
    /// Parameter mode (paper constants vs practical).
    pub mode: ParamMode,
    /// Root seed; each broken cluster decomposes under
    /// `derive_seed(seed, old_cluster_id)` so runs are reproducible and
    /// independent of iteration order.
    pub seed: u64,
}

impl Default for ReclusterParams {
    fn default() -> Self {
        ReclusterParams {
            epsilon: 0.3,
            k: 2,
            mode: ParamMode::Practical,
            seed: 0,
        }
    }
}

/// Output of [`recluster_broken`]: the next covering partition plus the
/// bookkeeping the refreeze path needs.
#[derive(Debug, Clone)]
pub struct ReclusterReport {
    /// The new covering partition, ready for
    /// [`ClusterAssignment::from_parts`].
    pub parts: Vec<VertexSet>,
    /// For each entry of `parts`: `Some(old_id)` when the part is an
    /// untouched old cluster whose frozen artifacts can be reused by
    /// pointer, `None` when it was touched (re-certified or freshly cut)
    /// and must be re-frozen.
    pub reuse: Vec<Option<usize>>,
    /// Touched clusters whose φ certificate was re-verified.
    pub checked: usize,
    /// Clusters whose certificate broke and were re-decomposed.
    pub broken: usize,
}

impl ReclusterReport {
    /// Number of parts passed through with reusable artifacts.
    pub fn reused(&self) -> usize {
        self.reuse.iter().filter(|r| r.is_some()).count()
    }
}

/// Re-verifies the φ certificates of the `dirty` clusters of `assignment`
/// against the current overlay `working`, re-decomposes exactly the
/// broken ones, and returns the next covering partition. `dirty[c]` marks
/// old cluster `c` as touched by churn (any applied op with an endpoint
/// in the cluster); untouched clusters are passed through and flagged
/// reusable.
///
/// # Panics
///
/// Panics if `dirty.len()` differs from the assignment's cluster count or
/// the overlay's vertex count differs from the assignment's.
pub fn recluster_broken(
    working: &WorkingGraph,
    assignment: &ClusterAssignment,
    dirty: &[bool],
    params: &ReclusterParams,
) -> ReclusterReport {
    assert_eq!(
        dirty.len(),
        assignment.cluster_count(),
        "one dirty flag per cluster"
    );
    assert_eq!(working.n(), assignment.n, "overlay/assignment mismatch");
    let n = working.n();
    let mut parts = Vec::with_capacity(assignment.cluster_count());
    let mut reuse = Vec::with_capacity(assignment.cluster_count());
    let mut checked = 0usize;
    let mut broken = 0usize;
    for (c, part) in assignment.clusters.iter().enumerate() {
        if !dirty[c] {
            parts.push(part.clone());
            reuse.push(Some(c));
            continue;
        }
        checked += 1;
        let cert = certify_current(working, part);
        if cert.conductance_lower >= assignment.phi {
            // Touched but still certifying: same part, fresh artifacts.
            parts.push(part.clone());
            reuse.push(None);
            continue;
        }
        broken += 1;
        let sub = Subgraph::induced(working, part);
        if sub.graph().m() == 0 {
            // No internal edges survive: every member becomes a
            // (vacuously expanding) singleton.
            for v in part.iter() {
                parts.push(VertexSet::from_iter(n, [v]));
                reuse.push(None);
            }
            continue;
        }
        let res = ExpanderDecomposition::builder()
            .epsilon(params.epsilon)
            .k(params.k)
            .mode(params.mode)
            .seed(derive_seed(params.seed, c as u64))
            .build()
            .run(sub.graph())
            .expect("non-empty induced subgraph decomposes");
        for sub_part in &res.parts {
            parts.push(sub.set_to_parent(sub_part, n));
            reuse.push(None);
        }
    }
    ReclusterReport {
        parts,
        reuse,
        checked,
        broken,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerPolicy;
    use graph::{gen, VertexId};

    fn planted() -> (graph::Graph, Vec<VertexSet>) {
        let pp = gen::planted_partition(&[24, 24, 24], 0.7, 0.01, 11).unwrap();
        (pp.graph, pp.blocks)
    }

    #[test]
    fn untouched_clusters_pass_through_as_reusable() {
        let (g, blocks) = planted();
        let assignment =
            ClusterAssignment::from_parts(&g, &blocks, 0.05, &SchedulerPolicy::sequential());
        let working = WorkingGraph::new(&g);
        let dirty = vec![false; assignment.cluster_count()];
        let report = recluster_broken(&working, &assignment, &dirty, &ReclusterParams::default());
        assert_eq!(report.checked, 0);
        assert_eq!(report.broken, 0);
        assert_eq!(report.parts.len(), assignment.cluster_count());
        assert_eq!(report.reused(), assignment.cluster_count());
        for (i, part) in report.parts.iter().enumerate() {
            assert_eq!(report.reuse[i], Some(i));
            assert_eq!(part.len(), assignment.clusters[i].len());
        }
    }

    #[test]
    fn healthy_touched_cluster_keeps_its_part() {
        let (g, blocks) = planted();
        let assignment =
            ClusterAssignment::from_parts(&g, &blocks, 0.05, &SchedulerPolicy::sequential());
        let mut working = WorkingGraph::new(&g);
        // One intra-cluster insertion: touches cluster 0, breaks nothing.
        let members: Vec<VertexId> = assignment.clusters[0].iter().collect();
        working.insert_edges([(members[0], members[1])]);
        let mut dirty = vec![false; assignment.cluster_count()];
        dirty[0] = true;
        let report = recluster_broken(&working, &assignment, &dirty, &ReclusterParams::default());
        assert_eq!(report.checked, 1);
        assert_eq!(report.broken, 0);
        assert_eq!(report.parts.len(), assignment.cluster_count());
        assert_eq!(report.reuse[0], None, "touched clusters refreeze");
        assert_eq!(report.reused(), assignment.cluster_count() - 1);
    }

    #[test]
    fn shredded_cluster_is_recut_alone() {
        let (g, blocks) = planted();
        let assignment =
            ClusterAssignment::from_parts(&g, &blocks, 0.05, &SchedulerPolicy::sequential());
        let mut working = WorkingGraph::new(&g);
        // Delete every internal edge of cluster 0: its certificate must
        // collapse and the members fall apart into singletons.
        let target = &assignment.clusters[0];
        let victims: Vec<(VertexId, VertexId)> = g
            .edges()
            .filter(|&(u, v)| target.contains(u) && target.contains(v))
            .collect();
        working.remove_edges(victims.iter().copied(), true);
        let mut dirty = vec![false; assignment.cluster_count()];
        dirty[0] = true;
        let report = recluster_broken(&working, &assignment, &dirty, &ReclusterParams::default());
        assert_eq!(report.checked, 1);
        assert_eq!(report.broken, 1);
        // The other blocks survive untouched and reusable.
        assert_eq!(report.reused(), assignment.cluster_count() - 1);
        // Partition still covers V exactly once.
        let mut seen = vec![false; g.n()];
        for part in &report.parts {
            for v in part.iter() {
                assert!(!seen[v as usize], "vertex {v} covered twice");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        // And from_parts accepts the result.
        let next = ClusterAssignment::from_parts(
            &working.to_graph(),
            &report.parts,
            assignment.phi,
            &SchedulerPolicy::sequential(),
        );
        assert_eq!(next.cluster_count(), report.parts.len());
    }
}
