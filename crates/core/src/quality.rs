//! Decomposition-**quality** measurement: the scalar trajectory CI
//! tracks across PRs (ROADMAP: "nothing tracks decomposition quality").
//!
//! [`verify_decomposition`] answers
//! *"is this output legal?"*; this module answers *"how good is it, as a
//! handful of comparable numbers?"* — cut fraction (total and per
//! removal tag), cluster-count shape (how shredded the partition is),
//! and the φ-certificate margins — bundled as a [`QualityReport`] with a
//! jsonl serialization the `exp_quality` binary emits and the CI
//! `quality-smoke` job uploads, plus [`QualityBounds`] whose violations
//! fail the job.

use crate::decomposition::DecompositionResult;
use crate::verify::verify_decomposition;
use graph::Graph;

/// Quality metrics of one decomposition run, measured exactly.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// Vertices of the decomposed graph.
    pub n: usize,
    /// Edges of the decomposed graph.
    pub m: usize,
    /// The ε the run was configured with.
    pub epsilon: f64,
    /// The φ the schedule promised every cluster.
    pub phi: f64,
    /// Number of clusters.
    pub cluster_count: usize,
    /// Clusters of exactly one vertex (the decomposition's failure mode
    /// on sparse graphs: everything shredded).
    pub singleton_clusters: usize,
    /// Vertices of the largest cluster over `n` — 1.0 means the graph
    /// survived whole.
    pub largest_cluster_fraction: f64,
    /// Removed edges over `m` (Theorem 1 bounds this by ε).
    pub cut_fraction: f64,
    /// Removed-edge fraction per removal rule
    /// (`[Remove1, Remove2, Remove3]`; each is bounded by ε/3 — the
    /// decomposition enforces the per-tag budgets at runtime).
    pub cut_fraction_by_tag: [f64; 3],
    /// Whether the parts form a partition of `V`.
    pub is_partition: bool,
    /// Minimum certified conductance lower bound across non-singleton
    /// parts (`f64::INFINITY` when all parts are singletons) — from the
    /// exact/Cheeger certificates of [`crate::verify`].
    pub min_certified_conductance: f64,
    /// Whether every part's certificate met the promised φ.
    pub certificates_ok: bool,
}

impl QualityReport {
    /// Measures `result` against the graph it decomposed. Runs the full
    /// φ-certification of [`crate::verify`] (spectral on large parts),
    /// so cost grows with part sizes — meant for the fixed-seed
    /// instances of the quality harness, not the million-edge tier.
    pub fn measure(g: &Graph, result: &DecompositionResult) -> QualityReport {
        let verification = verify_decomposition(g, result);
        let m = result.m.max(1);
        let by_tag = result.removed_by_tag();
        let singleton_clusters = result.parts.iter().filter(|p| p.len() == 1).count();
        let largest = result.parts.iter().map(|p| p.len()).max().unwrap_or(0);
        QualityReport {
            n: g.n(),
            m: result.m,
            epsilon: result.params.epsilon,
            phi: result.phi,
            cluster_count: result.parts.len(),
            singleton_clusters,
            largest_cluster_fraction: largest as f64 / g.n().max(1) as f64,
            cut_fraction: result.inter_cluster_fraction(),
            cut_fraction_by_tag: [
                by_tag[0] as f64 / m as f64,
                by_tag[1] as f64 / m as f64,
                by_tag[2] as f64 / m as f64,
            ],
            is_partition: verification.is_partition,
            min_certified_conductance: verification.min_certified_conductance(),
            certificates_ok: verification.conductance_ok(),
        }
    }

    /// Serializes the report as one flat JSON object (jsonl-friendly;
    /// `label` names the workload/seed). Non-finite conductance (the
    /// all-singleton case, where conductance is vacuous) serializes as
    /// `null` — JSON has no infinity literal.
    pub fn to_json(&self, label: &str) -> String {
        let conductance = if self.min_certified_conductance.is_finite() {
            format!("{:.6e}", self.min_certified_conductance)
        } else {
            "null".to_string()
        };
        format!(
            concat!(
                "{{\"name\": \"quality/{}\", \"n\": {}, \"m\": {}, ",
                "\"epsilon\": {:.6}, \"phi\": {:.6e}, ",
                "\"cluster_count\": {}, \"singleton_clusters\": {}, ",
                "\"largest_cluster_fraction\": {:.6}, ",
                "\"cut_fraction\": {:.6}, ",
                "\"cut_fraction_remove1\": {:.6}, ",
                "\"cut_fraction_remove2\": {:.6}, ",
                "\"cut_fraction_remove3\": {:.6}, ",
                "\"is_partition\": {}, ",
                "\"min_certified_conductance\": {}, ",
                "\"certificates_ok\": {}}}"
            ),
            label,
            self.n,
            self.m,
            self.epsilon,
            self.phi,
            self.cluster_count,
            self.singleton_clusters,
            self.largest_cluster_fraction,
            self.cut_fraction,
            self.cut_fraction_by_tag[0],
            self.cut_fraction_by_tag[1],
            self.cut_fraction_by_tag[2],
            self.is_partition,
            conductance,
            self.certificates_ok,
        )
    }

    /// Checks the report against `bounds`; returns one human-readable
    /// line per violated bound (empty = pass).
    pub fn violations(&self, bounds: &QualityBounds) -> Vec<String> {
        let mut out = Vec::new();
        if !self.is_partition {
            out.push("clusters do not partition V".to_string());
        }
        if self.cut_fraction > bounds.max_cut_fraction + 1e-12 {
            out.push(format!(
                "cut fraction {:.4} exceeds bound {:.4}",
                self.cut_fraction, bounds.max_cut_fraction
            ));
        }
        for (i, &frac) in self.cut_fraction_by_tag.iter().enumerate() {
            if frac > bounds.max_cut_fraction_per_tag + 1e-12 {
                out.push(format!(
                    "Remove{} fraction {:.4} exceeds per-tag bound {:.4}",
                    i + 1,
                    frac,
                    bounds.max_cut_fraction_per_tag
                ));
            }
        }
        if bounds.require_certificates && !self.certificates_ok {
            out.push(format!(
                "φ certificates failed: min certified conductance {:.3e} below promised {:.3e}",
                self.min_certified_conductance, self.phi
            ));
        }
        if let Some(max_clusters) = bounds.max_clusters {
            if self.cluster_count > max_clusters {
                out.push(format!(
                    "{} clusters exceed bound {} (over-shredded)",
                    self.cluster_count, max_clusters
                ));
            }
        }
        if let Some(min_largest) = bounds.min_largest_cluster_fraction {
            if self.largest_cluster_fraction < min_largest - 1e-12 {
                out.push(format!(
                    "largest cluster holds {:.3} of V, below bound {:.3}",
                    self.largest_cluster_fraction, min_largest
                ));
            }
        }
        out
    }
}

/// The bounds a [`QualityReport`] is audited against. The defaults from
/// [`QualityBounds::for_epsilon`] encode exactly Theorem 1's guarantees
/// (ε total, ε/3 per tag, partition + certificate validity); the
/// structural knobs (`max_clusters`, `min_largest_cluster_fraction`)
/// are opt-in per workload, since shredding a path into singletons is
/// correct behavior while shredding a ring of cliques is a regression.
#[derive(Debug, Clone)]
pub struct QualityBounds {
    /// Removed edges over `m` must stay below this (Theorem 1: ε).
    pub max_cut_fraction: f64,
    /// Every tag's removed fraction must stay below this (ε/3, enforced
    /// by the decomposition's runtime budget guards).
    pub max_cut_fraction_per_tag: f64,
    /// Whether the φ certificates must hold.
    pub require_certificates: bool,
    /// Optional ceiling on the cluster count.
    pub max_clusters: Option<usize>,
    /// Optional floor on the largest cluster's vertex share.
    pub min_largest_cluster_fraction: Option<f64>,
}

impl QualityBounds {
    /// The model-guaranteed bounds for a run configured with `epsilon`.
    pub fn for_epsilon(epsilon: f64) -> QualityBounds {
        QualityBounds {
            max_cut_fraction: epsilon,
            max_cut_fraction_per_tag: epsilon / 3.0,
            require_certificates: true,
            max_clusters: None,
            min_largest_cluster_fraction: None,
        }
    }

    /// Adds a cluster-count ceiling.
    pub fn with_max_clusters(mut self, max: usize) -> Self {
        self.max_clusters = Some(max);
        self
    }

    /// Adds a largest-cluster share floor.
    pub fn with_min_largest_fraction(mut self, min: f64) -> Self {
        self.min_largest_cluster_fraction = Some(min);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::ExpanderDecomposition;
    use graph::gen;

    fn decompose(g: &Graph, epsilon: f64, seed: u64) -> DecompositionResult {
        ExpanderDecomposition::builder()
            .epsilon(epsilon)
            .seed(seed)
            .build()
            .run(g)
            .unwrap()
    }

    #[test]
    fn ring_of_cliques_passes_theorem_bounds() {
        let (g, cliques) = gen::ring_of_cliques(6, 6).unwrap();
        let res = decompose(&g, 0.3, 5);
        let q = QualityReport::measure(&g, &res);
        assert!(q.is_partition);
        assert_eq!(q.m, g.m());
        let bounds = QualityBounds::for_epsilon(0.3).with_max_clusters(g.n());
        assert_eq!(q.violations(&bounds), Vec::<String>::new());
        assert!(q.cluster_count >= cliques.len());
        // Per-tag fractions sum to the total.
        let sum: f64 = q.cut_fraction_by_tag.iter().sum();
        assert!((sum - q.cut_fraction).abs() < 1e-9);
    }

    #[test]
    fn violations_fire_on_tightened_bounds() {
        let (g, _) = gen::ring_of_cliques(5, 5).unwrap();
        let res = decompose(&g, 0.3, 2);
        let q = QualityReport::measure(&g, &res);
        assert!(q.cut_fraction > 0.0, "the ring must cut something");
        let impossible = QualityBounds {
            max_cut_fraction: 0.0,
            max_cut_fraction_per_tag: 0.0,
            require_certificates: true,
            max_clusters: Some(1),
            min_largest_cluster_fraction: Some(1.0),
        };
        let v = q.violations(&impossible);
        assert!(v.iter().any(|l| l.contains("cut fraction")));
        assert!(v.iter().any(|l| l.contains("clusters exceed")));
        assert!(v.iter().any(|l| l.contains("largest cluster")));
    }

    #[test]
    fn json_line_is_flat_and_labeled() {
        let (g, _) = gen::ring_of_cliques(4, 5).unwrap();
        let res = decompose(&g, 0.3, 1);
        let q = QualityReport::measure(&g, &res);
        let line = q.to_json("ring/seed1");
        assert!(line.starts_with("{\"name\": \"quality/ring/seed1\""));
        assert!(line.contains("\"cut_fraction\""));
        assert!(line.contains("\"certificates_ok\""));
        assert!(line.ends_with('}'));
        assert!(!line.contains('\n'));

        // All-singleton decompositions certify Φ = ∞ (vacuous); the
        // jsonl must stay valid JSON — null, never `inf`.
        let lonely = Graph::from_edges(2, [(0, 1)]).unwrap();
        let res = decompose(&lonely, 0.3, 1);
        let q = QualityReport::measure(&lonely, &res);
        if q.min_certified_conductance.is_infinite() {
            let line = q.to_json("lonely");
            assert!(line.contains("\"min_certified_conductance\": null"));
            assert!(!line.contains("inf"));
        }
    }

    #[test]
    fn singleton_shred_is_measured_not_failed() {
        // A path decomposes into singletons: legal, and the report says
        // so rather than erroring.
        let g = gen::path(10).unwrap();
        let res = decompose(&g, 0.3, 3);
        let q = QualityReport::measure(&g, &res);
        assert!(q.is_partition);
        assert_eq!(
            q.violations(&QualityBounds::for_epsilon(0.3)),
            Vec::<String>::new()
        );
        assert!(q.singleton_clusters > 0 || q.largest_cluster_fraction > 0.5);
    }
}
