//! The bench-regression gate: parsing and comparison logic behind the
//! `bench_gate` binary (CI's `bench-smoke` job).
//!
//! The criterion shim appends one JSON line per finished benchmark when
//! `CRITERION_BENCH_JSON` is set. `bench_gate collect` folds those lines
//! into a single flat JSON object (`BENCH_pr.json`, bench name → median
//! seconds); `bench_gate compare` checks it against the committed
//! `BENCH_baseline.json` and fails on regressions beyond the threshold.
//!
//! No serde in this offline workspace, so the tiny JSON subset used here
//! (flat `{"string": number}` objects and `{"name": ..., "median_s": ...}`
//! lines) is parsed by hand; the parser rejects anything else.

use std::collections::BTreeMap;

/// One benchmark's medians, keyed by the `group/function/param` label.
pub type BenchMap = BTreeMap<String, f64>;

/// Verdict for one benchmark of a [`compare`] run.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within the threshold (ratio = current / baseline).
    Ok {
        /// current / baseline.
        ratio: f64,
    },
    /// Slower than `baseline × (1 + threshold)`.
    Regressed {
        /// current / baseline.
        ratio: f64,
    },
    /// Baseline median is under the absolute noise floor: too fast to
    /// judge a relative regression from a quick-mode run, so no verdict
    /// is issued (always passes, ratio reported informationally).
    Noise {
        /// current / baseline.
        ratio: f64,
    },
    /// Present in the baseline but absent from the current run.
    Missing,
    /// Present in the current run but not in the baseline (informational).
    New,
}

/// Outcome of comparing a current run against a baseline.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Per-bench verdicts in name order.
    pub rows: Vec<(String, Verdict)>,
    /// The threshold the comparison used.
    pub threshold: f64,
    /// The absolute noise floor (seconds) the comparison used.
    pub noise_floor: f64,
}

impl GateReport {
    /// Whether the gate passes: no regressions and no missing benches.
    pub fn passed(&self) -> bool {
        !self
            .rows
            .iter()
            .any(|(_, v)| matches!(v, Verdict::Regressed { .. }) || matches!(v, Verdict::Missing))
    }

    /// Every regressed bench, worst ratio first — the gate reports all
    /// offenders at once, not just the first.
    pub fn regressed(&self) -> Vec<(&str, f64)> {
        let mut out: Vec<(&str, f64)> = self
            .rows
            .iter()
            .filter_map(|(n, v)| match v {
                Verdict::Regressed { ratio } => Some((n.as_str(), *ratio)),
                _ => None,
            })
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite ratios"));
        out
    }

    /// Every baseline bench absent from the current run, in name order.
    pub fn missing(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter_map(|(n, v)| match v {
                Verdict::Missing => Some(n.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Renders the human-readable verdict table.
    pub fn to_text(&self) -> String {
        let width = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = format!(
            "bench gate (fail above {:.0}% regression)\n",
            self.threshold * 100.0
        );
        for (name, verdict) in &self.rows {
            let cell = match verdict {
                Verdict::Ok { ratio } => format!("ok        {:+6.1}%", (ratio - 1.0) * 100.0),
                Verdict::Regressed { ratio } => {
                    format!("REGRESSED {:+6.1}%", (ratio - 1.0) * 100.0)
                }
                Verdict::Noise { ratio } => {
                    format!(
                        "noise     {:+6.1}% (baseline under floor)",
                        (ratio - 1.0) * 100.0
                    )
                }
                Verdict::Missing => "MISSING from current run".to_string(),
                Verdict::New => "new (no baseline)".to_string(),
            };
            out.push_str(&format!("  {name:<width$}  {cell}\n"));
        }
        out
    }
}

/// Compares `current` medians against `baseline` with a relative
/// `threshold` (0.30 = fail when current is >30% slower) and an absolute
/// `noise_floor` in seconds: benches whose baseline median sits under the
/// floor get [`Verdict::Noise`] instead of a regression verdict — on
/// sub-millisecond benches a quick-mode run's jitter routinely exceeds
/// any sensible relative threshold, so a relative verdict is meaningless
/// there. Missing benches are still reported regardless of the floor.
pub fn compare(
    baseline: &BenchMap,
    current: &BenchMap,
    threshold: f64,
    noise_floor: f64,
) -> GateReport {
    let mut rows = Vec::new();
    for (name, &base) in baseline {
        match current.get(name) {
            None => rows.push((name.clone(), Verdict::Missing)),
            Some(&cur) => {
                let ratio = if base > 0.0 {
                    cur / base
                } else {
                    f64::INFINITY
                };
                let verdict = if base < noise_floor {
                    Verdict::Noise { ratio }
                } else if ratio > 1.0 + threshold {
                    Verdict::Regressed { ratio }
                } else {
                    Verdict::Ok { ratio }
                };
                rows.push((name.clone(), verdict));
            }
        }
    }
    for name in current.keys() {
        if !baseline.contains_key(name) {
            rows.push((name.clone(), Verdict::New));
        }
    }
    GateReport {
        rows,
        threshold,
        noise_floor,
    }
}

/// Renders a GitHub-flavored markdown table comparing `current` against
/// `baseline` — the `bench_gate summary` payload for
/// `$GITHUB_STEP_SUMMARY`.
pub fn markdown_summary(
    baseline: &BenchMap,
    current: &BenchMap,
    threshold: f64,
    noise_floor: f64,
) -> String {
    let report = compare(baseline, current, threshold, noise_floor);
    let mut out = String::new();
    out.push_str(&format!(
        "### Bench gate: baseline vs PR (fail above {:.0}% regression)\n\n",
        threshold * 100.0
    ));
    out.push_str("| bench | baseline | PR | Δ | verdict |\n");
    out.push_str("|---|---:|---:|---:|---|\n");
    for (name, verdict) in &report.rows {
        let base = baseline.get(name).copied();
        let cur = current.get(name).copied();
        let fmt = |v: Option<f64>| v.map_or("—".to_string(), fmt_seconds);
        let (delta, cell) = match verdict {
            Verdict::Ok { ratio } => (format!("{:+.1}%", (ratio - 1.0) * 100.0), "ok".to_string()),
            Verdict::Regressed { ratio } => (
                format!("{:+.1}%", (ratio - 1.0) * 100.0),
                "**REGRESSED**".to_string(),
            ),
            Verdict::Noise { ratio } => (
                format!("{:+.1}%", (ratio - 1.0) * 100.0),
                "noise (under floor)".to_string(),
            ),
            Verdict::Missing => ("—".to_string(), "**MISSING** from PR run".to_string()),
            Verdict::New => ("—".to_string(), "new (no baseline)".to_string()),
        };
        out.push_str(&format!(
            "| `{name}` | {} | {} | {delta} | {cell} |\n",
            fmt(base),
            fmt(cur)
        ));
    }
    let summary = if report.passed() {
        "\n**PASS** — no regressions, no missing benches.\n".to_string()
    } else {
        format!(
            "\n**FAIL** — {} regressed, {} missing.\n",
            report.regressed().len(),
            report.missing().len()
        )
    };
    out.push_str(&summary);
    out
}

/// Formats seconds human-readably for the markdown table.
fn fmt_seconds(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= 1e-3 {
        format!("{:.2} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.2} µs", secs * 1e6)
    } else {
        format!("{:.0} ns", secs * 1e9)
    }
}

/// Serializes one history record per bench — `{"run": label, "name": ...,
/// "median_s": ...}` JSON lines appended to the committed
/// `BENCH_history.jsonl`, so the perf trajectory accumulates across PRs.
/// The lines stay parseable by [`collect_jsonl`] (extra string fields are
/// tolerated).
pub fn history_lines(label: &str, map: &BenchMap) -> String {
    let mut out = String::new();
    for (name, median) in map {
        out.push_str(&format!(
            "{{\"run\": \"{}\", \"name\": \"{}\", \"median_s\": {median:e}}}\n",
            escape(label),
            escape(name)
        ));
    }
    out
}

/// How [`collect_jsonl_with`] resolves duplicate bench names across the
/// appended runs in one raw jsonl file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fold {
    /// The last record wins — one run's snapshot (`BENCH_pr.json`).
    Last,
    /// The per-bench maximum wins — the conservative baseline fold
    /// (append 3 quick runs to one file, collect with `--fold max`;
    /// see OPERATIONS.md).
    Max,
}

/// Folds criterion-shim JSON lines (`{"name": ..., "median_s": ...}`)
/// into a [`BenchMap`]. The last record wins on duplicate names; use
/// [`collect_jsonl_with`] to pick a different fold.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn collect_jsonl(text: &str) -> Result<BenchMap, String> {
    collect_jsonl_with(text, Fold::Last)
}

/// [`collect_jsonl`] with an explicit duplicate-name [`Fold`].
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn collect_jsonl_with(text: &str, fold: Fold) -> Result<BenchMap, String> {
    let mut map = BenchMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let obj = parse_flat_object(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let name = match obj.strings.get("name") {
            Some(n) => n.clone(),
            None => return Err(format!("line {}: record without \"name\"", idx + 1)),
        };
        let median = match obj.numbers.get("median_s") {
            Some(&m) => m,
            None => return Err(format!("line {}: record without \"median_s\"", idx + 1)),
        };
        match (fold, map.get(&name)) {
            (Fold::Max, Some(&prev)) if prev >= median => {}
            _ => {
                map.insert(name, median);
            }
        }
    }
    Ok(map)
}

/// Parses a flat `{"name": number}` JSON object — the `BENCH_*.json`
/// format.
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse_bench_map(text: &str) -> Result<BenchMap, String> {
    let obj = parse_flat_object(text)?;
    if !obj.strings.is_empty() {
        return Err("bench map values must be numbers".to_string());
    }
    Ok(obj.numbers.into_iter().collect())
}

/// Serializes a [`BenchMap`] as a stable, pretty-printed JSON object.
pub fn bench_map_to_json(map: &BenchMap) -> String {
    let mut out = String::from("{\n");
    let mut first = true;
    for (name, median) in map {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("  \"{}\": {:e}", escape(name), median));
    }
    out.push_str("\n}\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A flat JSON object split by value type.
struct FlatObject {
    strings: BTreeMap<String, String>,
    numbers: BTreeMap<String, f64>,
}

/// Hand-rolled parser for one flat JSON object with string or numeric
/// values (no nesting, no arrays, no booleans — the gate formats).
fn parse_flat_object(text: &str) -> Result<FlatObject, String> {
    let mut chars = text.chars().peekable();
    let mut strings = BTreeMap::new();
    let mut numbers = BTreeMap::new();
    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(FlatObject { strings, numbers });
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        match chars.peek() {
            Some('"') => {
                let value = parse_string(&mut chars)?;
                strings.insert(key, value);
            }
            Some(_) => {
                let value = parse_number(&mut chars)?;
                numbers.insert(key, value);
            }
            None => return Err("unexpected end of input".to_string()),
        }
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if let Some(c) = chars.next() {
        return Err(format!("trailing content starting at {c:?}"));
    }
    Ok(FlatObject { strings, numbers })
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn expect(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, want: char) -> Result<(), String> {
    match chars.next() {
        Some(c) if c == want => Ok(()),
        other => Err(format!("expected {want:?}, found {other:?}")),
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                    out.push(char::from_u32(code).ok_or(format!("bad codepoint {code}"))?);
                }
                other => return Err(format!("unsupported escape {other:?}")),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_number(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<f64, String> {
    let mut buf = String::new();
    while chars
        .peek()
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
    {
        buf.push(chars.next().expect("peeked"));
    }
    buf.parse::<f64>()
        .map_err(|_| format!("bad number {buf:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_roundtrip_through_bench_map() {
        let lines = concat!(
            "{\"name\": \"pipeline/gnp/32\", \"median_s\": 1.5e-3, \"mean_s\": 1.6e-3, \"min_s\": 1.4e-3}\n",
            "{\"name\": \"engine/flood\", \"median_s\": 2e-2, \"mean_s\": 2e-2, \"min_s\": 2e-2}\n",
            "{\"name\": \"pipeline/gnp/32\", \"median_s\": 2.5e-3, \"mean_s\": 0, \"min_s\": 0}\n",
        );
        let map = collect_jsonl(lines).unwrap();
        assert_eq!(map.len(), 2);
        assert!((map["pipeline/gnp/32"] - 2.5e-3).abs() < 1e-12); // last wins
        let json = bench_map_to_json(&map);
        let back = parse_bench_map(&json).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn max_fold_keeps_the_slowest_duplicate() {
        let lines = concat!(
            "{\"name\": \"a\", \"median_s\": 3.0}\n",
            "{\"name\": \"a\", \"median_s\": 1.0}\n",
            "{\"name\": \"b\", \"median_s\": 2.0}\n",
            "{\"name\": \"b\", \"median_s\": 5.0}\n",
        );
        let map = collect_jsonl_with(lines, Fold::Max).unwrap();
        assert_eq!(map.len(), 2);
        assert!((map["a"] - 3.0).abs() < 1e-12);
        assert!((map["b"] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        let err = collect_jsonl("{\"name\": \"a\", \"median_s\": 1}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2"), "{err}");
        let err = collect_jsonl("{\"median_s\": 1}\n").unwrap_err();
        assert!(err.contains("name"), "{err}");
        let err = collect_jsonl("{\"name\": \"a\"}\n").unwrap_err();
        assert!(err.contains("median_s"), "{err}");
    }

    #[test]
    fn compare_flags_regressions_missing_and_new() {
        let baseline: BenchMap = [
            ("a".to_string(), 1.0),
            ("b".to_string(), 1.0),
            ("gone".to_string(), 1.0),
        ]
        .into_iter()
        .collect();
        let current: BenchMap = [
            ("a".to_string(), 1.2),
            ("b".to_string(), 1.5),
            ("fresh".to_string(), 9.0),
        ]
        .into_iter()
        .collect();
        let report = compare(&baseline, &current, 0.30, 0.0);
        assert!(!report.passed());
        let verdict = |name: &str| {
            report
                .rows
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert!(matches!(verdict("a"), Verdict::Ok { .. }));
        assert!(matches!(verdict("b"), Verdict::Regressed { .. }));
        assert!(matches!(verdict("gone"), Verdict::Missing));
        assert!(matches!(verdict("fresh"), Verdict::New));
        let text = report.to_text();
        assert!(text.contains("REGRESSED") && text.contains("MISSING"));
    }

    #[test]
    fn regressed_and_missing_list_every_offender() {
        let baseline: BenchMap = [
            ("slow1".to_string(), 1.0),
            ("slow2".to_string(), 1.0),
            ("gone1".to_string(), 1.0),
            ("gone2".to_string(), 1.0),
            ("fine".to_string(), 1.0),
        ]
        .into_iter()
        .collect();
        let current: BenchMap = [
            ("slow1".to_string(), 2.0),
            ("slow2".to_string(), 5.0),
            ("fine".to_string(), 1.0),
        ]
        .into_iter()
        .collect();
        let report = compare(&baseline, &current, 0.30, 0.0);
        assert_eq!(
            report.regressed(),
            vec![("slow2", 5.0), ("slow1", 2.0)],
            "all regressions, worst first"
        );
        assert_eq!(report.missing(), vec!["gone1", "gone2"]);
    }

    #[test]
    fn markdown_summary_covers_every_row() {
        let baseline: BenchMap = [("a".to_string(), 1.0), ("gone".to_string(), 2e-3)]
            .into_iter()
            .collect();
        let current: BenchMap = [("a".to_string(), 1.5), ("fresh".to_string(), 3e-6)]
            .into_iter()
            .collect();
        let md = markdown_summary(&baseline, &current, 0.30, 0.0);
        assert!(md.contains("| `a` | 1.00 s | 1.50 s | +50.0% | **REGRESSED** |"));
        assert!(md.contains("| `gone` | 2.00 ms | — | — | **MISSING** from PR run |"));
        assert!(md.contains("| `fresh` | — | 3.00 µs | — | new (no baseline) |"));
        assert!(md.contains("**FAIL** — 1 regressed, 1 missing."));
        let ok = markdown_summary(&baseline, &baseline, 0.30, 0.0);
        assert!(ok.contains("**PASS**"));
    }

    #[test]
    fn history_lines_roundtrip_through_collect() {
        let map: BenchMap = [("a/b".to_string(), 1.5e-3), ("c".to_string(), 2.0)]
            .into_iter()
            .collect();
        let lines = history_lines("abc123", &map);
        assert_eq!(lines.lines().count(), 2);
        assert!(lines.contains("\"run\": \"abc123\""));
        let back = collect_jsonl(&lines).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn compare_passes_within_threshold() {
        let baseline: BenchMap = [("a".to_string(), 1.0)].into_iter().collect();
        let current: BenchMap = [("a".to_string(), 1.29)].into_iter().collect();
        assert!(compare(&baseline, &current, 0.30, 0.0).passed());
        // Speedups always pass.
        let current: BenchMap = [("a".to_string(), 0.1)].into_iter().collect();
        assert!(compare(&baseline, &current, 0.30, 0.0).passed());
    }

    #[test]
    fn noise_floor_suppresses_tiny_bench_regressions() {
        // 1 ms baseline doubling: a regression without a floor, noise
        // with a 5 ms floor. A slow bench still regresses either way,
        // and missing benches are never excused by the floor.
        let baseline: BenchMap = [
            ("tiny".to_string(), 1e-3),
            ("big".to_string(), 1.0),
            ("gone".to_string(), 1e-4),
        ]
        .into_iter()
        .collect();
        let current: BenchMap = [("tiny".to_string(), 2e-3), ("big".to_string(), 2.0)]
            .into_iter()
            .collect();
        let without = compare(&baseline, &current, 0.30, 0.0);
        assert!(matches!(
            without.rows.iter().find(|(n, _)| n == "tiny").unwrap().1,
            Verdict::Regressed { .. }
        ));
        let with = compare(&baseline, &current, 0.30, 5e-3);
        assert!(matches!(
            with.rows.iter().find(|(n, _)| n == "tiny").unwrap().1,
            Verdict::Noise { .. }
        ));
        assert!(matches!(
            with.rows.iter().find(|(n, _)| n == "big").unwrap().1,
            Verdict::Regressed { .. }
        ));
        assert!(matches!(
            with.rows.iter().find(|(n, _)| n == "gone").unwrap().1,
            Verdict::Missing
        ));
        assert!(!with.passed(), "big regression + missing still fail");
        // Only the tiny bench regressed → the floor alone rescues the run.
        let only_tiny: BenchMap = [("tiny".to_string(), 1e-3)].into_iter().collect();
        let cur_tiny: BenchMap = [("tiny".to_string(), 9e-3)].into_iter().collect();
        assert!(!compare(&only_tiny, &cur_tiny, 0.30, 0.0).passed());
        assert!(compare(&only_tiny, &cur_tiny, 0.30, 5e-3).passed());
        let text = compare(&only_tiny, &cur_tiny, 0.30, 5e-3).to_text();
        assert!(text.contains("noise"), "{text}");
        let md = markdown_summary(&only_tiny, &cur_tiny, 0.30, 5e-3);
        assert!(md.contains("noise (under floor)"), "{md}");
        assert!(md.contains("**PASS**"), "{md}");
    }

    #[test]
    fn escaped_names_survive() {
        let map: BenchMap = [("we\"ird\\name".to_string(), 0.5)].into_iter().collect();
        let back = parse_bench_map(&bench_map_to_json(&map)).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn empty_object_and_empty_input() {
        assert!(parse_bench_map("{}").unwrap().is_empty());
        assert!(collect_jsonl("").unwrap().is_empty());
        assert!(parse_bench_map("[1]").is_err());
    }
}
