//! The workload families used by the experiments, with their ground-truth
//! structure where applicable — including the large-graph tier
//! ([`scale_tier`]) built on the `O(n + m)` chunk-parallel generators.

use graph::gen::PlantedPartition;
use graph::{gen, Graph, VertexId, VertexSet};
use triangle::EdgeOp;

/// A graph plus the most balanced planted sparse cut we know it contains.
#[derive(Debug, Clone)]
pub struct PlantedCutWorkload {
    /// Short family label for tables.
    pub name: String,
    /// The graph.
    pub graph: Graph,
    /// The planted cut (one side).
    pub planted: VertexSet,
}

/// Dumbbell workloads with planted balance sweeping from 1/2 downward.
pub fn dumbbell_sweep() -> Vec<PlantedCutWorkload> {
    [(16usize, 16usize), (22, 12), (28, 8), (32, 5)]
        .into_iter()
        .map(|(a, b)| {
            let (graph, left) = gen::dumbbell(a, b, 1).expect("valid dumbbell");
            PlantedCutWorkload {
                name: format!("K{a}+K{b}"),
                graph,
                planted: left,
            }
        })
        .collect()
}

/// SBM two-block workloads of increasing size (balanced planted cut).
pub fn sbm_sweep(sizes: &[usize]) -> Vec<PlantedCutWorkload> {
    sizes
        .iter()
        .map(|&half| {
            let pp =
                gen::planted_partition(&[half, half], 0.4, 4.0 / half as f64 * 0.05, half as u64)
                    .expect("valid SBM");
            PlantedCutWorkload {
                name: format!("sbm{}", 2 * half),
                planted: pp.blocks[0].clone(),
                graph: pp.graph,
            }
        })
        .collect()
}

/// The decomposition scaling family: rings of cliques with `n` vertices.
pub fn ring_family(n: usize) -> (Graph, usize) {
    let clique = 8usize;
    let count = (n / clique).max(3);
    let (g, _) = gen::ring_of_cliques(count, clique).expect("valid ring");
    (g, count)
}

/// The triangle scaling family: `G(n, p)` as in the Ω̃(n^{1/3}) lower
/// bound construction (which uses p = 1/2).
pub fn gnp_family(n: usize, p: f64, seed: u64) -> Graph {
    gen::gnp(n, p, seed).expect("valid gnp")
}

/// Expander family for routing experiments.
pub fn expander_family(n: usize, seed: u64) -> Graph {
    gen::random_regular(n, 8, seed).expect("valid regular graph")
}

/// Conductance-sweep family for the mixing-time experiment: (name, graph,
/// analytic conductance when known).
pub fn mixing_family() -> Vec<(String, Graph, Option<f64>)> {
    let mut out: Vec<(String, Graph, Option<f64>)> = Vec::new();
    let (bar, left) = gen::barbell(12).expect("barbell");
    let phi_bar = bar.conductance(&left).expect("cut exists");
    out.push(("barbell12".into(), bar, Some(phi_bar)));
    let cyc = gen::cycle(64).expect("cycle");
    out.push(("cycle64".into(), cyc, Some(2.0 / 64.0)));
    let grid = gen::grid(8, 8).expect("grid");
    out.push(("grid8x8".into(), grid, None));
    let reg = gen::random_regular(64, 8, 5).expect("regular");
    out.push(("regular8".into(), reg, None));
    let k = gen::complete(32).expect("complete");
    out.push(("K32".into(), k, Some(0.5 * 32.0 / 62.0)));
    out
}

/// One workload of the large-graph tier.
#[derive(Debug, Clone)]
pub struct ScaleWorkload {
    /// Short family label for tables and bench names.
    pub name: String,
    /// The graph, sized to roughly the requested edge target.
    pub graph: Graph,
    /// Ground-truth clusters, when the family plants them — the scale
    /// pipeline runs on these via `ClusterAssignment::from_parts`
    /// instead of paying for the measured decomposition.
    pub planted: Option<Vec<VertexSet>>,
    /// Nominal conductance promise of the planted clusters.
    pub planted_phi: f64,
}

/// Power-law member of the scale tier: Chung–Lu with average degree 10,
/// `n` chosen so `m ≈ target_edges`.
pub fn scale_power_law(target_edges: usize, seed: u64) -> Graph {
    let avg = 10.0;
    let n = ((2.0 * target_edges as f64 / avg) as usize).max(16);
    gen::power_law_fast(n, 2.5, avg, seed).expect("valid power-law parameters")
}

/// Planted-partition member of the scale tier: equal blocks of ≈2k
/// vertices (at least 4) with a 4:1 intra:inter edge split,
/// `m ≈ target_edges`. Block size is capped so per-cluster work stays
/// bounded while the cluster count grows with the instance — the shape
/// the recursion scheduler is built for.
pub fn scale_planted_partition(target_edges: usize, seed: u64) -> PlantedPartition {
    let avg = 12.0;
    let n = ((2.0 * target_edges as f64 / avg) as usize).max(16);
    let blocks = (n / 2048).max(4);
    let size = n / blocks;
    let intra_pairs = blocks as f64 * (size * (size - 1) / 2) as f64;
    let total_pairs = (n * (n - 1) / 2) as f64;
    let p_in = (0.8 * target_edges as f64 / intra_pairs.max(1.0)).min(1.0);
    let p_out = (0.2 * target_edges as f64 / (total_pairs - intra_pairs).max(1.0)).min(1.0);
    gen::planted_partition_fast(&vec![size; blocks], p_in, p_out, seed)
        .expect("valid partition parameters")
}

/// Ring-of-expanders member of the scale tier: blocks of 256 vertices
/// at degree 16, `count` chosen so `m ≈ target_edges`. (Block size
/// trades cluster-job granularity against the `O(count·n)` memory of
/// the planted `VertexSet` masks.)
pub fn scale_ring_of_expanders(target_edges: usize, seed: u64) -> (Graph, Vec<VertexSet>) {
    let (size, degree) = (256usize, 16usize);
    let per_block = size * degree / 2 + 1;
    let count = (target_edges / per_block).max(2);
    gen::ring_of_expanders(count, size, degree, seed).expect("valid ring parameters")
}

/// The large-graph workload tier: one instance per scale family, each
/// sized to roughly `target_edges` (pass ≥ 1_000_000 for the headline
/// tier; CI's `scale-smoke` caps it at ~100k).
pub fn scale_tier(target_edges: usize, seed: u64) -> Vec<ScaleWorkload> {
    let pp = scale_planted_partition(target_edges, seed);
    let (ring, blocks) = scale_ring_of_expanders(target_edges, seed);
    vec![
        ScaleWorkload {
            name: "power_law".into(),
            graph: scale_power_law(target_edges, seed),
            planted: None,
            planted_phi: 0.0,
        },
        ScaleWorkload {
            name: "planted4".into(),
            graph: pp.graph,
            planted: Some(pp.blocks),
            planted_phi: 0.1,
        },
        ScaleWorkload {
            name: "ring_expanders".into(),
            graph: ring,
            planted: Some(blocks),
            planted_phi: 0.25,
        },
    ]
}

/// A deterministic churn batch for the dynamic-graph tier: ~half
/// deletions of real edges (sampled from the base graph), ~half
/// insertions of fresh pairs, with a sprinkle of the regression-prone
/// shapes (delete-then-reinsert, parallel copies, self loops). The
/// stream is a pure function of `(g, seed, len)`.
pub fn churn_ops(g: &Graph, seed: u64, len: usize) -> Vec<EdgeOp> {
    let n = g.n().max(1) as u64;
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut ops = Vec::with_capacity(len);
    while ops.len() < len {
        let u = (next() % n) as VertexId;
        let v = (next() % n) as VertexId;
        match next() % 8 {
            0..=2 => ops.push(EdgeOp::Insert(u, v)),
            3..=5 if !edges.is_empty() => {
                let (a, b) = edges[(next() % edges.len() as u64) as usize];
                ops.push(EdgeOp::Delete(a, b));
            }
            6 if !edges.is_empty() => {
                let (a, b) = edges[(next() % edges.len() as u64) as usize];
                ops.push(EdgeOp::Delete(a, b));
                ops.push(EdgeOp::Insert(a, b));
            }
            7 => ops.push(EdgeOp::Insert(u, u)),
            _ => ops.push(EdgeOp::Insert(u, v)),
        }
    }
    ops.truncate(len);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dumbbell_sweep_has_decreasing_balance() {
        let ws = dumbbell_sweep();
        assert_eq!(ws.len(), 4);
        let balances: Vec<f64> = ws
            .iter()
            .map(|w| w.graph.balance(&w.planted).unwrap())
            .collect();
        for pair in balances.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-9, "balances {balances:?}");
        }
    }

    #[test]
    fn sbm_sweep_blocks_are_sparse() {
        for w in sbm_sweep(&[24, 48]) {
            let phi = w.graph.conductance(&w.planted).unwrap();
            assert!(phi < 0.2, "{}: Φ = {phi}", w.name);
        }
    }

    #[test]
    fn ring_family_scales() {
        let (g, count) = ring_family(128);
        assert_eq!(g.n(), count * 8);
    }

    #[test]
    fn scale_tier_hits_the_edge_target() {
        for w in scale_tier(20_000, 7) {
            let m = w.graph.m() as f64;
            assert!(
                (m - 20_000.0).abs() < 0.3 * 20_000.0,
                "{}: m = {m} far from 20k",
                w.name
            );
        }
    }

    #[test]
    fn scale_planted_partition_keeps_blocks() {
        let pp = scale_planted_partition(10_000, 3);
        assert_eq!(pp.blocks.len(), 4);
        let phi = pp.graph.conductance(&pp.blocks[0]).unwrap();
        assert!(phi < 0.25, "planted cut conductance {phi}");
    }

    #[test]
    fn churn_ops_is_deterministic_and_sized() {
        let g = gen::gnp(50, 0.2, 1).unwrap();
        let a = churn_ops(&g, 9, 200);
        let b = churn_ops(&g, 9, 200);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert!(a.iter().any(|op| matches!(op, EdgeOp::Delete(_, _))));
        assert!(a.iter().any(|op| matches!(op, EdgeOp::Insert(_, _))));
    }

    #[test]
    fn mixing_family_is_diverse() {
        let fam = mixing_family();
        assert!(fam.len() >= 5);
        for (name, g, _) in fam {
            assert!(g.n() > 0, "{name} empty");
        }
    }
}
