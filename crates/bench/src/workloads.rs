//! The workload families used by the experiments, with their ground-truth
//! structure where applicable.

use graph::{gen, Graph, VertexSet};

/// A graph plus the most balanced planted sparse cut we know it contains.
#[derive(Debug, Clone)]
pub struct PlantedCutWorkload {
    /// Short family label for tables.
    pub name: String,
    /// The graph.
    pub graph: Graph,
    /// The planted cut (one side).
    pub planted: VertexSet,
}

/// Dumbbell workloads with planted balance sweeping from 1/2 downward.
pub fn dumbbell_sweep() -> Vec<PlantedCutWorkload> {
    [(16usize, 16usize), (22, 12), (28, 8), (32, 5)]
        .into_iter()
        .map(|(a, b)| {
            let (graph, left) = gen::dumbbell(a, b, 1).expect("valid dumbbell");
            PlantedCutWorkload {
                name: format!("K{a}+K{b}"),
                graph,
                planted: left,
            }
        })
        .collect()
}

/// SBM two-block workloads of increasing size (balanced planted cut).
pub fn sbm_sweep(sizes: &[usize]) -> Vec<PlantedCutWorkload> {
    sizes
        .iter()
        .map(|&half| {
            let pp =
                gen::planted_partition(&[half, half], 0.4, 4.0 / half as f64 * 0.05, half as u64)
                    .expect("valid SBM");
            PlantedCutWorkload {
                name: format!("sbm{}", 2 * half),
                planted: pp.blocks[0].clone(),
                graph: pp.graph,
            }
        })
        .collect()
}

/// The decomposition scaling family: rings of cliques with `n` vertices.
pub fn ring_family(n: usize) -> (Graph, usize) {
    let clique = 8usize;
    let count = (n / clique).max(3);
    let (g, _) = gen::ring_of_cliques(count, clique).expect("valid ring");
    (g, count)
}

/// The triangle scaling family: `G(n, p)` as in the Ω̃(n^{1/3}) lower
/// bound construction (which uses p = 1/2).
pub fn gnp_family(n: usize, p: f64, seed: u64) -> Graph {
    gen::gnp(n, p, seed).expect("valid gnp")
}

/// Expander family for routing experiments.
pub fn expander_family(n: usize, seed: u64) -> Graph {
    gen::random_regular(n, 8, seed).expect("valid regular graph")
}

/// Conductance-sweep family for the mixing-time experiment: (name, graph,
/// analytic conductance when known).
pub fn mixing_family() -> Vec<(String, Graph, Option<f64>)> {
    let mut out: Vec<(String, Graph, Option<f64>)> = Vec::new();
    let (bar, left) = gen::barbell(12).expect("barbell");
    let phi_bar = bar.conductance(&left).expect("cut exists");
    out.push(("barbell12".into(), bar, Some(phi_bar)));
    let cyc = gen::cycle(64).expect("cycle");
    out.push(("cycle64".into(), cyc, Some(2.0 / 64.0)));
    let grid = gen::grid(8, 8).expect("grid");
    out.push(("grid8x8".into(), grid, None));
    let reg = gen::random_regular(64, 8, 5).expect("regular");
    out.push(("regular8".into(), reg, None));
    let k = gen::complete(32).expect("complete");
    out.push(("K32".into(), k, Some(0.5 * 32.0 / 62.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dumbbell_sweep_has_decreasing_balance() {
        let ws = dumbbell_sweep();
        assert_eq!(ws.len(), 4);
        let balances: Vec<f64> = ws
            .iter()
            .map(|w| w.graph.balance(&w.planted).unwrap())
            .collect();
        for pair in balances.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-9, "balances {balances:?}");
        }
    }

    #[test]
    fn sbm_sweep_blocks_are_sparse() {
        for w in sbm_sweep(&[24, 48]) {
            let phi = w.graph.conductance(&w.planted).unwrap();
            assert!(phi < 0.2, "{}: Φ = {phi}", w.name);
        }
    }

    #[test]
    fn ring_family_scales() {
        let (g, count) = ring_family(128);
        assert_eq!(g.n(), count * 8);
    }

    #[test]
    fn mixing_family_is_diverse() {
        let fam = mixing_family();
        assert!(fam.len() >= 5);
        for (name, g, _) in fam {
            assert!(g.n() > 0, "{name} empty");
        }
    }
}
