//! Experiment harness shared by the `exp_*` binaries and the Criterion
//! benches: table formatting, exponent fitting, and the workload builders
//! every experiment in EXPERIMENTS.md uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod tables;
pub mod workloads;

pub use tables::{fit_exponent, Table};
pub use workloads::*;
