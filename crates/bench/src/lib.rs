//! Experiment harness shared by the `exp_*` binaries and the Criterion
//! benches: table formatting, exponent fitting, and the workload builders
//! every experiment in EXPERIMENTS.md uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod serve;
pub mod tables;
pub mod workloads;

pub use serve::serve_query_stream;
pub use tables::{fit_exponent, Table};
pub use workloads::*;

/// Whether the current experiment binary runs in tiny-input mode: either
/// `--tiny` was passed on the command line or `EXP_TINY=1` is set. CI's
/// `examples-smoke` job runs every `exp_*` binary this way so the
/// experiment code cannot bit-rot without ever being executed.
pub fn tiny_mode() -> bool {
    std::env::args().any(|a| a == "--tiny")
        || std::env::var("EXP_TINY").map(|v| v == "1").unwrap_or(false)
}

/// Picks the tiny or the full variant of a workload knob, per
/// [`tiny_mode`].
pub fn tiny_or<T>(tiny: T, full: T) -> T {
    if tiny_mode() {
        tiny
    } else {
        full
    }
}
