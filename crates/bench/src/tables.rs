//! Aligned-text + CSV table output and scaling-exponent fits.

/// A simple result table: named columns, rows of strings, printed both as
/// aligned text (for eyeballs) and CSV (for plots).
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given title and column names.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned-text form.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("## {}\n", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders the CSV form (comma-separated, header first).
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints text and CSV to stdout.
    pub fn print(&self) {
        println!("{}", self.to_text());
        println!("csv:\n{}", self.to_csv());
    }
}

/// Least-squares fit of `y = c·x^α` in log space; returns the exponent α.
///
/// # Panics
///
/// Panics if fewer than two points or non-positive values are supplied.
pub fn fit_exponent(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(x > 0.0 && y > 0.0, "fit requires positive values");
            (x.ln(), y.ln())
        })
        .collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = Table::new("demo", &["n", "rounds"]);
        t.row(vec!["16".into(), "100".into()]);
        t.row(vec!["1024".into(), "9000".into()]);
        let text = t.to_text();
        assert!(text.contains("demo") && text.contains("1024"));
        let csv = t.to_csv();
        assert!(csv.starts_with("n,rounds\n"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_length_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn exponent_fit_recovers_power_laws() {
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|i| (i as f64, 3.0 * (i as f64).powf(1.5)))
            .collect();
        let alpha = fit_exponent(&pts);
        assert!((alpha - 1.5).abs() < 1e-9);
        let flat: Vec<(f64, f64)> = (1..=5).map(|i| (i as f64, 7.0)).collect();
        assert!(fit_exponent(&flat).abs() < 1e-9);
    }
}
