//! **E7 — the scale sweep**: the large-graph workload tier through the
//! parallel cluster-recursion scheduler, swept over edge target, thread
//! count and execution mode.
//!
//! For every workload of [`bench_suite::scale_tier`] (power-law,
//! planted partition, ring of expanders — each ≈ `--edges` edges):
//!
//! 1. time the chunk-parallel generation (CSR built via
//!    `Graph::from_edge_chunks`),
//! 2. run the triangle pipeline once per `(mode, threads)` combo and
//!    record wall-clock next to the scheduler's `RecursionReport`
//!    (jobs, steals, imbalance, arena reuse),
//! 3. assert every combo lists the **same** triangle count (sequential
//!    vs parallel bit-identity; `--verify` additionally checks the
//!    centralized counter).
//!
//! Families with planted clusters (planted partition, ring of
//! expanders) run `enumerate_with_assignment` on their ground-truth
//! blocks — the full cluster machinery (scheduler fan-out, routing,
//! engine enumeration, residual) without the measured Theorem 1
//! decomposition, which is the bottleneck beyond ~10³ edges (its
//! peeling loop rebuilds the working graph per removal). The power-law
//! family has no planted clusters, so it runs the measured
//! decomposition up to `--decompose-cap` edges and the centralized
//! counter beyond that — logged loudly, never silently skipped.
//!
//! `--json <path>` appends one `{"name": ..., "median_s": ...}` line per
//! measurement — the format `bench_gate collect` already consumes, so
//! CI's `scale-smoke` job uploads the sweep as a bench artifact. Next to
//! each run's total wall the sweep emits the **cluster-phase split**
//! (`.../decompose`, `.../clusters.dlp`, `.../clusters.exchange`,
//! `.../clusters.join`, `.../merge` entries, mirrored in the table's
//! `dlp_s`/`exch_s`/`join_s` columns), so a phase-level regression is
//! attributable from the jsonl alone. The split sums per-job walls
//! across cluster jobs — worker CPU time, which can exceed the elapsed
//! `clusters` wall when jobs overlap in parallel mode.
//!
//! Defaults target the million-edge tier; pass `--edges 100000` (CI),
//! `--tiny` (≈20k) for capped runs, or `--edges 10000000` for the
//! nightly ten-million-edge ceiling tier.

use bench_suite::{scale_tier, Table};
use congest::ExecMode;
use expander::{ClusterAssignment, SchedulerPolicy};
use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;
use triangle::pipeline::{
    enumerate_via_decomposition, enumerate_with_assignment, Packing, PipelineParams,
};

struct Args {
    edges: usize,
    threads: Vec<usize>,
    modes: Vec<&'static str>,
    seed: u64,
    json: Option<String>,
    families: Option<Vec<String>>,
    verify: bool,
    max_depth: usize,
    decompose_cap: usize,
    /// Force the measured Theorem 1 decomposition for *every* family,
    /// ignoring planted clusters and the decompose cap.
    measured: bool,
    /// Fail the sweep if any single pipeline run exceeds this wall-clock
    /// budget (seconds) — the CI `decomp-scale-smoke` guard.
    budget_s: Option<f64>,
    /// Adjacency-exchange wire format (`packed` default; `unpacked` is
    /// the one-id-per-round ablation — the table's exch_rounds column
    /// shows the packing factor between the two).
    packing: Packing,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        edges: 1_000_000,
        threads: vec![1, 2, 4],
        modes: vec!["seq", "par"],
        seed: 42,
        json: None,
        families: None,
        verify: false,
        max_depth: 2,
        // The incremental working-graph overlay runs the measured
        // decomposition at the million-edge tier, so the default path for
        // families without planted clusters IS the measured decomposition
        // now; the cap only guards accidental 10⁷+-edge invocations.
        decompose_cap: 2_000_000,
        measured: false,
        budget_s: None,
        packing: Packing::Packed,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--edges" => {
                args.edges = value("--edges")?
                    .parse()
                    .map_err(|e| format!("bad --edges: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("bad --threads: {e}"))
                    })
                    .collect::<Result<_, _>>()?
            }
            "--modes" => {
                let raw = value("--modes")?;
                args.modes = raw
                    .split(',')
                    .map(|m| match m.trim() {
                        "seq" => Ok("seq"),
                        "par" => Ok("par"),
                        other => Err(format!("unknown mode {other:?} (want seq|par)")),
                    })
                    .collect::<Result<_, _>>()?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--json" => args.json = Some(value("--json")?),
            "--families" => {
                args.families = Some(
                    value("--families")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .collect(),
                )
            }
            "--max-depth" => {
                args.max_depth = value("--max-depth")?
                    .parse()
                    .map_err(|e| format!("bad --max-depth: {e}"))?
            }
            "--decompose-cap" => {
                args.decompose_cap = value("--decompose-cap")?
                    .parse()
                    .map_err(|e| format!("bad --decompose-cap: {e}"))?
            }
            "--packing" => {
                args.packing = match value("--packing")?.as_str() {
                    "packed" => Packing::Packed,
                    "unpacked" => Packing::Unpacked,
                    other => {
                        return Err(format!("unknown packing {other:?} (want packed|unpacked)"))
                    }
                }
            }
            "--verify" => args.verify = true,
            "--measured" => args.measured = true,
            "--budget-s" => {
                args.budget_s = Some(
                    value("--budget-s")?
                        .parse()
                        .map_err(|e| format!("bad --budget-s: {e}"))?,
                )
            }
            "--tiny" => args.edges = 20_000,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.threads.is_empty() || args.modes.is_empty() {
        return Err("need at least one thread count and one mode".to_string());
    }
    Ok(args)
}

fn emit_json(path: &Option<String>, name: &str, seconds: f64) {
    let Some(path) = path else { return };
    let line = format!("{{\"name\": \"{name}\", \"median_s\": {seconds:e}}}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("exp_scale: cannot append to {path}: {e}");
    }
}

/// "1m", "100k", "20k" — compact edge-target label for bench names.
fn edge_label(edges: usize) -> String {
    if edges % 1_000_000 == 0 && edges > 0 {
        format!("{}m", edges / 1_000_000)
    } else if edges % 1_000 == 0 && edges > 0 {
        format!("{}k", edges / 1_000)
    } else {
        edges.to_string()
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("exp_scale: {e}");
            eprintln!(
                "usage: exp_scale [--edges N] [--threads 1,2,4] [--modes seq,par] \
                 [--seed S] [--json out.jsonl] [--families power_law,planted4,ring_expanders] \
                 [--max-depth D] [--decompose-cap M] [--measured] [--budget-s S] \
                 [--packing packed|unpacked] [--verify] [--tiny]"
            );
            return ExitCode::from(2);
        }
    };
    let label = edge_label(args.edges);
    let mut table = Table::new(
        &format!("E7: scale sweep (target {} edges)", args.edges),
        &[
            "family",
            "n",
            "m",
            "mode",
            "threads",
            "wall_s",
            "build_s",
            "dlp_s",
            "exch_s",
            "join_s",
            "triangles",
            "levels",
            "exch_rounds",
            "jobs",
            "steals",
            "imbalance",
            "arena_hits",
        ],
    );

    let gen_start = Instant::now();
    let mut workloads = scale_tier(args.edges, args.seed);
    let gen_wall = gen_start.elapsed();
    eprintln!(
        "generated {} workloads in {:.2?}",
        workloads.len(),
        gen_wall
    );
    emit_json(
        &args.json,
        &format!("scale/{label}/gen_tier"),
        gen_wall.as_secs_f64(),
    );
    if let Some(fams) = &args.families {
        workloads.retain(|w| fams.iter().any(|f| f == &w.name));
        if workloads.is_empty() {
            eprintln!("exp_scale: --families matched nothing");
            return ExitCode::from(2);
        }
    }

    let mut failures = 0usize;
    for w in &workloads {
        // Pick the pipeline path: the measured decomposition when forced
        // (--measured) or when the family plants no clusters and fits the
        // cap, planted clusters otherwise, the centralized counter as the
        // loud last resort (never a silent skip).
        let planted = if args.measured { &None } else { &w.planted };
        // Build-phase wall of this workload's structure: the assignment
        // intake for planted families (measured once, shared by every
        // combo), the per-run decompose phase for measured families.
        let mut assign_wall = std::time::Duration::ZERO;
        let assignment = match (planted, w.graph.m() <= args.decompose_cap || args.measured) {
            (Some(parts), _) => {
                let start = Instant::now();
                let asg = ClusterAssignment::from_parts(
                    &w.graph,
                    parts,
                    w.planted_phi,
                    &SchedulerPolicy::parallel(),
                );
                assign_wall = start.elapsed();
                emit_json(
                    &args.json,
                    &format!("scale/{label}/{}/assign", w.name),
                    assign_wall.as_secs_f64(),
                );
                Some(asg)
            }
            (None, true) => None, // measured decomposition below
            (None, false) => {
                eprintln!(
                    "exp_scale: {} has no planted clusters and m = {} exceeds \
                     --decompose-cap {}; running the centralized counter instead \
                     of the pipeline",
                    w.name,
                    w.graph.m(),
                    args.decompose_cap
                );
                let start = Instant::now();
                let count = triangle::count_triangles(&w.graph);
                let wall = start.elapsed();
                table.row(vec![
                    w.name.clone(),
                    w.graph.n().to_string(),
                    w.graph.m().to_string(),
                    "central".to_string(),
                    "1".to_string(),
                    format!("{:.3}", wall.as_secs_f64()),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    count.to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
                emit_json(
                    &args.json,
                    &format!("scale/{label}/{}/central", w.name),
                    wall.as_secs_f64(),
                );
                continue;
            }
        };

        let mut counts: Vec<(String, u64)> = Vec::new();
        for &mode in &args.modes {
            let exec = if mode == "par" {
                ExecMode::Parallel
            } else {
                ExecMode::Sequential
            };
            for &t in &args.threads {
                if mode == "seq" && t != args.threads[0] {
                    continue; // sequential wall-clock is thread-independent
                }
                let params = PipelineParams {
                    seed: args.seed,
                    exec,
                    recursion_exec: exec,
                    recursion_workers: t,
                    max_depth: args.max_depth,
                    packing: args.packing,
                    ..Default::default()
                };
                let start = Instant::now();
                let report = match &assignment {
                    Some(asg) => enumerate_with_assignment(&w.graph, asg, &params),
                    None => enumerate_via_decomposition(&w.graph, &params),
                };
                let wall = start.elapsed();
                let suffix = match args.packing {
                    Packing::Packed => "",
                    Packing::Unpacked => "-unpacked",
                };
                let combo = format!("{mode}{suffix}/t{t}");
                let exchange = report.phases.phase("enumerate");
                // The cluster-phase split: per-job walls summed across
                // cluster jobs (worker CPU time — can exceed the elapsed
                // `clusters` wall when jobs overlap in parallel mode).
                let wall_dlp = report.phases.wall("clusters.dlp");
                let wall_exch = report.phases.wall("clusters.exchange");
                let wall_join = report.phases.wall("clusters.join");
                // Build vs query wall split: structure construction
                // (assignment intake or measured decomposition) against
                // everything downstream of it — the serve tier's
                // build-once wall, measured on the pipeline for direct
                // comparison.
                let wall_build = assign_wall + report.phases.wall("decompose");
                eprintln!(
                    "  {}/{combo}: wall {:.2?} (decompose {:.2?}, clusters {:.2?} \
                     [dlp {:.2?}, exchange {:.2?}, join {:.2?}], merge {:.2?}), \
                     {} triangles, exchange {} rounds / {} words",
                    w.name,
                    wall,
                    report.phases.wall("decompose"),
                    report.phases.wall("clusters"),
                    wall_dlp,
                    wall_exch,
                    wall_join,
                    report.phases.wall("merge"),
                    report.count(),
                    exchange.rounds,
                    exchange.words,
                );
                table.row(vec![
                    w.name.clone(),
                    w.graph.n().to_string(),
                    w.graph.m().to_string(),
                    if assignment.is_some() {
                        format!("{mode}*") // * = planted assignment
                    } else {
                        mode.to_string()
                    },
                    t.to_string(),
                    format!("{:.3}", wall.as_secs_f64()),
                    format!("{:.3}", wall_build.as_secs_f64()),
                    format!("{:.3}", wall_dlp.as_secs_f64()),
                    format!("{:.3}", wall_exch.as_secs_f64()),
                    format!("{:.3}", wall_join.as_secs_f64()),
                    report.count().to_string(),
                    report.levels.len().to_string(),
                    exchange.rounds.to_string(),
                    report.recursion.total_jobs().to_string(),
                    report.recursion.total_steals().to_string(),
                    format!("{:.2}", report.recursion.max_imbalance()),
                    format!(
                        "{}/{}",
                        report.recursion.scratch_hits,
                        report.recursion.scratch_hits + report.recursion.scratch_misses
                    ),
                ]);
                emit_json(
                    &args.json,
                    &format!("scale/{label}/{}/{combo}", w.name),
                    wall.as_secs_f64(),
                );
                // Per-phase walls as their own bench entries, so the
                // cluster split is attributable from the jsonl alone.
                for (phase, dur) in [
                    ("build_s", wall_build),
                    ("decompose", report.phases.wall("decompose")),
                    ("clusters.dlp", wall_dlp),
                    ("clusters.exchange", wall_exch),
                    ("clusters.join", wall_join),
                    ("merge", report.phases.wall("merge")),
                ] {
                    emit_json(
                        &args.json,
                        &format!("scale/{label}/{}/{combo}/{phase}", w.name),
                        dur.as_secs_f64(),
                    );
                }
                if let Some(budget) = args.budget_s {
                    if wall.as_secs_f64() > budget {
                        eprintln!(
                            "exp_scale: BUDGET BLOWN on {}/{combo}: {:.1}s > {budget}s",
                            w.name,
                            wall.as_secs_f64()
                        );
                        failures += 1;
                    }
                }
                counts.push((combo, report.count()));
            }
        }
        // Bit-identity across every (mode, threads) combo.
        if let Some((first_combo, first)) = counts.first().cloned() {
            for (combo, count) in &counts[1..] {
                if *count != first {
                    eprintln!(
                        "exp_scale: MISMATCH on {}: {first_combo} listed {first}, \
                         {combo} listed {count}",
                        w.name
                    );
                    failures += 1;
                }
            }
            if args.verify {
                let truth = triangle::count_triangles(&w.graph);
                if first != truth {
                    eprintln!(
                        "exp_scale: {} pipeline listed {first} triangles, centralized \
                         counter says {truth}",
                        w.name
                    );
                    failures += 1;
                }
            }
        }
    }

    print!("{}", table.to_text());
    println!();
    print!("{}", table.to_csv());
    if failures > 0 {
        eprintln!("exp_scale: {failures} mode/thread combos disagreed");
        return ExitCode::FAILURE;
    }
    eprintln!("exp_scale: all mode/thread combos agree");
    ExitCode::SUCCESS
}
