//! CI bench-regression gate (the `bench-smoke` job's comparator).
//!
//! Two subcommands:
//!
//! * `bench_gate collect <raw.jsonl> -o <out.json>` — fold the JSON lines
//!   the criterion shim appended (`CRITERION_BENCH_JSON`) into one flat
//!   `{bench: median_seconds}` object (`BENCH_pr.json`).
//! * `bench_gate compare <baseline.json> <current.json> [--threshold 0.30]`
//!   — exit 1 if any baseline bench is missing or regressed by more than
//!   the threshold.

use bench_suite::gate;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            eprintln!(
                "usage: bench_gate collect <raw.jsonl> -o <out.json>\n       \
                 bench_gate compare <baseline.json> <current.json> [--threshold 0.30]"
            );
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("collect") => {
            let [input, flag, output] = &args[1..] else {
                return Err("collect needs: <raw.jsonl> -o <out.json>".to_string());
            };
            if flag != "-o" {
                return Err(format!("expected -o, found {flag:?}"));
            }
            let text =
                std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
            let map = gate::collect_jsonl(&text).map_err(|e| format!("{input}: {e}"))?;
            if map.is_empty() {
                return Err(format!("{input} holds no benchmark records"));
            }
            std::fs::write(output, gate::bench_map_to_json(&map))
                .map_err(|e| format!("cannot write {output}: {e}"))?;
            eprintln!("collected {} benches into {output}", map.len());
            Ok(ExitCode::SUCCESS)
        }
        Some("compare") => {
            let (files, threshold) = parse_compare_args(&args[1..])?;
            let [baseline_path, current_path] = files;
            let baseline = read_map(&baseline_path)?;
            let current = read_map(&current_path)?;
            let report = gate::compare(&baseline, &current, threshold);
            print!("{}", report.to_text());
            if report.passed() {
                eprintln!("bench gate: PASS");
                Ok(ExitCode::SUCCESS)
            } else {
                eprintln!("bench gate: FAIL (regression or missing bench)");
                Ok(ExitCode::FAILURE)
            }
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn parse_compare_args(args: &[String]) -> Result<([String; 2], f64), String> {
    let mut files = Vec::new();
    let mut threshold = 0.30f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            let v = it.next().ok_or("--threshold needs a value")?;
            threshold = v
                .parse::<f64>()
                .map_err(|_| format!("bad threshold {v:?}"))?;
            if !threshold.is_finite() || threshold <= 0.0 {
                return Err("threshold must be positive".to_string());
            }
        } else {
            files.push(a.clone());
        }
    }
    let [b, c] = files.as_slice() else {
        return Err("compare needs: <baseline.json> <current.json>".to_string());
    };
    Ok(([b.clone(), c.clone()], threshold))
}

fn read_map(path: &str) -> Result<gate::BenchMap, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    gate::parse_bench_map(&text).map_err(|e| format!("{path}: {e}"))
}
