//! CI bench-regression gate (the `bench-smoke` job's comparator).
//!
//! Three subcommands:
//!
//! * `bench_gate collect <raw.jsonl> -o <out.json> [--fold last|max]` —
//!   fold the JSON lines the criterion shim appended
//!   (`CRITERION_BENCH_JSON`) into one flat `{bench: median_seconds}`
//!   object (`BENCH_pr.json`). `--fold max` takes the per-bench maximum
//!   over duplicate names — the baseline-regeneration fold (append all
//!   quick runs to one raw file first; see OPERATIONS.md).
//! * `bench_gate compare <baseline.json> <current.json> [--threshold 0.30]
//!   [--noise-floor 0.005]` — exit 1 if any baseline bench is missing or
//!   regressed by more than the threshold; every offender is listed, not
//!   just the first. Benches whose baseline median is under the absolute
//!   noise floor (seconds) get no regression verdict — quick-mode jitter
//!   on sub-millisecond benches is not a regression signal.
//! * `bench_gate summary <baseline.json> <current.json> [--threshold 0.30]
//!   [--out <file>] [--history <file> --label <run>]` — render the
//!   baseline-vs-PR markdown table (appended to `--out`, e.g.
//!   `$GITHUB_STEP_SUMMARY`) and append per-bench history records to the
//!   committed `BENCH_history.jsonl`. Never fails the build — the gate
//!   is `compare`.

use bench_suite::gate;
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            eprintln!(
                "usage: bench_gate collect <raw.jsonl> -o <out.json> [--fold last|max]\n       \
                 bench_gate compare <baseline.json> <current.json> [--threshold 0.30] \
                 [--noise-floor 0.005]\n       \
                 bench_gate summary <baseline.json> <current.json> [--threshold 0.30] \
                 [--noise-floor 0.005] [--out <file>] [--history <file> --label <run>]"
            );
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("collect") => {
            let (input, output, fold) = match &args[1..] {
                [input, flag, output] if flag == "-o" => (input, output, gate::Fold::Last),
                [input, flag, output, fold_flag, fold] if flag == "-o" && fold_flag == "--fold" => {
                    let fold = match fold.as_str() {
                        "last" => gate::Fold::Last,
                        "max" => gate::Fold::Max,
                        other => return Err(format!("bad --fold {other:?} (last|max)")),
                    };
                    (input, output, fold)
                }
                _ => {
                    return Err(
                        "collect needs: <raw.jsonl> -o <out.json> [--fold last|max]".to_string()
                    )
                }
            };
            let text =
                std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
            let map = gate::collect_jsonl_with(&text, fold).map_err(|e| format!("{input}: {e}"))?;
            if map.is_empty() {
                return Err(format!("{input} holds no benchmark records"));
            }
            std::fs::write(output, gate::bench_map_to_json(&map))
                .map_err(|e| format!("cannot write {output}: {e}"))?;
            eprintln!("collected {} benches into {output}", map.len());
            Ok(ExitCode::SUCCESS)
        }
        Some("compare") => {
            let opts = parse_compare_args(&args[1..])?;
            let baseline = read_map(&opts.baseline)?;
            let current = read_map(&opts.current)?;
            let report = gate::compare(&baseline, &current, opts.threshold, opts.noise_floor);
            print!("{}", report.to_text());
            if report.passed() {
                eprintln!("bench gate: PASS");
                return Ok(ExitCode::SUCCESS);
            }
            // Fail with the complete offender list, not the first hit.
            let regressed = report.regressed();
            if !regressed.is_empty() {
                let list: Vec<String> = regressed
                    .iter()
                    .map(|(n, r)| format!("{n} ({:+.1}%)", (r - 1.0) * 100.0))
                    .collect();
                eprintln!(
                    "bench gate: {} bench(es) regressed beyond {:.0}%: {}",
                    regressed.len(),
                    opts.threshold * 100.0,
                    list.join(", ")
                );
            }
            let missing = report.missing();
            if !missing.is_empty() {
                eprintln!(
                    "bench gate: {} baseline bench(es) missing from {}: {} — if a bench \
                     was renamed or removed on purpose, regenerate BENCH_baseline.json \
                     (per-bench max of 3 quick runs; see OPERATIONS.md)",
                    missing.len(),
                    opts.current,
                    missing.join(", ")
                );
            }
            eprintln!("bench gate: FAIL");
            Ok(ExitCode::FAILURE)
        }
        Some("summary") => {
            let opts = parse_compare_args(&args[1..])?;
            let baseline = read_map(&opts.baseline)?;
            let current = read_map(&opts.current)?;
            let md = gate::markdown_summary(&baseline, &current, opts.threshold, opts.noise_floor);
            print!("{md}");
            if let Some(out) = &opts.out {
                append(out, &md)?;
                eprintln!("bench summary: appended markdown to {out}");
            }
            if let Some(history) = &opts.history {
                let label = opts.label.as_deref().unwrap_or("pr");
                append(history, &gate::history_lines(label, &current))?;
                eprintln!(
                    "bench summary: appended {} history records (run {label}) to {history}",
                    current.len()
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn append(path: &str, text: &str) -> Result<(), String> {
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(text.as_bytes()))
        .map_err(|e| format!("cannot append to {path}: {e}"))
}

struct CompareOpts {
    baseline: String,
    current: String,
    threshold: f64,
    noise_floor: f64,
    out: Option<String>,
    history: Option<String>,
    label: Option<String>,
}

fn parse_compare_args(args: &[String]) -> Result<CompareOpts, String> {
    let mut files = Vec::new();
    let mut threshold = 0.30f64;
    let mut noise_floor = 0.0f64;
    let mut out = None;
    let mut history = None;
    let mut label = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                threshold = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad threshold {v:?}"))?;
                if !threshold.is_finite() || threshold <= 0.0 {
                    return Err("threshold must be positive".to_string());
                }
            }
            "--noise-floor" => {
                let v = it.next().ok_or("--noise-floor needs a value")?;
                noise_floor = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad noise floor {v:?}"))?;
                if !noise_floor.is_finite() || noise_floor < 0.0 {
                    return Err("noise floor must be non-negative".to_string());
                }
            }
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            "--history" => history = Some(it.next().ok_or("--history needs a value")?.clone()),
            "--label" => label = Some(it.next().ok_or("--label needs a value")?.clone()),
            _ => files.push(a.clone()),
        }
    }
    let [b, c] = files.as_slice() else {
        return Err("need exactly: <baseline.json> <current.json>".to_string());
    };
    Ok(CompareOpts {
        baseline: b.clone(),
        current: c.clone(),
        threshold,
        noise_floor,
        out,
        history,
        label,
    })
}

fn read_map(path: &str) -> Result<gate::BenchMap, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    gate::parse_bench_map(&text).map_err(|e| format!("{path}: {e}"))
}
