//! **E8 — ablations of §2's design choices.**
//!
//! (a) Phase 2 level schedule: sweep `k` at fixed workload — rounds should
//!     fall with `k` while the conductance guarantee weakens (schedule
//!     shrinks by `h⁻¹` per level).
//! (b) Remove-1/2/3 budget split: the paper proves each stays under
//!     `(ε/3)·|E|`; report the measured split.
//! (c) Nibble truncation: sweep `ε_b` scaling — coarser truncation must
//!     shrink the participating volume (Lemma 3's tradeoff) while still
//!     finding planted cuts.

use bench_suite::Table;
use expander::prelude::*;
use graph::gen;

fn main() {
    // (a) + (b): k sweep and budget split on a 4-block SBM.
    let block = bench_suite::tiny_or(16, 48);
    let pp = gen::planted_partition(&[block; 4], 0.35, 0.004, 9).expect("sbm");
    let g = &pp.graph;
    let eps = 0.3;
    let mut ka = Table::new(
        "E8a: Phase-2 level schedule — k sweep (fixed sbm 4x48)",
        &[
            "k",
            "parts",
            "phi_promised",
            "run_phi_0",
            "run_phi_k",
            "rounds",
            "removed_frac",
        ],
    );
    let mut kb = Table::new(
        "E8b: Remove-1/2/3 budget split (budget per tag = eps/3)",
        &[
            "k",
            "remove1_frac",
            "remove2_frac",
            "remove3_frac",
            "per_tag_budget",
            "all_ok",
        ],
    );
    for k in [1usize, 2, 3, 4] {
        let res = ExpanderDecomposition::builder()
            .epsilon(eps)
            .k(k)
            .seed(5)
            .build()
            .run(g)
            .expect("non-empty");
        ka.row(vec![
            k.to_string(),
            res.parts.len().to_string(),
            format!("{:.2e}", res.phi),
            format!("{:.4}", res.params.run_schedule[0]),
            format!("{:.2e}", res.params.run_schedule[k]),
            res.ledger.total().to_string(),
            format!("{:.4}", res.inter_cluster_fraction()),
        ]);
        let tags = res.removed_by_tag();
        let frac = |c: usize| c as f64 / g.m() as f64;
        let budget = eps / 3.0;
        kb.row(vec![
            k.to_string(),
            format!("{:.4}", frac(tags[0])),
            format!("{:.4}", frac(tags[1])),
            format!("{:.4}", frac(tags[2])),
            format!("{budget:.4}"),
            tags.iter().all(|&c| frac(c) <= budget + 1e-9).to_string(),
        ]);
    }
    ka.print();
    kb.print();

    // (c) truncation ablation: scale ε_b up/down and watch participation
    // volume vs detection on a barbell.
    let (bar, _) = gen::barbell(14).expect("barbell");
    let base = NibbleParams::new(0.05, bar.m(), ParamMode::Practical);
    let mut kc = Table::new(
        "E8c: truncation ablation (Lemma 3 tradeoff)",
        &[
            "eps_scale",
            "eps_b(3)",
            "participation_vol",
            "lemma3_bound",
            "cut_found",
        ],
    );
    for scale in [0.1f64, 1.0, 10.0, 100.0] {
        let mut params = base.clone();
        params.eps_base = base.eps_base * scale;
        let out = approximate_nibble(&bar, 0, &params, 3);
        let vol: usize = out.participants.iter().map(|v| bar.degree(v)).sum();
        let bound = (params.t0 as f64 + 1.0) / (2.0 * params.eps_b(3));
        kc.row(vec![
            format!("{scale}"),
            format!("{:.2e}", params.eps_b(3)),
            vol.to_string(),
            format!("{bound:.0}"),
            out.found().to_string(),
        ]);
    }
    kc.print();

    // (d) empty-streak early exit: certification cost on expanders with
    // and without the practical early break.
    let expander = gen::random_regular(96, 8, 3).expect("regular");
    let mut kd = Table::new(
        "E8d: Partition early-exit ablation (expander certification cost)",
        &["empty_streak_break", "iterations", "rounds"],
    );
    for streak in [2usize, 4, 8, usize::MAX] {
        let mut params = SparseCutParams::new(
            0.002,
            expander.m(),
            expander.total_volume(),
            ParamMode::Practical,
        );
        params.empty_streak_break = streak;
        params.s_iterations = 16;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let out = expander::partition::partition(&expander, &params, 4, &mut rng);
        kd.row(vec![
            if streak == usize::MAX {
                "off".into()
            } else {
                streak.to_string()
            },
            out.iterations.to_string(),
            out.ledger.total().to_string(),
        ]);
    }
    kd.print();
}
