//! **E6 — the headline pipeline**: per-phase round budgets of the
//! end-to-end expander-routed triangle enumeration vs the paper's bounds.
//!
//! Workload: `G(n, p = 0.3)` (decomposition-heavy) plus a ring of cliques
//! (cluster-heavy). For each n: run `enumerate_via_decomposition`, verify
//! completeness against ground truth, and report the per-phase budgets —
//! decomposition rounds, routing build/query rounds, measured engine
//! traffic — next to the paper's `Õ(n^{1/3})` query budget. The fitted
//! growth exponent of the heaviest routing instance is the headline
//! number: the paper predicts ~1/3 up to polylog drift.

use bench_suite::{fit_exponent, gnp_family, Table};
use triangle::enumerate_triangles;
use triangle::pipeline::{enumerate_via_decomposition, PipelineParams};

fn main() {
    let mut table = Table::new(
        "E6: pipeline phase budgets (Theorem 2 end to end)",
        &[
            "workload",
            "n",
            "m",
            "triangles",
            "levels",
            "decomp_rounds",
            "route_build",
            "route_queries",
            "query_budget",
            "engine_rounds",
            "engine_msgs",
            "total_rounds",
            "complete",
        ],
    );
    let mut query_pts: Vec<(f64, f64)> = Vec::new();
    let params = PipelineParams::default();

    let mut workloads: Vec<(String, graph::Graph)> = Vec::new();
    let sizes: &[usize] = bench_suite::tiny_or(&[24, 32], &[32, 64, 96, 128]);
    for &n in sizes {
        workloads.push((format!("gnp{n}"), gnp_family(n, 0.3, 42 + n as u64)));
    }
    let (rc, rs) = bench_suite::tiny_or((4, 5), (8, 8));
    let (ring, _) = graph::gen::ring_of_cliques(rc, rs).unwrap();
    workloads.push((format!("ring{rc}x{rs}"), ring));

    for (name, g) in &workloads {
        let report = enumerate_via_decomposition(g, &params);
        let complete = report.triangles == enumerate_triangles(g);
        let decomp: u64 = report.levels.iter().map(|l| l.decomposition_rounds).sum();
        let build: u64 = report.levels.iter().map(|l| l.routing_build_rounds).sum();
        let engine = report.phases.phase("enumerate");
        table.row(vec![
            name.clone(),
            g.n().to_string(),
            g.m().to_string(),
            report.count().to_string(),
            report.levels.len().to_string(),
            decomp.to_string(),
            build.to_string(),
            report.max_routing_queries().to_string(),
            format!("{:.0}", report.paper_query_budget()),
            engine.rounds.to_string(),
            engine.messages.to_string(),
            report.total_rounds().to_string(),
            complete.to_string(),
        ]);
        if name.starts_with("gnp") && report.max_routing_queries() > 0 {
            query_pts.push((g.n() as f64, report.max_routing_queries() as f64));
        }
    }

    print!("{}", table.to_text());
    println!();
    print!("{}", table.to_csv());
    if query_pts.len() >= 2 {
        println!(
            "\nfitted routing-query exponent on gnp: {:.3} (paper: ~1/3 + polylog drift)",
            fit_exponent(&query_pts)
        );
    }
}
