//! **E3 — Theorem 3**: the nearly-most-balanced guarantee, measured.
//!
//! Workloads with planted cuts of known balance `b`; over seeds we report
//! the detection rate, the achieved balance vs the promised floor
//! `min(b/2, 1/48)`, and the measured conductance vs the `h(φ)` promise.
//! Expander controls document the Φ(G) > φ branch.

use bench_suite::{dumbbell_sweep, sbm_sweep, Table};
use expander::prelude::*;
use graph::gen;

fn main() {
    let seeds: Vec<u64> = (1..=bench_suite::tiny_or(2, 10)).collect();
    let phi_target = 0.002;
    let mut table = Table::new(
        "E3: nearly most balanced sparse cut (Theorem 3)",
        &[
            "family",
            "planted_b",
            "floor",
            "detect_rate",
            "median_bal",
            "worst_bal",
            "median_phi",
            "promise",
            "floor_ok",
        ],
    );

    let mut workloads = dumbbell_sweep();
    workloads.extend(sbm_sweep(bench_suite::tiny_or(&[16], &[24, 48])));
    for w in &workloads {
        let g = &w.graph;
        let b = g.balance(&w.planted).expect("planted cut valid");
        let floor = (b / 2.0).min(1.0 / 48.0);
        let mut balances = Vec::new();
        let mut phis = Vec::new();
        let mut promise = 0.0f64;
        for &seed in &seeds {
            let out = nearly_most_balanced_sparse_cut(g, phi_target, ParamMode::Practical, 4, seed);
            promise = out.promised_conductance(g.n());
            if let Some(cut) = &out.cut {
                balances.push(cut.balance());
                phis.push(cut.conductance());
            }
        }
        balances.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        phis.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let detect = balances.len() as f64 / seeds.len() as f64;
        let median = |v: &[f64]| {
            if v.is_empty() {
                f64::NAN
            } else {
                v[v.len() / 2]
            }
        };
        let worst = balances.first().copied().unwrap_or(f64::NAN);
        table.row(vec![
            w.name.clone(),
            format!("{b:.4}"),
            format!("{floor:.4}"),
            format!("{detect:.2}"),
            format!("{:.4}", median(&balances)),
            format!("{worst:.4}"),
            format!("{:.4}", median(&phis)),
            format!("{promise:.4}"),
            (worst.is_nan() || worst >= floor - 1e-9).to_string(),
        ]);
    }

    // Expander controls.
    for (name, g) in [
        (
            "regular8_64",
            gen::random_regular(64, 8, 3).expect("regular"),
        ),
        ("K32", gen::complete(32).expect("complete")),
    ] {
        let mut found = 0usize;
        let mut worst_phi: f64 = 0.0;
        let mut promise = 0.0f64;
        for &seed in &seeds {
            let out =
                nearly_most_balanced_sparse_cut(&g, phi_target, ParamMode::Practical, 4, seed);
            promise = out.promised_conductance(g.n());
            if let Some(cut) = &out.cut {
                found += 1;
                worst_phi = worst_phi.max(cut.conductance());
            }
        }
        table.row(vec![
            format!("{name} (expander)"),
            "-".into(),
            "-".into(),
            format!("{:.2}", found as f64 / seeds.len() as f64),
            "-".into(),
            "-".into(),
            format!("{worst_phi:.4}"),
            format!("{promise:.4}"),
            (worst_phi <= promise + 1e-9).to_string(),
        ]);
    }
    table.print();
}
