//! **E4 + E5 — Theorem 4 and Lemma 12**: low-diameter decomposition.
//!
//! E4: over 100 seeds (5 in `--tiny` mode) per (family, β): the empirical quantiles of the cut
//! fraction vs the w.h.p. bound `3β`, and the worst part diameter vs
//! `O(log²n/β²)`.
//!
//! E5: the per-edge MPX cut probability vs Lemma 12's `2β` bound,
//! plus the comparison *plain MPX vs the V_D/V_S-filtered* decomposition —
//! the filtered version must have no heavier tail.

use bench_suite::Table;
use expander::prelude::*;
use graph::{gen, traversal};

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let trials: u64 = bench_suite::tiny_or(5, 100);
    let mut e4 = Table::new(
        &format!("E4: LowDiamDecomposition over {trials} seeds (Theorem 4)"),
        &[
            "family",
            "n",
            "beta",
            "cut_frac_p50",
            "cut_frac_p95",
            "bound_3beta",
            "within_whp",
            "diam_max",
            "diam_bound",
        ],
    );
    // 1D families must be much longer than 4ab = Θ(log²n/β²) for the
    // V_D/V_S classification to mark anything sparse; the compact families
    // (grid, ring) stay all-dense at laptop scale and document the
    // "no cut needed" contrast.
    let long = bench_suite::tiny_or(200, 1500);
    let families: Vec<(String, graph::Graph)> = vec![
        (format!("path{long}"), gen::path(long).expect("path")),
        (format!("cycle{long}"), gen::cycle(long).expect("cycle")),
        ("grid17x17".into(), gen::grid(17, 17).expect("grid")),
        (
            "ring20x6".into(),
            gen::ring_of_cliques(20, 6).expect("ring").0,
        ),
    ];
    for (name, g) in &families {
        for &beta in &[0.25f64, 0.4] {
            let params = LddParams::practical(beta, g.n());
            let mut fracs = Vec::new();
            let mut diam_max = 0u32;
            for seed in 0..trials {
                let out = low_diameter_decomposition(g, &params, seed);
                fracs.push(out.cut_fraction(g));
                if let Some(d) = out.max_part_diameter(g) {
                    diam_max = diam_max.max(d);
                }
            }
            fracs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let ln_n = (g.n() as f64).ln();
            let diam_bound = 20.0 * (ln_n / beta) * (ln_n / beta);
            let p95 = quantile(&fracs, 0.95);
            e4.row(vec![
                name.clone(),
                g.n().to_string(),
                format!("{beta:.2}"),
                format!("{:.4}", quantile(&fracs, 0.5)),
                format!("{p95:.4}"),
                format!("{:.4}", 3.0 * beta),
                (p95 <= 3.0 * beta).to_string(),
                diam_max.to_string(),
                format!("{diam_bound:.0}"),
            ]);
        }
    }
    e4.print();

    // E5: per-edge cut probability for plain MPX (Lemma 12: ≤ 2β).
    let mut e5 = Table::new(
        "E5: MPX per-edge cut probability (Lemma 12: ≤ 2β)",
        &[
            "family",
            "beta",
            "max_edge_cut_prob",
            "mean_edge_cut_prob",
            "bound_2beta",
            "ok",
        ],
    );
    let small: Vec<(String, graph::Graph)> = vec![
        ("path300".into(), gen::path(300).expect("path")),
        ("grid17x17".into(), gen::grid(17, 17).expect("grid")),
        ("gnp200".into(), gen::gnp(200, 0.025, 7).expect("gnp")),
        (
            "ring20x6".into(),
            gen::ring_of_cliques(20, 6).expect("ring").0,
        ),
    ];
    for (name, g) in &small {
        let beta = 0.2;
        let mut cut_count = vec![0usize; g.m()];
        for seed in 0..trials {
            let c = clustering(g, beta, seed);
            for (idx, (u, v)) in g.edges().enumerate() {
                if c.cluster_of[u as usize] != c.cluster_of[v as usize] {
                    cut_count[idx] += 1;
                }
            }
        }
        let probs: Vec<f64> = cut_count
            .iter()
            .map(|&c| c as f64 / trials as f64)
            .collect();
        let max = probs.iter().cloned().fold(0.0f64, f64::max);
        let mean = probs.iter().sum::<f64>() / probs.len().max(1) as f64;
        e5.row(vec![
            name.clone(),
            format!("{beta:.2}"),
            format!("{max:.4}"),
            format!("{mean:.4}"),
            format!("{:.4}", 2.0 * beta),
            // The 2β bound is per-edge in expectation; allow binomial
            // noise at 100 trials on the max.
            (max <= 2.0 * beta + 3.0 * (2.0 * beta / trials as f64).sqrt()).to_string(),
        ]);
    }
    e5.print();

    // E5b: variance comparison — plain MPX cut fraction vs the filtered
    // LowDiamDecomposition (the paper's point: the filtered version
    // concentrates w.h.p.).
    let mut e5b = Table::new(
        "E5b: plain MPX vs V_D/V_S-filtered decomposition (cut-fraction tails)",
        &["family", "plain_p95", "filtered_p95", "filtered_no_worse"],
    );
    for (name, g) in &small {
        let beta = 0.25;
        let params = LddParams::practical(beta, g.n());
        let mut plain = Vec::new();
        let mut filtered = Vec::new();
        for seed in 0..trials {
            let c = clustering(g, beta, seed);
            plain.push(c.cut_edges(g).len() as f64 / g.m().max(1) as f64);
            let out = low_diameter_decomposition(g, &params, seed);
            filtered.push(out.cut_fraction(g));
        }
        plain.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        filtered.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let p_plain = quantile(&plain, 0.95);
        let p_filt = quantile(&filtered, 0.95);
        e5b.row(vec![
            name.clone(),
            format!("{p_plain:.4}"),
            format!("{p_filt:.4}"),
            (p_filt <= p_plain + 1e-9).to_string(),
        ]);
    }
    e5b.print();

    // Sanity: the diameter machinery on one long path, printed for the
    // record.
    let g = gen::path(1500).expect("path");
    let params = LddParams::practical(0.35, 1500);
    let out = low_diameter_decomposition(&g, &params, 1);
    println!(
        "path1500 detail: {} parts, diameter(input) = {}, max part diameter = {:?}",
        out.parts.len(),
        traversal::diameter(&g).expect("connected"),
        out.max_part_diameter(&g)
    );
}
