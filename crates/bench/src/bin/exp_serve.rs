//! **E8 — the serve tier**: build the triangle-query artifact once, then
//! sustain a concurrent point-query stream against it.
//!
//! The flow mirrors production traffic, not a one-shot benchmark:
//!
//! 1. generate the power-law scale instance (≈ `--edges` edges),
//! 2. build the [`triangle::service::QueryEngine`] **once** (measured
//!    level-0 decomposition + frozen snapshots/hierarchies) and report
//!    the build wall next to `exp_scale`'s `build_s` column,
//! 3. replay a deterministic `--queries`-long mixed stream
//!    ([`bench_suite::serve_query_stream`]) sequentially as the reference,
//! 4. serve the same stream at every `--threads` count and assert the
//!    answers are **bit-identical** to the sequential replay (charges
//!    included — the scheduler's determinism contract, audited end to
//!    end),
//! 5. report throughput (queries/s), p50/p99 latency, and the heaviest
//!    per-query routing load against the paper's `n^{1/3}·log²n` budget.
//!
//! `--json <path>` appends `{"name": ..., "median_s": ...}` lines in the
//! `bench_gate collect` format; CI's `serve-smoke` job uploads them as the
//! latency artifact. `--p99-budget-ms B` fails the run on a p99 blowout —
//! the latency gate. Exit is non-zero on any answer mismatch.

use bench_suite::{scale_power_law, serve_query_stream, tiny_or, Table};
use expander::SchedulerPolicy;
use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;
use triangle::pipeline::PipelineParams;
use triangle::service::QueryEngine;

struct Args {
    edges: usize,
    queries: usize,
    threads: Vec<usize>,
    seed: u64,
    json: Option<String>,
    p99_budget_ms: Option<f64>,
    chunk_ablation: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        edges: 1_000_000,
        queries: 10_000,
        threads: vec![1, 4, 8],
        seed: 42,
        json: None,
        p99_budget_ms: None,
        chunk_ablation: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--edges" => {
                args.edges = value("--edges")?
                    .parse()
                    .map_err(|e| format!("bad --edges: {e}"))?
            }
            "--queries" => {
                args.queries = value("--queries")?
                    .parse()
                    .map_err(|e| format!("bad --queries: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("bad --threads: {e}"))
                    })
                    .collect::<Result<_, _>>()?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--json" => args.json = Some(value("--json")?),
            "--p99-budget-ms" => {
                args.p99_budget_ms = Some(
                    value("--p99-budget-ms")?
                        .parse()
                        .map_err(|e| format!("bad --p99-budget-ms: {e}"))?,
                )
            }
            "--chunk-ablation" => args.chunk_ablation = true,
            "--tiny" => {
                args.edges = 20_000;
                args.queries = 2_000;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.threads.is_empty() {
        return Err("need at least one thread count".to_string());
    }
    if tiny_or(true, false) {
        args.edges = args.edges.min(20_000);
        args.queries = args.queries.min(2_000);
    }
    Ok(args)
}

fn emit_json(path: &Option<String>, name: &str, seconds: f64) {
    let Some(path) = path else { return };
    let line = format!("{{\"name\": \"{name}\", \"median_s\": {seconds:e}}}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("exp_serve: cannot append to {path}: {e}");
    }
}

fn edge_label(edges: usize) -> String {
    if edges % 1_000_000 == 0 && edges > 0 {
        format!("{}m", edges / 1_000_000)
    } else if edges % 1_000 == 0 && edges > 0 {
        format!("{}k", edges / 1_000)
    } else {
        edges.to_string()
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("exp_serve: {e}");
            eprintln!(
                "usage: exp_serve [--edges N] [--queries Q] [--threads 1,4,8] [--seed S] \
                 [--json out.jsonl] [--p99-budget-ms B] [--chunk-ablation] [--tiny]"
            );
            return ExitCode::from(2);
        }
    };
    let label = edge_label(args.edges);

    let gen_start = Instant::now();
    let g = scale_power_law(args.edges, args.seed);
    eprintln!(
        "generated power_law n = {}, m = {} in {:.2?}",
        g.n(),
        g.m(),
        gen_start.elapsed()
    );

    // ── Build once. ──
    let params = PipelineParams {
        seed: args.seed,
        ..Default::default()
    };
    let build_start = Instant::now();
    let engine = QueryEngine::build(&g, &params);
    let build_wall = build_start.elapsed();
    let br = engine.build_report();
    eprintln!(
        "built artifact in {:.2?} (decompose {:.2?} + freeze {:.2?}): {} clusters \
         ({} routed), {} snapshot words, phi = {:.4}",
        build_wall,
        br.wall_decompose,
        br.wall_freeze,
        br.clusters,
        br.routed_clusters,
        br.snapshot_words,
        br.phi
    );
    emit_json(
        &args.json,
        &format!("serve/{label}/build"),
        build_wall.as_secs_f64(),
    );
    emit_json(
        &args.json,
        &format!("serve/{label}/build/decompose"),
        br.wall_decompose.as_secs_f64(),
    );
    emit_json(
        &args.json,
        &format!("serve/{label}/build/freeze"),
        br.wall_freeze.as_secs_f64(),
    );

    // ── The fixed stream, replayed sequentially as the reference. ──
    let stream = serve_query_stream(&g, args.queries, args.seed ^ 0x5E17E);
    let reference = engine.serve(&stream, &SchedulerPolicy::sequential());
    let errors = reference.answers.iter().filter(|a| a.is_err()).count();
    eprintln!(
        "sequential replay: {} queries in {:.2?} ({} errors, checksum {})",
        stream.len(),
        reference.wall,
        errors,
        reference.count_checksum()
    );

    let mut table = Table::new(
        &format!(
            "E8: serve tier (power_law target {} edges, {} queries)",
            args.edges, args.queries
        ),
        &[
            "threads",
            "wall_s",
            "qps",
            "p50_us",
            "p99_us",
            "max_q",
            "max_words",
            "checksum",
            "identical",
        ],
    );
    let mut failures = 0usize;
    for &t in &args.threads {
        let policy = if t <= 1 {
            SchedulerPolicy::sequential()
        } else {
            SchedulerPolicy::with_workers(t)
        };
        let report = engine.serve(&stream, &policy);
        let identical = report.answers_match(&reference);
        if !identical {
            eprintln!(
                "exp_serve: MISMATCH at t = {t}: concurrent answers differ from the \
                 sequential replay"
            );
            failures += 1;
        }
        let p50 = report.latency_percentile(50.0);
        let p99 = report.latency_percentile(99.0);
        eprintln!(
            "  t{t}: wall {:.2?}, {:.0} q/s, p50 {:.0}us p99 {:.0}us, workers {} steals {}",
            report.wall,
            report.throughput_qps(),
            p50.as_secs_f64() * 1e6,
            p99.as_secs_f64() * 1e6,
            report.stats.workers,
            report.stats.steals,
        );
        table.row(vec![
            t.to_string(),
            format!("{:.3}", report.wall.as_secs_f64()),
            format!("{:.0}", report.throughput_qps()),
            format!("{:.1}", p50.as_secs_f64() * 1e6),
            format!("{:.1}", p99.as_secs_f64() * 1e6),
            report.max_queries().to_string(),
            report.max_words().to_string(),
            report.count_checksum().to_string(),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
        emit_json(
            &args.json,
            &format!("serve/{label}/t{t}"),
            report.wall.as_secs_f64(),
        );
        emit_json(
            &args.json,
            &format!("serve/{label}/t{t}/p50"),
            p50.as_secs_f64(),
        );
        emit_json(
            &args.json,
            &format!("serve/{label}/t{t}/p99"),
            p99.as_secs_f64(),
        );
        if let Some(budget) = args.p99_budget_ms {
            let p99_ms = p99.as_secs_f64() * 1e3;
            if p99_ms > budget {
                eprintln!("exp_serve: P99 BUDGET BLOWN at t = {t}: {p99_ms:.2}ms > {budget}ms");
                failures += 1;
            }
        }

        // ── Batching ablation: the per-query reference path must agree
        // bit-for-bit with the chunked default, and the chunked default
        // should not be slower. ──
        if args.chunk_ablation {
            let unbatched = engine.serve_unbatched(&stream, &policy);
            let same = unbatched.answers_match(&report);
            if !same {
                eprintln!(
                    "exp_serve: ABLATION MISMATCH at t = {t}: unbatched answers differ from \
                     the chunked serve"
                );
                failures += 1;
            }
            eprintln!(
                "  t{t} ablation: unbatched wall {:.2?} ({} jobs) vs chunked {:.2?} ({} jobs), \
                 identical = {}",
                unbatched.wall, unbatched.stats.jobs, report.wall, report.stats.jobs, same
            );
            emit_json(
                &args.json,
                &format!("serve/{label}/t{t}/unbatched"),
                unbatched.wall.as_secs_f64(),
            );
        }
    }

    // ── The paper audit: per-query routing load vs `n^{1/3}·log²n`. ──
    let budget_q = engine.paper_query_budget();
    let budget_w = engine.paper_word_budget();
    let max_q = reference.max_queries();
    let max_w = reference.max_words();
    // Report-only: the budget bounds a *whole per-cluster batch*, so a
    // single hub query exceeding it measures how unevenly the family's
    // degree skew localizes. The hard gates stay answer identity and the
    // p99 budget (DESIGN.md §12).
    eprintln!(
        "paper audit: heaviest query charged {max_q} routing queries \
         (per-cluster budget n^(1/3)·log²n = {budget_q:.0}, ratio {:.3}) and {max_w} words \
         (budget {budget_w:.0}, ratio {:.3})",
        max_q as f64 / budget_q,
        max_w as f64 / budget_w,
    );

    print!("{}", table.to_text());
    println!();
    print!("{}", table.to_csv());
    if failures > 0 {
        eprintln!("exp_serve: {failures} failures");
        return ExitCode::FAILURE;
    }
    eprintln!("exp_serve: all thread counts bit-identical to the sequential replay");
    ExitCode::SUCCESS
}
