//! **E9 — Lemma 3 and the ParallelNibble congestion cap.**
//!
//! Lemma 3 bounds the volume touched by one Nibble:
//! `Vol(Z_{u,φ,b}) ≤ (t₀+1)/(2ε_b)`. Running k parallel instances, the
//! expected per-edge participation is O(1) and the `w = 10⌈ln Vol⌉` cap is
//! exceeded only with vanishing probability (the event `B` of Lemma 7).
//! We measure participation volumes per scale `b` and the distribution of
//! max edge participation across seeds.

use bench_suite::Table;
use expander::prelude::*;
use graph::gen;
use rand::SeedableRng as _;

fn main() {
    let (n, p) = bench_suite::tiny_or((100, 0.06), (300, 0.03));
    let g = gen::gnp(n, p, 17).expect("gnp");
    let params = SparseCutParams::new(0.002, g.m(), g.total_volume(), ParamMode::Practical);
    let mut e9 = Table::new(
        "E9a: Nibble participation volume vs Lemma 3 bound",
        &[
            "b",
            "eps_b",
            "participation_vol",
            "bound_(t0+1)/2eps",
            "within",
        ],
    );
    for b in 1..=params.nibble.ell.min(8) {
        let out = approximate_nibble(&g, 0, &params.nibble, b);
        let vol: usize = out.participants.iter().map(|v| g.degree(v)).sum();
        let bound = (params.nibble.t0 as f64 + 1.0) / (2.0 * params.nibble.eps_b(b));
        e9.row(vec![
            b.to_string(),
            format!("{:.2e}", params.nibble.eps_b(b)),
            vol.to_string(),
            format!("{bound:.0}"),
            ((vol as f64) <= bound).to_string(),
        ]);
    }
    e9.print();

    let mut e9b = Table::new(
        "E9b: ParallelNibble max edge participation across seeds (cap w)",
        &[
            "seed",
            "k_instances",
            "max_participation",
            "w_cap",
            "aborted",
        ],
    );
    for seed in 0..bench_suite::tiny_or(2u64, 8u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = parallel_nibble(&g, &params, 6, &mut rng);
        e9b.row(vec![
            seed.to_string(),
            params.k_parallel.to_string(),
            out.max_edge_participation.to_string(),
            params.w_cap.to_string(),
            out.aborted_on_congestion.to_string(),
        ]);
    }
    e9b.print();
}
