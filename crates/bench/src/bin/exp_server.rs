//! **E9 — the wire tier**: freeze the triangle-query artifact to disk,
//! serve it over TCP, and drive a concurrent client workload against the
//! in-process oracle.
//!
//! The flow is the full production loop, end to end:
//!
//! 1. generate the power-law instance (≈ `--edges` edges), write it as a
//!    `.csr` file, build the [`triangle::service::QueryEngine`] once and
//!    freeze it into the file's artifact section,
//! 2. start the TCP server from the **file** ([`server::serve_path`]),
//!    reporting the restore wall next to the build wall — the artifact
//!    restore is the whole point of the storage tier,
//! 3. hostile leg: a connection that speaks garbage gets a **typed**
//!    error and the server keeps serving (a fresh ping proves it),
//! 4. replay a deterministic mixed query stream through `--threads`
//!    concurrent client connections, pipelined; every wire answer is
//!    compared against the in-process oracle (charges included) and
//!    p50/p99 round-trip latencies are reported,
//! 5. hot-swap leg: while one client streams queries, another triggers a
//!    reload mid-stream; the streaming client must see zero mismatches
//!    and only the two adjacent generations on its answers.
//!
//! `--json <path>` appends `{"name": ..., "median_s": ...}` lines in the
//! `bench_gate collect` format; CI's `server-smoke` job uploads them.
//! `--p99-budget-ms B` fails the run on a p99 blowout. Exit is non-zero
//! on any answer mismatch, protocol surprise, or generation anomaly.

use bench_suite::{scale_power_law, serve_query_stream, tiny_or, Table};
use server::{Client, ClientError, ResponseBody, ServerConfig, ServerHandle, WireError};
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::artifact::EngineSource;
use triangle::pipeline::PipelineParams;
use triangle::service::{Query, QueryEngine, QueryOutcome, ServiceError};

struct Args {
    edges: usize,
    queries: usize,
    threads: Vec<usize>,
    seed: u64,
    json: Option<String>,
    p99_budget_ms: Option<f64>,
    window: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        edges: 100_000,
        queries: 10_000,
        threads: vec![1, 4],
        seed: 42,
        json: None,
        p99_budget_ms: None,
        window: 32,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--edges" => {
                args.edges = value("--edges")?
                    .parse()
                    .map_err(|e| format!("bad --edges: {e}"))?
            }
            "--queries" => {
                args.queries = value("--queries")?
                    .parse()
                    .map_err(|e| format!("bad --queries: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("bad --threads: {e}"))
                    })
                    .collect::<Result<_, _>>()?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--window" => {
                args.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("bad --window: {e}"))?
            }
            "--json" => args.json = Some(value("--json")?),
            "--p99-budget-ms" => {
                args.p99_budget_ms = Some(
                    value("--p99-budget-ms")?
                        .parse()
                        .map_err(|e| format!("bad --p99-budget-ms: {e}"))?,
                )
            }
            "--tiny" => {
                args.edges = 20_000;
                args.queries = 2_000;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.threads.is_empty() {
        return Err("need at least one thread count".to_string());
    }
    if tiny_or(true, false) {
        args.edges = args.edges.min(20_000);
        args.queries = args.queries.min(2_000);
    }
    Ok(args)
}

fn emit_json(path: &Option<String>, name: &str, seconds: f64) {
    let Some(path) = path else { return };
    let line = format!("{{\"name\": \"{name}\", \"median_s\": {seconds:e}}}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("exp_server: cannot append to {path}: {e}");
    }
}

fn edge_label(edges: usize) -> String {
    if edges % 1_000_000 == 0 && edges > 0 {
        format!("{}m", edges / 1_000_000)
    } else if edges % 1_000 == 0 && edges > 0 {
        format!("{}k", edges / 1_000)
    } else {
        edges.to_string()
    }
}

/// `true` when the wire response agrees with the in-process oracle for
/// the same query (outcomes bit-compared, charges included).
fn agrees(body: &ResponseBody, oracle: &Result<QueryOutcome, ServiceError>) -> bool {
    match (body, oracle) {
        (ResponseBody::Answer(wire), Ok(local)) => wire == local,
        (ResponseBody::Error(WireError::UnknownVertex { .. }), Err(_)) => true,
        _ => false,
    }
}

/// One client connection replaying `queries` pipelined; returns
/// (mismatches, rtts, generations seen, wall).
fn replay(
    addr: std::net::SocketAddr,
    queries: &[Query],
    oracle: &[Result<QueryOutcome, ServiceError>],
    window: usize,
) -> Result<(usize, Vec<Duration>, Vec<u64>, Duration), ClientError> {
    let mut client = Client::connect(addr)?;
    let start = Instant::now();
    let responses = client.run_pipelined(queries, window, 64)?;
    let wall = start.elapsed();
    let mut mismatches = 0usize;
    let mut rtts = Vec::with_capacity(responses.len());
    let mut generations = Vec::with_capacity(responses.len());
    for (resp, expected) in responses.iter().zip(oracle) {
        if !agrees(&resp.body, expected) {
            mismatches += 1;
        }
        rtts.push(resp.rtt);
        generations.push(resp.generation);
    }
    Ok((mismatches, rtts, generations, wall))
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn hostile_leg(handle: &ServerHandle) -> Result<(), String> {
    let mut hostile =
        Client::connect(handle.addr()).map_err(|e| format!("hostile connect: {e}"))?;
    hostile
        .send_raw(&[0xAA; 32])
        .map_err(|e| format!("hostile send: {e}"))?;
    match hostile.recv() {
        Ok(resp) => {
            if !matches!(resp.body, ResponseBody::Error(_)) {
                return Err(format!(
                    "garbage bytes got {:?}, not a typed error",
                    resp.body
                ));
            }
        }
        Err(ClientError::ServerClosed | ClientError::Io(_)) => {}
        Err(other) => return Err(format!("hostile recv: {other}")),
    }
    let mut fresh =
        Client::connect(handle.addr()).map_err(|e| format!("post-garbage connect: {e}"))?;
    fresh
        .ping()
        .map_err(|e| format!("server did not survive garbage bytes: {e}"))?;
    Ok(())
}

/// The hot-swap leg: client B streams the whole workload while the main
/// thread reloads the engine mid-stream through a second connection.
fn swap_leg(
    handle: &ServerHandle,
    stream: &[Query],
    oracle: &[Result<QueryOutcome, ServiceError>],
    window: usize,
) -> Result<(), String> {
    let g0 = handle.generation();
    let addr = handle.addr();
    let streamer = {
        let stream = stream.to_vec();
        let oracle = oracle.to_vec();
        std::thread::spawn(move || replay(addr, &stream, &oracle, window))
    };
    // Let the stream get going, then swap under it.
    std::thread::sleep(Duration::from_millis(20));
    let mut admin = Client::connect(addr).map_err(|e| format!("admin connect: {e}"))?;
    let (swapped, g1) = admin.reload().map_err(|e| format!("reload: {e}"))?;
    if !swapped || g1 != g0 + 1 {
        return Err(format!(
            "reload reported swapped={swapped}, generation {g0} -> {g1}"
        ));
    }
    let (mismatches, _, generations, _) = streamer
        .join()
        .map_err(|_| "streaming client panicked".to_string())?
        .map_err(|e| format!("streaming client: {e}"))?;
    if mismatches > 0 {
        return Err(format!(
            "{mismatches} answers diverged from the oracle across the swap"
        ));
    }
    if let Some(&g) = generations.iter().find(|&&g| g != g0 && g != g1) {
        return Err(format!(
            "answer carried generation {g}, expected {g0} or {g1}"
        ));
    }
    let crossed = generations.contains(&g0) && generations.contains(&g1);
    eprintln!(
        "hot swap: generation {g0} -> {g1}, zero mismatches, stream {} the swap",
        if crossed {
            "straddled"
        } else {
            "landed on one side of"
        }
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("exp_server: {e}");
            eprintln!(
                "usage: exp_server [--edges N] [--queries Q] [--threads 1,4] [--seed S] \
                 [--window W] [--json out.jsonl] [--p99-budget-ms B] [--tiny]"
            );
            return ExitCode::from(2);
        }
    };
    let label = edge_label(args.edges);
    let mut failures = 0usize;

    // ── Freeze the artifact to disk. ──
    let gen_start = Instant::now();
    let g = scale_power_law(args.edges, args.seed);
    eprintln!(
        "generated power_law n = {}, m = {} in {:.2?}",
        g.n(),
        g.m(),
        gen_start.elapsed()
    );
    let dir = storage::test_dir("exp_server");
    let path = dir.join(format!("exp_server_{label}.csr"));
    let params = PipelineParams {
        seed: args.seed,
        ..Default::default()
    };
    let build_start = Instant::now();
    if let Err(e) = storage::write_graph(&g, &path) {
        eprintln!("exp_server: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    let built = QueryEngine::build(&g, &params);
    if let Err(e) = storage::artifact::store(&path, &built) {
        eprintln!("exp_server: cannot freeze artifact: {e}");
        return ExitCode::FAILURE;
    }
    let build_wall = build_start.elapsed();
    drop(built);
    eprintln!("wrote graph + frozen artifact in {build_wall:.2?}");
    emit_json(
        &args.json,
        &format!("server/{label}/freeze"),
        build_wall.as_secs_f64(),
    );

    // ── Start the server from the file. ──
    let restore_start = Instant::now();
    let (handle, source) = match server::serve_path(&path, &params, &ServerConfig::default()) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("exp_server: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let restore_wall = restore_start.elapsed();
    eprintln!(
        "server up on {} in {restore_wall:.2?} (engine {})",
        handle.addr(),
        match source {
            EngineSource::Artifact => "restored from the frozen artifact",
            EngineSource::Built => "REBUILT — artifact section missing",
        }
    );
    if !matches!(source, EngineSource::Artifact) {
        eprintln!("exp_server: expected an artifact restore, got a rebuild");
        failures += 1;
    }
    emit_json(
        &args.json,
        &format!("server/{label}/restore"),
        restore_wall.as_secs_f64(),
    );

    // ── Hostile leg. ──
    match hostile_leg(&handle) {
        Ok(()) => eprintln!("hostile leg: typed error, server survived"),
        Err(e) => {
            eprintln!("exp_server: HOSTILE LEG FAILED: {e}");
            failures += 1;
        }
    }

    // ── The oracle: the very engine the server restored. ──
    let oracle_engine: Arc<QueryEngine> = handle.engine();
    let stream = serve_query_stream(&g, args.queries, args.seed ^ 0x5E17E);
    let oracle: Vec<_> = stream.iter().map(|q| oracle_engine.answer(*q)).collect();
    let oracle_errors = oracle.iter().filter(|a| a.is_err()).count();
    eprintln!(
        "oracle: {} queries answered in-process ({} errors)",
        stream.len(),
        oracle_errors
    );

    // ── Concurrent client workload. ──
    let mut table = Table::new(
        &format!(
            "E9: wire tier (power_law target {} edges, {} queries, window {})",
            args.edges, args.queries, args.window
        ),
        &[
            "clients", "wall_s", "qps", "p50_us", "p99_us", "mismatch", "busy", "batches",
        ],
    );
    for &t in &args.threads {
        let t = t.max(1);
        let busy_before = handle.stats().busy;
        let batches_before = handle.stats().batches;
        let expected_gen = handle.generation();
        let slices: Vec<(Vec<Query>, Vec<_>)> = (0..t)
            .map(|i| {
                let qs: Vec<Query> = stream.iter().skip(i).step_by(t).copied().collect();
                let os: Vec<_> = oracle.iter().skip(i).step_by(t).cloned().collect();
                (qs, os)
            })
            .collect();
        let wall_start = Instant::now();
        let outcomes: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = slices
                .iter()
                .map(|(qs, os)| {
                    let addr = handle.addr();
                    let window = args.window;
                    scope.spawn(move || replay(addr, qs, os, window))
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        let wall = wall_start.elapsed();
        let mut mismatches = 0usize;
        let mut rtts: Vec<Duration> = Vec::with_capacity(stream.len());
        for outcome in outcomes {
            match outcome {
                Ok(Ok((m, r, gens, _))) => {
                    mismatches += m;
                    rtts.extend(r);
                    if let Some(&bad) = gens.iter().find(|&&g| g != expected_gen) {
                        eprintln!(
                            "exp_server: generation {bad} on an answer, expected {expected_gen}"
                        );
                        failures += 1;
                    }
                }
                Ok(Err(e)) => {
                    eprintln!("exp_server: client failed at t = {t}: {e}");
                    failures += 1;
                }
                Err(_) => {
                    eprintln!("exp_server: client panicked at t = {t}");
                    failures += 1;
                }
            }
        }
        if mismatches > 0 {
            eprintln!(
                "exp_server: MISMATCH at t = {t}: {mismatches} wire answers differ from the \
                 in-process oracle"
            );
            failures += 1;
        }
        rtts.sort_unstable();
        let p50 = percentile(&rtts, 50.0);
        let p99 = percentile(&rtts, 99.0);
        let qps = stream.len() as f64 / wall.as_secs_f64();
        let busy = handle.stats().busy - busy_before;
        let batches = handle.stats().batches - batches_before;
        eprintln!(
            "  t{t}: wall {wall:.2?}, {qps:.0} q/s, p50 {:.0}us p99 {:.0}us, {busy} busy, \
             {batches} batches",
            p50.as_secs_f64() * 1e6,
            p99.as_secs_f64() * 1e6,
        );
        table.row(vec![
            t.to_string(),
            format!("{:.3}", wall.as_secs_f64()),
            format!("{qps:.0}"),
            format!("{:.1}", p50.as_secs_f64() * 1e6),
            format!("{:.1}", p99.as_secs_f64() * 1e6),
            mismatches.to_string(),
            busy.to_string(),
            batches.to_string(),
        ]);
        emit_json(
            &args.json,
            &format!("server/{label}/t{t}"),
            wall.as_secs_f64(),
        );
        emit_json(
            &args.json,
            &format!("server/{label}/t{t}/p50"),
            p50.as_secs_f64(),
        );
        emit_json(
            &args.json,
            &format!("server/{label}/t{t}/p99"),
            p99.as_secs_f64(),
        );
        if let Some(budget) = args.p99_budget_ms {
            let p99_ms = p99.as_secs_f64() * 1e3;
            if p99_ms > budget {
                eprintln!("exp_server: P99 BUDGET BLOWN at t = {t}: {p99_ms:.2}ms > {budget}ms");
                failures += 1;
            }
        }
    }

    // ── Hot-swap mid-stream. ──
    match swap_leg(&handle, &stream, &oracle, args.window) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("exp_server: HOT-SWAP LEG FAILED: {e}");
            failures += 1;
        }
    }

    let stats = handle.stats();
    eprintln!(
        "server stats: {} accepted, {} refused, {} queries, {} answered, {} busy, {} batches, \
         {} protocol errors, {} reloads",
        stats.accepted,
        stats.refused,
        stats.queries,
        stats.answered,
        stats.busy,
        stats.batches,
        stats.protocol_errors,
        stats.reloads
    );
    handle.shutdown();
    let _ = std::fs::remove_file(&path);

    print!("{}", table.to_text());
    println!();
    print!("{}", table.to_csv());
    if failures > 0 {
        eprintln!("exp_server: {failures} failures");
        return ExitCode::FAILURE;
    }
    eprintln!("exp_server: all wire answers matched the in-process oracle");
    ExitCode::SUCCESS
}
