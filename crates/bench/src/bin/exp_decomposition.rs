//! **E1 — Theorem 1**: expander decomposition quality and round scaling.
//!
//! For each family × n × ε × k: run the decomposition, verify the
//! certificate, and report the measured inter-cluster fraction (must be
//! ≤ ε), the minimum certified part conductance (must be ≥ φ), and the
//! ledger rounds. The final block fits the round-growth exponent against
//! `n` for each `k` — the paper's `n^{2/k}·poly(1/φ, log n)` claim says
//! the exponent must *fall* as `k` grows.

use bench_suite::{fit_exponent, ring_family, Table};
use expander::prelude::*;
use graph::gen;

fn main() {
    let mut table = Table::new(
        "E1: (ε,φ)-expander decomposition (Theorem 1)",
        &[
            "family",
            "n",
            "m",
            "eps",
            "k",
            "parts",
            "removed_frac",
            "phi_promised",
            "min_cert_phi",
            "cert_ok",
            "rounds",
        ],
    );
    let mut scaling: Vec<(usize, usize, u64)> = Vec::new(); // (k, n, rounds)

    let sizes: &[usize] = bench_suite::tiny_or(&[48, 96], &[96, 192, 384, 768]);
    for &n in sizes {
        for &eps in &[0.1f64, 0.3] {
            for &k in &[1usize, 2, 3] {
                let (g, _) = ring_family(n);
                let res = ExpanderDecomposition::builder()
                    .epsilon(eps)
                    .k(k)
                    .seed(7)
                    .build()
                    .run(&g)
                    .expect("non-empty graph");
                let report = verify_decomposition(&g, &res);
                table.row(vec![
                    "ring".into(),
                    g.n().to_string(),
                    g.m().to_string(),
                    format!("{eps:.2}"),
                    k.to_string(),
                    res.parts.len().to_string(),
                    format!("{:.4}", res.inter_cluster_fraction()),
                    format!("{:.2e}", res.phi),
                    format!("{:.4}", report.min_certified_conductance()),
                    (report.is_partition && report.edge_budget_ok() && report.conductance_ok())
                        .to_string(),
                    res.ledger.total().to_string(),
                ]);
                if (eps - 0.3).abs() < 1e-9 {
                    scaling.push((k, g.n(), res.ledger.total()));
                }
            }
        }
    }

    // A second family: SBM with 4 blocks.
    for &half in &[24usize, 48, 96] {
        let pp = gen::planted_partition(
            &[half, half, half, half],
            0.4,
            0.4 / half as f64,
            half as u64,
        )
        .expect("sbm");
        let g = pp.graph;
        let res = ExpanderDecomposition::builder()
            .epsilon(0.3)
            .k(2)
            .seed(5)
            .build()
            .run(&g)
            .expect("non-empty");
        let report = verify_decomposition(&g, &res);
        table.row(vec![
            "sbm4".into(),
            g.n().to_string(),
            g.m().to_string(),
            "0.30".into(),
            "2".into(),
            res.parts.len().to_string(),
            format!("{:.4}", res.inter_cluster_fraction()),
            format!("{:.2e}", res.phi),
            format!("{:.4}", report.min_certified_conductance()),
            (report.is_partition && report.edge_budget_ok() && report.conductance_ok()).to_string(),
            res.ledger.total().to_string(),
        ]);
    }
    table.print();

    let mut fit = Table::new(
        "E1b: round-growth exponent vs k (paper: n^{2/k}·polylog)",
        &["k", "fitted_exponent", "paper_shape"],
    );
    for k in [1usize, 2, 3] {
        let pts: Vec<(f64, f64)> = scaling
            .iter()
            .filter(|&&(kk, _, _)| kk == k)
            .map(|&(_, n, r)| (n as f64, r.max(1) as f64))
            .collect();
        if pts.len() >= 2 {
            fit.row(vec![
                k.to_string(),
                format!("{:.2}", fit_exponent(&pts)),
                format!("2/k = {:.2} (+polylog)", 2.0 / k as f64),
            ]);
        }
    }
    fit.print();
}
