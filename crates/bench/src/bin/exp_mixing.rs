//! **E7 — §1 inequality (Jerrum–Sinclair)**:
//! `Θ(1/Φ_G) ≤ τ_mix(G) ≤ Θ(log n/Φ_G²)`.
//!
//! For families sweeping conductance from Θ(1/n²) (barbell) to Θ(1)
//! (clique), measure τ_mix by walking to TV distance 1/4 and check both
//! sides of the sandwich. Φ is exact where the family admits it, else the
//! sweep-cut upper bound paired with the Cheeger lower bound.

use bench_suite::{mixing_family, Table};
use graph::spectral;

fn main() {
    let mut table = Table::new(
        "E7: mixing time vs conductance (Jerrum–Sinclair sandwich)",
        &[
            "family",
            "n",
            "phi",
            "phi_kind",
            "tau_mix",
            "lower_c/phi",
            "upper_logn/phi2",
            "sandwich_ok",
        ],
    );
    for (name, g, exact_phi) in mixing_family() {
        let (phi, kind) = match exact_phi {
            Some(p) => (p, "exact"),
            None => {
                // Cheeger lower bound as the conservative stand-in.
                let gap = spectral::lazy_walk_lambda2(&g, 500).expect("connected");
                (spectral::cheeger_lower_bound(&gap).max(1e-6), "cheeger_lb")
            }
        };
        let starts = spectral::extreme_starts(&g);
        let step_cap = bench_suite::tiny_or(200_000, 2_000_000);
        let tau = spectral::mixing_time(&g, &starts, 0.25, step_cap)
            .expect("graphs small enough to mix") as f64;
        // Constants: lower side uses c = 1/20 (lazy walk halves movement;
        // TV target 1/4 softens it further); upper uses C = 40.
        let lower = 0.05 / phi;
        let upper = 40.0 * (g.n() as f64).ln() / (phi * phi);
        table.row(vec![
            name,
            g.n().to_string(),
            format!("{phi:.5}"),
            kind.into(),
            format!("{tau:.0}"),
            format!("{lower:.1}"),
            format!("{upper:.0}"),
            (tau >= lower && tau <= upper).to_string(),
        ]);
    }
    table.print();
}
