//! **E6 — §3 observation**: the GKS routing preprocessing/query trade-off.
//!
//! For expanders of increasing size and hierarchy depths k = 1..4:
//! preprocessing rounds fall with k at fixed n? No — the trade-off is:
//! *query* rounds grow as `(log n)^k·τ_mix` while the β-driven
//! preprocessing term shrinks (`β = n^{1/k}`). The paper's use case needs
//! constant k with preprocessing `o(n^{1/3})`-growth and polylog queries;
//! the last block fits growth exponents vs n at fixed k.

use bench_suite::{expander_family, fit_exponent, Table};
use routing::{RoutingHierarchy, RoutingRequest};

fn main() {
    let mut table = Table::new(
        "E6: GKS routing data structure (preprocessing vs query)",
        &[
            "n",
            "k",
            "beta",
            "tau_mix",
            "preprocess_rounds",
            "query_rounds",
            "route_ok",
        ],
    );
    let mut growth: Vec<(usize, f64, f64)> = Vec::new(); // (k, n, preprocessing)

    let sizes: &[usize] = bench_suite::tiny_or(&[64, 128], &[256, 512, 1024, 2048]);
    let k_max = bench_suite::tiny_or(2usize, 4usize);
    for &n in sizes {
        let g = expander_family(n, 3);
        for k in 1..=k_max {
            let h = RoutingHierarchy::build(&g, k, 11).expect("expander builds");
            // A permutation routing instance to validate delivery.
            let reqs: Vec<RoutingRequest> = (0..n as u32)
                .map(|v| RoutingRequest {
                    src: v,
                    dst: (v * 131 + 7) % n as u32,
                })
                .collect();
            let out = h.route(&g, &reqs).expect("requests valid");
            table.row(vec![
                n.to_string(),
                k.to_string(),
                h.beta().to_string(),
                h.tau_mix().to_string(),
                h.preprocessing_rounds().to_string(),
                h.query_rounds().to_string(),
                out.delivered.to_string(),
            ]);
            growth.push((k, n as f64, h.preprocessing_rounds() as f64));
        }
    }
    table.print();

    let mut fit = Table::new(
        "E6b: preprocessing growth exponent vs n (paper: β = n^{1/k} term)",
        &["k", "fitted_exponent", "paper_shape"],
    );
    for k in 1..=k_max {
        let pts: Vec<(f64, f64)> = growth
            .iter()
            .filter(|&&(kk, _, _)| kk == k)
            .map(|&(_, n, p)| (n, p))
            .collect();
        fit.row(vec![
            k.to_string(),
            format!("{:.2}", fit_exponent(&pts)),
            format!("≈ 1/k = {:.2} (+polylog)", 1.0 / k as f64),
        ]);
    }
    fit.print();

    println!(
        "the §3 punchline: at constant k ≥ 4 the preprocessing exponent sits \
         below 1/3, so Õ(n^{{1/3}}) queries dominate — giving Theorem 2 its \
         Õ(n^{{1/3}}) total."
    );
}
