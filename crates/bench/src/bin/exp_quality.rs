//! **E8 — the decomposition-quality harness**: the fixed-seed quality
//! trajectory CI tracks across PRs (ROADMAP open item: "no CI job tracks
//! the decomposition's quality").
//!
//! For every workload family (ring of cliques, gnp, planted partition,
//! power-law, path) at fixed seeds, run the measured Theorem 1
//! decomposition and report [`expander::QualityReport`]: cut fraction
//! total and per removal tag, cluster-count shape (count, singletons,
//! largest share), and φ-certificate validity. Each run is audited
//! against [`expander::QualityBounds`]: the Theorem 1 guarantees (ε cut
//! budget, ε/3 per tag, partition + certificates) always, plus
//! per-family structural bounds (a ring of cliques decomposing into 40
//! singletons is legal but a regression). Any violation makes the binary
//! exit non-zero — the CI `quality-smoke` gate.
//!
//! `--json <path>` appends one flat JSON object per run (the artifact CI
//! uploads so the trajectory is comparable across commits).

use bench_suite::{tiny_or, Table};
use expander::{ExpanderDecomposition, QualityBounds, QualityReport};
use graph::{gen, Graph};
use std::io::Write;
use std::process::ExitCode;

/// One fixed-seed quality workload: the graph, the ε to decompose with,
/// and the structural bounds this family must additionally meet.
struct QualityWorkload {
    label: String,
    graph: Graph,
    epsilon: f64,
    bounds: QualityBounds,
}

/// The fixed-seed workload set. Structural bounds are calibrated from
/// the current measured values with ≥ 2× slack, so they fail on real
/// regressions (shredding, certificate loss), not on noise — the seeds
/// are fixed, so runs are bit-reproducible anyway.
fn workloads(seed: u64) -> Vec<QualityWorkload> {
    let mut out = Vec::new();
    let (ring, cliques) = gen::ring_of_cliques(6, 8).expect("valid ring");
    out.push(QualityWorkload {
        label: format!("ring_of_cliques/seed{seed}"),
        graph: ring,
        epsilon: 0.3,
        // The ring must keep clique-shaped clusters: nowhere near one
        // cluster per vertex, and no cluster should span the ring.
        bounds: QualityBounds::for_epsilon(0.3)
            .with_max_clusters(4 * cliques.len())
            .with_min_largest_fraction(0.05),
    });
    let gnp = gen::gnp(tiny_or(48, 64), 0.3, seed).expect("valid gnp");
    out.push(QualityWorkload {
        label: format!("gnp/seed{seed}"),
        graph: gnp,
        epsilon: 0.3,
        // A dense G(n, 0.3) is an expander: it must survive near-whole.
        bounds: QualityBounds::for_epsilon(0.3).with_min_largest_fraction(0.5),
    });
    let half = tiny_or(24, 32);
    let pp = gen::planted_partition(&[half, half], 0.5, 0.03, seed).expect("valid sbm");
    out.push(QualityWorkload {
        label: format!("planted2/seed{seed}"),
        graph: pp.graph,
        epsilon: 0.4,
        bounds: QualityBounds::for_epsilon(0.4)
            .with_max_clusters(half)
            .with_min_largest_fraction(0.25),
    });
    let pl = bench_suite::scale_power_law(tiny_or(1_000, 5_000), seed);
    out.push(QualityWorkload {
        label: format!("power_law/seed{seed}"),
        graph: pl,
        epsilon: 0.3,
        // Power-law tails shred into singletons; only the theorem bounds
        // apply structurally.
        bounds: QualityBounds::for_epsilon(0.3),
    });
    out.push(QualityWorkload {
        label: format!("path/seed{seed}"),
        graph: gen::path(32).expect("valid path"),
        epsilon: 0.3,
        // Paths may shred freely — quality tracking must record the
        // shape without calling it a violation.
        bounds: QualityBounds::for_epsilon(0.3),
    });
    out
}

struct Args {
    seeds: Vec<u64>,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: vec![7, 42],
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u64>()
                            .map_err(|e| format!("bad --seeds: {e}"))
                    })
                    .collect::<Result<_, _>>()?
            }
            "--json" => args.json = Some(value("--json")?),
            "--tiny" => {} // consumed by bench_suite::tiny_mode
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.seeds.is_empty() {
        return Err("need at least one seed".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("exp_quality: {e}");
            eprintln!("usage: exp_quality [--seeds 7,42] [--json out.jsonl] [--tiny]");
            return ExitCode::from(2);
        }
    };
    let mut table = Table::new(
        "E8: decomposition quality (fixed seeds)",
        &[
            "workload",
            "n",
            "m",
            "clusters",
            "singletons",
            "largest",
            "cut_frac",
            "r1",
            "r2",
            "r3",
            "min_phi_cert",
            "cert_ok",
        ],
    );

    let mut jsonl = String::new();
    let mut failures = 0usize;
    for &seed in &args.seeds {
        for w in workloads(seed) {
            let result = ExpanderDecomposition::builder()
                .epsilon(w.epsilon)
                .seed(seed)
                .build()
                .run(&w.graph)
                .expect("non-empty quality workloads");
            let q = QualityReport::measure(&w.graph, &result);
            table.row(vec![
                w.label.clone(),
                q.n.to_string(),
                q.m.to_string(),
                q.cluster_count.to_string(),
                q.singleton_clusters.to_string(),
                format!("{:.2}", q.largest_cluster_fraction),
                format!("{:.3}", q.cut_fraction),
                format!("{:.3}", q.cut_fraction_by_tag[0]),
                format!("{:.3}", q.cut_fraction_by_tag[1]),
                format!("{:.3}", q.cut_fraction_by_tag[2]),
                format!("{:.2e}", q.min_certified_conductance),
                q.certificates_ok.to_string(),
            ]);
            jsonl.push_str(&q.to_json(&w.label));
            jsonl.push('\n');
            for violation in q.violations(&w.bounds) {
                eprintln!("exp_quality: BOUND VIOLATED on {}: {violation}", w.label);
                failures += 1;
            }
        }
    }

    if let Some(path) = &args.json {
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(jsonl.as_bytes()));
        if let Err(e) = written {
            eprintln!("exp_quality: cannot append to {path}: {e}");
        }
    }

    print!("{}", table.to_text());
    println!();
    print!("{}", table.to_csv());
    if failures > 0 {
        eprintln!("exp_quality: {failures} quality bounds violated");
        return ExitCode::FAILURE;
    }
    eprintln!("exp_quality: all quality bounds hold");
    ExitCode::SUCCESS
}
