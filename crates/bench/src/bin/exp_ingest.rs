//! **E9 — the ingestion tier**: real graph in, answers out, nothing
//! rebuilt twice.
//!
//! Every other experiment generates its workload; this one eats a
//! plain-text edge list from disk (default: the committed Zachary Karate
//! Club sample, `datasets/karate.txt` — see `DATASETS.md` for fetching
//! SNAP-scale inputs) and drives the full storage path end to end:
//!
//! 1. **convert** the edge list to the binary on-disk CSR with the
//!    out-of-core sorter (`--chunk-edges` bounds resident memory,
//!    `--morton` applies locality relabeling),
//! 2. **open** the file zero-copy (mmap; heap fallback reported), then
//!    **materialize** the [`graph::Graph`] — which re-validates every
//!    structural invariant including adjacency symmetry,
//! 3. run the **measured pipeline** ([`enumerate_via_decomposition`])
//!    sequentially and in parallel and require bit-identical triangle
//!    lists; `--verify` additionally checks them against the centralized
//!    enumerator,
//! 4. **build** the [`QueryEngine`], **persist** it into the file's
//!    frozen-artifact section ([`storage::artifact::store`]), reopen,
//!    **restore** ([`storage::artifact::load`]) and require the restored
//!    engine to answer a fixed query stream bit-identically (charges
//!    included); `--restore-budget R` gates `restore_wall ≤ R·build_wall`.
//!
//! `--json <path>` appends `{"name": ..., "median_s": ...}` lines in the
//! `bench_gate collect` format (CI's `ingest-smoke` artifact);
//! `--wall-budget-s B` fails the run when the whole flow exceeds `B`
//! seconds. Exit is non-zero on any mismatch or blown budget.

use bench_suite::{serve_query_stream, tiny_or, Table};
use expander::SchedulerPolicy;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use storage::{artifact, convert_edge_list, ConvertOptions, CsrFile};
use triangle::pipeline::PipelineParams;
use triangle::service::QueryEngine;
use triangle::{count_triangles, enumerate_via_decomposition};

struct Args {
    input: PathBuf,
    out: Option<PathBuf>,
    morton: bool,
    chunk_edges: usize,
    queries: usize,
    seed: u64,
    json: Option<String>,
    verify: bool,
    restore_budget: Option<f64>,
    wall_budget_s: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: PathBuf::from("datasets/karate.txt"),
        out: None,
        morton: false,
        chunk_edges: ConvertOptions::default().chunk_edges,
        queries: 2_000,
        seed: 42,
        json: None,
        verify: false,
        restore_budget: None,
        wall_budget_s: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--input" => args.input = PathBuf::from(value("--input")?),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--morton" => args.morton = true,
            "--chunk-edges" => {
                args.chunk_edges = value("--chunk-edges")?
                    .parse()
                    .map_err(|e| format!("bad --chunk-edges: {e}"))?
            }
            "--queries" => {
                args.queries = value("--queries")?
                    .parse()
                    .map_err(|e| format!("bad --queries: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--json" => args.json = Some(value("--json")?),
            "--verify" => args.verify = true,
            "--restore-budget" => {
                args.restore_budget = Some(
                    value("--restore-budget")?
                        .parse()
                        .map_err(|e| format!("bad --restore-budget: {e}"))?,
                )
            }
            "--wall-budget-s" => {
                args.wall_budget_s = Some(
                    value("--wall-budget-s")?
                        .parse()
                        .map_err(|e| format!("bad --wall-budget-s: {e}"))?,
                )
            }
            "--tiny" => {
                args.queries = 500;
                args.verify = true;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    args.queries = tiny_or(args.queries.min(500), args.queries);
    Ok(args)
}

fn emit_json(path: &Option<String>, name: &str, seconds: f64) {
    let Some(path) = path else { return };
    let line = format!("{{\"name\": \"{name}\", \"median_s\": {seconds:e}}}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("exp_ingest: cannot append to {path}: {e}");
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("exp_ingest: {e}");
            eprintln!(
                "usage: exp_ingest [--input edges.txt] [--out file.csr] [--morton] \
                 [--chunk-edges N] [--queries Q] [--seed S] [--json out.jsonl] [--verify] \
                 [--restore-budget R] [--wall-budget-s B] [--tiny]"
            );
            return ExitCode::from(2);
        }
    };
    let label = args
        .input
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "input".to_string());
    let out = args.out.clone().unwrap_or_else(|| {
        let mut p = args.input.clone();
        p.set_extension(if args.morton { "morton.csr" } else { "csr" });
        p
    });
    let total_start = Instant::now();
    let mut failures = 0usize;
    let mut table = Table::new(
        &format!("E9: ingestion tier ({})", args.input.display()),
        &["stage", "wall_s", "detail"],
    );
    let stage = |table: &mut Table, name: &str, secs: f64, detail: String| {
        table.row(vec![name.to_string(), format!("{secs:.4}"), detail]);
        emit_json(&args.json, &format!("ingest/{label}/{name}"), secs);
    };

    // ── 1. Convert. ──
    let opts = ConvertOptions {
        chunk_edges: args.chunk_edges,
        morton: args.morton,
        ..Default::default()
    };
    let t = Instant::now();
    let report = match convert_edge_list(&args.input, &out, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("exp_ingest: convert failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let convert_s = t.elapsed().as_secs_f64();
    eprintln!(
        "converted {} -> {}: n = {}, m = {} ({} records, {} duplicates dropped, \
         {} self loops, {} chunks{}{}) in {convert_s:.3}s",
        args.input.display(),
        out.display(),
        report.n,
        report.m,
        report.edge_records,
        report.duplicates_removed,
        report.self_loops,
        report.chunks,
        if report.dense_relabeled {
            ", dense-relabeled"
        } else {
            ""
        },
        if report.morton { ", morton" } else { "" },
    );
    stage(
        &mut table,
        "convert",
        convert_s,
        format!("n={} m={} chunks={}", report.n, report.m, report.chunks),
    );

    // ── 2. Open zero-copy, then materialize. ──
    let t = Instant::now();
    let file = match CsrFile::open(&out) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("exp_ingest: open failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let open_s = t.elapsed().as_secs_f64();
    eprintln!(
        "opened {} ({}, artifact: {}) in {open_s:.4}s",
        out.display(),
        if file.is_mapped() { "mmap" } else { "heap" },
        file.header().has_artifact(),
    );
    stage(
        &mut table,
        "open",
        open_s,
        (if file.is_mapped() { "mmap" } else { "heap" }).to_string(),
    );
    let t = Instant::now();
    let g = match file.to_graph() {
        Ok(g) => g,
        Err(e) => {
            eprintln!("exp_ingest: materialize failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mat_s = t.elapsed().as_secs_f64();
    stage(
        &mut table,
        "materialize",
        mat_s,
        format!("n={} m={}", g.n(), g.m()),
    );

    // ── 3. The measured pipeline, sequential vs parallel. ──
    use congest::ExecMode;
    let seq_params = PipelineParams {
        seed: args.seed,
        recursion_exec: ExecMode::Sequential,
        ..Default::default()
    };
    let par_params = PipelineParams {
        recursion_exec: ExecMode::Parallel,
        ..seq_params.clone()
    };
    let t = Instant::now();
    let seq = enumerate_via_decomposition(&g, &seq_params);
    let pipeline_s = t.elapsed().as_secs_f64();
    let par = enumerate_via_decomposition(&g, &par_params);
    if seq.triangles != par.triangles {
        eprintln!("exp_ingest: MISMATCH: sequential and parallel pipeline runs disagree");
        failures += 1;
    }
    eprintln!(
        "pipeline enumerated {} triangles in {pipeline_s:.3}s (seq == par: {})",
        seq.triangles.len(),
        seq.triangles == par.triangles,
    );
    if args.verify {
        let want = count_triangles(&g);
        if seq.triangles.len() as u64 != want {
            eprintln!(
                "exp_ingest: VERIFY FAILED: pipeline found {} triangles, centralized count {want}",
                seq.triangles.len()
            );
            failures += 1;
        } else {
            eprintln!("verify: centralized count {want} matches");
        }
    }
    stage(
        &mut table,
        "pipeline",
        pipeline_s,
        format!("triangles={}", seq.triangles.len()),
    );

    // ── 4. Build, persist, restore, answer-identity. ──
    let t = Instant::now();
    let engine = QueryEngine::build(&g, &seq_params);
    let build_s = t.elapsed().as_secs_f64();
    let br = engine.build_report();
    stage(
        &mut table,
        "build",
        build_s,
        format!(
            "clusters={} routed={} phi={:.4}",
            br.clusters, br.routed_clusters, br.phi
        ),
    );
    eprintln!(
        "build report: {} clusters ({} routed), phi = {:.4}, {} decomposition rounds, \
         {} hierarchy rounds, {} snapshot words",
        br.clusters,
        br.routed_clusters,
        br.phi,
        br.decomposition_rounds,
        br.hierarchy_build_rounds,
        br.snapshot_words
    );
    let t = Instant::now();
    if let Err(e) = artifact::store(&out, &engine) {
        eprintln!("exp_ingest: artifact store failed: {e}");
        return ExitCode::FAILURE;
    }
    let store_s = t.elapsed().as_secs_f64();
    stage(&mut table, "store", store_s, String::new());
    let t = Instant::now();
    let restored = match CsrFile::open(&out).and_then(|f| artifact::load(&f)) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("exp_ingest: artifact load failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let restore_s = t.elapsed().as_secs_f64();
    let ratio = restore_s / build_s.max(1e-9);
    eprintln!(
        "build {build_s:.3}s, store {store_s:.3}s, restore {restore_s:.3}s \
         (restore/build = {ratio:.3})"
    );
    stage(
        &mut table,
        "restore",
        restore_s,
        format!("ratio={ratio:.3}"),
    );
    if let Some(budget) = args.restore_budget {
        if ratio > budget {
            eprintln!("exp_ingest: RESTORE BUDGET BLOWN: ratio {ratio:.3} > {budget}");
            failures += 1;
        }
    }
    let stream = serve_query_stream(&g, args.queries, args.seed ^ 0x1267);
    let a = engine.serve(&stream, &SchedulerPolicy::sequential());
    let b = restored.serve(&stream, &SchedulerPolicy::sequential());
    if !a.answers_match(&b) {
        eprintln!(
            "exp_ingest: MISMATCH: restored engine answers differ from the built engine \
             on the fixed {}-query stream",
            stream.len()
        );
        failures += 1;
    } else {
        eprintln!(
            "restored engine bit-identical on {} queries (checksum {})",
            stream.len(),
            a.count_checksum()
        );
    }

    let total_s = total_start.elapsed().as_secs_f64();
    emit_json(&args.json, &format!("ingest/{label}/total"), total_s);
    if let Some(budget) = args.wall_budget_s {
        if total_s > budget {
            eprintln!("exp_ingest: WALL BUDGET BLOWN: {total_s:.2}s > {budget}s");
            failures += 1;
        }
    }
    print!("{}", table.to_text());
    println!();
    print!("{}", table.to_csv());
    if failures > 0 {
        eprintln!("exp_ingest: {failures} failures");
        return ExitCode::FAILURE;
    }
    eprintln!("exp_ingest: converted, loaded, enumerated, persisted, restored — all identical");
    ExitCode::SUCCESS
}
