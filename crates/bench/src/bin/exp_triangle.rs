//! **E2 — Theorem 2**: triangle enumeration round scaling in CONGEST vs
//! CONGESTED-CLIQUE.
//!
//! Workload: `G(n, p)` (the Ω̃(n^{1/3}) lower-bound family uses p = 1/2).
//! For each n: enumerate with the Theorem 2 CONGEST algorithm and the DLP
//! clique baseline; verify completeness against ground truth; report
//! rounds and the fitted growth exponents. The paper's claim: both models
//! are `Θ̃(n^{1/3})` — exponents should be close (up to polylog drift),
//! and the DLP exponent ≈ 1/3.

use bench_suite::{fit_exponent, gnp_family, Table};
use triangle::{clique_enumerate, congest_enumerate, enumerate_triangles, TriangleConfig};

fn main() {
    let mut table = Table::new(
        "E2: triangle enumeration rounds (Theorem 2)",
        &[
            "n",
            "m",
            "triangles",
            "congest_rounds",
            "congest_listing",
            "clique_rounds",
            "complete",
        ],
    );
    let mut congest_pts = Vec::new();
    let mut listing_pts = Vec::new();
    let mut query_pts = Vec::new();
    let mut clique_pts = Vec::new();

    let sizes: &[usize] = bench_suite::tiny_or(&[16, 24], &[32, 64, 128, 256]);
    for &n in sizes {
        let g = gnp_family(n, 0.5, 42 + n as u64);
        let truth = enumerate_triangles(&g);
        let congest = congest_enumerate(&g, &TriangleConfig::default());
        let clique = clique_enumerate(&g);
        let complete = congest.triangles == truth && clique.triangles == truth;
        // Listing-only rounds: the component the n^{1/3} shape governs
        // directly (decomposition rounds carry the polylog overhead).
        let listing: u64 = congest
            .levels
            .iter()
            .map(|l| l.routing_build_rounds + l.listing_rounds)
            .sum();
        let queries: u64 = congest
            .levels
            .iter()
            .map(|l| l.max_queries)
            .max()
            .unwrap_or(0);
        table.row(vec![
            n.to_string(),
            g.m().to_string(),
            truth.len().to_string(),
            congest.rounds.to_string(),
            listing.to_string(),
            clique.rounds.to_string(),
            complete.to_string(),
        ]);
        congest_pts.push((n as f64, congest.rounds.max(1) as f64));
        listing_pts.push((n as f64, listing.max(1) as f64));
        query_pts.push((n as f64, queries.max(1) as f64));
        clique_pts.push((n as f64, clique.rounds.max(1) as f64));
    }
    table.print();

    let mut fit = Table::new(
        "E2b: growth exponents (paper: both models Θ̃(n^{1/3}))",
        &["series", "fitted_exponent", "paper"],
    );
    fit.row(vec![
        "congest_total".into(),
        format!("{:.2}", fit_exponent(&congest_pts)),
        "1/3 + polylog drift".into(),
    ]);
    fit.row(vec![
        "congest_listing".into(),
        format!("{:.2}", fit_exponent(&listing_pts)),
        "≈ 1/3".into(),
    ]);
    fit.row(vec![
        "congest_queries".into(),
        format!("{:.2}", fit_exponent(&query_pts)),
        "1/3 (the Õ(n^{1/3}) routing-query count)".into(),
    ]);
    fit.row(vec![
        "clique_dlp".into(),
        format!("{:.2}", fit_exponent(&clique_pts)),
        "1/3".into(),
    ]);
    fit.print();
}
