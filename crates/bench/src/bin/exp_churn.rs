//! **E9 — the churn tier**: maintain the triangle artifact incrementally
//! under live edge churn and measure the payoff against starting over.
//!
//! The flow mirrors a serving deployment absorbing writes:
//!
//! 1. generate the planted-partition scale instance (≈ `--edges` edges)
//!    and freeze a [`QueryEngine`] over its planted clusters,
//! 2. open a [`DeltaLedger`] and, per batch size in `--batches`, apply a
//!    deterministic churn batch ([`bench_suite::churn_ops`]) and compare
//!    the incremental wall against the from-scratch comparator — a full
//!    `count_triangles` recount of the live graph — asserting the two
//!    counts are **equal** every time,
//! 3. run one certificate-driven rebuild ([`DeltaLedger::rebuild`]) and
//!    compare it against a from-scratch [`QueryEngine::build`] on the
//!    final graph: cluster-artifact reuse is reported, and the two
//!    engines' answers must be bit-identical over a vertex probe sweep
//!    (charges excluded — reused hierarchies keep their original seeds).
//!
//! `--min-speedup X` gates every batch's incremental-vs-recount speedup
//! (CI's `churn-smoke` passes 5). `--json <path>` appends
//! `{"name": ..., "median_s": ...}` lines in the `bench_gate collect`
//! format. Exit is non-zero on any count/answer mismatch or a blown
//! speedup floor.

use bench_suite::{churn_ops, scale_planted_partition, tiny_or, Table};
use expander::{ClusterAssignment, SchedulerPolicy};
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use triangle::pipeline::PipelineParams;
use triangle::service::{Emit, Query, QueryEngine};
use triangle::{count_triangles, DeltaLedger};

struct Args {
    edges: usize,
    batches: Vec<usize>,
    seed: u64,
    json: Option<String>,
    min_speedup: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        edges: 1_000_000,
        batches: vec![16, 128, 1024],
        seed: 42,
        json: None,
        min_speedup: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--edges" => {
                args.edges = value("--edges")?
                    .parse()
                    .map_err(|e| format!("bad --edges: {e}"))?
            }
            "--batches" => {
                args.batches = value("--batches")?
                    .split(',')
                    .map(|b| {
                        b.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("bad --batches: {e}"))
                    })
                    .collect::<Result<_, _>>()?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--json" => args.json = Some(value("--json")?),
            "--min-speedup" => {
                args.min_speedup = Some(
                    value("--min-speedup")?
                        .parse()
                        .map_err(|e| format!("bad --min-speedup: {e}"))?,
                )
            }
            "--tiny" => args.edges = 20_000,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.batches.is_empty() {
        return Err("need at least one batch size".to_string());
    }
    if tiny_or(true, false) {
        args.edges = args.edges.min(20_000);
    }
    Ok(args)
}

fn emit_json(path: &Option<String>, name: &str, seconds: f64) {
    let Some(path) = path else { return };
    let line = format!("{{\"name\": \"{name}\", \"median_s\": {seconds:e}}}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("exp_churn: cannot append to {path}: {e}");
    }
}

fn edge_label(edges: usize) -> String {
    if edges % 1_000_000 == 0 && edges > 0 {
        format!("{}m", edges / 1_000_000)
    } else if edges % 1_000 == 0 && edges > 0 {
        format!("{}k", edges / 1_000)
    } else {
        edges.to_string()
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("exp_churn: {e}");
            eprintln!(
                "usage: exp_churn [--edges N] [--batches 16,128,1024] [--seed S] \
                 [--json out.jsonl] [--min-speedup X] [--tiny]"
            );
            return ExitCode::from(2);
        }
    };
    let label = edge_label(args.edges);

    let gen_start = Instant::now();
    let pp = scale_planted_partition(args.edges, args.seed);
    eprintln!(
        "generated planted_partition n = {}, m = {}, {} blocks in {:.2?}",
        pp.graph.n(),
        pp.graph.m(),
        pp.blocks.len(),
        gen_start.elapsed()
    );

    // ── Freeze once over the planted clusters. ──
    let params = PipelineParams {
        seed: args.seed,
        ..Default::default()
    };
    let assignment =
        ClusterAssignment::from_parts(&pp.graph, &pp.blocks, 0.1, &params.scheduler_policy());
    let build_start = Instant::now();
    let engine = Arc::new(QueryEngine::from_assignment(&pp.graph, assignment, &params));
    let build_wall = build_start.elapsed();
    eprintln!(
        "froze engine in {:.2?}: {} clusters, {} snapshot words",
        build_wall,
        engine.build_report().clusters,
        engine.build_report().snapshot_words
    );
    emit_json(
        &args.json,
        &format!("churn/{label}/freeze"),
        build_wall.as_secs_f64(),
    );

    let open_start = Instant::now();
    let mut ledger = DeltaLedger::new(&pp.graph, Arc::clone(&engine));
    eprintln!(
        "opened ledger in {:.2?} ({} triangles)",
        open_start.elapsed(),
        ledger.triangles()
    );

    let mut table = Table::new(
        &format!(
            "E9: churn tier (planted_partition target {} edges)",
            args.edges
        ),
        &[
            "batch",
            "applied",
            "inc_us",
            "recount_ms",
            "speedup",
            "created",
            "destroyed",
            "dirty",
            "exact",
        ],
    );
    let mut failures = 0usize;

    // ── The apply sweep: incremental vs from-scratch recount. ──
    for (round, &batch) in args.batches.iter().enumerate() {
        let ops = churn_ops(
            &ledger.working().to_graph(),
            args.seed ^ (0xC0FFEE + round as u64),
            batch,
        );
        let inc_start = Instant::now();
        let report = ledger.apply(&ops);
        let inc_wall = inc_start.elapsed();

        let live = ledger.working().to_graph();
        let recount_start = Instant::now();
        let recount = count_triangles(&live);
        let recount_wall = recount_start.elapsed();

        let exact = ledger.triangles() == recount;
        if !exact {
            eprintln!(
                "exp_churn: COUNT MISMATCH at batch {batch}: incremental {} vs recount {recount}",
                ledger.triangles()
            );
            failures += 1;
        }
        let speedup = recount_wall.as_secs_f64() / inc_wall.as_secs_f64().max(1e-9);
        eprintln!(
            "  batch {batch}: applied {} (+{} -{} witnesses, {} dirty clusters) in {:.2?}; \
             recount {:.2?}; speedup {speedup:.1}x",
            report.applied,
            report.created.len(),
            report.destroyed.len(),
            report.touched_clusters,
            inc_wall,
            recount_wall,
        );
        table.row(vec![
            batch.to_string(),
            report.applied.to_string(),
            format!("{:.1}", inc_wall.as_secs_f64() * 1e6),
            format!("{:.2}", recount_wall.as_secs_f64() * 1e3),
            format!("{speedup:.1}"),
            report.created.len().to_string(),
            report.destroyed.len().to_string(),
            report.touched_clusters.to_string(),
            if exact { "yes" } else { "NO" }.to_string(),
        ]);
        emit_json(
            &args.json,
            &format!("churn/{label}/apply/b{batch}"),
            inc_wall.as_secs_f64(),
        );
        emit_json(
            &args.json,
            &format!("churn/{label}/recount/b{batch}"),
            recount_wall.as_secs_f64(),
        );
        if let Some(floor) = args.min_speedup {
            if speedup < floor {
                eprintln!(
                    "exp_churn: SPEEDUP FLOOR BLOWN at batch {batch}: {speedup:.1}x < {floor}x"
                );
                failures += 1;
            }
        }
    }

    // ── The rebuild: certificate-driven refreeze vs starting over. ──
    let final_g = ledger.working().to_graph();
    let rebuild_start = Instant::now();
    let rebuild = ledger.rebuild(&params);
    let rebuild_wall = rebuild_start.elapsed();
    let scratch_start = Instant::now();
    let scratch = QueryEngine::build(&final_g, &params);
    let scratch_wall = scratch_start.elapsed();
    let rebuild_speedup = scratch_wall.as_secs_f64() / rebuild_wall.as_secs_f64().max(1e-9);
    eprintln!(
        "rebuild: {:.2?} ({} certified, {} broken, {} reused by pointer, {} refrozen) vs \
         from-scratch build {:.2?} — {rebuild_speedup:.1}x",
        rebuild_wall,
        rebuild.checked,
        rebuild.broken,
        rebuild.reused,
        rebuild.rebuilt,
        scratch_wall,
    );
    emit_json(
        &args.json,
        &format!("churn/{label}/rebuild"),
        rebuild_wall.as_secs_f64(),
    );
    emit_json(
        &args.json,
        &format!("churn/{label}/scratch_build"),
        scratch_wall.as_secs_f64(),
    );

    // ── Equivalence: the refrozen engine answers like the fresh one. ──
    let stride = (final_g.n() / 256).max(1);
    let probes: Vec<Query> = (0..final_g.n())
        .step_by(stride)
        .map(|v| Query::Vertex {
            v: v as u32,
            emit: Emit::Count,
        })
        .collect();
    let policy = SchedulerPolicy::sequential();
    let inc_answers = rebuild.engine.serve(&probes, &policy);
    let scratch_answers = scratch.serve(&probes, &policy);
    let mut mismatches = 0usize;
    for (i, (a, b)) in inc_answers
        .answers
        .iter()
        .zip(&scratch_answers.answers)
        .enumerate()
    {
        let same = match (a, b) {
            (Ok(x), Ok(y)) => x.answer == y.answer,
            (Err(_), Err(_)) => true,
            _ => false,
        };
        if !same {
            mismatches += 1;
            if mismatches <= 3 {
                eprintln!("exp_churn: ANSWER MISMATCH on probe {i}: {a:?} vs {b:?}");
            }
        }
    }
    if mismatches > 0 {
        eprintln!("exp_churn: {mismatches} answer mismatches after rebuild");
        failures += 1;
    } else {
        eprintln!(
            "refrozen engine matches from-scratch on all {} probes",
            probes.len()
        );
    }

    print!("{}", table.to_text());
    println!();
    print!("{}", table.to_csv());
    if failures > 0 {
        eprintln!("exp_churn: {failures} failures");
        return ExitCode::FAILURE;
    }
    eprintln!("exp_churn: incremental maintenance exact; refrozen answers identical");
    ExitCode::SUCCESS
}
