//! The serve tier: deterministic query streams for the triangle-query
//! service ([`triangle::service::QueryEngine`]) plus the summary shape
//! `exp_serve` and the `serve` criterion bench share.
//!
//! Streams are a pure function of `(graph, count, seed)` so every
//! consumer — the latency sweep, the CI smoke job, the equivalence
//! audits — replays bit-identical batches.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triangle::service::{Emit, Query};

/// Generates a deterministic mixed query stream over `g`: ~40% vertex
/// enumerations, ~20% vertex counts, ~30% edge queries biased toward real
/// edges (random incident neighbor of a random vertex), ~10% top-k. The
/// mix keeps a realistic skew — heavy vertices are hit proportionally to
/// nothing (uniform vertex choice), so hub queries and leaf queries both
/// appear.
pub fn serve_query_stream(g: &graph::Graph, count: usize, seed: u64) -> Vec<Query> {
    if g.n() == 0 || count == 0 {
        return Vec::new();
    }
    let n = g.n() as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let roll: u32 = rng.random_range(0..100);
            let v: u32 = rng.random_range(0..n);
            if roll < 40 {
                Query::Vertex {
                    v,
                    emit: Emit::Enumerate,
                }
            } else if roll < 60 {
                Query::Vertex {
                    v,
                    emit: Emit::Count,
                }
            } else if roll < 90 {
                let nbrs = g.neighbors(v);
                let u = if nbrs.is_empty() {
                    // Isolated vertex: fall back to a (likely) non-edge.
                    rng.random_range(0..n)
                } else {
                    nbrs[rng.random_range(0..nbrs.len())]
                };
                let emit = if roll < 75 {
                    Emit::Enumerate
                } else {
                    Emit::Count
                };
                Query::Edge { u: v, v: u, emit }
            } else {
                Query::TopKBySupport {
                    v,
                    k: rng.random_range(1..9),
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_mixed() {
        let g = graph::gen::gnp(50, 0.2, 3).unwrap();
        let a = serve_query_stream(&g, 500, 42);
        let b = serve_query_stream(&g, 500, 42);
        assert_eq!(a, b, "same (graph, count, seed) must replay identically");
        assert_ne!(a, serve_query_stream(&g, 500, 43));
        let vertex = a
            .iter()
            .filter(|q| matches!(q, Query::Vertex { .. }))
            .count();
        let edge = a.iter().filter(|q| matches!(q, Query::Edge { .. })).count();
        let topk = a
            .iter()
            .filter(|q| matches!(q, Query::TopKBySupport { .. }))
            .count();
        assert!(vertex > 0 && edge > 0 && topk > 0, "{vertex}/{edge}/{topk}");
        assert_eq!(vertex + edge + topk, 500);
    }

    #[test]
    fn degenerate_inputs_produce_empty_streams() {
        let g = graph::Graph::from_edges(0, []).unwrap();
        assert!(serve_query_stream(&g, 100, 1).is_empty());
        let g = graph::gen::gnp(10, 0.5, 1).unwrap();
        assert!(serve_query_stream(&g, 0, 1).is_empty());
    }
}
