//! Criterion bench for the CONGEST round engine itself: sequential vs
//! parallel vertex stepping on message-heavy (flood) and round-heavy
//! (relay) programs, at n ≥ 10k.
//!
//! `flood` saturates the mailbox arenas — every edge carries a message
//! within a few rounds — while `relay` runs thousands of nearly idle
//! rounds, measuring the engine's fixed per-round overhead (halt
//! detection, mail-flag reset, reduction). Together they bracket the
//! engine's two cost regimes.

use congest::{Ctx, ExecMode, Network, VertexProgram};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph::{gen, Graph, VertexId};

/// Wave flood from vertex 0; quiescence-driven.
#[derive(Default)]
struct Flood {
    seen: bool,
}

impl VertexProgram for Flood {
    type Msg = u64;
    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        if ctx.me() == 0 {
            self.seen = true;
            ctx.broadcast(1);
        }
    }
    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(VertexId, u64)]) {
        if !self.seen && !inbox.is_empty() {
            self.seen = true;
            let senders: Vec<VertexId> = inbox.iter().map(|&(f, _)| f).collect();
            ctx.broadcast_except(&senders, 1);
        }
    }
    fn halted(&self) -> bool {
        // Quiescence-driven: vertices the wave never reaches (isolated
        // components of gnp) must not stall the run.
        true
    }
}

/// A single token hopping for `ttl` rounds: almost every round is idle
/// for almost every vertex, so this times pure engine overhead.
struct Relay {
    start: VertexId,
    ttl: u32,
    hops: u32,
}

impl VertexProgram for Relay {
    type Msg = u32;
    fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
        if ctx.me() == self.start {
            ctx.send(ctx.neighbors()[0], self.ttl);
        }
    }
    fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(VertexId, u32)]) {
        for &(_, ttl) in inbox {
            self.hops += 1;
            if ttl > 0 {
                let nbrs = ctx.neighbors();
                ctx.send(nbrs[ctx.round() % nbrs.len()], ttl - 1);
            }
        }
    }
    fn halted(&self) -> bool {
        true
    }
}

fn workloads() -> Vec<(&'static str, Graph)> {
    // 100 cliques of 100 vertices: n = 10_000, m ≈ 495_100.
    let (ring, _) = gen::ring_of_cliques(100, 100).expect("ring of cliques");
    // Sparse random graph at the same scale: n = 10_000, m ≈ 40_000.
    let gnp = gen::gnp(10_000, 0.0008, 42).expect("gnp");
    vec![("ring100x100", ring), ("gnp10k", gnp)]
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for (name, g) in workloads() {
        for (mode_name, mode) in [("seq", ExecMode::Sequential), ("par", ExecMode::Parallel)] {
            let net = Network::new(&g).with_exec_mode(mode);
            group.bench_with_input(
                BenchmarkId::new(format!("flood/{name}"), mode_name),
                &net,
                |b, net| {
                    b.iter(|| {
                        let report = net.run(|_| Flood::default(), 100_000).unwrap();
                        assert!(report.messages > 0);
                        report
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("relay/{name}"), mode_name),
                &net,
                |b, net| {
                    b.iter(|| {
                        let report = net
                            .run(
                                |_| Relay {
                                    start: 0,
                                    ttl: 2_000,
                                    hops: 0,
                                },
                                100_000,
                            )
                            .unwrap();
                        assert_eq!(report.rounds, 2_001);
                        report
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
