//! Criterion bench for the wire tier: frame codec round-trips, a real
//! loopback TCP query stream, and an artifact restore-to-serving cycle.
//! Joined to the CI bench-regression gate (`BENCH_baseline.json`) so a
//! protocol or serve-loop slowdown fails loudly.

use bench_suite::{scale_power_law, serve_query_stream};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use server::{Client, ServerConfig};
use std::sync::Arc;
use triangle::pipeline::PipelineParams;
use triangle::service::QueryEngine;

fn bench_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("server");
    group.sample_size(10);
    let g = scale_power_law(20_000, 42);
    let params = PipelineParams::default();
    let engine = Arc::new(QueryEngine::build(&g, &params));
    let stream = serve_query_stream(&g, 1_000, 7);

    // Pure codec cost: encode + decode 1k query/outcome frames, no I/O.
    let outcomes: Vec<_> = stream
        .iter()
        .filter_map(|q| engine.answer(*q).ok())
        .collect();
    group.bench_function(BenchmarkId::new("codec_roundtrip", "1k"), |b| {
        b.iter(|| {
            let mut words = 0usize;
            for q in &stream {
                let payload = server::protocol::encode_query(q);
                let back = server::protocol::decode_query(&payload).unwrap();
                assert_eq!(back, *q);
                words += payload.len();
            }
            for o in &outcomes {
                let payload = server::protocol::encode_outcome(o);
                let back = server::protocol::decode_outcome(&payload).unwrap();
                assert_eq!(&back, o);
                words += payload.len();
            }
            words
        })
    });

    // The full wire loop: one pipelined client over loopback TCP against
    // a live server (batching, scheduler, codec, and kernel round-trips
    // all inside the measured region).
    let handle = server::serve_engine(Arc::clone(&engine), &ServerConfig::default()).unwrap();
    let wire_stream: Vec<_> = stream.iter().take(512).copied().collect();
    group.bench_function(BenchmarkId::new("loopback_stream", "512"), |b| {
        let mut client = Client::connect(handle.addr()).unwrap();
        b.iter(|| client.run_pipelined(&wire_stream, 32, 64).unwrap().len())
    });
    handle.shutdown();

    // Restore-to-serving: open the frozen artifact and stand a serving
    // engine back up — the cold-start path the storage tier bought.
    let dir = storage::test_dir("bench_server");
    let path = dir.join("bench_server_20k.csr");
    storage::write_graph(&g, &path).unwrap();
    storage::artifact::store(&path, &engine).unwrap();
    group.bench_function(BenchmarkId::new("restore", "20k"), |b| {
        b.iter(|| {
            let (restored, source) = storage::artifact::restore_or_build(&path, &params).unwrap();
            assert!(matches!(source, storage::artifact::EngineSource::Artifact));
            restored
        })
    });
    let _ = std::fs::remove_file(&path);
    group.finish();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
