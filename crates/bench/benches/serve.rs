//! Criterion bench for the serve tier: artifact build cost and batched
//! point-query throughput at 1 and 4 workers, on a small power-law
//! instance. Joined to the CI bench-regression gate
//! (`BENCH_baseline.json`) so a serve-path slowdown fails loudly.

use bench_suite::{scale_power_law, serve_query_stream};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expander::SchedulerPolicy;
use triangle::pipeline::PipelineParams;
use triangle::service::QueryEngine;

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    let g = scale_power_law(20_000, 42);
    let params = PipelineParams::default();
    group.bench_with_input(BenchmarkId::new("build", "20k"), &g, |b, g| {
        b.iter(|| QueryEngine::build(g, &params))
    });
    // Query throughput against a pre-built engine: build once outside the
    // measured loop — the whole point of the serve split.
    let engine = QueryEngine::build(&g, &params);
    let stream = serve_query_stream(&g, 1_000, 7);
    for workers in [1usize, 4] {
        let policy = if workers == 1 {
            SchedulerPolicy::sequential()
        } else {
            SchedulerPolicy::with_workers(workers)
        };
        group.bench_with_input(
            BenchmarkId::new("stream_1k", format!("t{workers}")),
            &policy,
            |b, policy| b.iter(|| engine.serve(&stream, policy)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
