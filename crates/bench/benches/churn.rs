//! Criterion bench for the churn tier: ledger open cost, incremental
//! batch application (with its inverse, so state stays stationary across
//! iterations), the from-scratch recount comparator, and the
//! certificate-driven rebuild cycle, on a small planted-partition
//! instance. Joined to the CI bench-regression gate
//! (`BENCH_baseline.json`) so an incremental-path slowdown fails loudly.

use bench_suite::{churn_ops, scale_planted_partition};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expander::ClusterAssignment;
use std::sync::Arc;
use triangle::pipeline::PipelineParams;
use triangle::service::QueryEngine;
use triangle::{count_triangles, DeltaLedger, EdgeOp};

/// The batch run backwards: applied after `ops`, it restores the exact
/// edge multiset, so a persistent ledger stays stationary across bench
/// iterations. Self-loop inserts are filtered from the forward batch
/// because loop deletes are no-ops by contract — they would accumulate.
fn revertible(ops: &[EdgeOp]) -> (Vec<EdgeOp>, Vec<EdgeOp>) {
    let forward: Vec<EdgeOp> = ops
        .iter()
        .copied()
        .filter(|op| match op {
            EdgeOp::Insert(u, v) | EdgeOp::Delete(u, v) => u != v,
        })
        .collect();
    let backward: Vec<EdgeOp> = forward
        .iter()
        .rev()
        .map(|op| match *op {
            EdgeOp::Insert(u, v) => EdgeOp::Delete(u, v),
            EdgeOp::Delete(u, v) => EdgeOp::Insert(u, v),
        })
        .collect();
    (forward, backward)
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn");
    group.sample_size(10);
    let pp = scale_planted_partition(20_000, 42);
    let params = PipelineParams::default();
    let assignment =
        ClusterAssignment::from_parts(&pp.graph, &pp.blocks, 0.1, &params.scheduler_policy());
    let engine = Arc::new(QueryEngine::from_assignment(&pp.graph, assignment, &params));

    // Opening a ledger pays one exact count — the price of admission.
    group.bench_with_input(BenchmarkId::new("open", "20k"), &pp.graph, |b, g| {
        b.iter(|| DeltaLedger::new(g, Arc::clone(&engine)))
    });

    // Incremental application: forward batch + its inverse per iteration,
    // so every iteration sees the same graph.
    for batch in [16usize, 256] {
        let (forward, backward) = revertible(&churn_ops(&pp.graph, 7, batch));
        let mut ledger = DeltaLedger::new(&pp.graph, Arc::clone(&engine));
        group.bench_function(BenchmarkId::new("apply_revert", format!("b{batch}")), |b| {
            b.iter(|| {
                ledger.apply(&forward);
                ledger.apply(&backward);
                ledger.triangles()
            })
        });
    }

    // The from-scratch comparator the apply path is racing.
    group.bench_with_input(BenchmarkId::new("recount", "20k"), &pp.graph, |b, g| {
        b.iter(|| count_triangles(g))
    });

    // The certificate-driven rebuild cycle: absorb a light batch, then
    // refreeze (most clusters ride along by pointer). The ledger
    // persists; deletes already absorbed are ignored on later cycles, so
    // per-iteration drift is a handful of parallel copies on 20k edges.
    let ops = churn_ops(&pp.graph, 11, 64);
    let mut ledger = DeltaLedger::new(&pp.graph, Arc::clone(&engine));
    group.bench_function(BenchmarkId::new("rebuild_cycle", "b64"), |b| {
        b.iter(|| {
            ledger.apply(&ops);
            ledger.rebuild(&params).reused
        })
    });
    group.finish();
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
