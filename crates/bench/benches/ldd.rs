//! Criterion bench for E4/E5: MPX clustering and the full Theorem 4
//! decomposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expander::prelude::*;
use graph::gen;

fn bench_ldd(c: &mut Criterion) {
    let mut group = c.benchmark_group("ldd");
    group.sample_size(10);
    for n in [150usize, 300, 600] {
        let g = gen::path(n).unwrap();
        group.bench_with_input(BenchmarkId::new("mpx_path", n), &g, |b, g| {
            b.iter(|| clustering(g, 0.3, 7))
        });
        let params = LddParams::practical(0.3, n);
        group.bench_with_input(BenchmarkId::new("theorem4_path", n), &g, |b, g| {
            b.iter(|| low_diameter_decomposition(g, &params, 7))
        });
    }
    let g = gen::gnp(300, 0.02, 3).unwrap();
    let params = LddParams::practical(0.25, 300);
    group.bench_function("theorem4_gnp300", |b| {
        b.iter(|| low_diameter_decomposition(&g, &params, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_ldd);
criterion_main!(benches);
