//! Criterion bench for E6: GKS routing hierarchy build and query
//! simulation across depths.

use bench_suite::expander_family;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use routing::{RoutingHierarchy, RoutingRequest};

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    group.sample_size(10);
    let g = expander_family(1024, 3);
    for k in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("build", k), &k, |b, &k| {
            b.iter(|| RoutingHierarchy::build(&g, k, 11).unwrap())
        });
    }
    let h = RoutingHierarchy::build(&g, 2, 11).unwrap();
    let reqs: Vec<RoutingRequest> = (0..1024u32)
        .map(|v| RoutingRequest {
            src: v,
            dst: (v * 131 + 7) % 1024,
        })
        .collect();
    group.bench_function("route_permutation", |b| {
        b.iter(|| h.route(&g, &reqs).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
