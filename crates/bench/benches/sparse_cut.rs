//! Criterion bench for E3: Theorem 3 sparse-cut wall-clock on planted-cut
//! vs expander inputs (the expander side measures certification cost).

use criterion::{criterion_group, criterion_main, Criterion};
use expander::prelude::*;
use graph::gen;

fn bench_sparse_cut(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_cut");
    group.sample_size(10);
    let (dumbbell, _) = gen::dumbbell(20, 12, 1).unwrap();
    group.bench_function("dumbbell_detect", |b| {
        b.iter(|| nearly_most_balanced_sparse_cut(&dumbbell, 0.002, ParamMode::Practical, 4, 3))
    });
    let expander = gen::random_regular(64, 8, 5).unwrap();
    group.bench_function("expander_certify", |b| {
        b.iter(|| nearly_most_balanced_sparse_cut(&expander, 0.002, ParamMode::Practical, 4, 3))
    });
    let (bar, _) = gen::barbell(12).unwrap();
    group.bench_function("single_nibble", |b| {
        let params = NibbleParams::new(0.05, bar.m(), ParamMode::Practical);
        b.iter(|| approximate_nibble(&bar, 0, &params, 4))
    });
    group.finish();
}

criterion_group!(benches, bench_sparse_cut);
criterion_main!(benches);
