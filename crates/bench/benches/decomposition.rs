//! Criterion bench for E1: wall-clock of the full Theorem 1 decomposition
//! across sizes and k (the `exp_decomposition` binary reports the
//! simulated CONGEST rounds; this measures simulation cost).

use bench_suite::ring_family;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expander::ExpanderDecomposition;

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition");
    group.sample_size(10);
    for n in [96usize, 192, 384] {
        let (g, _) = ring_family(n);
        group.bench_with_input(BenchmarkId::new("ring/k2", n), &g, |b, g| {
            b.iter(|| {
                ExpanderDecomposition::builder()
                    .epsilon(0.3)
                    .k(2)
                    .seed(7)
                    .build()
                    .run(g)
                    .unwrap()
            })
        });
    }
    let (g, _) = ring_family(192);
    for k in [1usize, 3] {
        group.bench_with_input(BenchmarkId::new("ring192/k", k), &k, |b, &k| {
            b.iter(|| {
                ExpanderDecomposition::builder()
                    .epsilon(0.3)
                    .k(k)
                    .seed(7)
                    .build()
                    .run(&g)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decomposition);
criterion_main!(benches);
