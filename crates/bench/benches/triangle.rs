//! Criterion bench for E2: wall-clock of the three triangle enumerators.

use bench_suite::gnp_family;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use triangle::{clique_enumerate, congest_enumerate, enumerate_triangles, TriangleConfig};

fn bench_triangle(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangle");
    group.sample_size(10);
    for n in [32usize, 64] {
        let g = gnp_family(n, 0.5, 42 + n as u64);
        group.bench_with_input(BenchmarkId::new("centralized", n), &g, |b, g| {
            b.iter(|| enumerate_triangles(g))
        });
        group.bench_with_input(BenchmarkId::new("clique_dlp", n), &g, |b, g| {
            b.iter(|| clique_enumerate(g))
        });
        group.bench_with_input(BenchmarkId::new("congest", n), &g, |b, g| {
            b.iter(|| congest_enumerate(g, &TriangleConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_triangle);
criterion_main!(benches);
