//! Measured-decomposition scale benches: the incremental `WorkingGraph`
//! overlay + sparse `VertexSet` path that lets Theorem 1 run at the
//! large-graph tier (this was quadratic-ish beyond ~10³ edges before the
//! overlay; the `exp_scale --measured` sweep exercises 10⁵–10⁶ edges,
//! these benches gate the 10⁴-edge shape in CI).
//!
//! Three layers are timed separately so a regression points at its
//! culprit: the bare decomposition, the `ClusterAssignment` view it
//! feeds the pipeline, and the full measured pipeline (decompose →
//! route → engine enumeration → recursion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expander::{ExpanderDecomposition, SchedulerPolicy};
use triangle::pipeline::{enumerate_via_decomposition, Packing, PipelineParams};

/// The power-law instance every bench in this file decomposes
/// (the family with no planted clusters — the measured path is its only
/// honest pipeline route).
fn workload() -> graph::Graph {
    bench_suite::scale_power_law(10_000, 7)
}

fn bench_measured_decomposition(c: &mut Criterion) {
    let g = workload();
    let mut group = c.benchmark_group("decomp_scale");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("decompose_power_law", "10k"), |b| {
        b.iter(|| {
            ExpanderDecomposition::builder()
                .epsilon(0.3)
                .seed(7)
                .build()
                .run(&g)
                .expect("non-empty graph")
        })
    });
    let decomp = ExpanderDecomposition::builder()
        .epsilon(0.3)
        .seed(7)
        .build()
        .run(&g)
        .expect("non-empty graph");
    group.bench_function(BenchmarkId::new("cluster_assignment", "10k"), |b| {
        b.iter(|| decomp.cluster_assignment_with(&g, &SchedulerPolicy::parallel()))
    });
    group.finish();
}

fn bench_measured_pipeline(c: &mut Criterion) {
    let g = workload();
    let mut group = c.benchmark_group("decomp_scale");
    group.sample_size(10);
    for (label, exec, packing) in [
        ("seq", congest::ExecMode::Sequential, Packing::Packed),
        ("par", congest::ExecMode::Parallel, Packing::Packed),
        // The one-id-per-round ablation: its gap against "par" is the
        // packed-exchange win at the measured 10⁴-edge shape.
        ("unpacked", congest::ExecMode::Parallel, Packing::Unpacked),
    ] {
        let params = PipelineParams {
            exec,
            recursion_exec: exec,
            packing,
            max_depth: 2,
            ..Default::default()
        };
        group.bench_function(BenchmarkId::new("pipeline_power_law_10k", label), |b| {
            b.iter(|| enumerate_via_decomposition(&g, &params))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_measured_decomposition,
    bench_measured_pipeline
);
criterion_main!(benches);
