//! Criterion bench for the ingestion tier: edge-list → on-disk CSR
//! conversion (plain and Morton), zero-copy open + validation, and
//! frozen-artifact restore vs a from-scratch engine build, on a small
//! power-law instance. Joined to the CI bench-regression gate
//! (`BENCH_baseline.json`) so a storage-path slowdown fails loudly.

use bench_suite::scale_power_law;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use storage::{artifact, convert_edge_list, write_graph, ConvertOptions, CsrFile};
use triangle::pipeline::PipelineParams;
use triangle::service::QueryEngine;

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);
    let g = scale_power_law(20_000, 42);
    let dir = storage::test_dir("bench-ingest");
    let edges_txt = dir.join("edges.txt");
    std::fs::write(&edges_txt, graph::io::to_edge_list(&g)).unwrap();

    for (name, morton) in [("convert", false), ("convert_morton", true)] {
        let out = dir.join(format!("{name}.csr"));
        let opts = ConvertOptions {
            morton,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new(name, "20k"), &opts, |b, opts| {
            b.iter(|| convert_edge_list(&edges_txt, &out, opts).unwrap())
        });
    }

    let csr = dir.join("g.csr");
    write_graph(&g, &csr).unwrap();
    group.bench_with_input(BenchmarkId::new("open", "20k"), &csr, |b, path| {
        b.iter(|| CsrFile::open(path).unwrap())
    });

    // Restore vs rebuild: the whole point of the artifact section.
    let params = PipelineParams::default();
    let engine = QueryEngine::build(&g, &params);
    artifact::store(&csr, &engine).unwrap();
    let file = CsrFile::open(&csr).unwrap();
    group.bench_with_input(BenchmarkId::new("restore", "20k"), &file, |b, file| {
        b.iter(|| artifact::load(file).unwrap())
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
