//! Criterion bench for the headline algorithm: the end-to-end
//! expander-routed triangle enumeration pipeline, against the analytic
//! congest_algo on the same inputs. This is the workload the CI
//! bench-regression gate tracks (`BENCH_baseline.json`).

use bench_suite::gnp_family;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use triangle::pipeline::{enumerate_via_decomposition, Packing, PipelineParams};
use triangle::{congest_enumerate, TriangleConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for n in [32usize, 48] {
        let g = gnp_family(n, 0.3, 42 + n as u64);
        group.bench_with_input(BenchmarkId::new("gnp", n), &g, |b, g| {
            b.iter(|| enumerate_via_decomposition(g, &PipelineParams::default()))
        });
        group.bench_with_input(BenchmarkId::new("congest_algo_gnp", n), &g, |b, g| {
            b.iter(|| congest_enumerate(g, &TriangleConfig::default()))
        });
    }
    let (ring, _) = graph::gen::ring_of_cliques(6, 8).unwrap();
    group.bench_with_input(BenchmarkId::new("ring_of_cliques", 48), &ring, |b, g| {
        b.iter(|| enumerate_via_decomposition(g, &PipelineParams::default()))
    });
    // Engine-mode ablation on the densest input: the parallel scheduler's
    // overhead (or speedup, on multi-core hosts) shows up here.
    let g = gnp_family(48, 0.3, 42 + 48);
    group.bench_with_input(BenchmarkId::new("gnp_seq_engine", 48), &g, |b, g| {
        b.iter(|| {
            enumerate_via_decomposition(
                g,
                &PipelineParams {
                    exec: congest::ExecMode::Sequential,
                    ..Default::default()
                },
            )
        })
    });
    // Wire-format ablation: the one-id-per-round exchange the packed
    // format replaced (DESIGN.md §10). The gap between this entry and
    // pipeline/gnp/48 is the packing win the bench gate tracks.
    group.bench_with_input(BenchmarkId::new("gnp_unpacked_exchange", 48), &g, |b, g| {
        b.iter(|| {
            enumerate_via_decomposition(
                g,
                &PipelineParams {
                    packing: Packing::Unpacked,
                    ..Default::default()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
