//! Scale-tier benches: chunk-parallel generation and the
//! planted-assignment pipeline, sequential vs scheduler-parallel.
//!
//! Sizes are chosen so one iteration stays well under a second — the CI
//! `bench-smoke` job runs these in quick mode and gates regressions
//! against `BENCH_baseline.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expander::{ClusterAssignment, SchedulerPolicy};
use triangle::pipeline::{enumerate_with_assignment, PipelineParams};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("gen_power_law", "100k"), |b| {
        b.iter(|| bench_suite::scale_power_law(100_000, 7))
    });
    group.bench_function(BenchmarkId::new("gen_ring_expanders", "100k"), |b| {
        b.iter(|| bench_suite::scale_ring_of_expanders(100_000, 7))
    });
    group.bench_function(BenchmarkId::new("gen_planted", "100k"), |b| {
        b.iter(|| bench_suite::scale_planted_partition(100_000, 7))
    });
    group.finish();
}

fn bench_planted_pipeline(c: &mut Criterion) {
    let (g, blocks) = bench_suite::scale_ring_of_expanders(30_000, 11);
    let assignment =
        ClusterAssignment::from_parts(&g, &blocks, 0.25, &SchedulerPolicy::sequential());
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    for (label, exec) in [
        ("seq", congest::ExecMode::Sequential),
        ("par", congest::ExecMode::Parallel),
    ] {
        let params = PipelineParams {
            exec,
            recursion_exec: exec,
            ..Default::default()
        };
        group.bench_function(BenchmarkId::new("pipeline_ring30k", label), |b| {
            b.iter(|| enumerate_with_assignment(&g, &assignment, &params))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_planted_pipeline);
criterion_main!(benches);
