//! Equivalence suite for the closed-form DLP accounting (DESIGN.md §11).
//!
//! The production paths ([`triangle::pipeline`]'s cluster routing and
//! [`triangle::congest_algo`]'s analytic charge) compute the DLP
//! redistribution in closed form via [`triangle::dlp::DlpInstance`].
//! This suite pins that closed form **bit-for-bit** to the retained
//! enumerating references (the seed implementations that walked all
//! `C(g+2, 3)` group triples):
//!
//! * the materialized [`EdgeBatch`] list (pipeline semantics, pair-dedup
//!   per triple) — identical batches, identical canonical order;
//! * the aggregate per-holder / per-owner word loads — identical to the
//!   batch list's row and column sums;
//! * the per-owner receive loads under triple multiplicity
//!   (`congest_algo` semantics) — identical to the enumerating loop;
//! * the operation counts — the closed form stays within its
//!   `O(g² + Σ|bucket| + |Vᵢ|)` budget and strictly undercuts the
//!   enumeration it replaced (the ledger regression guard).

use graph::{gen, Graph, VertexId, VertexSet};
use proptest::prelude::*;
use routing::EdgeBatch;
use std::collections::BTreeMap;
use triangle::dlp::{DlpInstance, PairWeighting};

/// Full cross-check of one cluster: closed form vs both enumerating
/// references, plus internal consistency of the aggregate loads.
fn check_cluster(g: &Graph, part: &VertexSet, salt: u64) {
    let members: Vec<VertexId> = part.iter().collect();
    if members.is_empty() {
        return;
    }
    let instance = DlpInstance::new(g, part, &members, salt);

    // 1. Batch list: closed form == enumerating reference, bit for bit.
    let closed: Vec<EdgeBatch> = instance.closed_form_batches();
    let (enumerated, enum_ops) = instance.enumerated_batches();
    assert_eq!(closed, enumerated, "batch lists diverge (salt {salt})");

    // 2. Aggregate loads == the batch list's row/column sums.
    let (mut pair_raw, mut holder_inc) = (Vec::new(), Vec::new());
    let agg = instance.aggregate_loads(PairWeighting::DedupPairs, &mut pair_raw, &mut holder_inc);
    let mut by_holder: BTreeMap<VertexId, u64> = BTreeMap::new();
    let mut by_owner: BTreeMap<VertexId, u64> = BTreeMap::new();
    for b in &closed {
        *by_holder.entry(b.src).or_insert(0) += b.words as u64;
        *by_owner.entry(b.dst).or_insert(0) += b.words as u64;
    }
    assert_eq!(agg.holders, by_holder.into_iter().collect::<Vec<_>>());
    assert_eq!(agg.owners, by_owner.into_iter().collect::<Vec<_>>());

    // 3. The complexity contract: the closed form stays within its own
    // budget. (On toy clusters its constant overhead can exceed the tiny
    // enumeration — the strict undercut is asserted at scale below.)
    assert!(
        agg.ops <= agg.ops_budget,
        "{} > {}",
        agg.ops,
        agg.ops_budget
    );
    let _ = enum_ops;

    // 4. The congest_algo mirror: triple-multiplicity owner loads.
    let mult = instance.aggregate_loads(
        PairWeighting::TripleMultiplicity,
        &mut pair_raw,
        &mut holder_inc,
    );
    assert_eq!(mult.owners, instance.enumerated_owner_loads());
}

/// A deterministic pseudo-random subset of `{0, …, n-1}` (never empty).
fn subset_from_seed(n: usize, seed: u64) -> VertexSet {
    let members: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| {
            (v as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(seed)
                .rotate_left(17)
                % 3
                != 0
        })
        .collect();
    if members.is_empty() {
        VertexSet::full(n)
    } else {
        VertexSet::from_iter(n, members)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gnp_clusters_match(
        n in 6usize..48,
        p_mil in 30u32..350,
        seed in any::<u64>(),
    ) {
        let g = gen::gnp(n, p_mil as f64 / 1000.0, seed % 1024).unwrap();
        let part = subset_from_seed(n, seed);
        check_cluster(&g, &part, seed ^ 0xD1CE);
    }

    #[test]
    fn planted_blocks_match(
        blocks in 2usize..5,
        size in 3usize..12,
        seed in any::<u64>(),
    ) {
        let planted =
            gen::planted_partition(&vec![size; blocks], 0.6, 0.05, seed % 4096).unwrap();
        for block in &planted.blocks {
            check_cluster(&planted.graph, block, seed ^ 0xB10C);
        }
    }

    #[test]
    fn ring_of_expander_blocks_match(
        count in 2usize..5,
        seed in any::<u64>(),
    ) {
        // The pairing-model generator can fail to produce a simple
        // regular graph for unlucky seeds — step to the next seed.
        let (g, blocks) = (0..16u64)
            .find_map(|d| gen::ring_of_expanders(count, 8, 3, seed % 4096 + d).ok())
            .expect("a simple 3-regular block within 16 seeds");
        for block in &blocks {
            check_cluster(&g, block, seed ^ 0x41A6);
        }
    }
}

#[test]
fn degenerate_clusters_match() {
    // Singleton clusters: the star's center (all edges outgoing from the
    // cluster's view) and a leaf (one outgoing edge).
    let star = gen::star(9).unwrap();
    check_cluster(&star, &VertexSet::from_iter(9, [0]), 7);
    check_cluster(&star, &VertexSet::from_iter(9, [3]), 7);

    // Two-vertex cluster holding one intra edge plus out-edges.
    let path = gen::path(6).unwrap();
    check_cluster(&path, &VertexSet::from_iter(6, [2, 3]), 11);

    // A cluster with no incident edges at all (isolated vertices).
    let sparse = Graph::from_edges(6, [(0u32, 1u32)]).unwrap();
    check_cluster(&sparse, &VertexSet::from_iter(6, [3, 4, 5]), 13);

    // The whole graph as one cluster, including a complete graph (every
    // group pair non-empty) and a triangle-free ring.
    let complete = gen::complete(11).unwrap();
    check_cluster(&complete, &VertexSet::full(11), 17);
    let cycle = gen::cycle(12).unwrap();
    check_cluster(&cycle, &VertexSet::full(12), 19);
}

/// The whole point of the closed form: on a cluster big enough for the
/// triple enumeration to hurt, the closed form does a small fraction of
/// its work (and stays within the `O(g² + Σ|bucket| + |Vᵢ|)` budget the
/// ledger guard enforces in production).
#[test]
fn closed_form_undercuts_enumeration_at_scale() {
    let g = gen::gnp(3000, 0.02, 7).unwrap();
    let part = VertexSet::full(3000);
    let members: Vec<VertexId> = part.iter().collect();
    let instance = DlpInstance::new(&g, &part, &members, 23);

    let (mut pair_raw, mut holder_inc) = (Vec::new(), Vec::new());
    let agg = instance.aggregate_loads(PairWeighting::DedupPairs, &mut pair_raw, &mut holder_inc);
    let (_, enum_ops) = instance.enumerated_batches();

    assert!(agg.ops <= agg.ops_budget);
    assert!(
        agg.ops * 3 <= enum_ops,
        "closed form ({}) should be far below enumeration ({})",
        agg.ops,
        enum_ops
    );
}

/// End-to-end ledger guard: a pipeline run records the closed-form op
/// count and its budget, and the count stays under the budget — a
/// regression back to triple enumeration trips this immediately.
#[test]
fn pipeline_ledger_guard_holds() {
    let g = gen::gnp(600, 0.05, 3).unwrap();
    let report = triangle::pipeline::enumerate_via_decomposition(
        &g,
        &triangle::pipeline::PipelineParams::default(),
    );
    let ops = report.phases.ops("dlp_accounting");
    let budget = report.phases.ops("dlp_accounting_budget");
    assert!(ops > 0, "pipeline must record its accounting work");
    assert!(ops <= budget, "accounting ops {ops} exceed budget {budget}");
}
