//! The triangle-query **service**: decompose once, serve point queries
//! forever.
//!
//! Every other entry point in this crate rebuilds the full Theorem 2
//! pipeline per call. That is the right shape for a one-shot enumeration
//! benchmark and the wrong shape for traffic: the expander decomposition
//! and the per-cluster GKS hierarchies depend only on the graph, not on
//! the query, and the paper's §3 preprocessing/query trade-off exists
//! precisely so that the expensive structure is built *once* and then
//! amortized over `Õ(n^{1/3})` cheap queries. [`QueryEngine`] freezes the
//! build phase of [`crate::enumerate_via_decomposition`] into an immutable
//! artifact:
//!
//! * the [`expander::ClusterAssignment`] of the **level-0** decomposition
//!   (cluster id per vertex, certificates, the inter-cluster edge list),
//! * one [`RoutingHierarchy`] per routable cluster, built on the cluster's
//!   kept-edge induced subgraph exactly as the pipeline builds it,
//! * per-cluster **adjacency snapshots** — the same sorted, deduplicated
//!   full-graph neighbor rows the pipeline's adjacency exchange streams
//!   ([`crate::pipeline`]'s `snapshot_member_adjacency`), which is what
//!   makes service answers agree with pipeline enumeration.
//!
//! Queries ([`Query`]) are answered from the snapshots alone; the frozen
//! hierarchies are consulted **read-only** through
//! [`RoutingHierarchy::route_query`] to charge each answer's word/round
//! cost ([`QueryCharge`]) against the paper budget. The engine is
//! `Send + Sync` by construction (asserted below), shares via `Arc`, and
//! [`QueryEngine::serve`] fans a query batch out on the deterministic
//! scheduler — answers are **bit-identical** across worker counts because
//! each query is a pure function of the artifact.
//!
//! Why level-0 only: recursion levels exist to *list* triangles whose
//! edges were cut; a point query instead re-derives its answer from the
//! owner's full-graph neighbor rows, so cut edges lose nothing — they only
//! move the charge from cluster routing to the (zero-charged) residual,
//! exactly like the pipeline's own remainder phase. DESIGN.md §12 spells
//! out the contract.

use crate::count::Triangle;
use crate::pipeline::{snapshot_member_adjacency, PipelineParams};
use expander::decomposition::RemovalTag;
use expander::scheduler::{derive_seed, run_jobs, JobStats, SchedulerPolicy, ScratchPool};
use expander::{ClusterAssignment, ClusterCertificate, ExpanderDecomposition};
use graph::view::Subgraph;
use graph::{Graph, VertexId, VertexSet, WorkingGraph};
use routing::{HierarchyParts, QueryCharge, RoutingHierarchy};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Whether a query returns full witnesses or only their number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Emit {
    /// Return only the triangle count (cheapest wire format).
    Count,
    /// Return the sorted, deduplicated witness triangles.
    Enumerate,
}

/// One point query against a built [`QueryEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// All triangles containing vertex `v`.
    Vertex {
        /// The vertex the triangles must contain.
        v: VertexId,
        /// Count or enumerate.
        emit: Emit,
    },
    /// All triangles containing the edge `{u, v}` (empty if `{u, v}` is
    /// not an edge — a triangle through both endpoints necessarily
    /// contains the edge).
    Edge {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
        /// Count or enumerate.
        emit: Emit,
    },
    /// The `k` edges incident to `v` with the most triangle support
    /// (descending support, ties by ascending endpoint ids).
    TopKBySupport {
        /// The anchor vertex.
        v: VertexId,
        /// How many edges to return.
        k: usize,
    },
}

/// An edge with its triangle support, as returned by
/// [`Query::TopKBySupport`]. Canonical form: `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeSupport {
    /// Lower endpoint.
    pub u: VertexId,
    /// Higher endpoint.
    pub v: VertexId,
    /// Number of triangles containing the edge.
    pub support: u64,
}

/// The payload of one answered [`Query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer {
    /// Triangle count ([`Emit::Count`]).
    Count(u64),
    /// Sorted, deduplicated witness triangles ([`Emit::Enumerate`]).
    Triangles(Vec<Triangle>),
    /// Top-k incident edges by support ([`Query::TopKBySupport`]).
    TopEdges(Vec<EdgeSupport>),
}

/// One answered query: the payload plus its routing charge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// What the query asked for.
    pub answer: Answer,
    /// Word/query/round cost charged through the owner's frozen
    /// cluster hierarchy (all-zero for clusters too degenerate to route).
    pub charge: QueryCharge,
}

/// Errors a point query can produce. Malformed queries are per-query
/// errors, never panics — a server cannot crash on client input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The query referenced a vertex outside the graph.
    UnknownVertex {
        /// The offending vertex id.
        v: VertexId,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownVertex { v } => write!(f, "query references unknown vertex {v}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// What one build of the artifact cost and produced.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// Vertices of the served graph.
    pub n: usize,
    /// Edges of the served graph.
    pub m: usize,
    /// Clusters in the frozen assignment.
    pub clusters: usize,
    /// Clusters that carry a routing hierarchy (non-degenerate).
    pub routed_clusters: usize,
    /// Conductance promise of the frozen decomposition.
    pub phi: f64,
    /// CONGEST rounds charged to the decomposition (0 when the
    /// assignment was supplied by the caller).
    pub decomposition_rounds: u64,
    /// Heaviest per-cluster hierarchy preprocessing charge (clusters
    /// build in parallel, so the max is the critical path).
    pub hierarchy_build_rounds: u64,
    /// Total words frozen into the adjacency snapshots.
    pub snapshot_words: u64,
    /// Wall clock of the decomposition (or assignment intake).
    pub wall_decompose: Duration,
    /// Wall clock of freezing snapshots + hierarchies.
    pub wall_freeze: Duration,
}

impl BuildReport {
    /// Total build wall: decompose + freeze. The `build_s` the serve tier
    /// reports next to the pipeline tier's decompose wall.
    pub fn wall_total(&self) -> Duration {
        self.wall_decompose + self.wall_freeze
    }
}

/// Per-cluster frozen state: the adjacency snapshot rows (indexed by the
/// cluster-local id), the induced-subgraph degree snapshot the read-only
/// routing charge consults, and the cluster's hierarchy (absent for
/// clusters with no internal edge or fewer than two vertices — the same
/// degeneracy convention as the pipeline's `route_cluster_slices`, which
/// charges such clusters zero).
#[derive(Debug)]
struct ClusterArtifact {
    adj: Vec<Vec<VertexId>>,
    local_deg: Vec<u32>,
    hierarchy: Option<RoutingHierarchy>,
}

/// The immutable build-once/query-many artifact.
///
/// Build with [`QueryEngine::build`] (runs the measured decomposition) or
/// [`QueryEngine::from_assignment`] (planted/cached clusters), wrap in an
/// [`Arc`], hand clones to every client thread, and answer via
/// [`QueryEngine::answer`] or the batched [`QueryEngine::serve`]. All
/// methods take `&self`; nothing mutates after construction.
///
/// # Examples
///
/// ```
/// use triangle::service::{Emit, Query, QueryEngine};
/// use triangle::PipelineParams;
///
/// let g = graph::gen::gnp(40, 0.3, 7).unwrap();
/// let engine = QueryEngine::build(&g, &PipelineParams::default());
/// let out = engine.answer(Query::Vertex { v: 3, emit: Emit::Count }).unwrap();
/// let full = triangle::enumerate_triangles(&g);
/// let through_3 = full.iter().filter(|t| t.contains(3)).count() as u64;
/// assert_eq!(out.answer, triangle::service::Answer::Count(through_3));
/// ```
#[derive(Debug)]
pub struct QueryEngine {
    assignment: Arc<ClusterAssignment>,
    /// Per-cluster frozen artifacts. Individually `Arc`'d so an
    /// incremental refreeze ([`QueryEngine::refreeze`]) can carry
    /// untouched clusters' snapshots and hierarchies into the next engine
    /// by pointer instead of rebuilding them.
    clusters: Vec<Arc<ClusterArtifact>>,
    /// Cluster-local index of every vertex (its row in the cluster's
    /// snapshot and its id in the cluster's hierarchy).
    local_of: Vec<u32>,
    build: BuildReport,
}

// The immutability contract: the artifact must be shareable across client
// threads by reference. Compile-time assertion — if a future field breaks
// `Send + Sync`, this fails to build rather than failing under load.
const _: fn() = || {
    fn assert_shared<T: Send + Sync>() {}
    assert_shared::<QueryEngine>();
};

impl QueryEngine {
    /// Runs the build phase once: the measured expander decomposition at
    /// level 0 (`derive_seed(params.seed, 0)`, exactly the pipeline's
    /// level-0 seed), then freezes snapshots and hierarchies via
    /// [`QueryEngine::from_assignment`]'s machinery.
    ///
    /// Graphs with no edges or fewer than three vertices cannot contain a
    /// triangle and cannot be decomposed; they freeze a singleton-cluster
    /// assignment so every query still answers (with zero routing charge).
    pub fn build(g: &Graph, params: &PipelineParams) -> QueryEngine {
        let policy = params.scheduler_policy();
        let t0 = Instant::now();
        let (assignment, decomposition_rounds) = if g.m() == 0 || g.n() < 3 {
            let parts: Vec<VertexSet> = (0..g.n())
                .map(|v| VertexSet::from_iter(g.n(), [v as VertexId]))
                .collect();
            (ClusterAssignment::from_parts(g, &parts, 0.0, &policy), 0)
        } else {
            let eps = params.epsilon.clamp(1e-3, 1.0 / 6.0);
            let decomp = ExpanderDecomposition::builder()
                .epsilon(eps)
                .k(params.decomposition_k.max(1))
                .mode(params.mode)
                .seed(derive_seed(params.seed, 0))
                .build()
                .run(g)
                .expect("graph has edges");
            let rounds = decomp.ledger.total();
            (decomp.cluster_assignment_with(g, &policy), rounds)
        };
        let wall_decompose = t0.elapsed();
        Self::freeze(
            g,
            assignment,
            params,
            decomposition_rounds,
            wall_decompose,
            None,
        )
    }

    /// Freezes a caller-supplied assignment — planted blocks, an oracle,
    /// or a cached decomposition — without running Theorem 1. The serve
    /// tier's fast path on instances with known ground-truth clusters.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` was built for a different vertex count.
    pub fn from_assignment(
        g: &Graph,
        assignment: ClusterAssignment,
        params: &PipelineParams,
    ) -> QueryEngine {
        assert_eq!(
            assignment.n,
            g.n(),
            "assignment/graph vertex-count mismatch"
        );
        Self::freeze(g, assignment, params, 0, Duration::ZERO, None)
    }

    /// Freezes a churned assignment while **reusing** the per-cluster
    /// artifacts of a previous engine: `reuse[id] = Some(old_id)` carries
    /// cluster `old_id`'s snapshot rows, degree snapshot, and hierarchy
    /// (with its original seed) from `prev` into the new engine by
    /// `Arc` pointer; `None` clusters are frozen from scratch. This is
    /// the churn tier's incremental rebuild: only touched clusters pay
    /// the freeze cost.
    ///
    /// Soundness is the caller's contract (upheld by
    /// `expander::recluster::recluster_broken`): a reused cluster must
    /// have identical membership AND no member with a changed full-graph
    /// adjacency row, so both the snapshots and the kept-induced
    /// subgraph — and hence the hierarchy — are bit-identical to a fresh
    /// freeze. Reused hierarchies keep their original seeds, so routing
    /// *charges* may differ from a from-scratch build with different
    /// cluster ids; answers never do.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` was built for a different vertex count, if
    /// `reuse` has a different length than the assignment's cluster list,
    /// or if a reused id is out of range in `prev`.
    pub fn refreeze(
        g: &Graph,
        assignment: ClusterAssignment,
        params: &PipelineParams,
        prev: &QueryEngine,
        reuse: &[Option<usize>],
    ) -> QueryEngine {
        assert_eq!(
            assignment.n,
            g.n(),
            "assignment/graph vertex-count mismatch"
        );
        assert_eq!(
            reuse.len(),
            assignment.clusters.len(),
            "one reuse entry per cluster"
        );
        Self::freeze(
            g,
            assignment,
            params,
            0,
            Duration::ZERO,
            Some((prev, reuse)),
        )
    }

    /// Whether this engine's cluster `c` shares its frozen artifact (by
    /// `Arc` pointer) with `other`'s cluster `other_c` — the observable
    /// the recluster-scope regression test pins: untouched clusters must
    /// survive a refreeze pointer-equal, never deep-copied.
    pub fn shares_cluster_artifact(&self, c: usize, other: &QueryEngine, other_c: usize) -> bool {
        Arc::ptr_eq(&self.clusters[c], &other.clusters[other_c])
    }

    /// The shared freeze: per-cluster snapshot + hierarchy jobs on the
    /// deterministic scheduler, seeded like the pipeline's level-0
    /// cluster jobs. With a `reuse` context, flagged clusters are carried
    /// over from the previous engine by pointer instead of rebuilt.
    fn freeze(
        g: &Graph,
        assignment: ClusterAssignment,
        params: &PipelineParams,
        decomposition_rounds: u64,
        wall_decompose: Duration,
        reuse: Option<(&QueryEngine, &[Option<usize>])>,
    ) -> QueryEngine {
        let t0 = Instant::now();
        let policy = params.scheduler_policy();
        // Kept-edge overlay: hierarchies live on the intra-cluster
        // structure, the same tombstone view the pipeline routes on.
        let kept = {
            let mut overlay = WorkingGraph::new(g);
            overlay.remove_edges(assignment.inter_cluster_edges(), false);
            overlay
        };
        let level_seed = derive_seed(params.seed, 0);
        let spare_rows: ScratchPool<Vec<Vec<VertexId>>> = ScratchPool::new();
        let jobs: Vec<(usize, &VertexSet)> = assignment.clusters.iter().enumerate().collect();
        let (artifacts, _stats) = run_jobs(jobs, &policy, |_, (id, part)| {
            if let Some((prev, map)) = reuse {
                if let Some(old_id) = map[id] {
                    return Arc::clone(&prev.clusters[old_id]);
                }
            }
            let members: Vec<VertexId> = part.iter().collect();
            let mut spare = spare_rows.take();
            let adj = snapshot_member_adjacency(g, &members, &mut spare);
            spare_rows.put(spare);
            let cert = &assignment.certificates[id];
            let (hierarchy, local_deg) = if cert.internal_edges > 0 && members.len() >= 2 {
                let sub = Subgraph::induced(&kept, part);
                let local_deg: Vec<u32> = (0..members.len())
                    .map(|u| sub.graph().degree(u as VertexId) as u32)
                    .collect();
                let h = RoutingHierarchy::build(
                    sub.graph(),
                    params.routing_depth.max(1),
                    derive_seed(level_seed, id as u64),
                )
                .ok();
                (h, local_deg)
            } else {
                (None, Vec::new())
            };
            Arc::new(ClusterArtifact {
                adj,
                local_deg,
                hierarchy,
            })
        });

        let mut local_of = vec![0u32; g.n()];
        for part in &assignment.clusters {
            for (local, v) in part.iter().enumerate() {
                local_of[v as usize] = local as u32;
            }
        }
        let routed_clusters = artifacts.iter().filter(|a| a.hierarchy.is_some()).count();
        let hierarchy_build_rounds = artifacts
            .iter()
            .filter_map(|a| a.hierarchy.as_ref())
            .map(RoutingHierarchy::preprocessing_rounds)
            .max()
            .unwrap_or(0);
        let snapshot_words: u64 = artifacts
            .iter()
            .flat_map(|a| a.adj.iter())
            .map(|row| row.len() as u64)
            .sum();
        let build = BuildReport {
            n: g.n(),
            m: g.m(),
            clusters: assignment.clusters.len(),
            routed_clusters,
            phi: assignment.phi,
            decomposition_rounds,
            hierarchy_build_rounds,
            snapshot_words,
            wall_decompose,
            wall_freeze: t0.elapsed(),
        };
        QueryEngine {
            assignment: Arc::new(assignment),
            clusters: artifacts,
            local_of,
            build,
        }
    }

    /// The frozen cluster assignment (shared, read-only).
    pub fn assignment(&self) -> &ClusterAssignment {
        &self.assignment
    }

    /// What the build cost and produced.
    pub fn build_report(&self) -> &BuildReport {
        &self.build
    }

    /// The paper's per-cluster query budget `n^{1/3}·log² n` — the same
    /// curve [`crate::TriangleReport::paper_query_budget`] audits, so the
    /// serve tier and the pipeline tier compare against one number.
    pub fn paper_query_budget(&self) -> f64 {
        let n = self.build.n.max(2) as f64;
        n.powf(1.0 / 3.0) * n.log2() * n.log2()
    }

    /// The query budget in the model's word unit (`2m/n` words per
    /// query), mirroring [`crate::TriangleReport::paper_word_budget`].
    pub fn paper_word_budget(&self) -> f64 {
        let avg_deg = 2.0 * self.build.m as f64 / self.build.n.max(1) as f64;
        self.paper_query_budget() * avg_deg.max(1.0)
    }

    fn check(&self, v: VertexId) -> Result<(), ServiceError> {
        if (v as usize) < self.build.n {
            Ok(())
        } else {
            Err(ServiceError::UnknownVertex { v })
        }
    }

    /// The frozen adjacency row of `v`: sorted, deduplicated, full-graph.
    fn adj_of(&self, v: VertexId) -> &[VertexId] {
        let c = self.assignment.cluster_of[v as usize] as usize;
        &self.clusters[c].adj[self.local_of[v as usize] as usize]
    }

    /// Charges `words` converging on owner `v` through `v`'s frozen
    /// cluster hierarchy ([`RoutingHierarchy::route_query`]); clusters
    /// without a hierarchy charge zero queries/rounds — the same
    /// convention as the pipeline's degenerate clusters.
    fn charge(&self, v: VertexId, words: u64) -> QueryCharge {
        let c = self.assignment.cluster_of[v as usize] as usize;
        let art = &self.clusters[c];
        match &art.hierarchy {
            Some(h) => h
                .route_query(&art.local_deg, self.local_of[v as usize], words)
                .expect("cluster-local owner is always in range"),
            None => QueryCharge {
                words,
                delivered: true,
                ..QueryCharge::default()
            },
        }
    }

    /// Answers one point query. Pure per `(artifact, query)` — the
    /// determinism contract concurrent serving relies on.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownVertex`] if the query names a vertex
    /// outside the graph.
    pub fn answer(&self, query: Query) -> Result<QueryOutcome, ServiceError> {
        match query {
            Query::Vertex { v, emit } => {
                self.check(v)?;
                let adj = self.adj_of(v);
                let mut words = adj.len() as u64;
                let mut count = 0u64;
                let mut triangles = Vec::new();
                for &u in adj {
                    if u == v {
                        continue;
                    }
                    // Both u and the emitted w are neighbors of v; keeping
                    // w > u names each triangle {v, u, w} exactly once.
                    words += merge_intersect(adj, self.adj_of(u), |w| {
                        if w > u && w != v {
                            count += 1;
                            if emit == Emit::Enumerate {
                                triangles.push(Triangle::new(v, u, w));
                            }
                        }
                    });
                }
                triangles.sort_unstable();
                let answer = match emit {
                    Emit::Count => Answer::Count(count),
                    Emit::Enumerate => Answer::Triangles(triangles),
                };
                Ok(QueryOutcome {
                    answer,
                    charge: self.charge(v, words),
                })
            }
            Query::Edge { u, v, emit } => {
                self.check(u)?;
                self.check(v)?;
                let mut count = 0u64;
                let mut triangles = Vec::new();
                // One probe word for the edge-presence check; the owner
                // (lower endpoint, the pipeline's edge-ownership rule) is
                // charged the streamed words.
                let mut words = 1u64;
                if u != v {
                    let au = self.adj_of(u);
                    if au.binary_search(&v).is_ok() {
                        words += merge_intersect(au, self.adj_of(v), |w| {
                            if w != u && w != v {
                                count += 1;
                                if emit == Emit::Enumerate {
                                    triangles.push(Triangle::new(u, v, w));
                                }
                            }
                        });
                    }
                }
                triangles.sort_unstable();
                let answer = match emit {
                    Emit::Count => Answer::Count(count),
                    Emit::Enumerate => Answer::Triangles(triangles),
                };
                Ok(QueryOutcome {
                    answer,
                    charge: self.charge(u.min(v), words),
                })
            }
            Query::TopKBySupport { v, k } => {
                self.check(v)?;
                let adj = self.adj_of(v);
                let mut words = adj.len() as u64;
                let mut edges: Vec<EdgeSupport> = Vec::with_capacity(adj.len());
                for &u in adj {
                    if u == v {
                        continue;
                    }
                    let mut support = 0u64;
                    words += merge_intersect(adj, self.adj_of(u), |w| {
                        if w != u && w != v {
                            support += 1;
                        }
                    });
                    edges.push(EdgeSupport {
                        u: v.min(u),
                        v: v.max(u),
                        support,
                    });
                }
                edges.sort_unstable_by(|a, b| {
                    b.support
                        .cmp(&a.support)
                        .then(a.u.cmp(&b.u))
                        .then(a.v.cmp(&b.v))
                });
                edges.truncate(k);
                Ok(QueryOutcome {
                    answer: Answer::TopEdges(edges),
                    charge: self.charge(v, words),
                })
            }
        }
    }

    /// Serves a query batch on the deterministic scheduler, **chunked
    /// per worker**: queries are split into contiguous chunks and each
    /// chunk runs as one scheduler job, so the per-job scheduling cost
    /// (queue lock, scoped-task spawn) is amortized over hundreds of
    /// microsecond-scale queries instead of paid per query — the PR 7
    /// follow-up that lets a multi-threaded serve actually beat `t = 1`.
    /// The chunk size aims at four chunks per worker, enough slack for
    /// the shared pull queue to rebalance a skewed stream.
    ///
    /// Answers are merged back in submission order and each query is a
    /// pure function of the artifact, so the report is **bit-identical**
    /// for every worker count *and* every chunk size —
    /// [`QueryEngine::serve_unbatched`] is the retained per-query
    /// reference, pinned equal in `tests/service_equivalence.rs`.
    pub fn serve(&self, queries: &[Query], policy: &SchedulerPolicy) -> ServeReport {
        let workers = policy.effective_workers(queries.len()).max(1);
        let chunk = queries.len().div_ceil(workers * 4).max(1);
        self.serve_chunked(queries, policy, chunk)
    }

    /// [`QueryEngine::serve`] with an explicit chunk size (`0` is treated
    /// as `1`). Exposed for the batching ablation: any chunk size yields
    /// bit-identical answers, only the scheduling overhead moves.
    pub fn serve_chunked(
        &self,
        queries: &[Query],
        policy: &SchedulerPolicy,
        chunk: usize,
    ) -> ServeReport {
        let t0 = Instant::now();
        let jobs: Vec<&[Query]> = queries.chunks(chunk.max(1)).collect();
        let (chunks, stats) = run_jobs(jobs, policy, |_, qs| {
            let mut out = Vec::with_capacity(qs.len());
            for &q in qs {
                let t = Instant::now();
                out.push((self.answer(q), t.elapsed()));
            }
            out
        });
        let mut answers = Vec::with_capacity(queries.len());
        let mut latencies = Vec::with_capacity(queries.len());
        for (a, l) in chunks.into_iter().flatten() {
            answers.push(a);
            latencies.push(l);
        }
        ServeReport {
            answers,
            latencies,
            wall: t0.elapsed(),
            stats,
        }
    }

    /// The PR 7 serve path: one scheduler job **per query**. Kept as the
    /// executable reference for the batching ablation (the same role
    /// `CONGEST_ENGINE_FULL_SCAN` plays for the worklist engine) —
    /// `exp_serve --chunk 1`-style sweeps and the equivalence tests pin
    /// [`QueryEngine::serve`] bit-identical to this.
    pub fn serve_unbatched(&self, queries: &[Query], policy: &SchedulerPolicy) -> ServeReport {
        let t0 = Instant::now();
        let (results, stats) = run_jobs(queries.to_vec(), policy, |_, q| {
            let t = Instant::now();
            (self.answer(q), t.elapsed())
        });
        let mut answers = Vec::with_capacity(results.len());
        let mut latencies = Vec::with_capacity(results.len());
        for (a, l) in results {
            answers.push(a);
            latencies.push(l);
        }
        ServeReport {
            answers,
            latencies,
            wall: t0.elapsed(),
            stats,
        }
    }

    /// Snapshots the engine into plain owned data ([`FrozenEngine`]) that
    /// a persistence layer can serialize. Everything a query touches is
    /// captured — restoring with [`QueryEngine::from_frozen`] yields
    /// **bit-identical** answers, charges included.
    pub fn to_frozen(&self) -> FrozenEngine {
        FrozenEngine {
            n: self.assignment.n,
            cluster_of: self.assignment.cluster_of.clone(),
            members: self
                .assignment
                .clusters
                .iter()
                .map(|part| part.iter().collect())
                .collect(),
            inter_cluster: self.assignment.inter_cluster.clone(),
            phi: self.assignment.phi,
            certificates: self.assignment.certificates.clone(),
            clusters: self
                .clusters
                .iter()
                .map(|a| FrozenCluster {
                    adj: a.adj.clone(),
                    local_deg: a.local_deg.clone(),
                    hierarchy: a.hierarchy.as_ref().map(RoutingHierarchy::to_parts),
                })
                .collect(),
            local_of: self.local_of.clone(),
            report: FrozenReport {
                m: self.build.m,
                decomposition_rounds: self.build.decomposition_rounds,
                wall_decompose_ns: duration_to_ns(self.build.wall_decompose),
                wall_freeze_ns: duration_to_ns(self.build.wall_freeze),
            },
        }
    }

    /// Rebuilds an engine from a frozen snapshot without re-running the
    /// decomposition or the hierarchy builds. Every structural invariant
    /// a query relies on is re-validated first, so corrupted or
    /// hand-forged snapshots produce a typed [`RestoreError`], never a
    /// panic at answer time.
    ///
    /// Derived report fields (`routed_clusters`, `hierarchy_build_rounds`,
    /// `snapshot_words`) are recomputed from the restored state; they are
    /// deterministic functions of it, so they match the original build.
    ///
    /// # Errors
    ///
    /// [`RestoreError`] naming the violated invariant.
    pub fn from_frozen(frozen: FrozenEngine) -> Result<QueryEngine, RestoreError> {
        let bad = |reason: String| RestoreError { reason };
        let n = frozen.n;
        let x = frozen.members.len();
        if frozen.cluster_of.len() != n {
            return Err(bad(format!(
                "cluster_of covers {} vertices, n = {n}",
                frozen.cluster_of.len()
            )));
        }
        if frozen.local_of.len() != n {
            return Err(bad(format!(
                "local_of covers {} vertices, n = {n}",
                frozen.local_of.len()
            )));
        }
        if frozen.certificates.len() != x || frozen.clusters.len() != x {
            return Err(bad(format!(
                "{x} member lists vs {} certificates vs {} cluster artifacts",
                frozen.certificates.len(),
                frozen.clusters.len()
            )));
        }
        let total_members: usize = frozen.members.iter().map(Vec::len).sum();
        if total_members != n {
            return Err(bad(format!(
                "member lists hold {total_members} vertices, n = {n}"
            )));
        }
        // Membership must agree with the persisted cluster_of/local_of
        // inverses exactly; together with the count check above, every
        // vertex appears in exactly one cluster at its recorded slot.
        for (c, members) in frozen.members.iter().enumerate() {
            let mut prev: Option<VertexId> = None;
            for (slot, &v) in members.iter().enumerate() {
                if (v as usize) >= n {
                    return Err(bad(format!("cluster {c} lists vertex {v} >= n = {n}")));
                }
                if prev.is_some_and(|p| p >= v) {
                    return Err(bad(format!("cluster {c} member list is not ascending")));
                }
                prev = Some(v);
                if frozen.cluster_of[v as usize] as usize != c {
                    return Err(bad(format!(
                        "vertex {v} listed in cluster {c} but cluster_of says {}",
                        frozen.cluster_of[v as usize]
                    )));
                }
                if frozen.local_of[v as usize] as usize != slot {
                    return Err(bad(format!(
                        "vertex {v} at slot {slot} of cluster {c} but local_of says {}",
                        frozen.local_of[v as usize]
                    )));
                }
            }
        }
        for &(u, v, _) in &frozen.inter_cluster {
            if (u as usize) >= n || (v as usize) >= n {
                return Err(bad(format!("inter-cluster edge ({u}, {v}) out of range")));
            }
        }
        let mut artifacts = Vec::with_capacity(x);
        for (c, fc) in frozen.clusters.into_iter().enumerate() {
            let size = frozen.members[c].len();
            if fc.adj.len() != size {
                return Err(bad(format!(
                    "cluster {c} snapshot has {} rows for {size} members",
                    fc.adj.len()
                )));
            }
            for (slot, row) in fc.adj.iter().enumerate() {
                let mut prev: Option<VertexId> = None;
                for &w in row {
                    if (w as usize) >= n {
                        return Err(bad(format!(
                            "cluster {c} row {slot} names vertex {w} >= n = {n}"
                        )));
                    }
                    if prev.is_some_and(|p| p >= w) {
                        return Err(bad(format!(
                            "cluster {c} row {slot} is not sorted/deduplicated"
                        )));
                    }
                    prev = Some(w);
                }
            }
            let hierarchy = match fc.hierarchy {
                None => None,
                Some(parts) => {
                    if parts.n != size || fc.local_deg.len() != size {
                        return Err(bad(format!(
                            "cluster {c} hierarchy covers {} vertices, degrees {}, \
                             cluster has {size}",
                            parts.n,
                            fc.local_deg.len()
                        )));
                    }
                    Some(
                        RoutingHierarchy::from_parts(parts)
                            .map_err(|e| bad(format!("cluster {c} hierarchy: {e}")))?,
                    )
                }
            };
            artifacts.push(Arc::new(ClusterArtifact {
                adj: fc.adj,
                local_deg: fc.local_deg,
                hierarchy,
            }));
        }
        let routed_clusters = artifacts.iter().filter(|a| a.hierarchy.is_some()).count();
        let hierarchy_build_rounds = artifacts
            .iter()
            .filter_map(|a| a.hierarchy.as_ref())
            .map(RoutingHierarchy::preprocessing_rounds)
            .max()
            .unwrap_or(0);
        let snapshot_words: u64 = artifacts
            .iter()
            .flat_map(|a| a.adj.iter())
            .map(|row| row.len() as u64)
            .sum();
        let assignment = ClusterAssignment {
            n,
            cluster_of: frozen.cluster_of,
            clusters: frozen
                .members
                .iter()
                .map(|ms| VertexSet::from_iter(n, ms.iter().copied()))
                .collect(),
            inter_cluster: frozen.inter_cluster,
            phi: frozen.phi,
            certificates: frozen.certificates,
        };
        let build = BuildReport {
            n,
            m: frozen.report.m,
            clusters: x,
            routed_clusters,
            phi: frozen.phi,
            decomposition_rounds: frozen.report.decomposition_rounds,
            hierarchy_build_rounds,
            snapshot_words,
            wall_decompose: Duration::from_nanos(frozen.report.wall_decompose_ns),
            wall_freeze: Duration::from_nanos(frozen.report.wall_freeze_ns),
        };
        Ok(QueryEngine {
            assignment: Arc::new(assignment),
            clusters: artifacts,
            local_of: frozen.local_of,
            build,
        })
    }
}

fn duration_to_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Streams the sorted intersection of two adjacency rows into `emit`,
/// returning the number of comparison steps — the **words** both rows
/// contributed to the merge, which is what the query's routing charge
/// counts. Crate-visible: the churn ledger's triangle-delta kernel is
/// this same merge over the overlay's sorted rows.
pub(crate) fn merge_intersect(
    a: &[VertexId],
    b: &[VertexId],
    mut emit: impl FnMut(VertexId),
) -> u64 {
    let (mut i, mut j, mut steps) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        steps += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                emit(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    steps
}

/// Outcome of one [`QueryEngine::serve`] batch.
///
/// `answers` is index-aligned with the submitted queries and is the
/// **deterministic** part (compare across worker counts with
/// [`ServeReport::answers_match`]); `latencies` and `wall` are measured
/// and machine-dependent, kept separate so equality checks never touch
/// them.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-query results, in submission order.
    pub answers: Vec<Result<QueryOutcome, ServiceError>>,
    /// Per-query service latency, index-aligned with `answers`.
    pub latencies: Vec<Duration>,
    /// Elapsed wall clock of the whole batch.
    pub wall: Duration,
    /// Scheduler statistics (workers, steals, per-worker jobs).
    pub stats: JobStats,
}

impl ServeReport {
    /// Whether two serves produced bit-identical answers (charges
    /// included), ignoring the measured latencies.
    pub fn answers_match(&self, other: &ServeReport) -> bool {
        self.answers == other.answers
    }

    /// Queries served per second of batch wall clock.
    pub fn throughput_qps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.answers.len() as f64 / secs
    }

    /// Nearest-rank latency percentile, `p` in `[0, 100]`.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// The heaviest per-query routing-query charge in the batch — the
    /// per-vertex load the paper bounds by `Õ(n^{1/3})`.
    pub fn max_queries(&self) -> u64 {
        self.answers
            .iter()
            .filter_map(|a| a.as_ref().ok())
            .map(|o| o.charge.queries)
            .max()
            .unwrap_or(0)
    }

    /// The heaviest per-query word charge in the batch.
    pub fn max_words(&self) -> u64 {
        self.answers
            .iter()
            .filter_map(|a| a.as_ref().ok())
            .map(|o| o.charge.words)
            .max()
            .unwrap_or(0)
    }

    /// Total words streamed by the batch.
    pub fn total_words(&self) -> u64 {
        self.answers
            .iter()
            .filter_map(|a| a.as_ref().ok())
            .map(|o| o.charge.words)
            .sum()
    }

    /// Total triangle count across all counting/enumerating answers (a
    /// cheap batch checksum: identical streams must produce identical
    /// sums regardless of worker count).
    pub fn count_checksum(&self) -> u64 {
        self.answers
            .iter()
            .filter_map(|a| a.as_ref().ok())
            .map(|o| match &o.answer {
                Answer::Count(c) => *c,
                Answer::Triangles(ts) => ts.len() as u64,
                Answer::TopEdges(es) => es.iter().map(|e| e.support).sum(),
            })
            .sum()
    }
}

/// A [`QueryEngine`] flattened into plain owned data — no `Arc`, no
/// private routing state — so a storage layer can serialize it and
/// rebuild the engine later without re-running the decomposition or the
/// hierarchy builds. Produced by [`QueryEngine::to_frozen`]; consumed
/// (with full re-validation) by [`QueryEngine::from_frozen`].
///
/// The round trip is **answer-preserving bit for bit**: every quantity a
/// query reads — snapshots, local ids, hierarchy levels and portals,
/// degree oracles — is captured, so [`QueryCharge`]s match too.
///
/// # Examples
///
/// ```
/// use triangle::service::{Emit, Query, QueryEngine};
/// use triangle::PipelineParams;
///
/// let g = graph::gen::gnp(30, 0.2, 3).unwrap();
/// let engine = QueryEngine::build(&g, &PipelineParams::default());
/// let restored = QueryEngine::from_frozen(engine.to_frozen()).unwrap();
/// let q = Query::Vertex { v: 5, emit: Emit::Count };
/// assert_eq!(engine.answer(q), restored.answer(q)); // charge included
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenEngine {
    /// Vertices of the served graph.
    pub n: usize,
    /// Cluster id of every vertex (the assignment's `cluster_of`).
    pub cluster_of: Vec<u32>,
    /// Per-cluster sorted member lists (the assignment's `clusters`,
    /// flattened out of their bitset representation).
    pub members: Vec<Vec<VertexId>>,
    /// Every inter-cluster edge with its removal tag.
    pub inter_cluster: Vec<(VertexId, VertexId, RemovalTag)>,
    /// The decomposition's conductance promise.
    pub phi: f64,
    /// Per-cluster certificates, index-aligned with `members`.
    pub certificates: Vec<ClusterCertificate>,
    /// Per-cluster frozen artifacts, index-aligned with `members`.
    pub clusters: Vec<FrozenCluster>,
    /// Cluster-local index of every vertex.
    pub local_of: Vec<u32>,
    /// The non-derivable scalars of the original [`BuildReport`].
    pub report: FrozenReport,
}

/// One cluster's frozen artifact: adjacency snapshot rows, the induced
/// degree oracle, and the hierarchy as plain [`HierarchyParts`] (absent
/// for degenerate clusters, matching the build-time convention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenCluster {
    /// Sorted, deduplicated full-graph neighbor rows, by local id.
    pub adj: Vec<Vec<VertexId>>,
    /// Induced-subgraph degree of each member (empty when degenerate).
    pub local_deg: Vec<u32>,
    /// The cluster's routing hierarchy, if it has one.
    pub hierarchy: Option<HierarchyParts>,
}

/// The scalars of a [`BuildReport`] that cannot be recomputed from the
/// frozen structure alone. The derivable ones (`routed_clusters`,
/// `hierarchy_build_rounds`, `snapshot_words`) are deliberately absent —
/// [`QueryEngine::from_frozen`] recomputes them, which keeps a tampered
/// snapshot from telling a flattering story about itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrozenReport {
    /// Edges of the served graph.
    pub m: usize,
    /// CONGEST rounds charged to the original decomposition.
    pub decomposition_rounds: u64,
    /// Original decomposition wall clock, in nanoseconds.
    pub wall_decompose_ns: u64,
    /// Original freeze wall clock, in nanoseconds.
    pub wall_freeze_ns: u64,
}

/// A [`FrozenEngine`] violated a structural invariant during
/// [`QueryEngine::from_frozen`] — the snapshot is corrupt, truncated, or
/// was built for a different graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError {
    /// Which invariant was violated.
    pub reason: String,
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid frozen engine: {}", self.reason)
    }
}

impl std::error::Error for RestoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::enumerate_triangles;
    use crate::pipeline::enumerate_via_decomposition;

    fn params() -> PipelineParams {
        PipelineParams::default()
    }

    /// Reference answer: filter the full centralized triangle list.
    fn filtered_vertex(g: &Graph, v: VertexId) -> Vec<Triangle> {
        enumerate_triangles(g)
            .into_iter()
            .filter(|t| t.contains(v))
            .collect()
    }

    fn filtered_edge(g: &Graph, u: VertexId, v: VertexId) -> Vec<Triangle> {
        enumerate_triangles(g)
            .into_iter()
            .filter(|t| t.contains(u) && t.contains(v))
            .collect()
    }

    #[test]
    fn vertex_queries_match_filtered_ground_truth() {
        let g = graph::gen::gnp(60, 0.2, 11).unwrap();
        let engine = QueryEngine::build(&g, &params());
        for v in 0..60u32 {
            let want = filtered_vertex(&g, v);
            let out = engine
                .answer(Query::Vertex {
                    v,
                    emit: Emit::Enumerate,
                })
                .unwrap();
            assert_eq!(out.answer, Answer::Triangles(want.clone()), "vertex {v}");
            let out = engine
                .answer(Query::Vertex {
                    v,
                    emit: Emit::Count,
                })
                .unwrap();
            assert_eq!(out.answer, Answer::Count(want.len() as u64));
        }
    }

    #[test]
    fn edge_queries_match_filtered_ground_truth() {
        let g = graph::gen::gnp(50, 0.25, 13).unwrap();
        let engine = QueryEngine::build(&g, &params());
        // Real edges...
        for (u, v) in g.edges().take(200) {
            let want = filtered_edge(&g, u, v);
            let out = engine
                .answer(Query::Edge {
                    u,
                    v,
                    emit: Emit::Enumerate,
                })
                .unwrap();
            assert_eq!(out.answer, Answer::Triangles(want), "edge {u}-{v}");
        }
        // ...and non-edges answer empty even when the endpoints share
        // neighbors.
        let mut non_edges = 0;
        for u in 0..50u32 {
            for v in (u + 1)..50u32 {
                if g.neighbors(u).binary_search(&v).is_err() {
                    let out = engine
                        .answer(Query::Edge {
                            u,
                            v,
                            emit: Emit::Count,
                        })
                        .unwrap();
                    assert_eq!(out.answer, Answer::Count(0), "non-edge {u}-{v}");
                    non_edges += 1;
                }
            }
        }
        assert!(non_edges > 0, "gnp(50, 0.25) should miss some pairs");
    }

    #[test]
    fn top_k_ranks_by_support_with_deterministic_ties() {
        let g = graph::gen::gnp(40, 0.3, 17).unwrap();
        let engine = QueryEngine::build(&g, &params());
        for v in 0..40u32 {
            let out = engine.answer(Query::TopKBySupport { v, k: 5 }).unwrap();
            let Answer::TopEdges(top) = out.answer else {
                panic!("top-k answers TopEdges");
            };
            assert!(top.len() <= 5);
            // Supports agree with per-edge queries, and the order is
            // descending with ascending-id ties.
            for pair in top.windows(2) {
                assert!(
                    pair[0].support > pair[1].support
                        || (pair[0].support == pair[1].support
                            && (pair[0].u, pair[0].v) < (pair[1].u, pair[1].v))
                );
            }
            for e in &top {
                assert_eq!(
                    filtered_edge(&g, e.u, e.v).len() as u64,
                    e.support,
                    "support of {}-{}",
                    e.u,
                    e.v
                );
            }
        }
    }

    #[test]
    fn concurrent_serve_is_bit_identical_to_sequential() {
        let g = graph::gen::gnp(80, 0.15, 19).unwrap();
        let engine = QueryEngine::build(&g, &params());
        let queries: Vec<Query> = (0..200u32)
            .map(|i| match i % 4 {
                0 => Query::Vertex {
                    v: i % 80,
                    emit: Emit::Enumerate,
                },
                1 => Query::Vertex {
                    v: (i * 7) % 80,
                    emit: Emit::Count,
                },
                2 => Query::Edge {
                    u: i % 80,
                    v: (i * 3 + 1) % 80,
                    emit: Emit::Enumerate,
                },
                _ => Query::TopKBySupport { v: i % 80, k: 3 },
            })
            .collect();
        let seq = engine.serve(&queries, &SchedulerPolicy::sequential());
        let par = engine.serve(&queries, &SchedulerPolicy::with_workers(4));
        assert!(seq.answers_match(&par), "worker count changed an answer");
        assert_eq!(seq.count_checksum(), par.count_checksum());
        assert!(par.stats.workers > 1, "parallel serve used one worker");
    }

    #[test]
    fn chunked_serve_is_bit_identical_to_unbatched_at_every_chunk_size() {
        let g = graph::gen::gnp(60, 0.2, 61).unwrap();
        let engine = QueryEngine::build(&g, &params());
        let queries: Vec<Query> = (0..150u32)
            .map(|i| match i % 3 {
                0 => Query::Vertex {
                    v: i % 60,
                    emit: Emit::Enumerate,
                },
                1 => Query::Edge {
                    u: i % 60,
                    v: (i * 7 + 1) % 60,
                    emit: Emit::Count,
                },
                _ => Query::TopKBySupport { v: i % 60, k: 4 },
            })
            .collect();
        let policy = SchedulerPolicy::with_workers(4);
        let reference = engine.serve_unbatched(&queries, &policy);
        for chunk in [0, 1, 3, 64, 150, 10_000] {
            let batched = engine.serve_chunked(&queries, &policy, chunk);
            assert!(
                reference.answers_match(&batched),
                "chunk size {chunk} changed an answer"
            );
        }
        let auto = engine.serve(&queries, &policy);
        assert!(reference.answers_match(&auto));
        // Chunking really did coarsen the job list.
        assert!(auto.stats.jobs < queries.len());
        assert_eq!(reference.stats.jobs, queries.len());
    }

    #[test]
    fn engine_shares_across_real_threads() {
        let g = graph::gen::gnp(40, 0.25, 23).unwrap();
        let engine = Arc::new(QueryEngine::build(&g, &params()));
        let baseline: Vec<_> = (0..40u32)
            .map(|v| {
                engine
                    .answer(Query::Vertex {
                        v,
                        emit: Emit::Count,
                    })
                    .unwrap()
            })
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let e = Arc::clone(&engine);
                let want = baseline.clone();
                std::thread::spawn(move || {
                    for (v, w) in want.iter().enumerate() {
                        let got = e
                            .answer(Query::Vertex {
                                v: v as VertexId,
                                emit: Emit::Count,
                            })
                            .unwrap();
                        assert_eq!(&got, w);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn charges_are_deterministic_and_within_reach_of_budget() {
        let g = graph::gen::gnp(100, 0.1, 29).unwrap();
        let engine = QueryEngine::build(&g, &params());
        let q = Query::Vertex {
            v: 7,
            emit: Emit::Count,
        };
        let a = engine.answer(q).unwrap();
        let b = engine.answer(q).unwrap();
        assert_eq!(a.charge, b.charge, "charge model must be RNG-free");
        assert!(a.charge.words > 0);
        // The per-query word stream is what the §3 budget bounds; a point
        // query must stay well under the whole per-cluster budget.
        assert!(
            (a.charge.words as f64) < engine.paper_word_budget() * 100.0,
            "a single point query charged {} words against budget {}",
            a.charge.words,
            engine.paper_word_budget()
        );
    }

    #[test]
    fn unknown_vertices_error_per_query_not_batch() {
        let g = graph::gen::gnp(20, 0.3, 31).unwrap();
        let engine = QueryEngine::build(&g, &params());
        let report = engine.serve(
            &[
                Query::Vertex {
                    v: 5,
                    emit: Emit::Count,
                },
                Query::Vertex {
                    v: 99,
                    emit: Emit::Count,
                },
                Query::Edge {
                    u: 1,
                    v: 200,
                    emit: Emit::Count,
                },
            ],
            &SchedulerPolicy::sequential(),
        );
        assert!(report.answers[0].is_ok());
        assert_eq!(
            report.answers[1],
            Err(ServiceError::UnknownVertex { v: 99 })
        );
        assert_eq!(
            report.answers[2],
            Err(ServiceError::UnknownVertex { v: 200 })
        );
    }

    #[test]
    fn degenerate_graphs_serve_empty_answers() {
        // No edges at all.
        let g = Graph::from_edges(5, []).unwrap();
        let engine = QueryEngine::build(&g, &params());
        let out = engine
            .answer(Query::Vertex {
                v: 2,
                emit: Emit::Enumerate,
            })
            .unwrap();
        assert_eq!(out.answer, Answer::Triangles(Vec::new()));
        assert_eq!(out.charge.queries, 0, "degenerate clusters charge zero");
        // Two vertices, one edge: still no triangle.
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let engine = QueryEngine::build(&g, &params());
        let out = engine
            .answer(Query::Edge {
                u: 0,
                v: 1,
                emit: Emit::Count,
            })
            .unwrap();
        assert_eq!(out.answer, Answer::Count(0));
        // Self-loop query: an edge {v, v} is never part of a triangle.
        let g = graph::gen::gnp(10, 0.5, 37).unwrap();
        let engine = QueryEngine::build(&g, &params());
        let out = engine
            .answer(Query::Edge {
                u: 3,
                v: 3,
                emit: Emit::Count,
            })
            .unwrap();
        assert_eq!(out.answer, Answer::Count(0));
    }

    #[test]
    fn from_assignment_matches_built_engine() {
        let g = graph::gen::gnp(60, 0.2, 41).unwrap();
        let built = QueryEngine::build(&g, &params());
        let planted = QueryEngine::from_assignment(&g, built.assignment().clone(), &params());
        for v in (0..60u32).step_by(7) {
            let a = built
                .answer(Query::Vertex {
                    v,
                    emit: Emit::Enumerate,
                })
                .unwrap();
            let b = planted
                .answer(Query::Vertex {
                    v,
                    emit: Emit::Enumerate,
                })
                .unwrap();
            assert_eq!(a, b, "same assignment must freeze the same artifact");
        }
        assert_eq!(planted.build_report().decomposition_rounds, 0);
        assert!(built.build_report().decomposition_rounds > 0);
    }

    #[test]
    fn build_report_accounts_the_artifact() {
        let g = graph::gen::gnp(80, 0.15, 43).unwrap();
        let engine = QueryEngine::build(&g, &params());
        let r = engine.build_report();
        assert_eq!(r.n, 80);
        assert_eq!(r.m, g.m());
        assert!(r.clusters > 0);
        assert!(r.routed_clusters <= r.clusters);
        assert!(
            r.snapshot_words >= 2 * g.m() as u64,
            "snapshots hold every edge twice minus loops/parallels"
        );
        assert!(r.wall_total() >= r.wall_decompose);
    }

    #[test]
    fn service_agrees_with_pipeline_enumeration() {
        // The tentpole contract: the frozen artifact answers exactly what
        // the full pipeline enumerates.
        let g = graph::gen::gnp(70, 0.15, 47).unwrap();
        let engine = QueryEngine::build(&g, &params());
        let full = enumerate_via_decomposition(&g, &params());
        for v in 0..70u32 {
            let want: Vec<Triangle> = full
                .triangles
                .iter()
                .copied()
                .filter(|t| t.contains(v))
                .collect();
            let out = engine
                .answer(Query::Vertex {
                    v,
                    emit: Emit::Enumerate,
                })
                .unwrap();
            assert_eq!(out.answer, Answer::Triangles(want), "vertex {v}");
        }
    }

    #[test]
    fn frozen_roundtrip_answers_bit_identically() {
        let g = graph::gen::gnp(80, 0.15, 53).unwrap();
        let engine = QueryEngine::build(&g, &params());
        let restored = QueryEngine::from_frozen(engine.to_frozen()).unwrap();
        let queries: Vec<Query> = (0..160u32)
            .map(|i| match i % 4 {
                0 => Query::Vertex {
                    v: i % 80,
                    emit: Emit::Enumerate,
                },
                1 => Query::Vertex {
                    v: (i * 11) % 80,
                    emit: Emit::Count,
                },
                2 => Query::Edge {
                    u: i % 80,
                    v: (i * 5 + 2) % 80,
                    emit: Emit::Enumerate,
                },
                _ => Query::TopKBySupport { v: i % 80, k: 4 },
            })
            .collect();
        let a = engine.serve(&queries, &SchedulerPolicy::sequential());
        let b = restored.serve(&queries, &SchedulerPolicy::sequential());
        assert!(a.answers_match(&b), "restore changed an answer or a charge");
        // The derived report fields are recomputed, not trusted — they
        // must still land on the original build's numbers.
        let (orig, rest) = (engine.build_report(), restored.build_report());
        assert_eq!(orig.n, rest.n);
        assert_eq!(orig.m, rest.m);
        assert_eq!(orig.clusters, rest.clusters);
        assert_eq!(orig.routed_clusters, rest.routed_clusters);
        assert_eq!(orig.hierarchy_build_rounds, rest.hierarchy_build_rounds);
        assert_eq!(orig.snapshot_words, rest.snapshot_words);
        assert_eq!(orig.decomposition_rounds, rest.decomposition_rounds);
        // And a second freeze of the restored engine is the same bytes.
        assert_eq!(engine.to_frozen(), restored.to_frozen());
    }

    #[test]
    fn frozen_roundtrip_survives_degenerate_graphs() {
        for g in [
            Graph::from_edges(5, []).unwrap(),
            Graph::from_edges(2, [(0, 1)]).unwrap(),
            Graph::from_edges(1, []).unwrap(),
        ] {
            let engine = QueryEngine::build(&g, &params());
            let restored = QueryEngine::from_frozen(engine.to_frozen()).unwrap();
            for v in 0..g.n() as VertexId {
                assert_eq!(
                    engine.answer(Query::Vertex {
                        v,
                        emit: Emit::Count
                    }),
                    restored.answer(Query::Vertex {
                        v,
                        emit: Emit::Count
                    })
                );
            }
        }
    }

    #[test]
    fn from_frozen_rejects_corrupt_snapshots() {
        let g = graph::gen::gnp(40, 0.25, 59).unwrap();
        let engine = QueryEngine::build(&g, &params());
        let frozen = engine.to_frozen();
        // The pristine snapshot restores.
        assert!(QueryEngine::from_frozen(frozen.clone()).is_ok());
        #[allow(clippy::type_complexity)]
        let cases: Vec<(&str, Box<dyn Fn(&mut FrozenEngine)>)> = vec![
            (
                "truncated cluster_of",
                Box::new(|f| f.cluster_of.pop().map(|_| ()).unwrap()),
            ),
            ("truncated local_of", Box::new(|f| f.local_of.truncate(10))),
            (
                "dropped certificate",
                Box::new(|f| f.certificates.pop().map(|_| ()).unwrap()),
            ),
            ("member out of range", Box::new(|f| f.members[0][0] = 40)),
            (
                "member list reordered",
                Box::new(|f| f.members[0].reverse()),
            ),
            (
                "cluster_of inconsistent",
                Box::new(|f| {
                    let v = f.members[0][0] as usize;
                    f.cluster_of[v] = f.cluster_of[v].wrapping_add(1);
                }),
            ),
            (
                "local_of inconsistent",
                Box::new(|f| {
                    let v = f.members[0][0] as usize;
                    f.local_of[v] += 1;
                }),
            ),
            (
                "snapshot row dropped",
                Box::new(|f| f.clusters[0].adj.pop().map(|_| ()).unwrap()),
            ),
            (
                "snapshot row unsorted",
                Box::new(|f| {
                    let row = f.clusters[0].adj.iter_mut().find(|r| r.len() >= 2).unwrap();
                    row.reverse();
                }),
            ),
            (
                "snapshot names ghost vertex",
                Box::new(|f| {
                    f.clusters[0].adj[0] = vec![99];
                }),
            ),
            (
                "inter-cluster edge out of range",
                Box::new(|f| {
                    f.inter_cluster.push((0, 99, RemovalTag::Remove1));
                }),
            ),
            (
                "hierarchy detached from degrees",
                Box::new(|f| {
                    let fc = f
                        .clusters
                        .iter_mut()
                        .find(|c| c.hierarchy.is_some())
                        .expect("gnp(40, .25) routes at least one cluster");
                    fc.local_deg.pop();
                }),
            ),
            (
                "hierarchy internally corrupt",
                Box::new(|f| {
                    let fc = f
                        .clusters
                        .iter_mut()
                        .find(|c| c.hierarchy.is_some())
                        .unwrap();
                    fc.hierarchy.as_mut().unwrap().levels.clear();
                }),
            ),
        ];
        for (what, tamper) in cases {
            let mut bad = frozen.clone();
            tamper(&mut bad);
            assert!(
                QueryEngine::from_frozen(bad).is_err(),
                "tampered snapshot accepted: {what}"
            );
        }
    }
}
