//! The paper's CONGEST triangle enumeration (§3): expander decomposition
//! plus cluster-local load-balanced listing via expander routing plus
//! recursion on the inter-cluster remainder `E*`.
//!
//! Per recursion level, on the current edge set `E`:
//!
//! 1. Compute an `(ε, φ)`-expander decomposition with `ε ≤ 1/6`
//!    (Theorem 1). The removed edges form `E*` with `|E*| ≤ ε·|E|`.
//! 2. Every kept edge is *intra-cluster*. Each cluster `Vᵢ` lists every
//!    triangle with at least one intra-`Vᵢ` edge: vertices are hashed into
//!    `gᵢ = ⌈|Vᵢ|^{1/3}⌉` groups; each group triple `(A,B,C)` is owned by
//!    a cluster vertex (degree-proportional round robin); the owner
//!    receives the `Vᵢ`-incident edges of the three group pairs and joins
//!    them locally. Deliveries run over the GKS routing structure built
//!    once per cluster; the per-query load bound `O(deg(v))` batches the
//!    traffic into `Õ(n^{1/3})` queries (the DLP counting argument).
//! 3. Triangles whose three edges all lie in `E*` survive; recurse on
//!    `E*`. Since `|E*| ≤ |E|/6`, `O(log n)` levels suffice.
//!
//! Every triangle is therefore reported: the first level at which it has
//! an intra-cluster edge lists it, and a triangle never survives past a
//! level that listed it (its intra edge is not in `E*`).

use crate::count::Triangle;
use expander::{ExpanderDecomposition, ParamMode};
use graph::{Graph, VertexId, VertexSet};
use routing::RoutingHierarchy;

/// Configuration for [`congest_enumerate`].
#[derive(Debug, Clone)]
pub struct TriangleConfig {
    /// Decomposition edge budget (paper requires `ε ≤ 1/6`).
    pub epsilon: f64,
    /// Decomposition trade-off integer `k`.
    pub decomposition_k: usize,
    /// GKS hierarchy depth (constant, per the §3 observation).
    pub routing_depth: usize,
    /// Parameter calibration.
    pub mode: ParamMode,
    /// Master seed.
    pub seed: u64,
    /// Maximum recursion levels before the residual is brute-forced.
    pub max_levels: usize,
}

impl Default for TriangleConfig {
    fn default() -> Self {
        TriangleConfig {
            epsilon: 1.0 / 6.0,
            decomposition_k: 2,
            routing_depth: 3,
            mode: ParamMode::Practical,
            seed: 0,
            max_levels: 12,
        }
    }
}

/// Per-level statistics of the recursion.
#[derive(Debug, Clone)]
pub struct LevelStats {
    /// Edges at this level.
    pub m: usize,
    /// Clusters in the decomposition (non-singleton).
    pub clusters: usize,
    /// Triangles first reported at this level.
    pub triangles_found: usize,
    /// Rounds charged to the expander decomposition.
    pub decomposition_rounds: u64,
    /// Rounds charged to routing preprocessing (max over clusters —
    /// clusters work in parallel).
    pub routing_build_rounds: u64,
    /// Rounds charged to the listing queries (max over clusters).
    pub listing_rounds: u64,
    /// Maximum number of routing queries any cluster needed.
    pub max_queries: u64,
}

impl LevelStats {
    /// Total rounds of this level.
    pub fn rounds(&self) -> u64 {
        self.decomposition_rounds + self.routing_build_rounds + self.listing_rounds
    }
}

/// Result of the CONGEST triangle enumeration.
#[derive(Debug, Clone)]
pub struct CongestEnumeration {
    /// All triangles, sorted and deduplicated.
    pub triangles: Vec<Triangle>,
    /// Total charged CONGEST rounds.
    pub rounds: u64,
    /// Per-level breakdown.
    pub levels: Vec<LevelStats>,
}

/// Runs the Theorem 2 algorithm on `g`.
///
/// # Example
///
/// ```
/// use triangle::{congest_enumerate, count_triangles, TriangleConfig};
/// let g = graph::gen::gnp(48, 0.3, 5).unwrap();
/// let out = congest_enumerate(&g, &TriangleConfig::default());
/// assert_eq!(out.triangles.len() as u64, count_triangles(&g));
/// ```
pub fn congest_enumerate(g: &Graph, config: &TriangleConfig) -> CongestEnumeration {
    let n = g.n();
    let mut triangles: Vec<Triangle> = Vec::new();
    let mut levels = Vec::new();
    let mut rounds = 0u64;
    let mut current = g.clone();
    for level in 0..config.max_levels {
        if current.m() == 0 {
            break;
        }
        if n < 3 {
            break;
        }
        let eps = config.epsilon.min(1.0 / 6.0);
        let decomp = ExpanderDecomposition::builder()
            .epsilon(eps)
            .k(config.decomposition_k)
            .mode(config.mode)
            .seed(config.seed.wrapping_add(level as u64 * 0x9E37))
            .build()
            .run(&current)
            .expect("non-empty graph");
        let mut stats = LevelStats {
            m: current.m(),
            clusters: 0,
            triangles_found: 0,
            decomposition_rounds: decomp.ledger.total(),
            routing_build_rounds: 0,
            listing_rounds: 0,
            max_queries: 0,
        };
        // The kept graph: intra-cluster edges only.
        let kept =
            current.remove_edges(decomp.removed_edges.iter().map(|&(u, v, _)| (u, v)), false);
        let before = triangles.len();
        for part in &decomp.parts {
            if part.len() < 2 {
                continue;
            }
            let cluster = ClusterListing::run(&current, &kept, part, config, level as u64);
            stats.clusters += 1;
            stats.routing_build_rounds = stats.routing_build_rounds.max(cluster.build_rounds);
            stats.listing_rounds = stats.listing_rounds.max(cluster.listing_rounds);
            stats.max_queries = stats.max_queries.max(cluster.queries);
            triangles.extend(cluster.triangles);
        }
        triangles.sort_unstable();
        triangles.dedup();
        stats.triangles_found = triangles.len() - before.min(triangles.len());
        rounds += stats.rounds();
        levels.push(stats);
        // Recurse on E*.
        let star: Vec<(VertexId, VertexId)> = decomp
            .removed_edges
            .iter()
            .map(|&(u, v, _)| (u, v))
            .collect();
        current = Graph::from_edges(n, star).expect("ids in range");
    }
    // Residual brute force (only reached if max_levels was exhausted):
    // gather the remaining edges and list centrally; charge O(m + n).
    if current.m() > 0 {
        let residual = crate::count::enumerate_triangles(&current);
        rounds += (current.m() + n) as u64;
        triangles.extend(residual);
        triangles.sort_unstable();
        triangles.dedup();
    }
    CongestEnumeration {
        triangles,
        rounds,
        levels,
    }
}

/// The cluster-local listing step.
struct ClusterListing {
    triangles: Vec<Triangle>,
    build_rounds: u64,
    listing_rounds: u64,
    queries: u64,
}

impl ClusterListing {
    fn run(
        g_full: &Graph,
        kept: &Graph,
        part: &VertexSet,
        config: &TriangleConfig,
        level_salt: u64,
    ) -> ClusterListing {
        let n = g_full.n();
        // Intra edges of this cluster (in the kept graph both endpoints in
        // the part; parts are exactly the kept-graph components).
        let intra: Vec<(VertexId, VertexId)> = part
            .iter()
            .flat_map(|u| {
                kept.neighbors(u)
                    .iter()
                    .copied()
                    .filter(move |&w| w > u)
                    .map(move |w| (u, w))
                    .collect::<Vec<_>>()
            })
            .collect();
        if intra.is_empty() {
            return ClusterListing {
                triangles: Vec::new(),
                build_rounds: 0,
                listing_rounds: 0,
                queries: 0,
            };
        }

        // ── Enumeration (what the owners jointly compute) ──
        // Every triangle with ≥ 1 intra edge: intersect the *full*-graph
        // neighborhoods of each intra edge's endpoints.
        let mut triangles = Vec::new();
        for &(u, v) in &intra {
            let (nu, nv) = (g_full.neighbors(u), g_full.neighbors(v));
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let w = nu[i];
                        if w != u && w != v {
                            triangles.push(Triangle::new(u, v, w));
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        triangles.sort_unstable();
        triangles.dedup();

        // ── Round accounting (how the owners receive their data) ──
        // Group the *global* vertex set into gᵢ = ⌈|Vᵢ|^{1/3}⌉ classes;
        // bucket the cluster-incident edges by group pair; assign group
        // triples to cluster vertices degree-proportionally; each owner
        // receives its triples' three pair buckets. The per-owner loads
        // are computed in **closed form** ([`crate::dlp`], DESIGN.md §11)
        // — `O(g² + Σ|bucket| + |Vᵢ|)` instead of walking all `C(g+2, 3)`
        // triples — with every pair slot counted
        // ([`PairWeighting::TripleMultiplicity`]), exactly as the
        // enumerating loop this replaces (pinned bit-for-bit by
        // `tests/dlp_equivalence.rs` against
        // [`crate::dlp::DlpInstance::enumerated_owner_loads`]).
        let salt = config.seed ^ level_salt.wrapping_mul(0x9E3779B97F4A7C15);
        let members: Vec<VertexId> = part.iter().collect();
        let instance = crate::dlp::DlpInstance::new(g_full, part, &members, salt);
        let (mut pair_raw, mut holder_inc) = (Vec::new(), Vec::new());
        let loads = instance.aggregate_loads(
            crate::dlp::PairWeighting::TripleMultiplicity,
            &mut pair_raw,
            &mut holder_inc,
        );
        // Queries: each routing query moves O(deg(v)) words per vertex —
        // the DLP counting argument that bounds per-owner receive load by
        // O(deg·|Vᵢ|^{1/3}) words.
        let queries = loads
            .owners
            .iter()
            .map(|&(o, load)| load.div_ceil(g_full.degree(members[o as usize]).max(1) as u64))
            .max()
            .unwrap_or(0)
            .max(1);

        // Routing structure on the cluster's induced subgraph.
        let sub = graph::view::Subgraph::induced(kept, part);
        let (build_rounds, query_rounds) = match RoutingHierarchy::build(
            sub.graph(),
            config.routing_depth,
            config.seed ^ 0xABCD ^ level_salt,
        ) {
            Ok(h) => (h.preprocessing_rounds(), h.query_rounds()),
            // Degenerate cluster (no edges — cannot happen since intra is
            // non-empty, but stay safe).
            Err(_) => (0, 1),
        };
        let _ = n;
        ClusterListing {
            triangles,
            build_rounds,
            listing_rounds: queries * query_rounds,
            queries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::enumerate_triangles;
    use graph::gen;

    fn assert_complete(g: &Graph, config: &TriangleConfig) {
        let out = congest_enumerate(g, config);
        let want = enumerate_triangles(g);
        assert_eq!(out.triangles, want, "n = {}, m = {}", g.n(), g.m());
    }

    #[test]
    fn complete_on_random_graphs() {
        for seed in 0..3 {
            let g = gen::gnp(40, 0.25, seed).unwrap();
            assert_complete(&g, &TriangleConfig::default());
        }
    }

    #[test]
    fn complete_on_cluster_graphs() {
        let (g, _) = gen::ring_of_cliques(5, 6).unwrap();
        assert_complete(&g, &TriangleConfig::default());
        let pp = gen::planted_partition(&[20, 20], 0.5, 0.08, 7).unwrap();
        assert_complete(&pp.graph, &TriangleConfig::default());
    }

    #[test]
    fn complete_on_dense_graph() {
        let g = gen::complete(16).unwrap();
        assert_complete(&g, &TriangleConfig::default());
    }

    #[test]
    fn triangle_free_graphs_report_nothing() {
        for g in [gen::cycle(12).unwrap(), gen::grid(5, 5).unwrap()] {
            let out = congest_enumerate(&g, &TriangleConfig::default());
            assert!(out.triangles.is_empty());
        }
    }

    #[test]
    fn inter_cluster_triangles_found_via_recursion() {
        // A triangle spanning three cliques of a ring: all three edges are
        // likely inter-cluster at level 0.
        let (mut edges, _) = {
            let (g, cliques) = gen::ring_of_cliques(3, 5).unwrap();
            (g.edges().collect::<Vec<_>>(), cliques)
        };
        // Add a triangle across the three cliques: vertices 2, 7, 12.
        edges.extend([(2, 7), (7, 12), (2, 12)]);
        let g = Graph::from_edges(15, edges).unwrap();
        assert_complete(&g, &TriangleConfig::default());
    }

    #[test]
    fn level_stats_are_recorded() {
        let pp = gen::planted_partition(&[16, 16], 0.6, 0.1, 3).unwrap();
        let out = congest_enumerate(&pp.graph, &TriangleConfig::default());
        assert!(!out.levels.is_empty());
        let l0 = &out.levels[0];
        assert_eq!(l0.m, pp.graph.m());
        assert!(l0.decomposition_rounds > 0);
        assert!(out.rounds >= l0.rounds());
    }

    #[test]
    fn edge_set_shrinks_per_level() {
        let g = gen::gnp(50, 0.3, 11).unwrap();
        let out = congest_enumerate(&g, &TriangleConfig::default());
        for pair in out.levels.windows(2) {
            assert!(
                pair[1].m <= pair[0].m / 2,
                "E* must shrink: {} -> {}",
                pair[0].m,
                pair[1].m
            );
        }
    }

    #[test]
    fn epsilon_is_capped_at_one_sixth() {
        let g = gen::gnp(30, 0.3, 1).unwrap();
        let config = TriangleConfig {
            epsilon: 0.9, // will be clamped internally
            ..Default::default()
        };
        assert_complete(&g, &config);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::gnp(36, 0.3, 5).unwrap();
        let a = congest_enumerate(&g, &TriangleConfig::default());
        let b = congest_enumerate(&g, &TriangleConfig::default());
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.triangles, b.triangles);
    }
}
