//! **Theorem 2** — triangle enumeration in `Õ(n^{1/3})` CONGEST rounds.
//!
//! Three implementations share a ground truth:
//!
//! * [`count`] — centralized enumerators (degree-ordered merge join and a
//!   brute-force reference). Ground truth + work baseline.
//! * [`congest_algo`] — the paper's CONGEST algorithm: expander-decompose
//!   the graph (`ε ≤ 1/6`), list every triangle that has at least one
//!   intra-cluster edge via load-balanced listing inside each cluster
//!   (Dolev–Lenzen–Peled-style group tripartition, delivered with GKS
//!   expander routing in `Õ(n^{1/3})` queries), then recurse on the
//!   inter-cluster remainder `E*` (`|E*| ≤ |E|/2`, so `O(log n)` levels).
//! * [`clique_algo`] — the Dolev–Lenzen–Peled deterministic
//!   CONGESTED-CLIQUE lister (`O(n^{1/3})` rounds via Lenzen routing),
//!   the baseline that establishes Theorem 2's headline: CONGEST matches
//!   CONGESTED-CLIQUE up to polylog factors.
//! * [`pipeline`] — the end-to-end composition: decomposition →
//!   per-cluster batched expander routing → intra-cluster enumeration
//!   executed on the parallel CONGEST round engine → recursion on `E*`,
//!   with per-phase round/message budgets reported against the paper's
//!   bounds.
//! * [`service`] — the build-once/query-many split: the pipeline's build
//!   phase frozen into an immutable [`service::QueryEngine`] that serves
//!   concurrent triangle point queries with per-query routing charges.
//! * [`churn`] — incremental maintenance under live edge churn: a
//!   [`churn::DeltaLedger`] keeps counts and witnesses exact per batch,
//!   and certificate-driven reclustering refreezes only broken clusters.
//!
//! Every algorithm returns a *sorted, deduplicated* triangle list so
//! completeness is a one-line assertion against ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod clique_algo;
pub mod congest_algo;
pub mod count;
pub mod dlp;
pub mod pipeline;
pub mod service;

pub use churn::{BatchReport, ChurnPolicy, DeltaLedger, EdgeOp, RebuildReport};
pub use clique_algo::{clique_enumerate, CliqueEnumeration};
pub use congest_algo::{congest_enumerate, CongestEnumeration, TriangleConfig};
pub use count::{count_triangles, enumerate_triangles, Triangle};
pub use pipeline::{
    enumerate_via_decomposition, enumerate_with_assignment, Packing, PipelineParams, TriangleReport,
};
pub use service::{
    Answer, Emit, FrozenCluster, FrozenEngine, FrozenReport, Query, QueryEngine, QueryOutcome,
    RestoreError, ServeReport, ServiceError,
};
