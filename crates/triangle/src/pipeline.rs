//! The end-to-end Theorem 2 pipeline: expander decomposition → per-cluster
//! expander routing → intra-cluster enumeration **on the CONGEST round
//! engine** → recursion on the removed-edge subgraph.
//!
//! This module wires the repo's pieces — [`expander::decomposition`] (via
//! its [`expander::ClusterAssignment`] contract), [`routing`]'s batched
//! [`routing::EdgeBatch`] deliveries, and the [`congest`] engine in
//! [`ExecMode::Parallel`] — into the single entry point
//! [`enumerate_via_decomposition`]. Where [`crate::congest_algo`] charges
//! the listing rounds analytically, the pipeline *executes* the
//! intra-cluster exchange as a real [`congest::VertexProgram`] per cluster
//! and reports measured engine traffic per phase next to the analytic
//! routing/decomposition charges and the paper's budgets.
//!
//! Per recursion level, on the current edge set `E`:
//!
//! 1. **Decompose** (`ε ≤ 1/6`): [`ExpanderDecomposition`] splits `E` into
//!    expander clusters plus removed edges `E*` (`|E*| ≤ ε·|E|`).
//! 2. **Route**: inside each cluster, the cluster-incident edge slices are
//!    redistributed to the owners of the DLP group triples with one
//!    batched [`RoutingHierarchy::route_edges`] instance (per-vertex load
//!    `O(deg(v))` per query ⇒ `Õ(n^{1/3})` queries, §3).
//! 3. **Enumerate**: each cluster runs an adjacency-exchange
//!    [`congest::VertexProgram`] on its induced subgraph under
//!    [`ExecMode::Parallel`]; every triangle with ≥ 1 intra-cluster edge
//!    is listed at the edge's lower endpoint. Disjoint clusters step
//!    simultaneously, so their [`RunReport`]s fold via
//!    [`RunReport::parallel_with`] into the level's [`PhaseLedger`].
//! 4. **Recurse** on `E*` with the depth schedule of
//!    [`expander::params::DecompositionParams`]; since `|E*| ≤ |E|/6`,
//!    `O(log m)` levels suffice, after which any residual is brute-forced
//!    with an honest `O(m + n)` charge.

use crate::count::Triangle;
use crate::dlp;
use congest::packed::{self, IdStreamDecoder, IdStreamEncoder, PackedIds};
use congest::{Ctx, ExecMode, Network, PhaseLedger, RunReport, VertexProgram};
use expander::params::DecompositionParams;
use expander::scheduler::{
    derive_seed, run_jobs, LevelExecution, RecursionReport, SchedulerPolicy, ScratchPool,
};
use expander::{ExpanderDecomposition, ParamMode};
use graph::view::Subgraph;
use graph::{Graph, VertexId, VertexSet, WorkingGraph};
use routing::RoutingHierarchy;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for [`enumerate_via_decomposition`].
///
/// # Examples
///
/// Defaults are the paper-calibrated practical settings; override only
/// what the experiment varies:
///
/// ```
/// use triangle::pipeline::PipelineParams;
///
/// let params = PipelineParams { seed: 42, max_depth: 4, ..Default::default() };
/// assert_eq!(params.epsilon, 1.0 / 6.0);
/// ```
#[derive(Debug, Clone)]
pub struct PipelineParams {
    /// Decomposition edge budget per level (clamped to the paper's
    /// `ε ≤ 1/6`).
    pub epsilon: f64,
    /// Decomposition trade-off integer `k`.
    pub decomposition_k: usize,
    /// GKS hierarchy depth per cluster (constant, per §3).
    pub routing_depth: usize,
    /// Parameter calibration.
    pub mode: ParamMode,
    /// Master seed. Every level derives its seed as
    /// `derive_seed(seed, depth)` and every cluster job as
    /// `derive_seed(level_seed, cluster_id)`, so results never depend on
    /// scheduling (DESIGN.md §7).
    pub seed: u64,
    /// Hard cap on recursion depth; the schedule derived from
    /// [`DecompositionParams`] is used up to this cap, after which the
    /// residual is brute-forced.
    pub max_depth: usize,
    /// How the engine steps vertices inside each cluster run.
    pub exec: ExecMode,
    /// Whether the adjacency exchange packs several neighbor ids into
    /// each `O(log n)`-bit message ([`Packing::Packed`], the default) or
    /// streams one id per round ([`Packing::Unpacked`] — the ablation /
    /// regression baseline). Output is bit-identical either way; only
    /// engine rounds/messages differ.
    pub packing: Packing,
    /// How sibling cluster jobs of one recursion level are scheduled
    /// (`Parallel` = work-stealing worker tasks; output is bit-for-bit
    /// the `Sequential` output either way).
    pub recursion_exec: ExecMode,
    /// Worker-task cap for the cluster scheduler (0 = one per available
    /// thread).
    pub recursion_workers: usize,
    /// Maximum number of witness triangles sampled into the report.
    pub witness_cap: usize,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            epsilon: 1.0 / 6.0,
            decomposition_k: 2,
            routing_depth: 3,
            mode: ParamMode::Practical,
            seed: 0,
            max_depth: 12,
            exec: ExecMode::Parallel,
            packing: Packing::Packed,
            recursion_exec: ExecMode::Parallel,
            recursion_workers: 0,
            witness_cap: 16,
        }
    }
}

/// How the intra-cluster adjacency exchange uses its per-round
/// bandwidth budget.
///
/// # Examples
///
/// Packing changes rounds and messages, never the answer:
///
/// ```
/// use triangle::pipeline::{enumerate_via_decomposition, Packing, PipelineParams};
///
/// let g = graph::gen::gnp(24, 0.4, 3).unwrap();
/// let packed = enumerate_via_decomposition(&g, &PipelineParams::default());
/// let unpacked = enumerate_via_decomposition(
///     &g,
///     &PipelineParams { packing: Packing::Unpacked, ..Default::default() },
/// );
/// assert_eq!(packed.triangles, unpacked.triangles);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Packing {
    /// Delta-varint runs packed greedily into the `O(log n)`-bit word
    /// budget of each round (DESIGN.md §10): exchange rounds drop from
    /// `Δ_cluster` to `⌈Δ / ids-per-message⌉`.
    #[default]
    Packed,
    /// One id per message per round — the pre-packing wire format, kept
    /// as the measurable baseline so a regression to it fails loudly.
    Unpacked,
}

impl Packing {
    /// Cap on ids per message: unlimited for [`Packing::Packed`] (the
    /// byte budget is the binding constraint), 1 for
    /// [`Packing::Unpacked`].
    fn max_ids_per_message(self) -> usize {
        match self {
            Packing::Packed => usize::MAX,
            Packing::Unpacked => 1,
        }
    }
}

impl PipelineParams {
    /// The cluster-scheduler policy these parameters describe.
    pub fn scheduler_policy(&self) -> SchedulerPolicy {
        match self.recursion_exec {
            ExecMode::Sequential => SchedulerPolicy::sequential(),
            ExecMode::Parallel => SchedulerPolicy::with_workers(self.recursion_workers),
        }
    }
}

/// Per-level breakdown: analytic charges next to measured engine traffic.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// Recursion depth of this level (0 = the input graph).
    pub depth: usize,
    /// Edges at this level.
    pub m: usize,
    /// Non-singleton clusters that ran the enumeration.
    pub clusters: usize,
    /// The conductance promise `φ` of this level's decomposition.
    pub phi: f64,
    /// Triangles first reported at this level.
    pub triangles_found: usize,
    /// Rounds charged to the expander decomposition (RoundLedger total).
    pub decomposition_rounds: u64,
    /// Routing preprocessing rounds (max over clusters — they build in
    /// parallel).
    pub routing_build_rounds: u64,
    /// Routing queries of the heaviest cluster's batched redistribution.
    pub routing_queries: u64,
    /// Rounds of the batched redistribution (max over clusters).
    pub routing_rounds: u64,
    /// `O(log n)`-bit words moved by the heaviest cluster's batched
    /// redistribution — the unit the §3 load argument counts in (each
    /// query moves `O(deg(v))` words per vertex).
    pub routing_words: u64,
    /// Measured engine traffic of the intra-cluster enumeration runs
    /// (parallel fold over clusters).
    pub engine: RunReport,
}

impl LevelReport {
    /// Total rounds charged to this level (analytic + measured).
    pub fn rounds(&self) -> u64 {
        self.decomposition_rounds
            + self.routing_build_rounds
            + self.routing_rounds
            + self.engine.rounds as u64
    }
}

/// Result of the full pipeline.
#[derive(Debug, Clone)]
pub struct TriangleReport {
    /// All triangles, sorted and deduplicated.
    pub triangles: Vec<Triangle>,
    /// A deterministic sample of at most `witness_cap` triangles, spread
    /// evenly across the sorted list.
    pub witnesses: Vec<Triangle>,
    /// Per-level breakdown.
    pub levels: Vec<LevelReport>,
    /// Engine-measured traffic attributed to pipeline phases
    /// (`"enumerate"` is the only engine-driven phase today; the hooks
    /// accept more as phases move onto the engine), plus measured
    /// host wall-clock per phase (`decompose` / `clusters` / `merge`).
    pub phases: PhaseLedger,
    /// What the cluster-recursion scheduler did: per-level job counts,
    /// steal/imbalance statistics, wall-clock per phase, and
    /// scratch-arena reuse counters. Machine-/policy-dependent — not part
    /// of the determinism contract.
    pub recursion: RecursionReport,
    /// The depth/φ schedule the recursion was configured from.
    pub schedule: DecompositionParams,
    /// Rounds charged for the residual brute force (0 unless `max_depth`
    /// was exhausted with edges left).
    pub residual_rounds: u64,
    /// Vertices of the input graph.
    pub n: usize,
    /// Edges of the input graph.
    pub m: usize,
}

impl TriangleReport {
    /// Number of triangles found.
    pub fn count(&self) -> u64 {
        self.triangles.len() as u64
    }

    /// Total rounds across all levels plus the residual charge.
    pub fn total_rounds(&self) -> u64 {
        self.levels.iter().map(LevelReport::rounds).sum::<u64>() + self.residual_rounds
    }

    /// The heaviest batched-routing instance across all levels — the
    /// quantity Theorem 2 bounds by `Õ(n^{1/3})`.
    pub fn max_routing_queries(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.routing_queries)
            .max()
            .unwrap_or(0)
    }

    /// The heaviest batched-routing instance across all levels measured
    /// in `O(log n)`-bit **words** — the unit the §3 load argument
    /// actually counts (each query moves `O(deg(v))` words per vertex,
    /// and [`routing::BatchOutcome`] derives its query count from this).
    pub fn max_routing_words(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.routing_words)
            .max()
            .unwrap_or(0)
    }

    /// Engine-measured words of the adjacency-exchange phase (summed
    /// over clusters and levels) — what the packed wire format
    /// optimizes; compare against
    /// [`TriangleReport::exchange_messages`] × the word size to see the
    /// packing factor.
    pub fn exchange_words(&self) -> u64 {
        self.phases.phase("enumerate").words as u64
    }

    /// Engine-measured messages of the adjacency-exchange phase.
    pub fn exchange_messages(&self) -> u64 {
        self.phases.phase("enumerate").messages as u64
    }

    /// The paper's per-cluster query budget `n^{1/3}·log² n` (the polylog
    /// is the practical stand-in for the Õ(·) factors; the `exp_*`
    /// experiments compare measured queries against this curve).
    ///
    /// # Examples
    ///
    /// ```
    /// use triangle::pipeline::{enumerate_via_decomposition, PipelineParams};
    ///
    /// let g = graph::gen::gnp(64, 0.3, 7).unwrap();
    /// let report = enumerate_via_decomposition(&g, &PipelineParams::default());
    /// // 64^{1/3}·log²64 = 4·36
    /// assert!((report.paper_query_budget() - 144.0).abs() < 1e-9);
    /// // The word form scales the curve by the average degree (≥ 1).
    /// assert!(report.paper_word_budget() >= report.paper_query_budget());
    /// ```
    pub fn paper_query_budget(&self) -> f64 {
        let n = self.n.max(2) as f64;
        n.powf(1.0 / 3.0) * n.log2() * n.log2()
    }

    /// The query budget converted to the model's word unit: each routing
    /// query moves `O(deg(v))` words per vertex (§3), so the aggregate
    /// stand-in charges the average degree `2m/n` words per query. This
    /// is the budget [`TriangleReport::max_routing_words`] is audited
    /// against — the charge is in words, not messages, because a packed
    /// message can carry several words.
    pub fn paper_word_budget(&self) -> f64 {
        let avg_deg = 2.0 * self.m as f64 / self.n.max(1) as f64;
        self.paper_query_budget() * avg_deg.max(1.0)
    }

    /// Whether every level's measured queries stayed within
    /// `slack × paper_query_budget()`.
    pub fn within_paper_budget(&self, slack: f64) -> bool {
        self.max_routing_queries() as f64 <= slack * self.paper_query_budget()
    }

    /// Whether every level's measured routing **words** stayed within
    /// `slack × paper_word_budget()`.
    pub fn within_word_budget(&self, slack: f64) -> bool {
        self.max_routing_words() as f64 <= slack * self.paper_word_budget()
    }
}

/// Runs the full paper algorithm on `g`: decomposition, per-cluster
/// routing + engine-driven enumeration, recursion on the removed edges.
///
/// # Example
///
/// ```
/// use triangle::pipeline::{enumerate_via_decomposition, PipelineParams};
///
/// let g = graph::gen::gnp(40, 0.3, 7).unwrap();
/// let report = enumerate_via_decomposition(&g, &PipelineParams::default());
/// assert_eq!(report.count(), triangle::count_triangles(&g));
/// assert!(report.total_rounds() > 0);
/// ```
pub fn enumerate_via_decomposition(g: &Graph, params: &PipelineParams) -> TriangleReport {
    let n = g.n();
    let eps = params.epsilon.clamp(1e-3, 1.0 / 6.0);
    // The depth/φ schedule: DecompositionParams carries the per-level φ
    // ladder; |E*| ≤ ε·|E| per level bounds the useful recursion depth at
    // log_{1/ε}(m) + 1, capped by the configured max_depth.
    let schedule = DecompositionParams::new(eps, params.decomposition_k.max(1), n, params.mode);
    let depth_cap = if g.m() == 0 {
        0
    } else {
        let by_shrink = ((g.m() as f64).ln() / (1.0 / eps).ln()).ceil() as usize + 1;
        by_shrink.min(params.max_depth)
    };

    let mut run = PipelineRun::new(params, n);
    let mut current = g.clone();
    for depth in 0..depth_cap {
        if current.m() == 0 || n < 3 {
            break;
        }
        let level_seed = derive_seed(params.seed, depth as u64);
        let decompose_start = Instant::now();
        let decomp = ExpanderDecomposition::builder()
            .epsilon(eps)
            .k(params.decomposition_k.max(1))
            .mode(params.mode)
            .seed(level_seed)
            .build()
            .run(&current)
            .expect("level graph is non-empty");
        let assignment = decomp.cluster_assignment_with(&current, &run.policy);
        let wall_decompose = decompose_start.elapsed();
        current = run.run_level(
            &current,
            &assignment,
            LevelInput {
                depth,
                level_seed,
                decomposition_rounds: decomp.ledger.total(),
                phi: decomp.phi,
                wall_decompose,
            },
        );
    }
    run.finish(g, current, schedule)
}

/// Runs a **single recursion level** of the pipeline on a caller-supplied
/// [`expander::ClusterAssignment`] — planted blocks, an oracle, or a cached
/// decomposition — then brute-forces the inter-cluster remainder with the
/// honest `O(m + n)` residual charge.
///
/// This is the scale tier's entry point: on million-edge instances whose
/// ground-truth clusters are known (ring of expanders, planted
/// partitions), it exercises the whole cluster machinery — scheduler
/// fan-out, per-cluster routing, engine-driven enumeration, deterministic
/// merge — without paying for the measured Theorem 1 decomposition, which
/// dominates at that size. Output remains exactly the triangle set of `g`
/// for **any** covering partition; the assignment's quality only shifts
/// work between the cluster phase and the residual.
///
/// # Examples
///
/// Planted blocks stand in for a cached decomposition; completeness
/// holds for any covering partition:
///
/// ```
/// use expander::{ClusterAssignment, SchedulerPolicy};
/// use triangle::pipeline::{enumerate_with_assignment, PipelineParams};
///
/// let pp = graph::gen::planted_partition(&[12, 12], 0.6, 0.1, 5).unwrap();
/// let assignment = ClusterAssignment::from_parts(
///     &pp.graph, &pp.blocks, 0.1, &SchedulerPolicy::sequential());
/// let report = enumerate_with_assignment(&pp.graph, &assignment, &PipelineParams::default());
/// assert_eq!(report.count(), triangle::count_triangles(&pp.graph));
/// ```
///
/// # Panics
///
/// Panics if `assignment` was built for a different vertex count.
pub fn enumerate_with_assignment(
    g: &Graph,
    assignment: &expander::ClusterAssignment,
    params: &PipelineParams,
) -> TriangleReport {
    assert_eq!(
        assignment.n,
        g.n(),
        "assignment/graph vertex-count mismatch"
    );
    let n = g.n();
    let eps = params.epsilon.clamp(1e-3, 1.0 / 6.0);
    let schedule = DecompositionParams::new(eps, params.decomposition_k.max(1), n, params.mode);
    let mut run = PipelineRun::new(params, n);
    let current = if g.m() > 0 && n >= 3 {
        run.run_level(
            g,
            assignment,
            LevelInput {
                depth: 0,
                level_seed: derive_seed(params.seed, 0),
                decomposition_rounds: 0,
                phi: assignment.phi,
                wall_decompose: std::time::Duration::ZERO,
            },
        )
    } else {
        g.clone()
    };
    run.finish(g, current, schedule)
}

/// Per-level inputs of [`PipelineRun::run_level`] that differ between the
/// decomposing loop and the planted-assignment entry point.
struct LevelInput {
    depth: usize,
    level_seed: u64,
    decomposition_rounds: u64,
    phi: f64,
    wall_decompose: std::time::Duration,
}

/// Mutable state threaded through the pipeline's levels: the scheduler
/// policy, the scratch arenas, and the accumulating report parts.
struct PipelineRun<'p> {
    params: &'p PipelineParams,
    policy: SchedulerPolicy,
    scratch: ScratchPool<ClusterScratch>,
    triangle_buffers: ScratchPool<Vec<Triangle>>,
    recursion: RecursionReport,
    triangles: Vec<Triangle>,
    levels: Vec<LevelReport>,
    phases: PhaseLedger,
    n: usize,
}

impl<'p> PipelineRun<'p> {
    fn new(params: &'p PipelineParams, n: usize) -> Self {
        PipelineRun {
            policy: params.scheduler_policy(),
            params,
            scratch: ScratchPool::new(),
            triangle_buffers: ScratchPool::new(),
            recursion: RecursionReport::default(),
            triangles: Vec::new(),
            levels: Vec::new(),
            phases: PhaseLedger::new(),
            n,
        }
    }

    /// Executes one level's cluster batch on `current` under
    /// `assignment`, records the level, and returns the inter-cluster
    /// remainder graph (the next level's input).
    fn run_level(
        &mut self,
        current: &Graph,
        assignment: &expander::ClusterAssignment,
        input: LevelInput,
    ) -> Graph {
        // The kept (intra-cluster) edge structure is a tombstone overlay
        // over the level graph, not a rebuilt CSR: removal of the
        // inter-cluster edges is O(|E*|·log Δ), and every cluster job
        // extracts its induced subgraph by reading through the overlay.
        let kept = {
            let mut overlay = WorkingGraph::new(current);
            overlay.remove_edges(assignment.inter_cluster_edges(), false);
            overlay
        };
        let mut level = LevelReport {
            depth: input.depth,
            m: current.m(),
            clusters: 0,
            phi: input.phi,
            triangles_found: 0,
            decomposition_rounds: input.decomposition_rounds,
            routing_build_rounds: 0,
            routing_queries: 0,
            routing_rounds: 0,
            routing_words: 0,
            engine: RunReport::default(),
        };
        let before = self.triangles.len();

        // The per-level cluster list becomes one scheduler batch: each
        // non-trivial cluster is a pure Subgraph job seeded from
        // (level_seed, cluster_id) and run on work-stealing worker
        // tasks. Results come back in cluster-id order, so the merge
        // below is exactly the old sequential loop.
        let jobs: Vec<(usize, &VertexSet)> = assignment
            .clusters
            .iter()
            .enumerate()
            .filter(|(id, part)| assignment.certificates[*id].internal_edges > 0 && part.len() >= 2)
            .collect();
        let params = self.params;
        let (cluster_runs, stats) = run_jobs(jobs, &self.policy, |_, (id, part)| {
            let cluster_seed = derive_seed(input.level_seed, id as u64);
            run_cluster(
                current,
                &kept,
                part,
                params,
                cluster_seed,
                &self.scratch,
                &self.triangle_buffers,
            )
        });

        let merge_start = Instant::now();
        let mut engine_reports: Vec<RunReport> = Vec::with_capacity(cluster_runs.len());
        for mut cluster in cluster_runs {
            level.clusters += 1;
            level.routing_build_rounds = level.routing_build_rounds.max(cluster.build_rounds);
            level.routing_queries = level.routing_queries.max(cluster.queries);
            level.routing_rounds = level.routing_rounds.max(cluster.routing_rounds);
            level.routing_words = level.routing_words.max(cluster.routing_words);
            // Split of the opaque `clusters` wall (summed worker time) and
            // the ledger's closed-form accounting guard counters.
            self.phases.record_wall("clusters.dlp", cluster.wall_dlp);
            self.phases
                .record_wall("clusters.exchange", cluster.wall_exchange);
            self.phases.record_wall("clusters.join", cluster.wall_join);
            self.phases
                .record_ops("dlp_accounting", cluster.accounting_ops);
            self.phases
                .record_ops("dlp_accounting_budget", cluster.accounting_budget);
            engine_reports.push(cluster.engine);
            self.triangles.append(&mut cluster.triangles);
            self.triangle_buffers.put(cluster.triangles);
        }
        level.engine = engine_reports
            .iter()
            .fold(RunReport::default(), |acc, r| acc.parallel_with(r));
        self.phases.record_parallel("enumerate", engine_reports);
        self.triangles.sort_unstable();
        self.triangles.dedup();
        level.triangles_found = self
            .triangles
            .len()
            .saturating_sub(before.min(self.triangles.len()));
        self.levels.push(level);

        let mut exec = LevelExecution::from_stats(input.depth, &stats);
        exec.wall_decompose = input.wall_decompose;
        exec.wall_merge = merge_start.elapsed();
        self.phases.record_wall("decompose", exec.wall_decompose);
        self.phases.record_wall("clusters", exec.wall_clusters);
        self.phases.record_wall("merge", exec.wall_merge);
        self.recursion.levels.push(exec);

        // Recurse on E*.
        Graph::from_edges(self.n, assignment.inter_cluster_edges()).expect("ids in range")
    }

    /// Residual brute force + witness sampling + report assembly.
    fn finish(
        mut self,
        g: &Graph,
        residual: Graph,
        schedule: DecompositionParams,
    ) -> TriangleReport {
        self.recursion.scratch_hits = self.scratch.hits() + self.triangle_buffers.hits();
        self.recursion.scratch_misses = self.scratch.misses() + self.triangle_buffers.misses();

        // Residual brute force: only reached when the depth schedule was
        // exhausted with edges left; charged O(m + n).
        let mut residual_rounds = 0u64;
        if residual.m() > 0 && self.n >= 3 {
            self.triangles
                .extend(crate::count::enumerate_triangles(&residual));
            self.triangles.sort_unstable();
            self.triangles.dedup();
            residual_rounds = (residual.m() + self.n) as u64;
        }

        let witnesses = sample_witnesses(&self.triangles, self.params.witness_cap);
        TriangleReport {
            witnesses,
            triangles: self.triangles,
            levels: self.levels,
            phases: self.phases,
            recursion: self.recursion,
            schedule,
            residual_rounds,
            n: self.n,
            m: g.m(),
        }
    }
}

/// Deterministic, evenly spread sample of at most `cap` triangles.
fn sample_witnesses(triangles: &[Triangle], cap: usize) -> Vec<Triangle> {
    if cap == 0 || triangles.is_empty() {
        return Vec::new();
    }
    let take = cap.min(triangles.len());
    (0..take)
        .map(|i| triangles[i * triangles.len() / take])
        .collect()
}

/// What one cluster contributes to a level.
struct ClusterRun {
    /// Backed by a [`ScratchPool`] buffer; the level merge drains it and
    /// returns it to the pool.
    triangles: Vec<Triangle>,
    build_rounds: u64,
    queries: u64,
    routing_words: u64,
    routing_rounds: u64,
    /// DLP accounting operations performed / budgeted (ledger guard).
    accounting_ops: u64,
    accounting_budget: u64,
    /// Per-phase walls inside the cluster job, so the level can split the
    /// scheduler's opaque `clusters` wall into DLP accounting vs exchange
    /// vs join (summed worker time, not elapsed wall in parallel mode).
    wall_dlp: Duration,
    wall_exchange: Duration,
    wall_join: Duration,
    engine: RunReport,
}

/// Reusable per-job arenas: a job clears what it uses (keeping the
/// capacities) instead of reallocating, and the adjacency buffers are
/// reclaimed from the finished engine run for the next job.
#[derive(Debug, Default)]
struct ClusterScratch {
    /// Spare neighbor-list buffers for the member adjacency snapshot.
    adj: Vec<Vec<VertexId>>,
    /// Closed-form DLP accounting scratch: raw pair-bucket sizes and
    /// per-holder incident-entry counts ([`dlp::DlpInstance`]).
    pair_raw: Vec<u64>,
    holder_inc: Vec<u64>,
}

/// Snapshots the full-graph adjacency of every member: one sorted,
/// deduplicated neighbor row per member, in member order. This is the
/// "local knowledge" CONGEST grants each vertex, and the **only** graph
/// state the build phase hands to query-time consumers — both
/// [`run_cluster`]'s adjacency exchange and the frozen per-cluster
/// artifacts of [`crate::service::QueryEngine`] are built from these rows,
/// which is what makes their answers bit-identical. Buffers are reused
/// from (and should be returned to) `spare`, the [`ScratchPool`] arena
/// convention.
pub(crate) fn snapshot_member_adjacency(
    g: &Graph,
    members: &[VertexId],
    spare: &mut Vec<Vec<VertexId>>,
) -> Vec<Vec<VertexId>> {
    members
        .iter()
        .map(|&v| {
            let mut a = spare.pop().unwrap_or_default();
            a.clear();
            a.extend_from_slice(g.neighbors(v));
            a.dedup(); // neighbors() is sorted; drop parallel edges
            a
        })
        .collect()
}

/// Runs one cluster: routing redistribution accounting + the engine-driven
/// adjacency exchange + the local joins. Pure per
/// `(inputs, cluster_seed)` — the scheduler's determinism contract.
fn run_cluster(
    current: &Graph,
    kept: &WorkingGraph,
    part: &VertexSet,
    params: &PipelineParams,
    cluster_seed: u64,
    scratch_pool: &ScratchPool<ClusterScratch>,
    triangle_buffers: &ScratchPool<Vec<Triangle>>,
) -> ClusterRun {
    let mut scratch = scratch_pool.acquire();
    let sub = Subgraph::induced(kept, part);
    let members: Vec<VertexId> = sub.parent_ids().to_vec();
    let local_n = members.len();

    // Full-graph (current level) adjacency of every member, sorted and
    // deduplicated — the per-vertex local knowledge CONGEST grants. The
    // buffers come from (and return to) the scratch arena.
    let full_adj: Arc<Vec<Vec<VertexId>>> = Arc::new(snapshot_member_adjacency(
        current,
        &members,
        &mut scratch.adj,
    ));

    let dbg_scale = std::env::var_os("PIPELINE_PHASE_DEBUG").is_some() && local_n > 10_000;
    let t_route = Instant::now();
    // ── Phase: route — closed-form redistribution accounting of the
    // cluster-incident edge slices to the DLP triple owners, charged via
    // route_edge_loads. ──
    let charges = route_cluster_slices(
        current,
        part,
        &sub,
        &members,
        params,
        cluster_seed,
        &mut scratch,
    );
    let wall_dlp = t_route.elapsed();
    if dbg_scale {
        eprintln!("    cluster n={local_n}: route {wall_dlp:.2?}");
    }
    let t_engine = Instant::now();

    // ── Phase: enumerate — the bandwidth-packed adjacency exchange on
    // the round engine (DESIGN.md §10). Each vertex consumes streams only
    // from its higher-local-id cluster neighbors — the only senders it
    // will ever join against — and merges each decoded stream against its
    // own adjacency *incrementally*, so per sender it stores just the
    // intersection (the triangle third-vertices) plus O(1) codec state,
    // never the sender's whole list. (A naive per-sender table would be
    // O(|cluster|) Vec headers per vertex, i.e. O(|cluster|²) memory:
    // invisible on the planted families' small blocks, gigabytes on the
    // giant expander-core cluster the measured decomposition keeps
    // whole.)
    let higher: Arc<Vec<Vec<VertexId>>> = Arc::new(
        (0..local_n)
            .map(|u| {
                let mut hs: Vec<VertexId> = sub
                    .graph()
                    .neighbors(u as VertexId)
                    .iter()
                    .copied()
                    .filter(|&w| (w as usize) > u)
                    .collect();
                hs.dedup(); // sorted rows: parallel edges collapse
                hs
            })
            .collect(),
    );
    let max_items = full_adj.iter().map(Vec::len).max().unwrap_or(0);
    let network = Network::new(sub.graph()).with_exec_mode(params.exec);
    // The per-round packing budget: the link's whole O(log n)-bit budget,
    // in bytes. Unpacked mode keeps the same wire format but caps every
    // message at one id, reproducing the one-id-per-round baseline.
    let budget_bytes = packed::round_budget_bytes(network.bandwidth_bits());
    let max_ids = params.packing.max_ids_per_message();
    let adj_for_make = Arc::clone(&full_adj);
    let higher_for_make = Arc::clone(&higher);
    let make = move |v: VertexId| {
        AdjacencyExchange::new(
            v,
            Arc::clone(&adj_for_make),
            Arc::clone(&higher_for_make),
            budget_bytes,
            max_ids,
        )
    };
    let (engine, programs) = network
        .run_collect(make, max_items + 2)
        .expect("adjacency exchange is a valid CONGEST program");
    let wall_exchange = t_engine.elapsed();
    if dbg_scale {
        eprintln!(
            "    cluster n={local_n}: engine {wall_exchange:.2?} ({} rounds, {} msgs)",
            engine.rounds, engine.messages
        );
    }
    let t_join = Instant::now();

    // Local joins: for every intra-cluster edge {u, v} (lower local id
    // owns it), the program already merged N(v)'s stream against N(u) —
    // read off the intersections and name the triangles.
    let mut triangles = triangle_buffers.take();
    triangles.clear();
    for (u_local, prog) in programs.iter().enumerate() {
        let u_global = members[u_local];
        let mut prev = None;
        for &v_local in sub.graph().neighbors(u_local as VertexId) {
            if (v_local as usize) <= u_local || prev == Some(v_local) {
                continue; // lower endpoint owns the edge; skip parallels
            }
            prev = Some(v_local);
            let v_global = members[v_local as usize];
            for &w in prog.matches_for(v_local) {
                if w != u_global && w != v_global {
                    triangles.push(Triangle::new(u_global, v_global, w));
                }
            }
        }
    }
    triangles.sort_unstable();
    triangles.dedup();
    let wall_join = t_join.elapsed();
    if dbg_scale {
        eprintln!("    cluster n={local_n}: join {wall_join:.2?}");
    }

    // The programs held the only other Arc clones; reclaim the adjacency
    // buffers into the arena for the next job.
    drop(programs);
    if let Ok(adj) = Arc::try_unwrap(full_adj) {
        scratch.adj.extend(adj);
    }

    ClusterRun {
        triangles,
        build_rounds: charges.build_rounds,
        queries: charges.queries,
        routing_words: charges.words,
        routing_rounds: charges.rounds,
        accounting_ops: charges.ops,
        accounting_budget: charges.ops_budget,
        wall_dlp,
        wall_exchange,
        wall_join,
        engine,
    }
}

/// What the DLP redistribution phase charged for one cluster.
#[derive(Debug, Default, Clone, Copy)]
struct RouteCharges {
    build_rounds: u64,
    queries: u64,
    words: u64,
    rounds: u64,
    /// Closed-form accounting operations actually performed, plus the
    /// `O(g² + Σ|bucket| + |Vᵢ|)` budget they must stay under — both land
    /// in the [`PhaseLedger`] so a regression back to triple enumeration
    /// trips the ledger guard.
    ops: u64,
    ops_budget: u64,
}

/// Charges the DLP redistribution for one cluster in **closed form**
/// ([`dlp::DlpInstance`], DESIGN.md §11) and routes the resulting
/// aggregate per-vertex loads through the cluster's GKS hierarchy.
///
/// The aggregate loads summarize exactly the per-(holder, owner)
/// [`routing::EdgeBatch`] list the seed implementation materialized by
/// enumerating all `C(g+2, 3)` group triples —
/// `tests/dlp_equivalence.rs` pins the two bit-for-bit — but are
/// computed in `O(g² + Σ|bucket| + |Vᵢ|)` instead of
/// `O(C(g+2, 3) · avg bucket)`.
fn route_cluster_slices(
    current: &Graph,
    part: &VertexSet,
    sub: &Subgraph,
    members: &[VertexId],
    params: &PipelineParams,
    cluster_seed: u64,
    scratch: &mut ClusterScratch,
) -> RouteCharges {
    let hierarchy = match RoutingHierarchy::build(
        sub.graph(),
        params.routing_depth.max(1),
        derive_seed(cluster_seed, 1),
    ) {
        Ok(h) => h,
        // Degenerate cluster (cannot happen when internal_edges > 0):
        // nothing is redistributed, so nothing is charged.
        Err(_) => return RouteCharges::default(),
    };

    // The cluster-side endpoint (lower one for intra edges) holds each
    // incident edge slice, recorded by its local id (`part.iter()` is
    // sorted, so the member-list index IS the local id).
    let instance = dlp::DlpInstance::new(current, part, members, derive_seed(cluster_seed, 2));
    let loads = instance.aggregate_loads(
        dlp::PairWeighting::DedupPairs,
        &mut scratch.pair_raw,
        &mut scratch.holder_inc,
    );
    let outcome = hierarchy
        .route_edge_loads(sub.graph(), &loads.holders, &loads.owners)
        .expect("load endpoints are cluster-local");
    RouteCharges {
        build_rounds: hierarchy.preprocessing_rounds(),
        queries: outcome.queries,
        words: outcome.words,
        rounds: outcome.rounds,
        ops: loads.ops,
        ops_budget: loads.ops_budget,
    }
}

/// The intra-cluster exchange program, **bandwidth-packed** (DESIGN.md
/// §10): each vertex streams its sorted full-graph adjacency as
/// delta-varint runs, greedily packed so every round's broadcast fills
/// the `O(log n)`-bit budget, to all cluster neighbors. Receivers with a
/// lower local id decode each higher neighbor's stream *incrementally*
/// and merge it against their own sorted adjacency on the fly, keeping
/// only the intersection — the triangle third-vertices the join needs —
/// plus `O(1)` codec state per sender.
///
/// Rounds = `⌈max full-graph degree in the cluster / ids-per-message⌉`
/// (was: `max degree`, one id per round). With [`Packing::Unpacked`] the
/// encoder caps every message at one id, reproducing the old behavior
/// for ablations.
struct AdjacencyExchange {
    me: usize,
    /// Shared per-vertex full-graph adjacency, indexed by local id.
    adj: Arc<Vec<Vec<VertexId>>>,
    /// Sender-side stream cursor over `adj[me]`.
    enc: IdStreamEncoder,
    /// Per-round packing budget in bytes (the link bandwidth).
    budget_bytes: usize,
    /// Ids-per-message cap (1 = unpacked ablation).
    max_ids: usize,
    /// Shared per-vertex sorted higher-local-id cluster neighbor lists:
    /// `higher[me]` names the only senders this vertex consumes.
    higher: Arc<Vec<Vec<VertexId>>>,
    /// Per-sender decode state, parallel to `higher[me]`.
    decoders: Vec<IdStreamDecoder>,
    /// Per-sender merge cursor into `adj[me]`, parallel to `higher[me]`.
    cursors: Vec<u32>,
    /// Per-sender intersection `N(me) ∩ N(sender)` accumulated so far,
    /// parallel to `higher[me]`.
    matches: Vec<Vec<VertexId>>,
}

impl AdjacencyExchange {
    fn new(
        me: VertexId,
        adj: Arc<Vec<Vec<VertexId>>>,
        higher: Arc<Vec<Vec<VertexId>>>,
        budget_bytes: usize,
        max_ids: usize,
    ) -> Self {
        let slots = higher[me as usize].len();
        AdjacencyExchange {
            me: me as usize,
            adj,
            enc: IdStreamEncoder::new(),
            budget_bytes,
            max_ids,
            higher,
            decoders: vec![IdStreamDecoder::new(); slots],
            cursors: vec![0; slots],
            matches: vec![Vec::new(); slots],
        }
    }

    /// The intersection of this vertex's adjacency with the stream
    /// collected from `sender`, or empty if `sender` is not a higher-id
    /// cluster neighbor. Sorted ascending (streams are).
    fn matches_for(&self, sender: VertexId) -> &[VertexId] {
        match self.higher[self.me].binary_search(&sender) {
            Ok(i) => &self.matches[i],
            Err(_) => &[],
        }
    }

    fn stream_next(&mut self, ctx: &mut Ctx<'_, PackedIds>) {
        if let Some(msg) =
            self.enc
                .next_message(&self.adj[self.me], self.budget_bytes, self.max_ids)
        {
            ctx.broadcast(msg);
        }
    }
}

impl VertexProgram for AdjacencyExchange {
    type Msg = PackedIds;

    fn init(&mut self, ctx: &mut Ctx<'_, PackedIds>) {
        self.stream_next(ctx);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, PackedIds>, inbox: &[(VertexId, PackedIds)]) {
        // The inbox arrives sorted by sender and `higher[me]` is sorted,
        // so one monotone merge-walk resolves every sender's slot — no
        // per-message binary search. Each decoded id advances the
        // per-sender cursor through our own sorted list; equal ids are
        // the join's third vertices.
        let own = &self.adj[self.me][..];
        let higher = &self.higher[self.me];
        let mut hi = 0usize;
        for (sender, msg) in inbox {
            let sender = *sender;
            if (sender as usize) <= self.me {
                continue;
            }
            while higher[hi] < sender {
                hi += 1;
            }
            debug_assert_eq!(higher[hi], sender, "senders are cluster neighbors");
            let cur = &mut self.cursors[hi];
            let out = &mut self.matches[hi];
            self.decoders[hi]
                .decode_each(msg, |x| {
                    while (*cur as usize) < own.len() && own[*cur as usize] < x {
                        *cur += 1;
                    }
                    if (*cur as usize) < own.len() && own[*cur as usize] == x {
                        out.push(x);
                        *cur += 1; // both streams strictly increase
                    }
                })
                .expect("peers encode well-formed packed streams");
        }
        self.stream_next(ctx);
    }

    fn halted(&self) -> bool {
        self.enc.finished(&self.adj[self.me])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::enumerate_triangles;
    use graph::gen;

    fn assert_complete(g: &Graph, params: &PipelineParams) -> TriangleReport {
        let report = enumerate_via_decomposition(g, params);
        let want = enumerate_triangles(g);
        assert_eq!(
            report.triangles,
            want,
            "n = {}, m = {}: pipeline incomplete",
            g.n(),
            g.m()
        );
        report
    }

    #[test]
    fn complete_on_random_graphs() {
        for seed in 0..3 {
            let g = gen::gnp(40, 0.25, seed).unwrap();
            assert_complete(&g, &PipelineParams::default());
        }
    }

    #[test]
    fn complete_on_cluster_graphs() {
        let (g, _) = gen::ring_of_cliques(5, 6).unwrap();
        assert_complete(&g, &PipelineParams::default());
        let pp = gen::planted_partition(&[20, 20], 0.5, 0.08, 7).unwrap();
        assert_complete(&pp.graph, &PipelineParams::default());
    }

    #[test]
    fn complete_when_decomposition_removes_everything() {
        // Paths, stars and matchings decompose into singletons — every
        // edge lands in E* and recursion/residual must still finish.
        for g in [
            gen::path(10).unwrap(),
            gen::star(8).unwrap(),
            Graph::from_edges(8, [(0, 1), (2, 3), (4, 5), (6, 7)]).unwrap(),
        ] {
            assert_complete(&g, &PipelineParams::default());
        }
    }

    #[test]
    fn sequential_and_parallel_exec_agree() {
        let g = gen::gnp(36, 0.3, 9).unwrap();
        let par = enumerate_via_decomposition(
            &g,
            &PipelineParams {
                exec: ExecMode::Parallel,
                ..Default::default()
            },
        );
        let seq = enumerate_via_decomposition(
            &g,
            &PipelineParams {
                exec: ExecMode::Sequential,
                ..Default::default()
            },
        );
        assert_eq!(par.triangles, seq.triangles);
        assert_eq!(par.total_rounds(), seq.total_rounds());
        assert_eq!(par.phases.phase("enumerate"), seq.phases.phase("enumerate"));
    }

    #[test]
    fn recursion_scheduler_modes_agree_bit_for_bit() {
        let (g, _) = gen::ring_of_cliques(6, 6).unwrap();
        let seq = enumerate_via_decomposition(
            &g,
            &PipelineParams {
                recursion_exec: ExecMode::Sequential,
                ..Default::default()
            },
        );
        let par = enumerate_via_decomposition(
            &g,
            &PipelineParams {
                recursion_exec: ExecMode::Parallel,
                recursion_workers: 4,
                ..Default::default()
            },
        );
        assert_eq!(seq.triangles, par.triangles);
        assert_eq!(seq.witnesses, par.witnesses);
        assert_eq!(seq.total_rounds(), par.total_rounds());
        for (a, b) in seq.levels.iter().zip(&par.levels) {
            assert_eq!(a.routing_queries, b.routing_queries);
            assert_eq!(a.engine, b.engine);
            assert_eq!(a.clusters, b.clusters);
        }
        // The scheduler's own record differs only in execution shape.
        assert_eq!(seq.recursion.total_jobs(), par.recursion.total_jobs());
        assert!(seq.recursion.total_steals() == 0);
        assert!(par
            .recursion
            .levels
            .iter()
            .all(|l| l.workers >= 1 && l.max_jobs_per_worker >= l.min_jobs_per_worker));
    }

    #[test]
    fn recursion_report_tracks_jobs_and_scratch() {
        let (g, _) = gen::ring_of_cliques(5, 6).unwrap();
        let report = assert_complete(&g, &PipelineParams::default());
        assert_eq!(
            report.recursion.total_jobs(),
            report.levels.iter().map(|l| l.clusters).sum::<usize>()
        );
        assert_eq!(report.recursion.levels.len(), report.levels.len());
        assert!(
            report.recursion.scratch_hits + report.recursion.scratch_misses
                >= 2 * report.recursion.total_jobs(),
            "every job draws an arena and a triangle buffer"
        );
        // Multi-level runs must actually reuse arenas.
        if report.levels.len() > 1 && report.levels.iter().all(|l| l.clusters > 0) {
            assert!(report.recursion.scratch_hits > 0, "no arena was reused");
        }
        assert!(report.recursion.max_imbalance() >= 1.0);
        // Wall-clock attribution reaches the phase ledger.
        assert!(report.phases.wall("decompose") > std::time::Duration::ZERO);
    }

    #[test]
    fn planted_assignment_is_complete_and_mode_independent() {
        use expander::{ClusterAssignment, SchedulerPolicy};
        let (g, blocks) = gen::ring_of_expanders(5, 16, 4, 9).unwrap();
        let asg = ClusterAssignment::from_parts(&g, &blocks, 0.2, &SchedulerPolicy::sequential());
        let want = enumerate_triangles(&g);
        let seq = enumerate_with_assignment(
            &g,
            &asg,
            &PipelineParams {
                recursion_exec: ExecMode::Sequential,
                exec: ExecMode::Sequential,
                ..Default::default()
            },
        );
        let par = enumerate_with_assignment(
            &g,
            &asg,
            &PipelineParams {
                recursion_workers: 4,
                ..Default::default()
            },
        );
        assert_eq!(seq.triangles, want);
        assert_eq!(par.triangles, want);
        assert_eq!(seq.witnesses, par.witnesses);
        assert_eq!(seq.total_rounds(), par.total_rounds());
        assert_eq!(seq.levels.len(), 1, "planted entry runs a single level");
        assert_eq!(seq.levels[0].clusters, 5);
        assert_eq!(seq.levels[0].decomposition_rounds, 0);
        // The ring bridges land in the residual.
        assert_eq!(seq.residual_rounds, (5 + g.n()) as u64);
        // A deliberately bad partition is still complete — quality only
        // shifts work into the residual.
        let halves = [
            graph::VertexSet::from_fn(g.n(), |v| (v as usize) < g.n() / 2),
            graph::VertexSet::from_fn(g.n(), |v| (v as usize) >= g.n() / 2),
        ];
        let bad = ClusterAssignment::from_parts(&g, &halves, 0.01, &SchedulerPolicy::sequential());
        let report = enumerate_with_assignment(&g, &bad, &PipelineParams::default());
        assert_eq!(report.triangles, want);
    }

    #[test]
    fn engine_traffic_is_measured() {
        let (g, _) = gen::ring_of_cliques(4, 6).unwrap();
        let report = assert_complete(&g, &PipelineParams::default());
        let enumerate = report.phases.phase("enumerate");
        assert!(enumerate.rounds > 0, "engine rounds must be measured");
        assert!(enumerate.messages > 0);
        assert!(report.levels[0].engine.rounds > 0);
        // The engine phase is part of the total.
        assert!(report.total_rounds() >= enumerate.rounds as u64);
    }

    #[test]
    fn witnesses_are_a_sample_of_the_listing() {
        let g = gen::complete(12).unwrap();
        let report = assert_complete(&g, &PipelineParams::default());
        assert_eq!(report.witnesses.len(), 16.min(report.triangles.len()));
        for w in &report.witnesses {
            assert!(report.triangles.binary_search(w).is_ok());
        }
        let none = enumerate_via_decomposition(
            &g,
            &PipelineParams {
                witness_cap: 0,
                ..Default::default()
            },
        );
        assert!(none.witnesses.is_empty());
    }

    #[test]
    fn levels_shrink_and_budget_holds() {
        let g = gen::gnp(50, 0.3, 11).unwrap();
        let report = assert_complete(&g, &PipelineParams::default());
        for pair in report.levels.windows(2) {
            assert!(
                pair[1].m <= pair[0].m / 2,
                "E* must shrink: {} -> {}",
                pair[0].m,
                pair[1].m
            );
        }
        assert!(
            report.within_paper_budget(8.0),
            "queries {} vs budget {}",
            report.max_routing_queries(),
            report.paper_query_budget()
        );
    }

    #[test]
    fn triangle_free_graphs_report_nothing() {
        for g in [gen::cycle(12).unwrap(), gen::grid(5, 5).unwrap()] {
            let report = enumerate_via_decomposition(&g, &PipelineParams::default());
            assert!(report.triangles.is_empty());
            assert!(report.witnesses.is_empty());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::gnp(36, 0.3, 5).unwrap();
        let a = enumerate_via_decomposition(&g, &PipelineParams::default());
        let b = enumerate_via_decomposition(&g, &PipelineParams::default());
        assert_eq!(a.triangles, b.triangles);
        assert_eq!(a.total_rounds(), b.total_rounds());
        assert_eq!(a.witnesses, b.witnesses);
    }

    #[test]
    fn edgeless_and_tiny_graphs() {
        let empty = Graph::from_edges(5, []).unwrap();
        let report = enumerate_via_decomposition(&empty, &PipelineParams::default());
        assert!(report.triangles.is_empty());
        assert_eq!(report.total_rounds(), 0);
        let two = Graph::from_edges(2, [(0, 1)]).unwrap();
        let report = enumerate_via_decomposition(&two, &PipelineParams::default());
        assert!(report.triangles.is_empty());
    }

    #[test]
    fn schedule_is_exposed() {
        let g = gen::gnp(30, 0.3, 2).unwrap();
        let report = enumerate_via_decomposition(&g, &PipelineParams::default());
        assert_eq!(report.schedule.k, 2);
        assert!(!report.schedule.phi_schedule.is_empty());
        for level in &report.levels {
            assert!(level.phi > 0.0);
        }
    }
}
