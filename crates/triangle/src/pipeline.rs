//! The end-to-end Theorem 2 pipeline: expander decomposition → per-cluster
//! expander routing → intra-cluster enumeration **on the CONGEST round
//! engine** → recursion on the removed-edge subgraph.
//!
//! This module wires the repo's pieces — [`expander::decomposition`] (via
//! its [`expander::ClusterAssignment`] contract), [`routing`]'s batched
//! [`EdgeBatch`] deliveries, and the [`congest`] engine in
//! [`ExecMode::Parallel`] — into the single entry point
//! [`enumerate_via_decomposition`]. Where [`crate::congest_algo`] charges
//! the listing rounds analytically, the pipeline *executes* the
//! intra-cluster exchange as a real [`congest::VertexProgram`] per cluster
//! and reports measured engine traffic per phase next to the analytic
//! routing/decomposition charges and the paper's budgets.
//!
//! Per recursion level, on the current edge set `E`:
//!
//! 1. **Decompose** (`ε ≤ 1/6`): [`ExpanderDecomposition`] splits `E` into
//!    expander clusters plus removed edges `E*` (`|E*| ≤ ε·|E|`).
//! 2. **Route**: inside each cluster, the cluster-incident edge slices are
//!    redistributed to the owners of the DLP group triples with one
//!    batched [`RoutingHierarchy::route_edges`] instance (per-vertex load
//!    `O(deg(v))` per query ⇒ `Õ(n^{1/3})` queries, §3).
//! 3. **Enumerate**: each cluster runs an adjacency-exchange
//!    [`congest::VertexProgram`] on its induced subgraph under
//!    [`ExecMode::Parallel`]; every triangle with ≥ 1 intra-cluster edge
//!    is listed at the edge's lower endpoint. Disjoint clusters step
//!    simultaneously, so their [`RunReport`]s fold via
//!    [`RunReport::parallel_with`] into the level's [`PhaseLedger`].
//! 4. **Recurse** on `E*` with the depth schedule of
//!    [`expander::params::DecompositionParams`]; since `|E*| ≤ |E|/6`,
//!    `O(log m)` levels suffice, after which any residual is brute-forced
//!    with an honest `O(m + n)` charge.

use crate::count::Triangle;
use congest::{Ctx, ExecMode, Network, PhaseLedger, RunReport, VertexProgram};
use expander::params::DecompositionParams;
use expander::{ExpanderDecomposition, ParamMode};
use graph::view::Subgraph;
use graph::{Graph, VertexId, VertexSet};
use routing::{EdgeBatch, RoutingHierarchy};
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration for [`enumerate_via_decomposition`].
#[derive(Debug, Clone)]
pub struct PipelineParams {
    /// Decomposition edge budget per level (clamped to the paper's
    /// `ε ≤ 1/6`).
    pub epsilon: f64,
    /// Decomposition trade-off integer `k`.
    pub decomposition_k: usize,
    /// GKS hierarchy depth per cluster (constant, per §3).
    pub routing_depth: usize,
    /// Parameter calibration.
    pub mode: ParamMode,
    /// Master seed.
    pub seed: u64,
    /// Hard cap on recursion depth; the schedule derived from
    /// [`DecompositionParams`] is used up to this cap, after which the
    /// residual is brute-forced.
    pub max_depth: usize,
    /// How the engine steps vertices inside each cluster run.
    pub exec: ExecMode,
    /// Maximum number of witness triangles sampled into the report.
    pub witness_cap: usize,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            epsilon: 1.0 / 6.0,
            decomposition_k: 2,
            routing_depth: 3,
            mode: ParamMode::Practical,
            seed: 0,
            max_depth: 12,
            exec: ExecMode::Parallel,
            witness_cap: 16,
        }
    }
}

/// Per-level breakdown: analytic charges next to measured engine traffic.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// Recursion depth of this level (0 = the input graph).
    pub depth: usize,
    /// Edges at this level.
    pub m: usize,
    /// Non-singleton clusters that ran the enumeration.
    pub clusters: usize,
    /// The conductance promise `φ` of this level's decomposition.
    pub phi: f64,
    /// Triangles first reported at this level.
    pub triangles_found: usize,
    /// Rounds charged to the expander decomposition (RoundLedger total).
    pub decomposition_rounds: u64,
    /// Routing preprocessing rounds (max over clusters — they build in
    /// parallel).
    pub routing_build_rounds: u64,
    /// Routing queries of the heaviest cluster's batched redistribution.
    pub routing_queries: u64,
    /// Rounds of the batched redistribution (max over clusters).
    pub routing_rounds: u64,
    /// Measured engine traffic of the intra-cluster enumeration runs
    /// (parallel fold over clusters).
    pub engine: RunReport,
}

impl LevelReport {
    /// Total rounds charged to this level (analytic + measured).
    pub fn rounds(&self) -> u64 {
        self.decomposition_rounds
            + self.routing_build_rounds
            + self.routing_rounds
            + self.engine.rounds as u64
    }
}

/// Result of the full pipeline.
#[derive(Debug, Clone)]
pub struct TriangleReport {
    /// All triangles, sorted and deduplicated.
    pub triangles: Vec<Triangle>,
    /// A deterministic sample of at most `witness_cap` triangles, spread
    /// evenly across the sorted list.
    pub witnesses: Vec<Triangle>,
    /// Per-level breakdown.
    pub levels: Vec<LevelReport>,
    /// Engine-measured traffic attributed to pipeline phases
    /// (`"enumerate"` is the only engine-driven phase today; the hooks
    /// accept more as phases move onto the engine).
    pub phases: PhaseLedger,
    /// The depth/φ schedule the recursion was configured from.
    pub schedule: DecompositionParams,
    /// Rounds charged for the residual brute force (0 unless `max_depth`
    /// was exhausted with edges left).
    pub residual_rounds: u64,
    /// Vertices of the input graph.
    pub n: usize,
    /// Edges of the input graph.
    pub m: usize,
}

impl TriangleReport {
    /// Number of triangles found.
    pub fn count(&self) -> u64 {
        self.triangles.len() as u64
    }

    /// Total rounds across all levels plus the residual charge.
    pub fn total_rounds(&self) -> u64 {
        self.levels.iter().map(LevelReport::rounds).sum::<u64>() + self.residual_rounds
    }

    /// The heaviest batched-routing instance across all levels — the
    /// quantity Theorem 2 bounds by `Õ(n^{1/3})`.
    pub fn max_routing_queries(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.routing_queries)
            .max()
            .unwrap_or(0)
    }

    /// The paper's per-cluster query budget `n^{1/3}·log² n` (the polylog
    /// is the practical stand-in for the Õ(·) factors; EXPERIMENTS
    /// compare measured queries against this curve).
    pub fn paper_query_budget(&self) -> f64 {
        let n = self.n.max(2) as f64;
        n.powf(1.0 / 3.0) * n.log2() * n.log2()
    }

    /// Whether every level's measured queries stayed within
    /// `slack × paper_query_budget()`.
    pub fn within_paper_budget(&self, slack: f64) -> bool {
        self.max_routing_queries() as f64 <= slack * self.paper_query_budget()
    }
}

/// Runs the full paper algorithm on `g`: decomposition, per-cluster
/// routing + engine-driven enumeration, recursion on the removed edges.
///
/// # Example
///
/// ```
/// use triangle::pipeline::{enumerate_via_decomposition, PipelineParams};
///
/// let g = graph::gen::gnp(40, 0.3, 7).unwrap();
/// let report = enumerate_via_decomposition(&g, &PipelineParams::default());
/// assert_eq!(report.count(), triangle::count_triangles(&g));
/// assert!(report.total_rounds() > 0);
/// ```
pub fn enumerate_via_decomposition(g: &Graph, params: &PipelineParams) -> TriangleReport {
    let n = g.n();
    let eps = params.epsilon.clamp(1e-3, 1.0 / 6.0);
    // The depth/φ schedule: DecompositionParams carries the per-level φ
    // ladder; |E*| ≤ ε·|E| per level bounds the useful recursion depth at
    // log_{1/ε}(m) + 1, capped by the configured max_depth.
    let schedule = DecompositionParams::new(eps, params.decomposition_k.max(1), n, params.mode);
    let depth_cap = if g.m() == 0 {
        0
    } else {
        let by_shrink = ((g.m() as f64).ln() / (1.0 / eps).ln()).ceil() as usize + 1;
        by_shrink.min(params.max_depth)
    };

    let mut triangles: Vec<Triangle> = Vec::new();
    let mut levels: Vec<LevelReport> = Vec::new();
    let mut phases = PhaseLedger::new();
    let mut current = g.clone();
    for depth in 0..depth_cap {
        if current.m() == 0 || n < 3 {
            break;
        }
        let decomp = ExpanderDecomposition::builder()
            .epsilon(eps)
            .k(params.decomposition_k.max(1))
            .mode(params.mode)
            .seed(params.seed.wrapping_add(depth as u64 * 0x9E37))
            .build()
            .run(&current)
            .expect("level graph is non-empty");
        let assignment = decomp.cluster_assignment(&current);
        let kept = current.remove_edges(assignment.inter_cluster_edges(), false);

        let mut level = LevelReport {
            depth,
            m: current.m(),
            clusters: 0,
            phi: decomp.phi,
            triangles_found: 0,
            decomposition_rounds: decomp.ledger.total(),
            routing_build_rounds: 0,
            routing_queries: 0,
            routing_rounds: 0,
            engine: RunReport::default(),
        };
        let before = triangles.len();
        let mut engine_reports: Vec<RunReport> = Vec::new();
        for (id, part) in assignment.clusters.iter().enumerate() {
            if assignment.certificates[id].internal_edges == 0 || part.len() < 2 {
                continue;
            }
            let cluster = run_cluster(&current, &kept, part, params, depth as u64);
            level.clusters += 1;
            level.routing_build_rounds = level.routing_build_rounds.max(cluster.build_rounds);
            level.routing_queries = level.routing_queries.max(cluster.queries);
            level.routing_rounds = level.routing_rounds.max(cluster.routing_rounds);
            engine_reports.push(cluster.engine);
            triangles.extend(cluster.triangles);
        }
        level.engine = engine_reports
            .iter()
            .fold(RunReport::default(), |acc, r| acc.parallel_with(r));
        phases.record_parallel("enumerate", engine_reports);
        triangles.sort_unstable();
        triangles.dedup();
        level.triangles_found = triangles.len().saturating_sub(before.min(triangles.len()));
        levels.push(level);

        // Recurse on E*.
        current = Graph::from_edges(n, assignment.inter_cluster_edges()).expect("ids in range");
    }

    // Residual brute force: only reached when the depth schedule was
    // exhausted with edges left; charged O(m + n).
    let mut residual_rounds = 0u64;
    if current.m() > 0 && n >= 3 {
        triangles.extend(crate::count::enumerate_triangles(&current));
        triangles.sort_unstable();
        triangles.dedup();
        residual_rounds = (current.m() + n) as u64;
    }

    let witnesses = sample_witnesses(&triangles, params.witness_cap);
    TriangleReport {
        witnesses,
        triangles,
        levels,
        phases,
        schedule,
        residual_rounds,
        n,
        m: g.m(),
    }
}

/// Deterministic, evenly spread sample of at most `cap` triangles.
fn sample_witnesses(triangles: &[Triangle], cap: usize) -> Vec<Triangle> {
    if cap == 0 || triangles.is_empty() {
        return Vec::new();
    }
    let take = cap.min(triangles.len());
    (0..take)
        .map(|i| triangles[i * triangles.len() / take])
        .collect()
}

/// What one cluster contributes to a level.
struct ClusterRun {
    triangles: Vec<Triangle>,
    build_rounds: u64,
    queries: u64,
    routing_rounds: u64,
    engine: RunReport,
}

/// Runs one cluster: routing redistribution accounting + the engine-driven
/// adjacency exchange + the local joins.
fn run_cluster(
    current: &Graph,
    kept: &Graph,
    part: &VertexSet,
    params: &PipelineParams,
    level_salt: u64,
) -> ClusterRun {
    let sub = Subgraph::induced(kept, part);
    let members: Vec<VertexId> = sub.parent_ids().to_vec();
    let local_n = members.len();

    // Full-graph (current level) adjacency of every member, sorted and
    // deduplicated — the per-vertex local knowledge CONGEST grants.
    let full_adj: Arc<Vec<Vec<VertexId>>> = Arc::new(
        members
            .iter()
            .map(|&v| {
                let mut a: Vec<VertexId> = current.neighbors(v).to_vec();
                a.dedup(); // neighbors() is sorted; drop parallel edges
                a
            })
            .collect(),
    );

    // ── Phase: route — batched redistribution of the cluster-incident
    // edge slices to the DLP triple owners, accounted via route_edges. ──
    let (build_rounds, queries, routing_rounds) =
        route_cluster_slices(current, part, &sub, &members, params, level_salt);

    // ── Phase: enumerate — the adjacency exchange on the round engine. ──
    let max_items = full_adj.iter().map(Vec::len).max().unwrap_or(0);
    let network = Network::new(sub.graph()).with_exec_mode(params.exec);
    let adj_for_make = Arc::clone(&full_adj);
    let make = move |v: VertexId| AdjacencyExchange::new(v, local_n, Arc::clone(&adj_for_make));
    let (engine, programs) = network
        .run_collect(make, max_items + 2)
        .expect("adjacency exchange is a valid CONGEST program");

    // Local joins: for every intra-cluster edge {u, v} (lower local id
    // owns it), intersect N(u) with the collected N(v).
    let mut triangles = Vec::new();
    for (u_local, prog) in programs.iter().enumerate() {
        let u_global = members[u_local];
        let mut prev = None;
        for &v_local in sub.graph().neighbors(u_local as VertexId) {
            if (v_local as usize) <= u_local || prev == Some(v_local) {
                continue; // lower endpoint owns the edge; skip parallels
            }
            prev = Some(v_local);
            let v_global = members[v_local as usize];
            let nv = &prog.collected[v_local as usize];
            merge_intersect(&full_adj[u_local], nv, u_global, v_global, &mut triangles);
        }
    }
    triangles.sort_unstable();
    triangles.dedup();

    ClusterRun {
        triangles,
        build_rounds,
        queries,
        routing_rounds,
        engine,
    }
}

/// Builds the DLP tripartition batches for one cluster and routes them
/// through the cluster's GKS hierarchy. Returns
/// `(build_rounds, queries, routing_rounds)`.
fn route_cluster_slices(
    current: &Graph,
    part: &VertexSet,
    sub: &Subgraph,
    members: &[VertexId],
    params: &PipelineParams,
    level_salt: u64,
) -> (u64, u64, u64) {
    let hierarchy = match RoutingHierarchy::build(
        sub.graph(),
        params.routing_depth.max(1),
        params.seed ^ 0xABCD ^ level_salt,
    ) {
        Ok(h) => h,
        // Degenerate cluster (cannot happen when internal_edges > 0).
        Err(_) => return (0, 1, 1),
    };

    // Group the global vertex set into g = ⌈|Vᵢ|^{1/3}⌉ classes.
    let groups = (members.len() as f64).powf(1.0 / 3.0).ceil().max(1.0) as usize;
    let salt = params.seed ^ level_salt.wrapping_mul(0x9E3779B97F4A7C15);
    let group_of = |v: VertexId| {
        ((v as u64).wrapping_mul(0x9E3779B1).wrapping_add(salt) % groups as u64) as u32
    };
    let pair_index = |x: u32, y: u32| {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        lo as usize * groups + hi as usize
    };

    // Bucket the cluster-incident edges by group pair; the cluster-side
    // endpoint (lower one for intra edges) holds the slice.
    let mut pair_holders: Vec<Vec<VertexId>> = vec![Vec::new(); groups * groups];
    for u in part.iter() {
        for &w in current.neighbors(u) {
            if w > u || !part.contains(w) {
                pair_holders[pair_index(group_of(u), group_of(w))].push(u);
            }
        }
    }

    // Degree-proportional triple ownership (the DLP counting argument):
    // vertex v owns ⌈deg(v)·T/Vol⌉ consecutive triples.
    let total_deg: usize = members
        .iter()
        .map(|&v| current.degree(v))
        .sum::<usize>()
        .max(1);
    let triple_total = groups * (groups + 1) * (groups + 2) / 6; // C(g+2, 3)
    let share = |v: VertexId| {
        (current.degree(v) * triple_total)
            .div_ceil(total_deg)
            .max(1)
    };
    let mut slice_words: HashMap<(VertexId, VertexId), usize> = HashMap::new();
    let mut acc = 0usize;
    let mut member_idx = 0usize;
    let mut member_budget = share(members[0]);
    for a in 0..groups as u32 {
        for b in a..groups as u32 {
            for c in b..groups as u32 {
                let owner_local = member_idx as VertexId;
                // A degenerate triple (repeated groups) references the
                // same pair bucket more than once — deliver it once.
                let mut pairs = [pair_index(a, b), pair_index(b, c), pair_index(a, c)];
                pairs.sort_unstable();
                for (i, &pair) in pairs.iter().enumerate() {
                    if i > 0 && pairs[i - 1] == pair {
                        continue;
                    }
                    for &holder in &pair_holders[pair] {
                        let holder_local = sub.to_local(holder).expect("holder is a member");
                        *slice_words.entry((holder_local, owner_local)).or_insert(0) += 1;
                    }
                }
                acc += 1;
                if acc >= member_budget && member_idx + 1 < members.len() {
                    acc = 0;
                    member_idx += 1;
                    member_budget = share(members[member_idx]);
                }
            }
        }
    }
    let mut batches: Vec<EdgeBatch> = slice_words
        .into_iter()
        .map(|((src, dst), words)| EdgeBatch { src, dst, words })
        .collect();
    batches.sort_unstable_by_key(|b| (b.src, b.dst)); // determinism
    let outcome = hierarchy
        .route_edges(sub.graph(), &batches)
        .expect("batch endpoints are cluster-local");
    (
        hierarchy.preprocessing_rounds(),
        outcome.queries,
        outcome.rounds,
    )
}

/// Merge-intersects two sorted neighbor lists, emitting triangles for the
/// intra edge `{u, v}`.
fn merge_intersect(
    nu: &[VertexId],
    nv: &[VertexId],
    u: VertexId,
    v: VertexId,
    out: &mut Vec<Triangle>,
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < nu.len() && j < nv.len() {
        match nu[i].cmp(&nv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let w = nu[i];
                if w != u && w != v {
                    out.push(Triangle::new(u, v, w));
                }
                i += 1;
                j += 1;
            }
        }
    }
}

/// The intra-cluster exchange program: each vertex streams its full-graph
/// adjacency (global ids, one per round per incident cluster edge) to all
/// cluster neighbors; receivers with a lower local id collect the lists
/// they will join against. Rounds = max full-graph degree in the cluster.
struct AdjacencyExchange {
    me: usize,
    /// Shared per-vertex full-graph adjacency, indexed by local id.
    adj: Arc<Vec<Vec<VertexId>>>,
    /// Next item of our own list to stream.
    pos: usize,
    /// Collected lists, indexed by sender local id (only senders with a
    /// higher local id are stored — the lower endpoint owns each edge).
    collected: Vec<Vec<VertexId>>,
}

impl AdjacencyExchange {
    fn new(me: VertexId, local_n: usize, adj: Arc<Vec<Vec<VertexId>>>) -> Self {
        AdjacencyExchange {
            me: me as usize,
            adj,
            pos: 0,
            collected: vec![Vec::new(); local_n],
        }
    }

    fn stream_next<M>(&mut self, ctx: &mut Ctx<'_, M>)
    where
        M: congest::Payload + From<VertexId>,
    {
        if self.pos < self.adj[self.me].len() {
            ctx.broadcast(M::from(self.adj[self.me][self.pos]));
            self.pos += 1;
        }
    }
}

impl VertexProgram for AdjacencyExchange {
    type Msg = u32;

    fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
        self.stream_next(ctx);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(VertexId, u32)]) {
        for &(sender, item) in inbox {
            if (sender as usize) > self.me {
                self.collected[sender as usize].push(item);
            }
        }
        self.stream_next(ctx);
    }

    fn halted(&self) -> bool {
        self.pos >= self.adj[self.me].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::enumerate_triangles;
    use graph::gen;

    fn assert_complete(g: &Graph, params: &PipelineParams) -> TriangleReport {
        let report = enumerate_via_decomposition(g, params);
        let want = enumerate_triangles(g);
        assert_eq!(
            report.triangles,
            want,
            "n = {}, m = {}: pipeline incomplete",
            g.n(),
            g.m()
        );
        report
    }

    #[test]
    fn complete_on_random_graphs() {
        for seed in 0..3 {
            let g = gen::gnp(40, 0.25, seed).unwrap();
            assert_complete(&g, &PipelineParams::default());
        }
    }

    #[test]
    fn complete_on_cluster_graphs() {
        let (g, _) = gen::ring_of_cliques(5, 6).unwrap();
        assert_complete(&g, &PipelineParams::default());
        let pp = gen::planted_partition(&[20, 20], 0.5, 0.08, 7).unwrap();
        assert_complete(&pp.graph, &PipelineParams::default());
    }

    #[test]
    fn complete_when_decomposition_removes_everything() {
        // Paths, stars and matchings decompose into singletons — every
        // edge lands in E* and recursion/residual must still finish.
        for g in [
            gen::path(10).unwrap(),
            gen::star(8).unwrap(),
            Graph::from_edges(8, [(0, 1), (2, 3), (4, 5), (6, 7)]).unwrap(),
        ] {
            assert_complete(&g, &PipelineParams::default());
        }
    }

    #[test]
    fn sequential_and_parallel_exec_agree() {
        let g = gen::gnp(36, 0.3, 9).unwrap();
        let par = enumerate_via_decomposition(
            &g,
            &PipelineParams {
                exec: ExecMode::Parallel,
                ..Default::default()
            },
        );
        let seq = enumerate_via_decomposition(
            &g,
            &PipelineParams {
                exec: ExecMode::Sequential,
                ..Default::default()
            },
        );
        assert_eq!(par.triangles, seq.triangles);
        assert_eq!(par.total_rounds(), seq.total_rounds());
        assert_eq!(par.phases.phase("enumerate"), seq.phases.phase("enumerate"));
    }

    #[test]
    fn engine_traffic_is_measured() {
        let (g, _) = gen::ring_of_cliques(4, 6).unwrap();
        let report = assert_complete(&g, &PipelineParams::default());
        let enumerate = report.phases.phase("enumerate");
        assert!(enumerate.rounds > 0, "engine rounds must be measured");
        assert!(enumerate.messages > 0);
        assert!(report.levels[0].engine.rounds > 0);
        // The engine phase is part of the total.
        assert!(report.total_rounds() >= enumerate.rounds as u64);
    }

    #[test]
    fn witnesses_are_a_sample_of_the_listing() {
        let g = gen::complete(12).unwrap();
        let report = assert_complete(&g, &PipelineParams::default());
        assert_eq!(report.witnesses.len(), 16.min(report.triangles.len()));
        for w in &report.witnesses {
            assert!(report.triangles.binary_search(w).is_ok());
        }
        let none = enumerate_via_decomposition(
            &g,
            &PipelineParams {
                witness_cap: 0,
                ..Default::default()
            },
        );
        assert!(none.witnesses.is_empty());
    }

    #[test]
    fn levels_shrink_and_budget_holds() {
        let g = gen::gnp(50, 0.3, 11).unwrap();
        let report = assert_complete(&g, &PipelineParams::default());
        for pair in report.levels.windows(2) {
            assert!(
                pair[1].m <= pair[0].m / 2,
                "E* must shrink: {} -> {}",
                pair[0].m,
                pair[1].m
            );
        }
        assert!(
            report.within_paper_budget(8.0),
            "queries {} vs budget {}",
            report.max_routing_queries(),
            report.paper_query_budget()
        );
    }

    #[test]
    fn triangle_free_graphs_report_nothing() {
        for g in [gen::cycle(12).unwrap(), gen::grid(5, 5).unwrap()] {
            let report = enumerate_via_decomposition(&g, &PipelineParams::default());
            assert!(report.triangles.is_empty());
            assert!(report.witnesses.is_empty());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::gnp(36, 0.3, 5).unwrap();
        let a = enumerate_via_decomposition(&g, &PipelineParams::default());
        let b = enumerate_via_decomposition(&g, &PipelineParams::default());
        assert_eq!(a.triangles, b.triangles);
        assert_eq!(a.total_rounds(), b.total_rounds());
        assert_eq!(a.witnesses, b.witnesses);
    }

    #[test]
    fn edgeless_and_tiny_graphs() {
        let empty = Graph::from_edges(5, []).unwrap();
        let report = enumerate_via_decomposition(&empty, &PipelineParams::default());
        assert!(report.triangles.is_empty());
        assert_eq!(report.total_rounds(), 0);
        let two = Graph::from_edges(2, [(0, 1)]).unwrap();
        let report = enumerate_via_decomposition(&two, &PipelineParams::default());
        assert!(report.triangles.is_empty());
    }

    #[test]
    fn schedule_is_exposed() {
        let g = gen::gnp(30, 0.3, 2).unwrap();
        let report = enumerate_via_decomposition(&g, &PipelineParams::default());
        assert_eq!(report.schedule.k, 2);
        assert!(!report.schedule.phi_schedule.is_empty());
        for level in &report.levels {
            assert!(level.phi > 0.0);
        }
    }
}
