//! **The churn tier** — incremental maintenance of the triangle artifact
//! under live edge insertions and deletions (DESIGN.md §15).
//!
//! The [`crate::service::QueryEngine`] is deliberately frozen: build
//! once, serve forever. A real service sees edge churn, and a full
//! rebuild per batch wastes exactly the structure the paper fought for —
//! expander clusters are *stable*, and most churn never breaks one.
//! [`DeltaLedger`] keeps three things fresh between rebuilds:
//!
//! 1. **The graph** — a [`WorkingGraph`] overlay over the engine's base
//!    graph: deletions tombstone CSR slots, insertions resurrect dead
//!    slots or land in sorted per-vertex insert rows, both `O(log Δ)`
//!    per edge.
//! 2. **The triangle count** — the classic incremental identity: a
//!    multigraph edge toggle changes the (simple-support) triangle set
//!    only when the edge's multiplicity crosses 0 ↔ 1, and then by
//!    exactly `|N(u) ∩ N(v)|` deduplicated common neighbors, computed
//!    with the same sorted-merge intersection kernel the query path
//!    uses. Each batch therefore costs `O(Σ |N(u) ∩ N(v)|)` — and the
//!    created/destroyed triangles come out for free as **witness-set
//!    patches** ([`BatchReport::created`] / [`BatchReport::destroyed`]).
//! 3. **Per-cluster bookkeeping** — a support delta (triangles incident
//!    to each frozen cluster) and a dirty flag per touched cluster, the
//!    input to certificate-driven reclustering.
//!
//! When the [`ChurnPolicy`] staleness bound trips, [`DeltaLedger::rebuild`]
//! runs the incremental rebuild: re-certify φ for dirty clusters only
//! (`expander::recluster::recluster_broken`), re-decompose just the broken
//! ones, and [`QueryEngine::refreeze`] the next engine with every
//! untouched cluster's artifact carried over by `Arc` pointer. The
//! returned engine is what a server swaps into its `EngineCell`
//! (generation +1, in-flight batches finish on the old pointer).
//!
//! Equivalence contract (pinned by `tests/churn_equivalence.rs`): after
//! ANY interleaved insert/delete stream, the ledger's count, witness set,
//! and the refrozen engine's query **answers** are bit-identical to a
//! from-scratch [`QueryEngine::build`] on the final graph. Routing
//! *charges* are excluded: reused hierarchies keep their original seeds
//! and cluster ids, so charge accounting may differ while answers — pure
//! functions of the frozen adjacency snapshots — cannot.

use crate::count::{count_triangles, Triangle};
use crate::pipeline::PipelineParams;
use crate::service::{merge_intersect, QueryEngine};
use expander::recluster::{recluster_broken, ReclusterParams};
use expander::ClusterAssignment;
use graph::seed::derive_seed;
use graph::working::WorkingGraph;
use graph::{Graph, VertexId};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One churn operation on the live graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOp {
    /// Insert one copy of `{u, v}` (a self loop when `u == v`).
    Insert(VertexId, VertexId),
    /// Delete one copy of `{u, v}`. Absent edges and self loops are
    /// ignored, mirroring [`Graph::remove_edges`]'s contract.
    Delete(VertexId, VertexId),
}

/// Staleness bound feeding the background-rebuild trigger: rebuild once
/// the ledger has absorbed `max_stale_edges` applied ops or has been
/// stale for `max_stale_secs` seconds, whichever comes first.
#[derive(Debug, Clone, Copy)]
pub struct ChurnPolicy {
    /// Applied-op budget before a rebuild is due.
    pub max_stale_edges: usize,
    /// Wall-clock budget (seconds) since the first unabsorbed op.
    /// `f64::INFINITY` disables the time trigger.
    pub max_stale_secs: f64,
}

impl Default for ChurnPolicy {
    fn default() -> Self {
        ChurnPolicy {
            max_stale_edges: 1024,
            max_stale_secs: 30.0,
        }
    }
}

impl ChurnPolicy {
    /// Whether `stale_edges` applied ops aged `stale_for` exceed either
    /// budget.
    pub fn should_rebuild(&self, stale_edges: usize, stale_for: Duration) -> bool {
        if stale_edges == 0 {
            return false;
        }
        stale_edges >= self.max_stale_edges || stale_for.as_secs_f64() >= self.max_stale_secs
    }
}

/// What one [`DeltaLedger::apply`] batch did.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Ops that changed the graph.
    pub applied: usize,
    /// Ops ignored by contract (absent deletes, self-loop deletes,
    /// out-of-range endpoints).
    pub ignored: usize,
    /// Triangles created by this batch (witness-set additions), sorted,
    /// duplicate-free, and **net of intra-batch churn**: a triangle
    /// created and destroyed inside the same batch appears in neither
    /// list, so the two patches are disjoint and apply in either order.
    pub created: Vec<Triangle>,
    /// Triangles destroyed by this batch (witness-set removals), sorted,
    /// duplicate-free, disjoint from [`BatchReport::created`].
    pub destroyed: Vec<Triangle>,
    /// Merge-intersection comparison steps charged — the batch's
    /// `O(Σ |N(u) ∩ N(v)|)` work measure, in the same word unit as the
    /// query path.
    pub intersect_words: u64,
    /// Distinct frozen clusters touched by this batch's applied ops.
    pub touched_clusters: usize,
}

/// What one [`DeltaLedger::rebuild`] cost and reused.
#[derive(Debug, Clone)]
pub struct RebuildReport {
    /// The refrozen engine (also installed as the ledger's new base).
    pub engine: Arc<QueryEngine>,
    /// Dirty clusters whose φ certificate was re-verified.
    pub checked: usize,
    /// Clusters whose certificate broke and were re-decomposed.
    pub broken: usize,
    /// Clusters carried into the new engine by `Arc` pointer.
    pub reused: usize,
    /// Clusters frozen from scratch (touched or newly cut).
    pub rebuilt: usize,
    /// Applied ops absorbed by this rebuild.
    pub absorbed: usize,
    /// Wall clock of the whole rebuild (recluster + refreeze).
    pub wall: Duration,
}

/// The incremental maintenance layer over a frozen [`QueryEngine`]: a
/// live graph overlay, an exactly-maintained triangle count with witness
/// patches, per-cluster support deltas and dirty flags, and the
/// staleness-bounded incremental rebuild. See the [module docs](self).
#[derive(Debug)]
pub struct DeltaLedger {
    working: WorkingGraph,
    engine: Arc<QueryEngine>,
    triangles: u64,
    /// Signed change, since the last rebuild, in the number of triangles
    /// incident to each frozen cluster.
    support_delta: Vec<i64>,
    /// Clusters touched by any applied op since the last rebuild.
    dirty: Vec<bool>,
    stale_edges: usize,
    stale_since: Option<Instant>,
    row_u: Vec<VertexId>,
    row_v: Vec<VertexId>,
}

impl DeltaLedger {
    /// Opens a ledger over `engine`'s graph `g` (the graph the engine was
    /// built or last refrozen on). Pays one exact triangle count up
    /// front; every batch after that is incremental.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s vertex count differs from the engine's.
    pub fn new(g: &Graph, engine: Arc<QueryEngine>) -> DeltaLedger {
        assert_eq!(
            g.n(),
            engine.assignment().n,
            "ledger graph/engine vertex-count mismatch"
        );
        let clusters = engine.assignment().cluster_count();
        DeltaLedger {
            working: WorkingGraph::new(g),
            triangles: count_triangles(g),
            support_delta: vec![0; clusters],
            dirty: vec![false; clusters],
            engine,
            stale_edges: 0,
            stale_since: None,
            row_u: Vec::new(),
            row_v: Vec::new(),
        }
    }

    /// The maintained triangle count of the live graph.
    pub fn triangles(&self) -> u64 {
        self.triangles
    }

    /// The current engine (stale by up to [`DeltaLedger::stale_edges`]
    /// applied ops until the next rebuild).
    pub fn engine(&self) -> &Arc<QueryEngine> {
        &self.engine
    }

    /// The live graph overlay.
    pub fn working(&self) -> &WorkingGraph {
        &self.working
    }

    /// Applied ops not yet absorbed by a rebuild.
    pub fn stale_edges(&self) -> usize {
        self.stale_edges
    }

    /// Signed per-cluster change in incident-triangle support since the
    /// last rebuild, indexed by the frozen assignment's cluster ids.
    pub fn support_delta(&self) -> &[i64] {
        &self.support_delta
    }

    /// Clusters currently marked dirty.
    pub fn dirty_clusters(&self) -> usize {
        self.dirty.iter().filter(|&&d| d).count()
    }

    /// Whether `policy`'s staleness budget is exhausted.
    pub fn needs_rebuild(&self, policy: &ChurnPolicy) -> bool {
        let stale_for = self
            .stale_since
            .map(|t| t.elapsed())
            .unwrap_or(Duration::ZERO);
        policy.should_rebuild(self.stale_edges, stale_for)
    }

    /// Applies one batch of churn ops, maintaining the graph overlay, the
    /// triangle count, the witness patches, and the per-cluster deltas in
    /// `O(Σ |N(u) ∩ N(v)|)` total intersection work.
    pub fn apply(&mut self, ops: &[EdgeOp]) -> BatchReport {
        let mut report = BatchReport {
            applied: 0,
            ignored: 0,
            created: Vec::new(),
            destroyed: Vec::new(),
            intersect_words: 0,
            touched_clusters: 0,
        };
        let n = self.working.n();
        let mut touched = vec![false; self.dirty.len()];
        for &op in ops {
            let (u, v) = match op {
                EdgeOp::Insert(u, v) | EdgeOp::Delete(u, v) => (u, v),
            };
            if (u as usize) >= n || (v as usize) >= n {
                report.ignored += 1;
                continue;
            }
            match op {
                EdgeOp::Insert(u, v) => {
                    if u == v {
                        self.working.insert_edges([(u, u)]);
                        self.mark(u, v, &mut touched);
                        report.applied += 1;
                        continue;
                    }
                    let was_absent = self.working.multiplicity(u, v) == 0;
                    self.working.insert_edges([(u, v)]);
                    self.mark(u, v, &mut touched);
                    report.applied += 1;
                    if was_absent {
                        let from = report.created.len();
                        report.intersect_words += self.common_neighbors(u, v, |w| {
                            report.created.push(Triangle::new(u, v, w));
                        });
                        let span = from..report.created.len();
                        for i in span {
                            let t = report.created[i];
                            self.credit(t, 1);
                        }
                    }
                }
                EdgeOp::Delete(u, v) => {
                    if u == v || self.working.remove_edges([(u, v)], false) == 0 {
                        // Self-loop and absent deletes are no-ops by the
                        // base-graph contract; they dirty nothing.
                        report.ignored += 1;
                        continue;
                    }
                    self.mark(u, v, &mut touched);
                    report.applied += 1;
                    if self.working.multiplicity(u, v) == 0 {
                        let from = report.destroyed.len();
                        report.intersect_words += self.common_neighbors(u, v, |w| {
                            report.destroyed.push(Triangle::new(u, v, w));
                        });
                        let span = from..report.destroyed.len();
                        for i in span {
                            let t = report.destroyed[i];
                            self.credit(t, -1);
                        }
                    }
                }
            }
        }
        self.triangles =
            self.triangles + report.created.len() as u64 - report.destroyed.len() as u64;
        if report.applied > 0 {
            self.stale_edges += report.applied;
            if self.stale_since.is_none() {
                self.stale_since = Some(Instant::now());
            }
        }
        report.touched_clusters = touched.iter().filter(|&&t| t).count();
        report.created.sort_unstable();
        report.destroyed.sort_unstable();
        cancel_matched(&mut report.created, &mut report.destroyed);
        report
    }

    /// Streams the deduplicated common neighbors of `u` and `v` in the
    /// live graph (never `u` or `v` themselves — loops are not adjacency)
    /// and returns the merge's comparison steps.
    fn common_neighbors(
        &mut self,
        u: VertexId,
        v: VertexId,
        mut emit: impl FnMut(VertexId),
    ) -> u64 {
        self.row_u.clear();
        for w in self.working.live_neighbors(u) {
            if self.row_u.last() != Some(&w) {
                self.row_u.push(w);
            }
        }
        self.row_v.clear();
        for w in self.working.live_neighbors(v) {
            if self.row_v.last() != Some(&w) {
                self.row_v.push(w);
            }
        }
        merge_intersect(&self.row_u, &self.row_v, |w| {
            if w != u && w != v {
                emit(w);
            }
        })
    }

    /// Marks the endpoint clusters of an applied op dirty.
    fn mark(&mut self, u: VertexId, v: VertexId, touched: &mut [bool]) {
        let assignment = self.engine.assignment();
        for c in [
            assignment.cluster_of[u as usize],
            assignment.cluster_of[v as usize],
        ] {
            self.dirty[c as usize] = true;
            touched[c as usize] = true;
        }
    }

    /// Adds `sign` to the support delta of every cluster incident to `t`
    /// (each cluster at most once per triangle).
    fn credit(&mut self, t: Triangle, sign: i64) {
        let assignment = self.engine.assignment();
        let ca = assignment.cluster_of[t.a as usize];
        let cb = assignment.cluster_of[t.b as usize];
        let cc = assignment.cluster_of[t.c as usize];
        self.support_delta[ca as usize] += sign;
        if cb != ca {
            self.support_delta[cb as usize] += sign;
        }
        if cc != ca && cc != cb {
            self.support_delta[cc as usize] += sign;
        }
    }

    /// The incremental rebuild: materialize the live graph, re-verify φ
    /// certificates of dirty clusters only, re-decompose exactly the
    /// broken ones ([`recluster_broken`]), and refreeze the next engine
    /// with untouched clusters' artifacts reused by pointer
    /// ([`QueryEngine::refreeze`]). Resets the ledger's staleness state
    /// and rebases the overlay on the materialized graph.
    pub fn rebuild(&mut self, params: &PipelineParams) -> RebuildReport {
        let t0 = Instant::now();
        let g_now = self.working.to_graph();
        let recluster = ReclusterParams {
            epsilon: params.epsilon,
            k: params.decomposition_k.max(1),
            mode: params.mode,
            // Child 1 of the pipeline seed: disjoint from the level-0
            // decomposition seed (child 0) the fresh build path uses.
            seed: derive_seed(params.seed, 1),
        };
        let scope = recluster_broken(
            &self.working,
            self.engine.assignment(),
            &self.dirty,
            &recluster,
        );
        let assignment = ClusterAssignment::from_parts(
            &g_now,
            &scope.parts,
            self.engine.assignment().phi,
            &params.scheduler_policy(),
        );
        let next = QueryEngine::refreeze(&g_now, assignment, params, &self.engine, &scope.reuse);
        let reused = scope.reuse.iter().filter(|r| r.is_some()).count();
        let rebuilt = scope.reuse.len() - reused;
        let engine = Arc::new(next);
        let absorbed = self.stale_edges;
        self.engine = Arc::clone(&engine);
        self.working = WorkingGraph::new(&g_now);
        self.support_delta = vec![0; engine.assignment().cluster_count()];
        self.dirty = vec![false; engine.assignment().cluster_count()];
        self.stale_edges = 0;
        self.stale_since = None;
        RebuildReport {
            engine,
            checked: scope.checked,
            broken: scope.broken,
            reused,
            rebuilt,
            absorbed,
            wall: t0.elapsed(),
        }
    }

    /// The staleness-bounded maintenance step a serving loop calls per
    /// batch: apply the ops, then rebuild iff `policy` says the ledger is
    /// too stale. When a rebuild happens, the caller owns swapping the
    /// returned engine into its `EngineCell`.
    pub fn maintain(
        &mut self,
        ops: &[EdgeOp],
        policy: &ChurnPolicy,
        params: &PipelineParams,
    ) -> (BatchReport, Option<RebuildReport>) {
        let batch = self.apply(ops);
        let rebuild = self.needs_rebuild(policy).then(|| self.rebuild(params));
        (batch, rebuild)
    }
}

/// Cancels matched pairs between two sorted triangle lists, leaving the
/// net witness patches. A triangle's existence toggles alternate within
/// a batch (created, destroyed, created, …), so after cancellation each
/// triangle survives in at most one list, at most once.
fn cancel_matched(created: &mut Vec<Triangle>, destroyed: &mut Vec<Triangle>) {
    if created.is_empty() || destroyed.is_empty() {
        return;
    }
    let mut keep_c = Vec::new();
    let mut keep_d = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < created.len() && j < destroyed.len() {
        match created[i].cmp(&destroyed[j]) {
            std::cmp::Ordering::Less => {
                keep_c.push(created[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                keep_d.push(destroyed[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    keep_c.extend_from_slice(&created[i..]);
    keep_d.extend_from_slice(&destroyed[j..]);
    *created = keep_c;
    *destroyed = keep_d;
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    fn ledger(g: &Graph, seed: u64) -> DeltaLedger {
        let params = PipelineParams {
            seed,
            ..Default::default()
        };
        let engine = Arc::new(QueryEngine::build(g, &params));
        DeltaLedger::new(g, engine)
    }

    #[test]
    fn insert_and_delete_maintain_the_count() {
        let g = gen::gnp(30, 0.2, 3).unwrap();
        let mut led = ledger(&g, 3);
        assert_eq!(led.triangles(), count_triangles(&g));
        // Close a wedge, then reopen it.
        let report = led.apply(&[EdgeOp::Insert(0, 1)]);
        assert_eq!(report.applied, 1);
        assert_eq!(led.triangles(), count_triangles(&led.working().to_graph()));
        let report = led.apply(&[EdgeOp::Delete(0, 1)]);
        assert_eq!(report.applied, 1);
        assert_eq!(led.triangles(), count_triangles(&g));
        assert_eq!(led.stale_edges(), 2);
    }

    #[test]
    fn parallel_copies_only_toggle_at_the_boundary() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let mut led = ledger(&g, 7);
        assert_eq!(led.triangles(), 1);
        // A second copy creates nothing; deleting one copy destroys
        // nothing; deleting the last copy kills the triangle.
        let r = led.apply(&[EdgeOp::Insert(0, 1)]);
        assert!(r.created.is_empty());
        let r = led.apply(&[EdgeOp::Delete(0, 1)]);
        assert!(r.destroyed.is_empty());
        assert_eq!(led.triangles(), 1);
        let r = led.apply(&[EdgeOp::Delete(0, 1)]);
        assert_eq!(r.destroyed, vec![Triangle::new(0, 1, 2)]);
        assert_eq!(led.triangles(), 0);
    }

    #[test]
    fn ignored_ops_do_not_dirty_clusters() {
        let g = gen::gnp(20, 0.3, 5).unwrap();
        let mut led = ledger(&g, 5);
        let r = led.apply(&[
            EdgeOp::Delete(0, 0),
            EdgeOp::Delete(99, 0),
            EdgeOp::Insert(0, 99),
        ]);
        assert_eq!(r.applied, 0);
        assert_eq!(r.ignored, 3);
        assert_eq!(r.touched_clusters, 0);
        assert_eq!(led.dirty_clusters(), 0);
        assert_eq!(led.stale_edges(), 0);
        assert!(!led.needs_rebuild(&ChurnPolicy::default()));
    }

    #[test]
    fn policy_edge_budget_trips_rebuild() {
        let g = gen::gnp(40, 0.15, 11).unwrap();
        let params = PipelineParams {
            seed: 11,
            ..Default::default()
        };
        let engine = Arc::new(QueryEngine::build(&g, &params));
        let mut led = DeltaLedger::new(&g, Arc::clone(&engine));
        let policy = ChurnPolicy {
            max_stale_edges: 2,
            max_stale_secs: f64::INFINITY,
        };
        let (_, rebuilt) = led.maintain(&[EdgeOp::Insert(0, 1)], &policy, &params);
        assert!(rebuilt.is_none(), "one op is under the budget");
        let (_, rebuilt) = led.maintain(&[EdgeOp::Insert(2, 3)], &policy, &params);
        let rebuilt = rebuilt.expect("second op trips the budget");
        assert_eq!(rebuilt.absorbed, 2);
        assert_eq!(led.stale_edges(), 0);
        assert_eq!(led.dirty_clusters(), 0);
        // The refrozen engine answers like a fresh build on the final
        // graph (charges excluded — seeds differ by design).
        let final_g = led.working().to_graph();
        let fresh = QueryEngine::build(&final_g, &params);
        for v in 0..final_g.n() as VertexId {
            let q = crate::service::Query::Vertex {
                v,
                emit: crate::service::Emit::Count,
            };
            let a = rebuilt.engine.answer(q).unwrap().answer;
            let b = fresh.answer(q).unwrap().answer;
            assert_eq!(a, b, "vertex {v}");
        }
    }

    #[test]
    fn rebuild_reuses_untouched_cluster_artifacts() {
        let pp = gen::planted_partition(&[20, 20, 20], 0.6, 0.02, 13).unwrap();
        let params = PipelineParams {
            seed: 13,
            ..Default::default()
        };
        let engine = Arc::new(QueryEngine::from_assignment(
            &pp.graph,
            expander::ClusterAssignment::from_parts(
                &pp.graph,
                &pp.blocks,
                0.05,
                &params.scheduler_policy(),
            ),
            &params,
        ));
        let mut led = DeltaLedger::new(&pp.graph, Arc::clone(&engine));
        // Touch only block 0 (an internal insertion).
        let members: Vec<VertexId> = pp.blocks[0].iter().collect();
        led.apply(&[EdgeOp::Insert(members[0], members[1])]);
        let report = led.rebuild(&params);
        assert_eq!(report.checked, 1);
        assert!(report.reused >= 2, "untouched blocks reuse artifacts");
        // Reused clusters are pointer-equal to the old engine's.
        let new_assignment = report.engine.assignment();
        let mut shared = 0;
        for c in 0..new_assignment.cluster_count() {
            for old_c in 0..engine.assignment().cluster_count() {
                if report.engine.shares_cluster_artifact(c, &engine, old_c) {
                    shared += 1;
                }
            }
        }
        assert_eq!(shared, report.reused);
    }
}
