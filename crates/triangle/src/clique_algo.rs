//! The Dolev–Lenzen–Peled deterministic CONGESTED-CLIQUE triangle lister
//! (`O(n^{1/3}/log n)` rounds; we charge the `O(n^{1/3})` variant without
//! the word-packing optimization).
//!
//! Vertices are split deterministically into `g = ⌈n^{1/3}⌉` groups
//! `A_0 … A_{g−1}`. There are `g³` ordered group triples; each vertex is
//! assigned `⌈g³/n⌉` of them. The vertex assigned triple `(A, B, C)`
//! collects the three bipartite edge sets `E(A,B)`, `E(B,C)`, `E(A,C)` and
//! reports every triangle with `a ∈ A, b ∈ B, c ∈ C`. Every triangle
//! `{a,b,c}` belongs to at least one triple, so enumeration is complete.
//! All deliveries are multi-commodity routing instances with per-vertex
//! load `O(n^{4/3}·…/n)`, delivered by Lenzen's theorem in batches of `n`.

use crate::count::Triangle;
use congest::clique::lenzen_rounds;
use graph::{Graph, VertexId};

/// Result of the DLP clique algorithm.
#[derive(Debug, Clone)]
pub struct CliqueEnumeration {
    /// All triangles, sorted and deduplicated.
    pub triangles: Vec<Triangle>,
    /// Charged CONGESTED-CLIQUE rounds (Lenzen batches).
    pub rounds: u64,
    /// The group count `g = ⌈n^{1/3}⌉`.
    pub groups: usize,
    /// Maximum number of edge-words any single vertex received.
    pub max_receive_load: usize,
}

/// Runs the DLP algorithm on `g` (simulated; the grouping, assignment and
/// loads are computed exactly, rounds are charged via Lenzen's theorem).
///
/// # Example
///
/// ```
/// use triangle::{clique_enumerate, count_triangles};
/// let g = graph::gen::gnp(60, 0.3, 7).unwrap();
/// let out = clique_enumerate(&g);
/// assert_eq!(out.triangles.len() as u64, count_triangles(&g));
/// ```
pub fn clique_enumerate(g: &Graph) -> CliqueEnumeration {
    let n = g.n();
    if n < 3 {
        return CliqueEnumeration {
            triangles: Vec::new(),
            rounds: 0,
            groups: 0,
            max_receive_load: 0,
        };
    }
    let groups = (n as f64).powf(1.0 / 3.0).ceil() as usize;
    let group_of = |v: VertexId| (v as usize % groups) as u32;

    // Bucket edges by group pair (unordered).
    let pair_index = |x: u32, y: u32| {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        (lo as usize) * groups + hi as usize
    };
    let mut pair_edges: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); groups * groups];
    for (u, v) in g.edges() {
        if u == v {
            continue;
        }
        pair_edges[pair_index(group_of(u), group_of(v))].push((u, v));
    }

    // Assign the g³ ordered triples (a ≤ b ≤ c suffices for unordered
    // triangles: C(g+2,3) triples) round-robin to vertices; track receive
    // loads.
    let mut triples: Vec<(u32, u32, u32)> = Vec::new();
    for a in 0..groups as u32 {
        for b in a..groups as u32 {
            for c in b..groups as u32 {
                triples.push((a, b, c));
            }
        }
    }
    let mut load = vec![0usize; n];
    let mut triangles: Vec<Triangle> = Vec::new();
    for (i, &(a, b, c)) in triples.iter().enumerate() {
        let owner = i % n;
        let e_ab = &pair_edges[pair_index(a, b)];
        let e_bc = &pair_edges[pair_index(b, c)];
        let e_ac = &pair_edges[pair_index(a, c)];
        load[owner] += e_ab.len() + e_bc.len() + e_ac.len();
        // Local listing at the owner: index E(B,C) pairs, then for each
        // (u ∈ A, v ∈ B) probe each w adjacent via E(A,C) … simplest
        // correct local join: hash the needed edge sets.
        let mut set =
            std::collections::HashSet::with_capacity(e_ab.len() + e_bc.len() + e_ac.len());
        for &(u, v) in e_ab.iter().chain(e_bc.iter()).chain(e_ac.iter()) {
            set.insert(if u < v { (u, v) } else { (v, u) });
        }
        // Candidate vertices per group inside this triple's edge sets.
        for &(u, v) in e_ab {
            let (x, y) = (u, v);
            // Triangle third vertex must lie in group c and connect to
            // both; scan neighbors of the lower-degree endpoint.
            let probe = if g.degree_without_loops(x) <= g.degree_without_loops(y) {
                x
            } else {
                y
            };
            let other = if probe == x { y } else { x };
            for &w in g.neighbors(probe) {
                if w == other || group_of(w) != c {
                    continue;
                }
                let k1 = if other < w { (other, w) } else { (w, other) };
                if set.contains(&k1) {
                    triangles.push(Triangle::new(x, y, w));
                }
            }
        }
    }
    triangles.sort_unstable();
    triangles.dedup();

    // Rounds: every vertex sends each of its incident edges to the owners
    // that need it; receive load dominates. Lenzen batches of n.
    let max_receive_load = load.iter().copied().max().unwrap_or(0);
    let max_send_load = {
        // Each edge is needed by every triple containing its group pair:
        // ≤ g owners. Sender load ≈ deg·g.
        (0..n as VertexId)
            .map(|v| g.degree_without_loops(v) * groups)
            .max()
            .unwrap_or(0)
    };
    let rounds = lenzen_rounds(max_send_load, max_receive_load, n) as u64;
    CliqueEnumeration {
        triangles,
        rounds,
        groups,
        max_receive_load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::enumerate_triangles;
    use graph::gen;

    #[test]
    fn complete_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::gnp(50, 0.25, seed).unwrap();
            let out = clique_enumerate(&g);
            assert_eq!(out.triangles, enumerate_triangles(&g), "seed {seed}");
        }
    }

    #[test]
    fn complete_on_structured_graphs() {
        for g in [
            gen::complete(12).unwrap(),
            gen::ring_of_cliques(4, 5).unwrap().0,
            gen::planted_partition(&[20, 20], 0.5, 0.05, 3)
                .unwrap()
                .graph,
        ] {
            let out = clique_enumerate(&g);
            assert_eq!(out.triangles, enumerate_triangles(&g));
        }
    }

    #[test]
    fn triangle_free_graph_reports_nothing() {
        let g = gen::grid(6, 6).unwrap();
        let out = clique_enumerate(&g);
        assert!(out.triangles.is_empty());
    }

    #[test]
    fn group_count_is_cube_root() {
        let g = gen::gnp(64, 0.2, 1).unwrap();
        let out = clique_enumerate(&g);
        assert_eq!(out.groups, 4);
    }

    #[test]
    fn rounds_scale_like_cube_root_on_dense_graphs() {
        // On G(n, 1/2): receive load ≈ (g³/n)·3·(m/g²) = Θ(n^{4/3});
        // rounds ≈ load/n = Θ(n^{1/3}).
        let g1 = gen::gnp(64, 0.5, 3).unwrap();
        let g2 = gen::gnp(512, 0.5, 3).unwrap();
        let r1 = clique_enumerate(&g1).rounds.max(1);
        let r2 = clique_enumerate(&g2).rounds.max(1);
        let growth = r2 as f64 / r1 as f64;
        let want = (512f64 / 64.0).powf(1.0 / 3.0); // = 2
        assert!(
            growth < want * want * 4.0,
            "rounds grew by {growth}, expected ≈ {want}"
        );
    }

    #[test]
    fn tiny_graphs_are_trivial() {
        let g = gen::path(2).unwrap();
        let out = clique_enumerate(&g);
        assert!(out.triangles.is_empty());
        assert_eq!(out.rounds, 0);
    }
}
