//! Centralized triangle enumeration: ground truth and work baselines.

use graph::{Graph, VertexId};

/// A triangle, stored with its vertices sorted (`a < b < c`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triangle {
    /// Smallest vertex.
    pub a: VertexId,
    /// Middle vertex.
    pub b: VertexId,
    /// Largest vertex.
    pub c: VertexId,
}

impl Triangle {
    /// Builds a triangle from any vertex order.
    ///
    /// # Panics
    ///
    /// Panics if two vertices coincide (self loops never form triangles).
    pub fn new(x: VertexId, y: VertexId, z: VertexId) -> Self {
        let mut v = [x, y, z];
        v.sort_unstable();
        assert!(v[0] < v[1] && v[1] < v[2], "degenerate triangle {v:?}");
        Triangle {
            a: v[0],
            b: v[1],
            c: v[2],
        }
    }

    /// Whether the triangle contains vertex `v` — the filter point
    /// queries ([`crate::service::Query`]) are audited against.
    ///
    /// # Examples
    ///
    /// ```
    /// let t = triangle::Triangle::new(5, 2, 9);
    /// assert!(t.contains(9));
    /// assert!(!t.contains(3));
    /// ```
    pub fn contains(&self, v: VertexId) -> bool {
        self.a == v || self.b == v || self.c == v
    }
}

impl std::fmt::Display for Triangle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{{}, {}, {}}}", self.a, self.b, self.c)
    }
}

/// Enumerates all triangles by degree-ordered merge join: `O(m^{3/2})`.
///
/// Each triangle is reported exactly once, sorted.
///
/// # Example
///
/// ```
/// use triangle::enumerate_triangles;
/// let g = graph::gen::complete(4).unwrap();
/// assert_eq!(enumerate_triangles(&g).len(), 4);
/// ```
pub fn enumerate_triangles(g: &Graph) -> Vec<Triangle> {
    let n = g.n();
    // Rank by (degree, id): orient each edge from lower to higher rank.
    let mut rank = vec![0u32; n];
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_by_key(|&v| (g.degree_without_loops(v), v));
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    // Forward adjacency: out(v) = neighbors with higher rank, sorted by id.
    let mut out: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for (u, v) in g.edges() {
        if u == v {
            continue;
        }
        if rank[u as usize] < rank[v as usize] {
            out[u as usize].push(v);
        } else {
            out[v as usize].push(u);
        }
    }
    for list in &mut out {
        list.sort_unstable();
        list.dedup(); // parallel edges yield the same triangles
    }
    let mut found = Vec::new();
    for u in 0..n as VertexId {
        let ou = &out[u as usize];
        for &v in ou {
            let ov = &out[v as usize];
            // Merge-intersect out(u) and out(v).
            let (mut i, mut j) = (0usize, 0usize);
            while i < ou.len() && j < ov.len() {
                match ou[i].cmp(&ov[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        found.push(Triangle::new(u, v, ou[i]));
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    found.sort_unstable();
    found.dedup();
    found
}

/// Brute-force `O(n³)` reference enumerator (for cross-checking on small
/// graphs).
pub fn enumerate_triangles_naive(g: &Graph) -> Vec<Triangle> {
    let n = g.n() as VertexId;
    let mut found = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if !g.has_edge(a, b) {
                continue;
            }
            for c in (b + 1)..n {
                if g.has_edge(a, c) && g.has_edge(b, c) {
                    found.push(Triangle { a, b, c });
                }
            }
        }
    }
    found
}

/// Number of triangles in `g`.
pub fn count_triangles(g: &Graph) -> u64 {
    enumerate_triangles(g).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn complete_graph_count_is_binomial() {
        for n in [3usize, 4, 6, 9] {
            let g = gen::complete(n).unwrap();
            let want = (n * (n - 1) * (n - 2) / 6) as u64;
            assert_eq!(count_triangles(&g), want, "K{n}");
        }
    }

    #[test]
    fn triangle_free_families() {
        assert_eq!(count_triangles(&gen::cycle(8).unwrap()), 0);
        assert_eq!(count_triangles(&gen::grid(5, 5).unwrap()), 0);
        assert_eq!(count_triangles(&gen::star(10).unwrap()), 0);
        assert_eq!(count_triangles(&gen::hypercube(4).unwrap()), 0);
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::gnp(40, 0.2, seed).unwrap();
            let fast = enumerate_triangles(&g);
            let slow = enumerate_triangles_naive(&g);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn self_loops_and_parallel_edges_ignored() {
        let g = graph::Graph::from_edges(
            3,
            [(0, 1), (1, 2), (2, 0), (0, 0), (1, 2)], // loop + parallel
        )
        .unwrap();
        let ts = enumerate_triangles(&g);
        assert_eq!(ts, vec![Triangle { a: 0, b: 1, c: 2 }]);
    }

    #[test]
    fn triangle_normalizes_order() {
        let t = Triangle::new(5, 1, 3);
        assert_eq!((t.a, t.b, t.c), (1, 3, 5));
        assert_eq!(t.to_string(), "{1, 3, 5}");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_triangle_panics() {
        let _ = Triangle::new(1, 1, 2);
    }

    #[test]
    fn ring_of_cliques_counts() {
        let (g, _) = gen::ring_of_cliques(4, 5).unwrap();
        // Each K5 has C(5,3) = 10 triangles; connectors add none.
        assert_eq!(count_triangles(&g), 40);
    }
}
