//! Closed-form DLP triple-ownership accounting (DESIGN.md §11).
//!
//! Both triangle front ends charge the Dolev–Lenzen–Peled redistribution
//! step the same way: the (global) vertex set is hashed into
//! `g = ⌈|Vᵢ|^{1/3}⌉` groups, every cluster-incident edge lands in the
//! bucket of its endpoint-group pair, the `T = C(g+2, 3)` group triples
//! are assigned to cluster members in degree-proportional consecutive
//! lexicographic ranges, and each owner receives the (up to) three pair
//! buckets of each of its triples. The seed implementations *enumerated*
//! all `T` triples and walked each referenced bucket —
//! `O(C(g+2,3) · avg bucket)` work that dominated the measured cluster
//! phase. This module computes the identical quantities in closed form:
//!
//! * **Rank.** The lexicographic position of a sorted triple
//!   `(t₁ ≤ t₂ ≤ t₃)` is
//!   `rank = Σ_{x<t₁} (g-x)(g-x+1)/2 + Σ_{t₁≤y<t₂} (g-y) + (t₃-t₂)`,
//!   evaluated in `O(1)` from two prefix-sum tables.
//! * **Per-pair references.** The triples referencing pair `{a, b}` are
//!   exactly `{sort(a, b, x) : x ∈ [0, g)}` — `g` *distinct* triples
//!   (two different `x` give different multisets). Their ranks are
//!   strictly increasing in `x`, so the triples falling in an owner's
//!   range form a contiguous `x`-run found by one boundary walk.
//! * **Ownership boundaries.** Owner ranges are the running prefix sums
//!   of the per-member shares `⌈deg·T/Vol⌉` (min 1), truncated at `T`,
//!   with the last member absorbing any remainder — exactly the
//!   flush-on-budget walk of the enumerating loop.
//!
//! Total accounting work is `O(g² + Σ|bucket| + |Vᵢ|)` (and `g³ = O(|Vᵢ|)`
//! by the choice of `g`) instead of `O(T · avg bucket)`. The enumerating
//! references are retained here verbatim ([`DlpInstance::enumerated_batches`],
//! [`DlpInstance::enumerated_owner_loads`]) so the equivalence suite can
//! pin the closed form to them bit-for-bit, and so a regression back to
//! enumeration is measurable (both paths count their operations).
//!
//! The two front ends differ in one semantic knob ([`PairWeighting`]):
//! the pipeline delivers each *distinct* pair bucket of a triple once
//! (degenerate triples dedup their repeated pairs), while the analytic
//! `congest_algo` charge counts every pair slot, so a pair repeated by a
//! degenerate triple is delivered with multiplicity. In closed form the
//! multiplicity is a weight on the referencing `x`: for `a < b` the
//! triple `{a, b, x}` contains pair `{a, b}` twice iff `x ∈ {a, b}`, and
//! for `a = b` three times iff `x = a`.

use graph::{Graph, VertexId, VertexSet};
use routing::EdgeBatch;

/// How a triple's (up to three) pair-bucket references are counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairWeighting {
    /// Each *distinct* pair of a triple is delivered once (the
    /// pipeline's semantics: degenerate triples dedup their repeats).
    /// Every pair bucket is referenced by exactly `g` triples.
    DedupPairs,
    /// Every pair slot counts (the analytic `congest_algo` semantics).
    /// Every pair bucket accrues total weight `g + 2`.
    TripleMultiplicity,
}

/// Aggregate per-vertex word loads of one cluster's DLP redistribution,
/// plus the operation count that produced them.
///
/// Vertex ids are **cluster-local member indices** (positions in the
/// sorted member list), matching the induced subgraph the routing
/// hierarchy is built on.
#[derive(Debug, Clone)]
pub struct AggregateLoads {
    /// `(holder, words)`: each holder sends its incident bucket entries
    /// once per referencing triple.
    pub holders: Vec<(VertexId, u64)>,
    /// `(owner, words)`: each owner receives the referenced buckets of
    /// its triple range.
    pub owners: Vec<(VertexId, u64)>,
    /// Operations the closed-form accounting actually performed.
    pub ops: u64,
    /// The `O(g² + Σ|bucket| + |Vᵢ|)` budget those operations must stay
    /// under — recorded next to `ops` so a regression to triple
    /// enumeration trips the ledger guard.
    pub ops_budget: u64,
}

/// One cluster's DLP instance: the group hash, the pair buckets' source
/// edges and the degree-proportional owner geometry.
pub struct DlpInstance<'a> {
    graph: &'a Graph,
    part: &'a VertexSet,
    members: &'a [VertexId],
    groups: usize,
    salt: u64,
    /// `cum_block[x] = Σ_{y<x} (g-y)(g-y+1)/2`: rank of the first triple
    /// with minimum `x`.
    cum_block: Vec<u64>,
    /// `cum_line[y] = Σ_{y'<y} (g-y')`: within-block offsets.
    cum_line: Vec<u64>,
    /// Owner boundaries: member `i` owns ranks `[bounds[i], bounds[i+1])`
    /// (members past `bounds.len() - 1` own nothing).
    bounds: Vec<u64>,
}

impl<'a> DlpInstance<'a> {
    /// Builds the instance for one cluster.
    ///
    /// `graph` is the level graph supplying adjacency and degrees,
    /// `part` the cluster's vertex set and `members` its sorted vertex
    /// list (`part.iter().collect()`), `salt` the level's group-hash
    /// salt. `members` must be non-empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use graph::VertexSet;
    /// use triangle::dlp::DlpInstance;
    ///
    /// let g = graph::gen::gnp(30, 0.3, 7).unwrap();
    /// let part = VertexSet::from_iter(g.n(), 0..30u32);
    /// let members: Vec<u32> = part.iter().collect();
    /// let inst = DlpInstance::new(&g, &part, &members, 42);
    /// assert_eq!(inst.groups(), 4); // ⌈30^{1/3}⌉
    /// assert_eq!(inst.triple_total(), 20); // C(4+2, 3)
    /// ```
    pub fn new(graph: &'a Graph, part: &'a VertexSet, members: &'a [VertexId], salt: u64) -> Self {
        assert!(!members.is_empty(), "DLP instance over an empty cluster");
        let groups = (members.len() as f64).powf(1.0 / 3.0).ceil().max(1.0) as usize;
        let g = groups as u64;
        let mut cum_block = Vec::with_capacity(groups + 1);
        let mut cum_line = Vec::with_capacity(groups + 1);
        let (mut cb, mut cl) = (0u64, 0u64);
        for x in 0..=g {
            cum_block.push(cb);
            cum_line.push(cl);
            if x < g {
                let s = g - x;
                cb += s * (s + 1) / 2;
                cl += s;
            }
        }
        let triple_total = cum_block[groups]; // C(g+2, 3)

        // Ownership boundaries: the flush-on-budget walk in closed form.
        let total_deg: u64 = members
            .iter()
            .map(|&v| graph.degree(v) as u64)
            .sum::<u64>()
            .max(1);
        let mut bounds = vec![0u64];
        for (i, &v) in members.iter().enumerate() {
            let start = *bounds.last().expect("bounds starts non-empty");
            if start >= triple_total {
                break;
            }
            let share = (graph.degree(v) as u64 * triple_total)
                .div_ceil(total_deg)
                .max(1);
            let end = if i + 1 == members.len() {
                triple_total // the last member absorbs the tail
            } else {
                (start + share).min(triple_total)
            };
            bounds.push(end);
        }

        DlpInstance {
            graph,
            part,
            members,
            groups,
            salt,
            cum_block,
            cum_line,
            bounds,
        }
    }

    /// The group count `g = ⌈|Vᵢ|^{1/3}⌉`.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// `T = C(g+2, 3)`, the number of group triples.
    pub fn triple_total(&self) -> u64 {
        self.cum_block[self.groups]
    }

    #[inline]
    fn group_of(&self, v: VertexId) -> u32 {
        ((v as u64).wrapping_mul(0x9E3779B1).wrapping_add(self.salt) % self.groups as u64) as u32
    }

    #[inline]
    fn pair_index(&self, x: u32, y: u32) -> usize {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        lo as usize * self.groups + hi as usize
    }

    /// Lexicographic rank of the sorted triple `(t1 ≤ t2 ≤ t3)`.
    #[inline]
    fn rank(&self, t1: u32, t2: u32, t3: u32) -> u64 {
        self.cum_block[t1 as usize]
            + (self.cum_line[t2 as usize] - self.cum_line[t1 as usize])
            + (t3 - t2) as u64
    }

    /// Whether the level-graph edge `(u, w)` out of member `u` is
    /// charged to `u`'s bucket: every incident edge is charged at
    /// exactly one cluster endpoint (the lower one for intra edges).
    #[inline]
    fn holds_edge(&self, u: VertexId, w: VertexId) -> bool {
        w > u || !self.part.contains(w)
    }

    /// Visits the weighted owner references of pair `(a ≤ b)`:
    /// `emit(owner_index, weight_sum)` for every owner whose range
    /// contains at least one of the `g` referencing triples, owners
    /// ascending. Returns the number of loop operations performed.
    fn pair_owner_refs(
        &self,
        a: u32,
        b: u32,
        weighting: PairWeighting,
        mut emit: impl FnMut(usize, u64),
    ) -> u64 {
        let mut ops = 0u64;
        let mut owner = usize::MAX;
        let mut acc = 0u64;
        for x in 0..self.groups as u32 {
            ops += 1;
            // sort(a, b, x): a ≤ b already.
            let (t1, t2, t3) = if x <= a {
                (x, a, b)
            } else if x <= b {
                (a, x, b)
            } else {
                (a, b, x)
            };
            let r = self.rank(t1, t2, t3);
            let w = match weighting {
                PairWeighting::DedupPairs => 1,
                PairWeighting::TripleMultiplicity if a == b => {
                    if x == a {
                        3
                    } else {
                        1
                    }
                }
                PairWeighting::TripleMultiplicity => {
                    if x == a || x == b {
                        2
                    } else {
                        1
                    }
                }
            };
            // Ranks increase with x, so the owner pointer only advances.
            let o = if owner == usize::MAX {
                self.bounds.partition_point(|&bound| bound <= r) - 1
            } else {
                let mut o = owner;
                while self.bounds[o + 1] <= r {
                    o += 1;
                    ops += 1;
                }
                o
            };
            if o != owner {
                if owner != usize::MAX {
                    emit(owner, acc);
                }
                owner = o;
                acc = 0;
            }
            acc += w;
        }
        if owner != usize::MAX {
            emit(owner, acc);
        }
        ops
    }

    /// Closed-form aggregate loads: per-holder and per-owner word totals
    /// of the full batch list, without materializing it.
    ///
    /// `pair_raw` and `holder_inc` are caller scratch (cleared and
    /// resized here) so per-cluster jobs reuse their allocations.
    ///
    /// # Examples
    ///
    /// Every routed word has exactly one holder and one owner, and the
    /// closed form stays inside its own operation budget:
    ///
    /// ```
    /// use graph::VertexSet;
    /// use triangle::dlp::{DlpInstance, PairWeighting};
    ///
    /// let g = graph::gen::gnp(30, 0.3, 7).unwrap();
    /// let part = VertexSet::from_iter(g.n(), 0..30u32);
    /// let members: Vec<u32> = part.iter().collect();
    /// let inst = DlpInstance::new(&g, &part, &members, 42);
    /// let (mut pair_raw, mut holder_inc) = (Vec::new(), Vec::new());
    /// let loads = inst.aggregate_loads(
    ///     PairWeighting::DedupPairs, &mut pair_raw, &mut holder_inc);
    /// let sent: u64 = loads.holders.iter().map(|&(_, w)| w).sum();
    /// let recv: u64 = loads.owners.iter().map(|&(_, w)| w).sum();
    /// assert_eq!(sent, recv);
    /// assert!(loads.ops <= loads.ops_budget);
    /// ```
    pub fn aggregate_loads(
        &self,
        weighting: PairWeighting,
        pair_raw: &mut Vec<u64>,
        holder_inc: &mut Vec<u64>,
    ) -> AggregateLoads {
        let g = self.groups;
        let mut ops = 0u64;

        // Bucket pass: raw (with-multiplicity) bucket sizes plus each
        // holder's incident-entry count.
        pair_raw.clear();
        pair_raw.resize(g * g, 0);
        holder_inc.clear();
        holder_inc.resize(self.members.len(), 0);
        for (lu, &u) in self.members.iter().enumerate() {
            let gu = self.group_of(u);
            for &w in self.graph.neighbors(u) {
                ops += 1;
                if self.holds_edge(u, w) {
                    pair_raw[self.pair_index(gu, self.group_of(w))] += 1;
                    holder_inc[lu] += 1;
                }
            }
        }

        // Reference pass: each non-empty pair bucket contributes
        // `weight × raw` words to every owner referencing it.
        let owners_cnt = self.bounds.len() - 1;
        let mut recv = vec![0u64; owners_cnt];
        for a in 0..g as u32 {
            for b in a..g as u32 {
                ops += 1;
                let raw = pair_raw[self.pair_index(a, b)];
                if raw == 0 {
                    continue;
                }
                ops += self.pair_owner_refs(a, b, weighting, |o, w| recv[o] += w * raw);
            }
        }

        // Every pair bucket is referenced with the same total weight, so
        // holder loads need no per-pair accounting at all.
        let per_pair_refs = match weighting {
            PairWeighting::DedupPairs => g as u64,
            PairWeighting::TripleMultiplicity => g as u64 + 2,
        };
        let holders: Vec<(VertexId, u64)> = holder_inc
            .iter()
            .enumerate()
            .filter(|&(_, &inc)| inc > 0)
            .map(|(lu, &inc)| (lu as VertexId, inc * per_pair_refs))
            .collect();
        let owners: Vec<(VertexId, u64)> = recv
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0)
            .map(|(o, &w)| (o as VertexId, w))
            .collect();
        ops += (self.members.len() + owners_cnt) as u64;
        debug_assert_eq!(
            holders.iter().map(|&(_, w)| w).sum::<u64>(),
            owners.iter().map(|&(_, w)| w).sum::<u64>(),
            "every routed word has one holder and one owner"
        );

        // The closed form's complexity contract. `vol` bounds the bucket
        // pass (every member adjacency entry is scanned once), `g²`/`g³`
        // the pair passes (`g³ = O(|Vᵢ|)` by `g = ⌈|Vᵢ|^{1/3}⌉`), `|Vᵢ|`
        // the boundary walk and load emission.
        let vol: u64 = self
            .members
            .iter()
            .map(|&v| self.graph.neighbors(v).len() as u64)
            .sum();
        let gg = g as u64;
        let ops_budget = 2 * (vol + 2 * self.members.len() as u64 + gg * gg + gg * gg * gg + 64);
        debug_assert!(ops <= ops_budget, "closed form exceeded its own budget");

        AggregateLoads {
            holders,
            owners,
            ops,
            ops_budget,
        }
    }

    /// Materializes the closed-form batch list (pipeline semantics:
    /// [`PairWeighting::DedupPairs`], one batch per (holder, owner) pair
    /// with a non-zero word total, canonically sorted by `(src, dst)`).
    ///
    /// Test-facing: production uses [`DlpInstance::aggregate_loads`],
    /// which summarizes this exact list without building it — the
    /// equivalence suite pins this emitter bit-for-bit against
    /// [`DlpInstance::enumerated_batches`] and the aggregate loads
    /// against both.
    pub fn closed_form_batches(&self) -> Vec<EdgeBatch> {
        let g = self.groups;
        // Aggregated buckets: (holder, multiplicity), holders ascending
        // because members are scanned in ascending local id.
        let mut buckets: Vec<Vec<(VertexId, u32)>> = vec![Vec::new(); g * g];
        for (lu, &u) in self.members.iter().enumerate() {
            let gu = self.group_of(u);
            for &w in self.graph.neighbors(u) {
                if self.holds_edge(u, w) {
                    let bucket = &mut buckets[self.pair_index(gu, self.group_of(w))];
                    match bucket.last_mut() {
                        Some((h, mult)) if *h == lu as VertexId => *mult += 1,
                        _ => bucket.push((lu as VertexId, 1)),
                    }
                }
            }
        }

        // Owner-major replay of the references.
        let mut refs: Vec<(u32, u32, u64)> = Vec::new(); // (owner, pair, count)
        for a in 0..g as u32 {
            for b in a..g as u32 {
                let pair = self.pair_index(a, b);
                if buckets[pair].is_empty() {
                    continue;
                }
                self.pair_owner_refs(a, b, PairWeighting::DedupPairs, |o, w| {
                    refs.push((o as u32, pair as u32, w));
                });
            }
        }
        refs.sort_unstable_by_key(|&(o, p, _)| (o, p));

        let mut batches: Vec<EdgeBatch> = Vec::new();
        let mut counts = vec![0u64; self.members.len()];
        let mut touched: Vec<VertexId> = Vec::new();
        let mut i = 0usize;
        while i < refs.len() {
            let owner = refs[i].0;
            while i < refs.len() && refs[i].0 == owner {
                let (_, pair, cnt) = refs[i];
                for &(h, mult) in &buckets[pair as usize] {
                    if counts[h as usize] == 0 {
                        touched.push(h);
                    }
                    counts[h as usize] += mult as u64 * cnt;
                }
                i += 1;
            }
            for &h in &touched {
                batches.push(EdgeBatch {
                    src: h,
                    dst: owner,
                    words: counts[h as usize] as usize,
                });
                counts[h as usize] = 0;
            }
            touched.clear();
        }
        batches.sort_unstable_by_key(|b| (b.src, b.dst));
        batches
    }

    /// The retained pre-closed-form **enumerating reference** for the
    /// pipeline's batch list: walks all `C(g+2, 3)` triples, dedups each
    /// triple's repeated pairs, and accumulates per-(holder, owner)
    /// words through the flush-on-budget owner walk. Returns the batch
    /// list (canonically sorted by `(src, dst)`, local ids) and the
    /// operation count the walk performed — the quantity the closed
    /// form's `ops_budget` guard is calibrated against.
    pub fn enumerated_batches(&self) -> (Vec<EdgeBatch>, u64) {
        let g = self.groups;
        let mut ops = 0u64;
        // Raw (per-edge) holder buckets, exactly as the seed built them.
        let mut pair_holders: Vec<Vec<VertexId>> = vec![Vec::new(); g * g];
        for (lu, &u) in self.members.iter().enumerate() {
            let gu = self.group_of(u);
            for &w in self.graph.neighbors(u) {
                ops += 1;
                if self.holds_edge(u, w) {
                    pair_holders[self.pair_index(gu, self.group_of(w))].push(lu as VertexId);
                }
            }
        }

        let mut counts = vec![0u64; self.members.len()];
        let mut touched: Vec<VertexId> = Vec::new();
        let mut batches: Vec<EdgeBatch> = Vec::new();
        let mut flush = |owner: u32, counts: &mut Vec<u64>, touched: &mut Vec<VertexId>| {
            for &h in touched.iter() {
                batches.push(EdgeBatch {
                    src: h,
                    dst: owner,
                    words: counts[h as usize] as usize,
                });
                counts[h as usize] = 0;
            }
            touched.clear();
        };
        let mut owner = 0u32;
        for a in 0..g as u32 {
            for b in a..g as u32 {
                for c in b..g as u32 {
                    ops += 1;
                    let mut pairs = [
                        self.pair_index(a, b),
                        self.pair_index(b, c),
                        self.pair_index(a, c),
                    ];
                    pairs.sort_unstable();
                    for (i, &pair) in pairs.iter().enumerate() {
                        if i > 0 && pairs[i - 1] == pair {
                            continue; // degenerate triple: deliver once
                        }
                        for &h in &pair_holders[pair] {
                            ops += 1;
                            if counts[h as usize] == 0 {
                                touched.push(h);
                            }
                            counts[h as usize] += 1;
                        }
                    }
                    let r = self.rank(a, b, c);
                    if (owner as usize) + 1 < self.bounds.len() - 1
                        && r + 1 >= self.bounds[owner as usize + 1]
                    {
                        flush(owner, &mut counts, &mut touched);
                        owner += 1;
                    }
                }
            }
        }
        flush(owner, &mut counts, &mut touched);
        batches.sort_unstable_by_key(|b| (b.src, b.dst));
        (batches, ops)
    }

    /// The retained enumerating reference for the analytic front end's
    /// per-owner receive loads ([`PairWeighting::TripleMultiplicity`],
    /// no pair dedup): returns `(owner_index, words)` for every owner
    /// with a non-zero load, owners ascending.
    pub fn enumerated_owner_loads(&self) -> Vec<(VertexId, u64)> {
        let g = self.groups;
        let mut pair_raw = vec![0u64; g * g];
        for (lu, &u) in self.members.iter().enumerate() {
            let _ = lu;
            let gu = self.group_of(u);
            for &w in self.graph.neighbors(u) {
                if self.holds_edge(u, w) {
                    pair_raw[self.pair_index(gu, self.group_of(w))] += 1;
                }
            }
        }
        let mut recv = vec![0u64; self.members.len()];
        let mut owner = 0usize;
        for a in 0..g as u32 {
            for b in a..g as u32 {
                for c in b..g as u32 {
                    recv[owner] += pair_raw[self.pair_index(a, b)]
                        + pair_raw[self.pair_index(b, c)]
                        + pair_raw[self.pair_index(a, c)];
                    let r = self.rank(a, b, c);
                    if owner + 1 < self.bounds.len() - 1 && r + 1 >= self.bounds[owner + 1] {
                        owner += 1;
                    }
                }
            }
        }
        recv.iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0)
            .map(|(o, &w)| (o as VertexId, w))
            .collect()
    }
}
