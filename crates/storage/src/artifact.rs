//! Persisting a built [`QueryEngine`] into the CSR file's
//! frozen-artifact section, and restoring it without re-decomposing.
//!
//! The decomposition and the per-cluster hierarchy builds dominate the
//! serve tier's startup; the artifact section makes them a **one-time**
//! cost per dataset. [`store`] flattens the engine
//! ([`QueryEngine::to_frozen`]), serializes it with the little-endian
//! codec below, and atomically rewrites the CSR file with the payload
//! appended (temp sibling + rename — a concurrently mapped reader keeps
//! its old-inode view). [`load`] decodes the payload of an opened
//! [`CsrFile`] and rebuilds the engine through
//! [`QueryEngine::from_frozen`], which re-validates every structural
//! invariant — so a corrupt payload is a typed error, never a panic.
//!
//! The payload bytes are covered by the file checksum like every other
//! section, and the byte layout is specified in `DATASETS.md`.

use crate::convert::assemble_csr_with_artifact;
use crate::enc::{ByteReader, ByteWriter};
use crate::format::FLAG_HAS_ARTIFACT;
use crate::view::CsrFile;
use crate::{Result, StorageError};
use expander::decomposition::RemovalTag;
use expander::ClusterCertificate;
use routing::{HierarchyParts, LevelParts};
use std::path::Path;
use triangle::service::{FrozenCluster, FrozenEngine, FrozenReport, QueryEngine};

/// Version byte of the artifact payload (independent of the file format
/// version: the graph sections can stay readable across artifact bumps).
pub const ARTIFACT_VERSION: u8 = 1;

fn bad(reason: String) -> StorageError {
    StorageError::Artifact { reason }
}

/// Persists `engine` into the artifact section of the CSR file at
/// `path`. The graph sections are copied through unchanged; the file is
/// rewritten via a temporary sibling and an atomic rename, and the
/// checksum re-covers everything. Storing over an existing artifact
/// replaces it.
///
/// # Errors
///
/// Any [`CsrFile::open`] error for `path`, [`StorageError::Artifact`] if
/// the engine was built for a different graph than the file holds, and
/// [`StorageError::Io`] on write failure.
///
/// # Examples
///
/// ```
/// use storage::{artifact, write_graph, CsrFile};
/// use triangle::service::{Emit, Query, QueryEngine};
/// use triangle::PipelineParams;
///
/// let g = graph::gen::gnp(30, 0.2, 7).unwrap();
/// let dir = storage::test_dir("doc-artifact");
/// let path = dir.join("g.csr");
/// write_graph(&g, &path).unwrap();
///
/// let engine = QueryEngine::build(&g, &PipelineParams::default());
/// artifact::store(&path, &engine).unwrap();
///
/// let file = CsrFile::open(&path).unwrap();
/// let restored = artifact::load(&file).unwrap();
/// let q = Query::Vertex { v: 3, emit: Emit::Count };
/// assert_eq!(engine.answer(q), restored.answer(q)); // charge included
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub fn store(path: &Path, engine: &QueryEngine) -> Result<()> {
    let file = CsrFile::open(path)?;
    let report = engine.build_report();
    if report.n != file.n() || report.m as u64 != file.m() {
        return Err(bad(format!(
            "engine built for n = {}, m = {}; file holds n = {}, m = {}",
            report.n,
            report.m,
            file.n(),
            file.m()
        )));
    }
    let payload = encode(&engine.to_frozen());
    let view = file.view();
    let n = file.n();
    let degrees: Vec<u64> = (0..n)
        .map(|v| view.offset(v + 1) - view.offset(v))
        .collect();
    let loops: Vec<u32> = (0..n).map(|v| view.loops_of(v as u32)).collect();
    let flags = file.header().flags | FLAG_HAS_ARTIFACT;
    assemble_csr_with_artifact(
        path,
        n,
        file.m(),
        flags,
        &degrees,
        &loops,
        file.total_self_loops(),
        |sink| {
            for i in 0..file.header().adj_len {
                sink.put(&view.adj_at(i).to_le_bytes())?;
            }
            Ok(())
        },
        Some(&payload),
    )
}

/// Restores a [`QueryEngine`] from the artifact section of an opened
/// file. The payload is decoded with bounds-checked reads and the engine
/// is rebuilt through [`QueryEngine::from_frozen`], which re-validates
/// every invariant a query relies on.
///
/// # Errors
///
/// [`StorageError::Artifact`] when the file carries no artifact, the
/// payload is malformed, or the frozen state fails validation.
///
/// # Examples
///
/// See [`store`].
pub fn load(file: &CsrFile) -> Result<QueryEngine> {
    let bytes = file
        .artifact_bytes()
        .ok_or_else(|| bad("file carries no frozen artifact".to_string()))?;
    let frozen = decode(bytes)?;
    if frozen.n != file.n() || frozen.report.m as u64 != file.m() {
        return Err(bad(format!(
            "artifact describes n = {}, m = {}; file holds n = {}, m = {}",
            frozen.n,
            frozen.report.m,
            file.n(),
            file.m()
        )));
    }
    QueryEngine::from_frozen(frozen).map_err(|e| bad(e.reason))
}

/// Where [`restore_or_build`] got its engine from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSource {
    /// Restored from the file's frozen-artifact section (cheap).
    Artifact,
    /// Built from scratch off the file's graph sections — the file
    /// carried no artifact (expensive; persist one with [`store`]).
    Built,
}

/// Re-opens the CSR file at `path` and produces a serving-ready
/// [`QueryEngine`]: restored from the frozen-artifact section when one is
/// present, otherwise **built** from the file's graph with `params`. The
/// serve frontend's startup *and* hot-swap path — each reload re-opens
/// the file fresh, so an atomically replaced file (the crate-wide
/// write-new-then-rename contract) is picked up in full.
///
/// # Errors
///
/// Any [`CsrFile::open`] error, a corrupt artifact payload
/// ([`StorageError::Artifact`]), or a graph section that fails
/// materialization. A *missing* artifact is not an error — that is the
/// build fallback.
///
/// # Examples
///
/// ```
/// use storage::artifact::{restore_or_build, store, EngineSource};
/// use triangle::PipelineParams;
///
/// let g = graph::gen::gnp(30, 0.2, 7).unwrap();
/// let dir = storage::test_dir("doc-restore-or-build");
/// let path = dir.join("g.csr");
/// storage::write_graph(&g, &path).unwrap();
///
/// // No artifact yet: falls back to a fresh build…
/// let (engine, source) = restore_or_build(&path, &PipelineParams::default()).unwrap();
/// assert_eq!(source, EngineSource::Built);
///
/// // …and once one is stored, restore takes over.
/// store(&path, &engine).unwrap();
/// let (_, source) = restore_or_build(&path, &PipelineParams::default()).unwrap();
/// assert_eq!(source, EngineSource::Artifact);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub fn restore_or_build(
    path: &Path,
    params: &triangle::PipelineParams,
) -> Result<(QueryEngine, EngineSource)> {
    let file = CsrFile::open(path)?;
    if file.artifact_bytes().is_some() {
        Ok((load(&file)?, EngineSource::Artifact))
    } else {
        let g = file.to_graph()?;
        Ok((QueryEngine::build(&g, params), EngineSource::Built))
    }
}

/// Serializes a [`FrozenEngine`] into the artifact payload bytes.
///
/// # Examples
///
/// ```
/// use storage::artifact::{decode, encode};
/// use triangle::service::QueryEngine;
/// use triangle::PipelineParams;
///
/// let g = graph::gen::gnp(20, 0.3, 11).unwrap();
/// let frozen = QueryEngine::build(&g, &PipelineParams::default()).to_frozen();
/// assert_eq!(decode(&encode(&frozen)).unwrap(), frozen);
/// ```
pub fn encode(frozen: &FrozenEngine) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(ARTIFACT_VERSION);
    w.put_u64(frozen.n as u64);
    w.put_u32_slice(&frozen.cluster_of);
    w.put_u64(frozen.members.len() as u64);
    for ms in &frozen.members {
        w.put_u32_slice(ms);
    }
    w.put_u64(frozen.inter_cluster.len() as u64);
    for &(u, v, tag) in &frozen.inter_cluster {
        w.put_u32(u);
        w.put_u32(v);
        w.put_u8(match tag {
            RemovalTag::Remove1 => 1,
            RemovalTag::Remove2 => 2,
            RemovalTag::Remove3 => 3,
        });
    }
    w.put_f64(frozen.phi);
    for c in &frozen.certificates {
        w.put_u64(c.size as u64);
        w.put_u64(c.internal_edges as u64);
        w.put_u64(c.volume as u64);
        w.put_u64(c.incident_removed as u64);
        w.put_f64(c.phi_target);
    }
    for fc in &frozen.clusters {
        w.put_u64(fc.adj.len() as u64);
        for row in &fc.adj {
            w.put_u32_slice(row);
        }
        w.put_u32_slice(&fc.local_deg);
        match &fc.hierarchy {
            None => w.put_u8(0),
            Some(h) => {
                w.put_u8(1);
                w.put_u64(h.k as u64);
                w.put_u64(h.beta as u64);
                w.put_u64(h.tau_mix as u64);
                w.put_u64(h.n as u64);
                w.put_u64(h.preprocessing_rounds);
                w.put_u64(h.levels.len() as u64);
                for level in &h.levels {
                    w.put_u32_slice(&level.group_of);
                    w.put_u64(level.portals.len() as u64);
                    for portal in &level.portals {
                        w.put_u32_slice(portal);
                    }
                }
            }
        }
    }
    w.put_u32_slice(&frozen.local_of);
    w.put_u64(frozen.report.m as u64);
    w.put_u64(frozen.report.decomposition_rounds);
    w.put_u64(frozen.report.wall_decompose_ns);
    w.put_u64(frozen.report.wall_freeze_ns);
    w.into_bytes()
}

/// Deserializes artifact payload bytes back into a [`FrozenEngine`].
/// Bounds-checked throughout: truncated or trailing bytes, unknown
/// versions, and absurd length prefixes are typed errors.
///
/// Decoding checks only the byte grammar; the *semantic* invariants are
/// [`QueryEngine::from_frozen`]'s job (which [`load`] runs for you).
///
/// # Errors
///
/// [`StorageError::Artifact`] naming the malformation.
///
/// # Examples
///
/// See [`encode`].
pub fn decode(bytes: &[u8]) -> Result<FrozenEngine> {
    let mut r = ByteReader::new(bytes);
    let version = r.get_u8()?;
    if version != ARTIFACT_VERSION {
        return Err(bad(format!(
            "unsupported artifact version {version} (this build reads {ARTIFACT_VERSION})"
        )));
    }
    let n = get_usize(&mut r)?;
    let cluster_of = r.get_u32_vec()?;
    let x = r.get_len()?;
    let mut members = Vec::with_capacity(x);
    for _ in 0..x {
        members.push(r.get_u32_vec()?);
    }
    let crossing = r.get_len()?;
    let mut inter_cluster = Vec::with_capacity(crossing);
    for _ in 0..crossing {
        let u = r.get_u32()?;
        let v = r.get_u32()?;
        let tag = match r.get_u8()? {
            1 => RemovalTag::Remove1,
            2 => RemovalTag::Remove2,
            3 => RemovalTag::Remove3,
            t => return Err(bad(format!("unknown removal tag {t}"))),
        };
        inter_cluster.push((u, v, tag));
    }
    let phi = r.get_f64()?;
    let mut certificates = Vec::with_capacity(x);
    for _ in 0..x {
        certificates.push(ClusterCertificate {
            size: get_usize(&mut r)?,
            internal_edges: get_usize(&mut r)?,
            volume: get_usize(&mut r)?,
            incident_removed: get_usize(&mut r)?,
            phi_target: r.get_f64()?,
        });
    }
    let mut clusters = Vec::with_capacity(x);
    for _ in 0..x {
        let rows = r.get_len()?;
        let mut adj = Vec::with_capacity(rows);
        for _ in 0..rows {
            adj.push(r.get_u32_vec()?);
        }
        let local_deg = r.get_u32_vec()?;
        let hierarchy = match r.get_u8()? {
            0 => None,
            1 => {
                let k = get_usize(&mut r)?;
                let beta = get_usize(&mut r)?;
                let tau_mix = get_usize(&mut r)?;
                let hn = get_usize(&mut r)?;
                let preprocessing_rounds = r.get_u64()?;
                let level_count = r.get_len()?;
                let mut levels = Vec::with_capacity(level_count);
                for _ in 0..level_count {
                    let group_of = r.get_u32_vec()?;
                    let groups = r.get_len()?;
                    let mut portals = Vec::with_capacity(groups);
                    for _ in 0..groups {
                        portals.push(r.get_u32_vec()?);
                    }
                    levels.push(LevelParts { group_of, portals });
                }
                Some(HierarchyParts {
                    levels,
                    k,
                    beta,
                    tau_mix,
                    n: hn,
                    preprocessing_rounds,
                })
            }
            t => return Err(bad(format!("hierarchy presence flag must be 0/1, got {t}"))),
        };
        clusters.push(FrozenCluster {
            adj,
            local_deg,
            hierarchy,
        });
    }
    let local_of = r.get_u32_vec()?;
    let report = FrozenReport {
        m: get_usize(&mut r)?,
        decomposition_rounds: r.get_u64()?,
        wall_decompose_ns: r.get_u64()?,
        wall_freeze_ns: r.get_u64()?,
    };
    r.finish()?;
    Ok(FrozenEngine {
        n,
        cluster_of,
        members,
        inter_cluster,
        phi,
        certificates,
        clusters,
        local_of,
        report,
    })
}

fn get_usize(r: &mut ByteReader<'_>) -> Result<usize> {
    usize::try_from(r.get_u64()?).map_err(|_| bad("count exceeds this platform's usize".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::write_graph;
    use triangle::service::{Emit, Query};
    use triangle::PipelineParams;

    fn engine_for(n: usize, p: f64, seed: u64) -> (graph::Graph, QueryEngine) {
        let g = graph::gen::gnp(n, p, seed).unwrap();
        let e = QueryEngine::build(&g, &PipelineParams::default());
        (g, e)
    }

    #[test]
    fn codec_roundtrips_exactly() {
        let (_, engine) = engine_for(60, 0.2, 13);
        let frozen = engine.to_frozen();
        let decoded = decode(&encode(&frozen)).unwrap();
        assert_eq!(decoded, frozen);
    }

    #[test]
    fn store_then_load_is_query_identical() {
        let (g, engine) = engine_for(50, 0.2, 17);
        let dir = crate::test_dir("artifact-roundtrip");
        let path = dir.join("g.csr");
        write_graph(&g, &path).unwrap();
        store(&path, &engine).unwrap();
        let file = CsrFile::open(&path).unwrap();
        assert!(file.header().has_artifact());
        // The graph sections survive the rewrite byte-for-byte.
        assert_eq!(file.to_graph().unwrap(), g);
        let restored = load(&file).unwrap();
        for v in 0..g.n() as u32 {
            let q = Query::Vertex {
                v,
                emit: Emit::Enumerate,
            };
            assert_eq!(engine.answer(q), restored.answer(q), "vertex {v}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn storing_twice_replaces_the_artifact() {
        let (g, engine) = engine_for(40, 0.25, 19);
        let dir = crate::test_dir("artifact-replace");
        let path = dir.join("g.csr");
        write_graph(&g, &path).unwrap();
        store(&path, &engine).unwrap();
        store(&path, &engine).unwrap();
        let file = CsrFile::open(&path).unwrap();
        let restored = load(&file).unwrap();
        let q = Query::Vertex {
            v: 1,
            emit: Emit::Count,
        };
        assert_eq!(engine.answer(q), restored.answer(q));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_engine_is_rejected() {
        let (g, _) = engine_for(30, 0.2, 23);
        let (_, other_engine) = engine_for(31, 0.2, 23);
        let dir = crate::test_dir("artifact-mismatch");
        let path = dir.join("g.csr");
        write_graph(&g, &path).unwrap();
        assert!(matches!(
            store(&path, &other_engine),
            Err(StorageError::Artifact { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_artifact_is_a_typed_error() {
        let (g, _) = engine_for(20, 0.3, 29);
        let dir = crate::test_dir("artifact-missing");
        let path = dir.join("g.csr");
        write_graph(&g, &path).unwrap();
        let file = CsrFile::open(&path).unwrap();
        assert!(file.artifact_bytes().is_none());
        assert!(matches!(load(&file), Err(StorageError::Artifact { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_or_build_prefers_the_artifact_and_answers_identically() {
        let (g, engine) = engine_for(40, 0.2, 37);
        let dir = crate::test_dir("artifact-restore-or-build");
        let path = dir.join("g.csr");
        write_graph(&g, &path).unwrap();
        let params = PipelineParams::default();
        let (built, source) = restore_or_build(&path, &params).unwrap();
        assert_eq!(source, EngineSource::Built);
        store(&path, &engine).unwrap();
        let (restored, source) = restore_or_build(&path, &params).unwrap();
        assert_eq!(source, EngineSource::Artifact);
        for v in 0..g.n() as u32 {
            let q = Query::Vertex {
                v,
                emit: Emit::Enumerate,
            };
            assert_eq!(engine.answer(q), restored.answer(q), "vertex {v}");
            assert_eq!(
                engine.answer(q),
                built.answer(q),
                "built engine, vertex {v}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_payloads_never_panic() {
        let (_, engine) = engine_for(40, 0.2, 31);
        let pristine = encode(&engine.to_frozen());
        // Truncations at every prefix length decode to a typed error.
        for cut in 0..pristine.len().min(200) {
            assert!(decode(&pristine[..cut]).is_err(), "prefix {cut} accepted");
        }
        // Trailing garbage is rejected.
        let mut padded = pristine.clone();
        padded.extend_from_slice(&[0u8; 5]);
        assert!(decode(&padded).is_err());
        // Single-byte flips either fail to decode or fail from_frozen's
        // semantic validation; none may panic. (A flip confined to phi /
        // certificate floats or the wall-clock scalars can survive both —
        // those fields answer no query.)
        for at in (0..pristine.len()).step_by(37) {
            let mut bent = pristine.clone();
            bent[at] ^= 0x40;
            if let Ok(frozen) = decode(&bent) {
                let _ = QueryEngine::from_frozen(frozen);
            }
        }
    }
}
