//! Opening on-disk CSR files and reading them zero-copy.
//!
//! [`CsrFile::open`] maps the file (`crate::mmap`), validates it —
//! magic, version, exact length, checksum, then the structural invariants
//! the zero-copy accessors rely on (monotone offsets, in-range sorted
//! rows, consistent loop totals) — and hands out [`CsrView`]s that read
//! the mapped bytes directly. Nothing is decoded ahead of time: a
//! `degree` lookup is one `u64` load from the offsets section, a
//! neighborhood walk streams `u32`s out of the adjacency section.
//!
//! The one cross-row invariant `open` does **not** check is adjacency
//! symmetry (`w ∈ row(u) ⇔ u ∈ row(w)`), which costs `O(m log Δ)`;
//! [`CsrFile::to_graph`] validates it when materializing a [`Graph`]
//! (see [`Graph::from_csr_parts`]). The checksum already catches
//! accidental corruption; the symmetry pass is the defense against a
//! *consistently checksummed* but malformed writer.

use crate::format::{Header, Layout, HEADER_LEN};
use crate::mmap::MappedFile;
use crate::{Chk64, Result, StorageError};
use graph::view::AdjacencyView;
use graph::{Graph, VertexId};
use std::path::Path;

/// An opened, validated on-disk CSR file.
///
/// # Examples
///
/// ```
/// use storage::{write_graph, CsrFile};
///
/// let g = graph::gen::gnp(30, 0.2, 5).unwrap();
/// let dir = storage::test_dir("doc-open");
/// let path = dir.join("g.csr");
/// write_graph(&g, &path).unwrap();
///
/// let file = CsrFile::open(&path).unwrap();
/// assert_eq!(file.n(), 30);
/// let view = file.view();
/// // Zero-copy degree lookups against the mapped bytes.
/// for v in 0..30u32 {
///     assert_eq!(view.degree(v), g.degree(v));
/// }
/// assert_eq!(file.to_graph().unwrap(), g);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug)]
pub struct CsrFile {
    map: MappedFile,
    header: Header,
    layout: Layout,
}

impl CsrFile {
    /// Opens and fully validates `path`.
    ///
    /// # Errors
    ///
    /// Every way a file can be wrong is a typed [`StorageError`]:
    /// [`StorageError::Io`] when it cannot be read,
    /// [`StorageError::BadMagic`] / [`StorageError::BadVersion`] when it
    /// is not (this version of) the format,
    /// [`StorageError::Truncated`] when bytes are missing,
    /// [`StorageError::ChecksumMismatch`] on bit rot, and
    /// [`StorageError::Corrupt`] when a structural invariant fails.
    pub fn open(path: &Path) -> Result<CsrFile> {
        let map = MappedFile::open(path)?;
        let bytes = map.bytes();
        let header = Header::parse(bytes)?;
        let layout = header.layout()?;
        if (bytes.len() as u64) != layout.file_len {
            return Err(StorageError::Truncated {
                expected: layout.file_len,
                found: bytes.len() as u64,
            });
        }
        let mut hasher = Chk64::new();
        hasher.update(&bytes[HEADER_LEN..]);
        let computed = hasher.finalize();
        if computed != header.checksum {
            return Err(StorageError::ChecksumMismatch {
                stored: header.checksum,
                computed,
            });
        }
        let file = CsrFile {
            map,
            header,
            layout,
        };
        file.validate_structure()?;
        Ok(file)
    }

    /// Structural invariants the zero-copy accessors rely on. `O(n + m)`.
    fn validate_structure(&self) -> Result<()> {
        let view = self.view();
        let n = self.header.n as usize;
        let corrupt = |reason: String| Err(StorageError::Corrupt { reason });
        if view.offset(0) != 0 {
            return corrupt(format!("offsets[0] = {} (want 0)", view.offset(0)));
        }
        let mut prev_end = 0u64;
        for v in 0..n {
            let (start, end) = (view.offset(v), view.offset(v + 1));
            if start != prev_end {
                return corrupt(format!("offsets not contiguous at vertex {v}"));
            }
            if end < start {
                return corrupt(format!("offsets decrease at vertex {v}"));
            }
            prev_end = end;
            let mut last: Option<u32> = None;
            for i in start..end {
                let w = view.adj_at(i);
                if w as u64 >= self.header.n {
                    return corrupt(format!("neighbor {w} of vertex {v} out of range"));
                }
                if w as usize == v {
                    return corrupt(format!(
                        "self loop {v} stored in the adjacency section (loops have their own section)"
                    ));
                }
                if let Some(p) = last {
                    if w < p {
                        return corrupt(format!("row of vertex {v} not sorted"));
                    }
                }
                last = Some(w);
            }
        }
        if prev_end != self.header.adj_len {
            return corrupt(format!(
                "offsets end at {prev_end}, adjacency section holds {}",
                self.header.adj_len
            ));
        }
        let loop_sum: u64 = (0..n).map(|v| view.loops_of(v as VertexId) as u64).sum();
        if loop_sum != self.header.total_loops {
            return corrupt(format!(
                "self-loop counts sum to {loop_sum}, header says {}",
                self.header.total_loops
            ));
        }
        Ok(())
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.header.n as usize
    }

    /// Number of non-loop undirected edges (with multiplicity).
    pub fn m(&self) -> u64 {
        self.header.m
    }

    /// Total self loops.
    pub fn total_self_loops(&self) -> u64 {
        self.header.total_loops
    }

    /// The parsed header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Whether the bytes are served by a live `mmap` (false = heap copy).
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// The zero-copy adjacency view over the mapped sections.
    pub fn view(&self) -> CsrView<'_> {
        let bytes = self.map.bytes();
        let n = self.header.n as usize;
        CsrView {
            n,
            m: self.header.m,
            total_loops: self.header.total_loops,
            offsets: &bytes[self.layout.offsets as usize..][..(n + 1) * 8],
            adj: &bytes[self.layout.adj as usize..][..self.header.adj_len as usize * 4],
            loops: &bytes[self.layout.loops as usize..][..n * 4],
        }
    }

    /// The frozen-artifact payload, if the file carries one.
    pub fn artifact_bytes(&self) -> Option<&[u8]> {
        if !self.header.has_artifact() {
            return None;
        }
        let start = self.layout.artifact as usize;
        Some(&self.map.bytes()[start..start + self.header.artifact_len as usize])
    }

    /// Materializes a full in-memory [`Graph`] from the sections.
    ///
    /// This is the one copying step between the file and the pipeline:
    /// the sections are memcpy'd into the `Graph`'s own arrays and
    /// [`Graph::from_csr_parts`] re-validates them — including the
    /// adjacency **symmetry** check `open` skips (see module docs).
    ///
    /// # Errors
    ///
    /// [`StorageError::Corrupt`] when the sections fail the graph
    /// invariants.
    pub fn to_graph(&self) -> Result<Graph> {
        let view = self.view();
        let offsets: Vec<usize> = (0..=view.n).map(|v| view.offset(v) as usize).collect();
        let adj: Vec<VertexId> = (0..self.header.adj_len).map(|i| view.adj_at(i)).collect();
        let loops: Vec<u32> = (0..view.n).map(|v| view.loops_of(v as VertexId)).collect();
        Graph::from_csr_parts(offsets, adj, loops).map_err(|e| StorageError::Corrupt {
            reason: format!("graph invariants rejected the sections: {e}"),
        })
    }
}

/// Zero-copy CSR accessors over the mapped section bytes.
///
/// Implements [`AdjacencyView`], so subgraph extraction and any kernel
/// generic over adjacency reads straight from the file mapping.
#[derive(Debug, Clone, Copy)]
pub struct CsrView<'a> {
    n: usize,
    m: u64,
    total_loops: u64,
    offsets: &'a [u8],
    adj: &'a [u8],
    loops: &'a [u8],
}

impl CsrView<'_> {
    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of non-loop undirected edges (with multiplicity).
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Total self loops.
    pub fn total_self_loops(&self) -> u64 {
        self.total_loops
    }

    #[inline]
    pub(crate) fn offset(&self, v: usize) -> u64 {
        u64::from_le_bytes(self.offsets[v * 8..v * 8 + 8].try_into().unwrap())
    }

    #[inline]
    pub(crate) fn adj_at(&self, slot: u64) -> u32 {
        let at = slot as usize * 4;
        u32::from_le_bytes(self.adj[at..at + 4].try_into().unwrap())
    }

    #[inline]
    pub(crate) fn loops_of(&self, v: VertexId) -> u32 {
        let at = v as usize * 4;
        u32::from_le_bytes(self.loops[at..at + 4].try_into().unwrap())
    }

    /// `deg(v)` including self loops (each loop counts 1).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n` (same hot-path convention as [`Graph::degree`]).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.row_len(v) + self.loops_of(v) as usize
    }

    #[inline]
    fn row_len(&self, v: VertexId) -> usize {
        (self.offset(v as usize + 1) - self.offset(v as usize)) as usize
    }

    /// Iterator over `v`'s neighbors (ascending, parallel edges repeated),
    /// decoded on the fly from the mapped bytes.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        (self.offset(v as usize)..self.offset(v as usize + 1)).map(|i| self.adj_at(i))
    }
}

impl AdjacencyView for CsrView<'_> {
    fn view_n(&self) -> usize {
        self.n
    }

    fn view_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    fn view_degree_without_loops(&self, v: VertexId) -> usize {
        self.row_len(v)
    }

    fn view_self_loops(&self, v: VertexId) -> u32 {
        self.loops_of(v)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        for w in self.neighbors(v) {
            f(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::write_graph;
    use graph::view::Subgraph;
    use graph::VertexSet;

    #[test]
    fn view_matches_graph_accessors() {
        let g = graph::gen::gnp(50, 0.15, 3).unwrap();
        let g = g.remove_edges([(0, 1), (2, 3)], true); // some loops
        let dir = crate::test_dir("view");
        let path = dir.join("g.csr");
        write_graph(&g, &path).unwrap();
        let file = CsrFile::open(&path).unwrap();
        assert_eq!(file.n(), g.n());
        assert_eq!(file.m(), g.m() as u64);
        assert_eq!(file.total_self_loops(), g.total_self_loops() as u64);
        let view = file.view();
        for v in 0..g.n() as u32 {
            assert_eq!(view.degree(v), g.degree(v));
            assert_eq!(view.loops_of(v), g.self_loops(v));
            let row: Vec<u32> = view.neighbors(v).collect();
            assert_eq!(row.as_slice(), g.neighbors(v));
        }
        assert_eq!(file.to_graph().unwrap(), g);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn subgraph_extraction_reads_through_the_view() {
        let g = graph::gen::gnp(40, 0.2, 9).unwrap();
        let dir = crate::test_dir("view-sub");
        let path = dir.join("g.csr");
        write_graph(&g, &path).unwrap();
        let file = CsrFile::open(&path).unwrap();
        let view = file.view();
        let s = VertexSet::from_iter(g.n(), (0u32..20).filter(|v| v % 3 != 0));
        let via_view = Subgraph::loop_augmented(&view, &s);
        let via_graph = Subgraph::loop_augmented(&g, &s);
        assert_eq!(via_view.graph(), via_graph.graph());
        assert_eq!(via_view.parent_ids(), via_graph.parent_ids());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn both_backends_agree() {
        let g = graph::gen::gnp(30, 0.25, 11).unwrap();
        let dir = crate::test_dir("view-backends");
        let path = dir.join("g.csr");
        write_graph(&g, &path).unwrap();
        let mapped = CsrFile::open(&path).unwrap();
        // The heap path is env-gated; exercise the decode logic by
        // comparing the mapped view against the materialized graph (the
        // heap branch itself is covered by STORAGE_FORCE_HEAP in CI).
        assert_eq!(mapped.to_graph().unwrap(), g);
        std::fs::remove_dir_all(&dir).ok();
    }
}
