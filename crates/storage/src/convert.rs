//! Edge-list → on-disk CSR conversion, out-of-core.
//!
//! [`convert_edge_list`] turns a plain-text edge list (SNAP-style `u v`
//! lines, `#`/`%` comments, optional `n <count>` header) into the binary
//! CSR format without ever holding the edge set in memory. The pipeline
//! is a sequence of bounded-memory external sorts:
//!
//! 1. **Parse & spill** — normalize each edge to `(min, max)` over the
//!    raw 64-bit ids and spill sorted chunks of at most
//!    [`ConvertOptions::chunk_edges`] pairs to scratch files.
//! 2. **Merge & dedup** — k-way merge the chunks ([`std::collections::BinaryHeap`]);
//!    consecutive equal pairs are duplicates of the same undirected edge
//!    and are dropped when [`ConvertOptions::dedup`] is set. Ids are
//!    mapped to dense `u32`s here (identity when the input declares
//!    `n <count>`, which preserves isolated vertices; otherwise by rank
//!    among the distinct raw ids — a monotone map, so the merged order
//!    survives).
//! 3. **Morton pass** (optional) — externally sort the edges by the
//!    bit-interleave of their endpoint ids and renumber vertices in
//!    first-touch order, improving the locality of neighborhood scans on
//!    mesh-like graphs. Recorded in the header as [`crate::FLAG_MORTON`].
//! 4. **Directed expansion** — emit `(u, v)` and `(v, u)` for every kept
//!    edge and externally sort by `(src, dst)`. The merged stream *is*
//!    the adjacency section in file order: neighbors of vertex 0, then
//!    vertex 1, … — each row sorted — so the section streams to disk
//!    with no random access. Degrees are counted on the way through.
//! 5. **Assemble** — header placeholder, offsets (prefix sums), the
//!    adjacency stream, self-loop counts; the checksum accumulates as
//!    bytes are written and the header is patched in at the end. The
//!    finished file is built under a temporary name and **renamed** into
//!    place, keeping the immutability contract (`DESIGN.md` §13).
//!
//! Peak memory is `O(chunk_edges + n)`: one sort buffer plus the
//! per-vertex degree/loop/relabel arrays.

use crate::format::{pad8, Chk64, Header, FLAG_MORTON, FORMAT_VERSION, HEADER_LEN};
use crate::{io_err, Result, StorageError};
use graph::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Tuning knobs for [`convert_edge_list`].
///
/// # Examples
///
/// ```
/// use storage::ConvertOptions;
///
/// let opts = ConvertOptions {
///     morton: true,
///     ..ConvertOptions::default()
/// };
/// assert!(opts.dedup);
/// ```
#[derive(Debug, Clone)]
pub struct ConvertOptions {
    /// Maximum edges held in memory per sort chunk (each spilled chunk is
    /// one sorted scratch file). The default, 2²⁰, bounds the sort buffer
    /// at 16 MiB.
    pub chunk_edges: usize,
    /// Drop duplicate copies of the same undirected edge (and duplicate
    /// self loops). Real edge lists routinely record both directions of
    /// every edge; with `dedup` the pair collapses to one multigraph
    /// edge. Disable to preserve multiplicities.
    pub dedup: bool,
    /// Relabel vertices in Morton (bit-interleave) first-touch order for
    /// scan locality. Triangle and decomposition *counts* are invariant
    /// under relabeling; ids in query answers refer to the new labels.
    pub morton: bool,
}

impl Default for ConvertOptions {
    fn default() -> Self {
        ConvertOptions {
            chunk_edges: 1 << 20,
            dedup: true,
            morton: false,
        }
    }
}

/// What [`convert_edge_list`] did, for logs and gates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvertReport {
    /// Vertices in the output file.
    pub n: usize,
    /// Non-loop undirected edges in the output file (after dedup).
    pub m: u64,
    /// Self loops in the output file.
    pub self_loops: u64,
    /// Edge records parsed from the input text.
    pub edge_records: u64,
    /// Duplicate records dropped (0 when [`ConvertOptions::dedup`] is off).
    pub duplicates_removed: u64,
    /// Sorted scratch chunks spilled during the parse pass.
    pub chunks: usize,
    /// Whether vertex ids were densely re-numbered (headerless input).
    pub dense_relabeled: bool,
    /// Whether Morton relabeling was applied.
    pub morton: bool,
}

/// Converts a plain-text edge list at `input` into an on-disk CSR file at
/// `output`, in bounded memory (see the module docs for the pipeline).
///
/// Accepted input: `#`/`%` comment lines and blank lines anywhere; an
/// optional `n <count>` first record fixing the vertex-id space (ids are
/// then required to be `< count`, and isolated vertices survive); then
/// one `u v` edge per line, whitespace-separated decimal ids up to
/// `u64::MAX`. Without the header, vertices are renumbered densely by
/// ascending raw id.
///
/// # Errors
///
/// [`StorageError::Parse`] (with the 1-based line number) on malformed
/// text, [`StorageError::Io`] on filesystem failures, and
/// [`StorageError::Corrupt`] if the graph exceeds format limits (more
/// than `u32::MAX` vertices).
///
/// # Examples
///
/// ```
/// use storage::{convert_edge_list, ConvertOptions, CsrFile};
///
/// let dir = storage::test_dir("doc-snap");
/// // SNAP-style: comments, tabs, both directions recorded, sparse ids.
/// std::fs::write(dir.join("in.txt"), "# FromNodeId\tToNodeId\n10 20\n20 10\n20 30\n").unwrap();
/// let out = dir.join("out.csr");
/// let report = convert_edge_list(&dir.join("in.txt"), &out, &ConvertOptions::default()).unwrap();
/// assert_eq!((report.n, report.m), (3, 2)); // ids 10,20,30 → 0,1,2; dup edge dropped
/// assert_eq!(report.duplicates_removed, 1);
/// assert!(report.dense_relabeled);
///
/// let g = CsrFile::open(&out).unwrap().to_graph().unwrap();
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub fn convert_edge_list(
    input: &Path,
    output: &Path,
    opts: &ConvertOptions,
) -> Result<ConvertReport> {
    let chunk = opts.chunk_edges.max(16);
    let scratch = Scratch::new()?;

    // Pass 1: parse, normalize, spill sorted raw-pair chunks.
    let mut spiller: Spiller<(u64, u64)> = Spiller::new(&scratch, "raw", chunk, opts.dedup);
    let mut ids: Vec<u64> = Vec::new();
    let mut declared_n: Option<u64> = None;
    let mut edge_records = 0u64;
    let reader = BufReader::new(File::open(input).map_err(|e| io_err(input, e))?);
    let mut seen_record = false;
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| io_err(input, e))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if !seen_record {
            seen_record = true;
            if let ["n", count] = fields.as_slice() {
                let count: u64 = count.parse().map_err(|_| StorageError::Parse {
                    line: line_no,
                    reason: format!("bad vertex count {count:?} in header"),
                })?;
                if count > u32::MAX as u64 {
                    return Err(StorageError::Parse {
                        line: line_no,
                        reason: format!("{count} vertices exceed the u32 vertex-id space"),
                    });
                }
                declared_n = Some(count);
                continue;
            }
        }
        let [a, b] = fields.as_slice() else {
            return Err(StorageError::Parse {
                line: line_no,
                reason: format!(
                    "expected 'u v', found {} field(s) in {line:?}",
                    fields.len()
                ),
            });
        };
        let parse_id = |tok: &str| -> Result<u64> {
            let id: u64 = tok.parse().map_err(|_| StorageError::Parse {
                line: line_no,
                reason: format!("bad vertex id {tok:?}"),
            })?;
            if let Some(count) = declared_n {
                if id >= count {
                    return Err(StorageError::Parse {
                        line: line_no,
                        reason: format!("vertex id {tok:?} out of range (n = {count})"),
                    });
                }
            }
            Ok(id)
        };
        let (u, v) = (parse_id(a)?, parse_id(b)?);
        edge_records += 1;
        spiller.push((u.min(v), u.max(v)))?;
        if declared_n.is_none() {
            ids.push(u);
            ids.push(v);
            if ids.len() >= chunk * 2 {
                ids.sort_unstable();
                ids.dedup();
            }
        }
    }

    // The id map: identity under a declared header, dense rank otherwise.
    let id_map = match declared_n {
        Some(count) => IdMap::Identity(count),
        None => {
            ids.sort_unstable();
            ids.dedup();
            if ids.len() > u32::MAX as usize {
                return Err(StorageError::Corrupt {
                    reason: format!(
                        "input has {} distinct vertices; the format holds at most {}",
                        ids.len(),
                        u32::MAX
                    ),
                });
            }
            IdMap::Dense(std::mem::take(&mut ids))
        }
    };
    let n = id_map.n();

    // Pass 2: merge + dedup, map to dense ids, split loops from edges.
    let (mut merge, chunks) = spiller.finish()?;
    let mut duplicates_removed = merge.removed;
    let dense_path = scratch.file("dense.run");
    let mut dense_out = PairWriter::create(&dense_path)?;
    let mut loops = vec![0u64; n];
    let mut m = 0u64;
    let mut prev: Option<(u64, u64)> = None;
    while let Some(pair) = merge.next_rec()? {
        if opts.dedup && prev == Some(pair) {
            duplicates_removed += 1;
            continue;
        }
        prev = Some(pair);
        let (mu, mv) = (id_map.map(pair.0), id_map.map(pair.1));
        if mu == mv {
            loops[mu as usize] += 1;
        } else {
            dense_out.put((mu, mv))?;
            m += 1;
        }
    }
    dense_out.close()?;
    drop(merge);

    // Pass 3 (optional): Morton first-touch relabeling.
    let relabel: Option<Vec<u32>> = if opts.morton {
        Some(morton_relabel(&scratch, &dense_path, n, chunk)?)
    } else {
        None
    };
    let map_final = |v: u32| -> u32 {
        match &relabel {
            Some(r) => r[v as usize],
            None => v,
        }
    };

    // Pass 4: directed expansion, external sort by (src, dst).
    let mut directed: Spiller<(u32, u32)> = Spiller::new(&scratch, "dir", chunk, false);
    {
        let mut run = ChunkReader::open(&dense_path)?;
        while let Some((u, v)) = run.next::<(u32, u32)>()? {
            let (a, b) = (map_final(u), map_final(v));
            directed.push((a, b))?;
            directed.push((b, a))?;
        }
    }
    let (mut merge, _) = directed.finish()?;
    let mut degrees = vec![0u64; n];
    let adj_path = scratch.file("adj.run");
    let mut adj_out = BufWriter::new(File::create(&adj_path).map_err(|e| io_err(&adj_path, e))?);
    while let Some((src, dst)) = merge.next_rec()? {
        degrees[src as usize] += 1;
        adj_out
            .write_all(&dst.to_le_bytes())
            .map_err(|e| io_err(&adj_path, e))?;
    }
    adj_out.flush().map_err(|e| io_err(&adj_path, e))?;
    drop(adj_out);
    drop(merge);

    // Self loops follow their vertex to its final label.
    let mut loops_final = vec![0u32; n];
    let mut self_loops = 0u64;
    for (v, &count) in loops.iter().enumerate() {
        let count = u32::try_from(count).map_err(|_| StorageError::Corrupt {
            reason: format!("self-loop count {count} at vertex {v} exceeds u32"),
        })?;
        loops_final[map_final(v as u32) as usize] = count;
        self_loops += count as u64;
    }

    // Pass 5: assemble the final file.
    let flags = if opts.morton { FLAG_MORTON } else { 0 };
    assemble_csr(
        output,
        n,
        m,
        flags,
        &degrees,
        &loops_final,
        self_loops,
        |sink| {
            let mut src = BufReader::new(File::open(&adj_path).map_err(|e| io_err(&adj_path, e))?);
            let mut buf = [0u8; 1 << 16];
            loop {
                let k = src.read(&mut buf).map_err(|e| io_err(&adj_path, e))?;
                if k == 0 {
                    return Ok(());
                }
                sink.put(&buf[..k])?;
            }
        },
    )?;

    Ok(ConvertReport {
        n,
        m,
        self_loops,
        edge_records,
        duplicates_removed,
        chunks,
        dense_relabeled: declared_n.is_none(),
        morton: opts.morton,
    })
}

/// Serializes an in-memory [`Graph`] to the on-disk CSR format.
///
/// The file is written under a temporary sibling name and renamed into
/// place (immutability contract: a concurrently mapped reader keeps its
/// old-inode view).
///
/// # Errors
///
/// [`StorageError::Io`] on filesystem failures.
///
/// # Examples
///
/// ```
/// use storage::{write_graph, CsrFile};
///
/// let g = graph::gen::gnp(25, 0.2, 1).unwrap();
/// let dir = storage::test_dir("doc-write");
/// let path = dir.join("g.csr");
/// write_graph(&g, &path).unwrap();
/// assert_eq!(CsrFile::open(&path).unwrap().to_graph().unwrap(), g);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub fn write_graph(g: &Graph, output: &Path) -> Result<()> {
    let (offsets, adj, loops) = g.csr_slices();
    if g.n() > u32::MAX as usize {
        return Err(StorageError::Corrupt {
            reason: format!("{} vertices exceed the u32 vertex-id space", g.n()),
        });
    }
    let degrees: Vec<u64> = offsets.windows(2).map(|w| (w[1] - w[0]) as u64).collect();
    assemble_csr(
        output,
        g.n(),
        g.m() as u64,
        0,
        &degrees,
        loops,
        g.total_self_loops() as u64,
        |sink| {
            for &w in adj {
                sink.put(&w.to_le_bytes())?;
            }
            Ok(())
        },
    )
}

/// Assembles a complete CSR file (no artifact section): header
/// placeholder, checksummed sections, header patch, atomic rename.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_csr<F>(
    output: &Path,
    n: usize,
    m: u64,
    flags: u32,
    degrees: &[u64],
    loops: &[u32],
    total_loops: u64,
    write_adj: F,
) -> Result<()>
where
    F: FnOnce(&mut Sink) -> Result<()>,
{
    assemble_csr_with_artifact(
        output,
        n,
        m,
        flags,
        degrees,
        loops,
        total_loops,
        write_adj,
        None,
    )
}

/// Full assembly, optionally with a frozen-artifact payload.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_csr_with_artifact<F>(
    output: &Path,
    n: usize,
    m: u64,
    flags: u32,
    degrees: &[u64],
    loops: &[u32],
    total_loops: u64,
    write_adj: F,
    artifact: Option<&[u8]>,
) -> Result<()>
where
    F: FnOnce(&mut Sink) -> Result<()>,
{
    debug_assert_eq!(degrees.len(), n);
    debug_assert_eq!(loops.len(), n);
    let adj_len = 2 * m;
    let tmp = tmp_sibling(output);
    let file = File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    let mut sink = Sink {
        w: BufWriter::new(file),
        hash: Chk64::new(),
        path: tmp.clone(),
    };
    // Header placeholder; patched once the checksum is known. The
    // placeholder bytes are NOT hashed — the checksum covers everything
    // after the header.
    sink.w
        .write_all(&[0u8; HEADER_LEN])
        .map_err(|e| io_err(&tmp, e))?;
    // Offsets: prefix sums of the row lengths.
    let mut acc = 0u64;
    sink.put(&acc.to_le_bytes())?;
    for &d in degrees {
        acc += d;
        sink.put(&acc.to_le_bytes())?;
    }
    debug_assert_eq!(acc, adj_len);
    // Adjacency, padded to 8 bytes.
    write_adj(&mut sink)?;
    sink.pad_to8(adj_len * 4)?;
    // Self loops, padded.
    for &l in loops {
        sink.put(&l.to_le_bytes())?;
    }
    sink.pad_to8(n as u64 * 4)?;
    // Artifact, padded.
    let artifact_len = artifact.map_or(0, |a| a.len() as u64);
    if let Some(bytes) = artifact {
        sink.put(bytes)?;
        sink.pad_to8(artifact_len)?;
    }
    let header = Header {
        version: FORMAT_VERSION,
        flags,
        n: n as u64,
        m,
        adj_len,
        total_loops,
        artifact_len,
        checksum: sink.hash.clone().finalize(),
    };
    let mut file = sink
        .w
        .into_inner()
        .map_err(|e| io_err(&tmp, e.into_error()))?;
    file.seek(SeekFrom::Start(0)).map_err(|e| io_err(&tmp, e))?;
    file.write_all(&header.encode())
        .map_err(|e| io_err(&tmp, e))?;
    file.sync_all().map_err(|e| io_err(&tmp, e))?;
    drop(file);
    fs::rename(&tmp, output).map_err(|e| io_err(output, e))
}

/// A buffered, checksummed section writer handed to adjacency callbacks.
pub(crate) struct Sink {
    w: BufWriter<File>,
    hash: Chk64,
    path: PathBuf,
}

impl Sink {
    /// Writes section bytes, folding them into the running checksum.
    pub(crate) fn put(&mut self, bytes: &[u8]) -> Result<()> {
        self.hash.update(bytes);
        self.w.write_all(bytes).map_err(|e| io_err(&self.path, e))
    }

    /// Zero-pads a section of unpadded length `len` to the 8-byte grid.
    fn pad_to8(&mut self, len: u64) -> Result<()> {
        let pad = (pad8(len) - len) as usize;
        self.put(&[0u8; 8][..pad])
    }
}

enum IdMap {
    /// `n <count>` header: raw ids are already dense (isolated vertices
    /// with no incident edges keep their slot).
    Identity(u64),
    /// Headerless: rank among the sorted distinct raw ids.
    Dense(Vec<u64>),
}

impl IdMap {
    fn n(&self) -> usize {
        match self {
            IdMap::Identity(count) => *count as usize,
            IdMap::Dense(ids) => ids.len(),
        }
    }

    fn map(&self, raw: u64) -> u32 {
        match self {
            IdMap::Identity(_) => raw as u32,
            IdMap::Dense(ids) => ids.binary_search(&raw).expect("id was collected") as u32,
        }
    }
}

/// Interleaves the bits of `x` with zeros: `b31 … b1 b0` → `0b31 … 0b1 0b0`.
fn spread_bits(x: u32) -> u64 {
    let mut x = x as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Morton (Z-order) key of an edge: the bit-interleave of its endpoints.
/// Edges whose endpoints are numerically close get nearby keys, so a
/// first-touch sweep in key order clusters tightly connected vertices.
fn morton_key(u: u32, v: u32) -> u64 {
    (spread_bits(u) << 1) | spread_bits(v)
}

/// Externally sorts the dense edge run by Morton key and renumbers
/// vertices in first-touch order. Vertices with no edges (isolated or
/// loop-only) are appended afterwards in their dense order.
fn morton_relabel(
    scratch: &Scratch,
    dense_path: &Path,
    n: usize,
    chunk: usize,
) -> Result<Vec<u32>> {
    let mut spiller: Spiller<(u64, u32, u32)> = Spiller::new(scratch, "morton", chunk, false);
    let mut run = ChunkReader::open(dense_path)?;
    while let Some((u, v)) = run.next::<(u32, u32)>()? {
        spiller.push((morton_key(u, v), u, v))?;
    }
    let (mut merge, _) = spiller.finish()?;
    const UNASSIGNED: u32 = u32::MAX;
    let mut relabel = vec![UNASSIGNED; n];
    let mut next = 0u32;
    while let Some((_key, u, v)) = merge.next_rec()? {
        for x in [u, v] {
            if relabel[x as usize] == UNASSIGNED {
                relabel[x as usize] = next;
                next += 1;
            }
        }
    }
    for slot in relabel.iter_mut() {
        if *slot == UNASSIGNED {
            *slot = next;
            next += 1;
        }
    }
    debug_assert_eq!(next as usize, n);
    Ok(relabel)
}

/// A fixed-width record that can spill to scratch files.
trait Rec: Copy + Ord {
    const SIZE: usize;
    fn encode(&self, out: &mut [u8]);
    fn decode(buf: &[u8]) -> Self;
}

impl Rec for (u64, u64) {
    const SIZE: usize = 16;
    fn encode(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.0.to_le_bytes());
        out[8..16].copy_from_slice(&self.1.to_le_bytes());
    }
    fn decode(buf: &[u8]) -> Self {
        (
            u64::from_le_bytes(buf[..8].try_into().unwrap()),
            u64::from_le_bytes(buf[8..16].try_into().unwrap()),
        )
    }
}

impl Rec for (u32, u32) {
    const SIZE: usize = 8;
    fn encode(&self, out: &mut [u8]) {
        out[..4].copy_from_slice(&self.0.to_le_bytes());
        out[4..8].copy_from_slice(&self.1.to_le_bytes());
    }
    fn decode(buf: &[u8]) -> Self {
        (
            u32::from_le_bytes(buf[..4].try_into().unwrap()),
            u32::from_le_bytes(buf[4..8].try_into().unwrap()),
        )
    }
}

impl Rec for (u64, u32, u32) {
    const SIZE: usize = 16;
    fn encode(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.0.to_le_bytes());
        out[8..12].copy_from_slice(&self.1.to_le_bytes());
        out[12..16].copy_from_slice(&self.2.to_le_bytes());
    }
    fn decode(buf: &[u8]) -> Self {
        (
            u64::from_le_bytes(buf[..8].try_into().unwrap()),
            u32::from_le_bytes(buf[8..12].try_into().unwrap()),
            u32::from_le_bytes(buf[12..16].try_into().unwrap()),
        )
    }
}

/// Accumulates records, spilling each full chunk to a sorted scratch file.
struct Spiller<'a, R: Rec> {
    scratch: &'a Scratch,
    tag: &'static str,
    cap: usize,
    dedup: bool,
    removed: u64,
    buf: Vec<R>,
    files: Vec<PathBuf>,
}

impl<'a, R: Rec> Spiller<'a, R> {
    fn new(scratch: &'a Scratch, tag: &'static str, cap: usize, dedup: bool) -> Spiller<'a, R> {
        Spiller {
            scratch,
            tag,
            cap,
            dedup,
            removed: 0,
            buf: Vec::new(),
            files: Vec::new(),
        }
    }

    fn push(&mut self, r: R) -> Result<()> {
        self.buf.push(r);
        if self.buf.len() >= self.cap {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort_unstable();
        if self.dedup {
            let before = self.buf.len();
            self.buf.dedup();
            self.removed += (before - self.buf.len()) as u64;
        }
        let path = self
            .scratch
            .file(&format!("{}-{}.spill", self.tag, self.files.len()));
        let mut w = PairWriter::create(&path)?;
        for r in self.buf.drain(..) {
            w.put(r)?;
        }
        w.close()?;
        self.files.push(path);
        Ok(())
    }

    /// Flushes the tail chunk and opens the k-way merge over all chunks.
    /// Returns `(merge, chunk_count)`; in-chunk dedup removals carry over
    /// into [`Merge::removed`] so the caller sees one total.
    fn finish(mut self) -> Result<(Merge<R>, usize)> {
        self.flush()?;
        let chunks = self.files.len();
        let mut merge = Merge::open(std::mem::take(&mut self.files))?;
        merge.removed = self.removed;
        Ok((merge, chunks))
    }
}

/// Buffered fixed-width record writer for scratch files.
struct PairWriter {
    w: BufWriter<File>,
    path: PathBuf,
}

impl PairWriter {
    fn create(path: &Path) -> Result<PairWriter> {
        Ok(PairWriter {
            w: BufWriter::new(File::create(path).map_err(|e| io_err(path, e))?),
            path: path.to_path_buf(),
        })
    }

    fn put<R: Rec>(&mut self, r: R) -> Result<()> {
        let mut buf = [0u8; 16];
        r.encode(&mut buf[..R::SIZE]);
        self.w
            .write_all(&buf[..R::SIZE])
            .map_err(|e| io_err(&self.path, e))
    }

    fn close(mut self) -> Result<()> {
        self.w.flush().map_err(|e| io_err(&self.path, e))
    }
}

/// Sequential reader over one fixed-width scratch file.
struct ChunkReader {
    r: BufReader<File>,
    path: PathBuf,
}

impl ChunkReader {
    fn open(path: &Path) -> Result<ChunkReader> {
        Ok(ChunkReader {
            r: BufReader::new(File::open(path).map_err(|e| io_err(path, e))?),
            path: path.to_path_buf(),
        })
    }

    fn next<R: Rec>(&mut self) -> Result<Option<R>> {
        let mut buf = [0u8; 16];
        match self.r.read_exact(&mut buf[..R::SIZE]) {
            Ok(()) => Ok(Some(R::decode(&buf[..R::SIZE]))),
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(io_err(&self.path, e)),
        }
    }
}

/// K-way merge over sorted scratch files: a binary heap of per-file heads
/// yields the globally sorted record stream.
struct Merge<R: Rec> {
    readers: Vec<ChunkReader>,
    heap: BinaryHeap<Reverse<(R, usize)>>,
    removed: u64,
}

impl<R: Rec> Merge<R> {
    fn open(files: Vec<PathBuf>) -> Result<Merge<R>> {
        let mut readers = Vec::with_capacity(files.len());
        let mut heap = BinaryHeap::with_capacity(files.len());
        for (idx, path) in files.iter().enumerate() {
            let mut reader = ChunkReader::open(path)?;
            if let Some(rec) = reader.next::<R>()? {
                heap.push(Reverse((rec, idx)));
            }
            readers.push(reader);
        }
        Ok(Merge {
            readers,
            heap,
            removed: 0,
        })
    }

    fn next_rec(&mut self) -> Result<Option<R>> {
        let Some(Reverse((rec, idx))) = self.heap.pop() else {
            return Ok(None);
        };
        if let Some(next) = self.readers[idx].next::<R>()? {
            self.heap.push(Reverse((next, idx)));
        }
        Ok(Some(rec))
    }
}

/// A private scratch directory, removed (best-effort) on drop.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new() -> Result<Scratch> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("storage-convert-{}-{id}", std::process::id()));
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(Scratch { dir })
    }

    fn file(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".to_string());
    path.with_file_name(format!(".{name}.tmp-{}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrFile;

    fn convert_str(text: &str, opts: &ConvertOptions, tag: &str) -> (ConvertReport, Graph) {
        let dir = crate::test_dir(tag);
        let input = dir.join("in.txt");
        fs::write(&input, text).unwrap();
        let out = dir.join("out.csr");
        let report = convert_edge_list(&input, &out, opts).unwrap();
        let g = CsrFile::open(&out).unwrap().to_graph().unwrap();
        fs::remove_dir_all(&dir).ok();
        (report, g)
    }

    #[test]
    fn header_input_matches_text_loader() {
        let g = graph::gen::gnp(60, 0.12, 4).unwrap();
        let text = graph::io::to_edge_list(&g);
        let (report, loaded) = convert_str(&text, &ConvertOptions::default(), "conv-hdr");
        assert_eq!(loaded, g);
        assert_eq!(report.m, g.m() as u64);
        assert!(!report.dense_relabeled);
    }

    #[test]
    fn tiny_chunks_spill_and_agree_with_one_chunk() {
        let g = graph::gen::gnp(40, 0.3, 7).unwrap();
        let text = graph::io::to_edge_list(&g);
        let small = ConvertOptions {
            chunk_edges: 16,
            ..ConvertOptions::default()
        };
        let (report_small, g_small) = convert_str(&text, &small, "conv-small");
        let (report_big, g_big) = convert_str(&text, &ConvertOptions::default(), "conv-big");
        assert!(report_small.chunks > 1, "16-edge chunks must spill");
        assert_eq!(report_big.chunks, 1);
        assert_eq!(g_small, g_big);
        assert_eq!(g_small, g);
    }

    #[test]
    fn headerless_input_is_densely_relabeled() {
        // Sparse 1-indexed ids with both directions recorded (SNAP style).
        let text = "% comment\n100 200\n200 100\n200 300\n300 100\n7 7\n";
        let (report, g) = convert_str(text, &ConvertOptions::default(), "conv-dense");
        assert!(report.dense_relabeled);
        assert_eq!(report.n, 4); // ids 7, 100, 200, 300
        assert_eq!(report.m, 3);
        assert_eq!(report.duplicates_removed, 1);
        assert_eq!(report.self_loops, 1);
        assert_eq!(g.self_loops(0), 1); // id 7 → dense 0
        assert_eq!(g.neighbors(1), &[2, 3]); // 100 ↔ {200, 300}
    }

    #[test]
    fn dedup_off_keeps_multiplicities() {
        let text = "n 3\n0 1\n1 0\n0 1\n2 2\n2 2\n";
        let opts = ConvertOptions {
            dedup: false,
            ..ConvertOptions::default()
        };
        let (report, g) = convert_str(text, &opts, "conv-multi");
        assert_eq!(report.duplicates_removed, 0);
        assert_eq!(g.m(), 3); // three parallel copies of {0,1}
        assert_eq!(g.self_loops(2), 2);
    }

    #[test]
    fn declared_header_preserves_isolated_vertices() {
        let text = "n 6\n0 1\n";
        let (report, g) = convert_str(text, &ConvertOptions::default(), "conv-isolated");
        assert_eq!(report.n, 6);
        assert_eq!(g.n(), 6);
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    fn morton_is_an_isomorphic_relabeling() {
        let g = graph::gen::gnp(80, 0.1, 13).unwrap();
        let text = graph::io::to_edge_list(&g);
        let opts = ConvertOptions {
            morton: true,
            chunk_edges: 32, // force the external path
            ..ConvertOptions::default()
        };
        let dir = crate::test_dir("conv-morton");
        let input = dir.join("in.txt");
        fs::write(&input, &text).unwrap();
        let out = dir.join("out.csr");
        let report = convert_edge_list(&input, &out, &opts).unwrap();
        assert!(report.morton);
        let file = CsrFile::open(&out).unwrap();
        assert!(file.header().morton());
        let h = file.to_graph().unwrap();
        assert_eq!(h.n(), g.n());
        assert_eq!(h.m(), g.m());
        // Relabeling preserves the degree multiset.
        let mut dg: Vec<usize> = (0..g.n() as u32).map(|v| g.degree(v)).collect();
        let mut dh: Vec<usize> = (0..h.n() as u32).map(|v| h.degree(v)).collect();
        dg.sort_unstable();
        dh.sort_unstable();
        assert_eq!(dg, dh);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let dir = crate::test_dir("conv-err");
        let input = dir.join("in.txt");
        let out = dir.join("out.csr");
        let case = |text: &str| -> StorageError {
            fs::write(&input, text).unwrap();
            convert_edge_list(&input, &out, &ConvertOptions::default()).unwrap_err()
        };
        match case("# ok\n0 1\n0 x\n") {
            StorageError::Parse { line, reason } => {
                assert_eq!(line, 3);
                assert!(reason.contains("\"x\""), "{reason}");
            }
            other => panic!("expected Parse, got {other}"),
        }
        match case("n 2\n0 5\n") {
            StorageError::Parse { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("out of range"), "{reason}");
            }
            other => panic!("expected Parse, got {other}"),
        }
        match case("0 1 2\n") {
            StorageError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected Parse, got {other}"),
        }
        assert!(matches!(
            convert_edge_list(&dir.join("missing.txt"), &out, &ConvertOptions::default()),
            Err(StorageError::Io { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_inputs_produce_valid_files() {
        let (report, g) = convert_str("# nothing\n", &ConvertOptions::default(), "conv-empty");
        assert_eq!((report.n, report.m), (0, 0));
        assert_eq!(g.n(), 0);
        let (report, g) = convert_str("n 3\n", &ConvertOptions::default(), "conv-empty-n");
        assert_eq!((report.n, report.m), (3, 0));
        assert_eq!(g.n(), 3);
    }

    #[test]
    fn morton_key_interleaves() {
        assert_eq!(spread_bits(0b11), 0b101);
        assert_eq!(morton_key(0, 0b1), 0b1);
        assert_eq!(morton_key(0b1, 0), 0b10);
        // Nearby coordinates → nearby keys (locality sanity).
        assert!(morton_key(2, 3) < morton_key(200, 300));
    }
}
