//! The real-graph ingestion tier: a versioned binary **on-disk CSR**
//! format, a memory-mapped zero-copy loader, and an out-of-core edge-list
//! converter.
//!
//! Every workload the pipeline ran before this crate existed was
//! synthetic. This crate closes the loop to real sparse graphs (road
//! networks, social graphs, anything SNAP-shaped):
//!
//! * [`convert`] — turn a plain-text edge list into the binary CSR file,
//!   sorting **out-of-core** in bounded-memory chunks with a k-way merge,
//!   optionally applying Morton-order vertex relabeling for locality.
//! * [`CsrFile`] — open a CSR file read-only through `mmap` (heap-read
//!   fallback), validate it (magic, version, bounds, checksum, structure)
//!   and expose a **zero-copy** [`CsrView`] implementing
//!   [`graph::view::AdjacencyView`], or materialize a full
//!   [`graph::Graph`] via [`CsrFile::to_graph`].
//! * [`artifact`] — persist a built [`triangle::service::QueryEngine`]
//!   into the file's frozen-artifact section and restore it without
//!   re-running the decomposition.
//!
//! The byte-exact format specification lives in `DATASETS.md`; the mmap
//! safety and immutability contract in `DESIGN.md` §13. Files are
//! **immutable once written**: every writer in this crate builds a
//! temporary file and renames it into place, so a concurrently mapped
//! reader keeps its (old-inode) view.
//!
//! # Examples
//!
//! Convert an edge list, load it zero-copy, and materialize the graph:
//!
//! ```
//! use storage::{convert_edge_list, ConvertOptions, CsrFile};
//!
//! let dir = storage::test_dir("doc-convert");
//! let input = dir.join("tiny.txt");
//! std::fs::write(&input, "# a triangle plus a tail\n0 1\n1 2\n2 0\n2 3\n").unwrap();
//! let out = dir.join("tiny.csr");
//! let report = convert_edge_list(&input, &out, &ConvertOptions::default()).unwrap();
//! assert_eq!((report.n, report.m), (4, 4));
//!
//! let file = CsrFile::open(&out).unwrap();
//! let g = file.to_graph().unwrap();
//! assert_eq!(g.neighbors(2), &[0, 1, 3]);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod convert;
mod enc;
pub mod format;
mod mmap;
pub mod view;

pub use convert::{convert_edge_list, write_graph, ConvertOptions, ConvertReport};
pub use format::{checksum, Chk64, Header, FLAG_HAS_ARTIFACT, FLAG_MORTON, FORMAT_VERSION, MAGIC};
pub use view::{CsrFile, CsrView};

use std::path::PathBuf;

/// Errors produced by the storage tier. Corrupted or truncated files are
/// always a typed error from [`CsrFile::open`] — never a panic, never UB.
#[derive(Debug)]
#[non_exhaustive]
pub enum StorageError {
    /// An I/O operation failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The first 8 bytes found instead.
        found: [u8; 8],
    },
    /// The file's format version is not supported by this build.
    BadVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The file is shorter than its header declares.
    Truncated {
        /// Bytes the header-derived layout requires.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// The stored checksum does not match the section bytes.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the file's section bytes.
        computed: u64,
    },
    /// A structural invariant of the CSR sections is violated.
    Corrupt {
        /// What was violated.
        reason: String,
    },
    /// Failure while parsing a plain-text edge-list input.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// The frozen-artifact section is absent, malformed, or inconsistent
    /// with the graph sections.
    Artifact {
        /// Description of the problem.
        reason: String,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io { path, source } => {
                write!(f, "i/o error on {}: {source}", path.display())
            }
            StorageError::BadMagic { found } => {
                write!(f, "not an on-disk CSR file (magic {found:02x?})")
            }
            StorageError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported format version {found} (this build reads version {FORMAT_VERSION})"
                )
            }
            StorageError::Truncated { expected, found } => {
                write!(
                    f,
                    "file truncated: layout needs {expected} bytes, found {found}"
                )
            }
            StorageError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: header says {stored:#018x}, sections hash to {computed:#018x}"
                )
            }
            StorageError::Corrupt { reason } => write!(f, "corrupt CSR sections: {reason}"),
            StorageError::Parse { line, reason } => {
                write!(f, "edge-list parse error on line {line}: {reason}")
            }
            StorageError::Artifact { reason } => write!(f, "frozen artifact: {reason}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

pub(crate) fn io_err(path: &std::path::Path, source: std::io::Error) -> StorageError {
    StorageError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// A fresh private directory under the system temp dir, for doctests and
/// unit tests that need to write files. Unique per call (pid + counter),
/// created eagerly. Callers clean up with `remove_dir_all`.
pub fn test_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("storage-{tag}-{}-{id}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}
