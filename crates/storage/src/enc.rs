//! Little-endian byte codec for the frozen-artifact section. Internal:
//! the graph sections are laid out by `format`/`convert` directly; this
//! cursor pair is only for the variable-shape artifact payload.

use crate::{Result, StorageError};

/// Append-only little-endian writer.
#[derive(Debug, Default)]
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub(crate) fn new() -> ByteWriter {
        ByteWriter::default()
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Length-prefixed `u32` slice.
    pub(crate) fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u32(v);
        }
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader. Every overrun is a typed
/// [`StorageError::Artifact`] — decoding never panics on corrupt input.
#[derive(Debug)]
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(StorageError::Artifact {
                reason: format!(
                    "payload overrun: need {len} bytes at offset {} of {}",
                    self.pos,
                    self.buf.len()
                ),
            }),
        }
    }

    pub(crate) fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Length as `usize`, guarded so a corrupt huge count cannot trigger
    /// an out-of-memory allocation before the overrun is detected.
    pub(crate) fn get_len(&mut self) -> Result<usize> {
        let len = self.get_u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        // Every encoded element occupies at least one byte.
        if len > remaining {
            return Err(StorageError::Artifact {
                reason: format!("declared length {len} exceeds {remaining} remaining bytes"),
            });
        }
        Ok(len as usize)
    }

    pub(crate) fn get_u32_vec(&mut self) -> Result<Vec<u32>> {
        let len = self.get_len()?;
        let bytes = self.take(len.checked_mul(4).ok_or_else(|| StorageError::Artifact {
            reason: "u32 slice length overflow".to_string(),
        })?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    pub(crate) fn finish(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(StorageError::Artifact {
                reason: format!(
                    "{} trailing bytes after the payload",
                    self.buf.len() - self.pos
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(std::f64::consts::PI);
        w.put_u32_slice(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn overrun_and_trailing_are_typed_errors() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.get_u32(), Err(StorageError::Artifact { .. })));

        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd length prefix
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_u32_vec(),
            Err(StorageError::Artifact { .. })
        ));

        let mut r = ByteReader::new(&[0u8; 3]);
        r.get_u8().unwrap();
        assert!(matches!(r.finish(), Err(StorageError::Artifact { .. })));
    }
}
