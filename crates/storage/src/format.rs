//! The on-disk CSR byte layout: header, section arithmetic, checksum.
//!
//! All integers are **little-endian**. The file is a 64-byte header
//! followed by four sections, each padded to an 8-byte boundary:
//!
//! | section  | contents                              | bytes (unpadded)  |
//! |----------|---------------------------------------|-------------------|
//! | offsets  | `(n + 1) × u64` CSR row offsets       | `8·(n+1)`         |
//! | adj      | `adj_len × u32` neighbor ids          | `4·adj_len`       |
//! | loops    | `n × u32` self-loop counts            | `4·n`             |
//! | artifact | frozen query-engine bytes (optional)  | `artifact_len`    |
//!
//! `adj_len = offsets[n] = 2·m` (each non-loop undirected edge occupies
//! one slot in each endpoint's row; self loops live only in `loops`).
//! Rows are sorted ascending. The header checksum covers **every byte
//! after the header**, padding included, so a flipped bit anywhere in any
//! section is caught before the sections are interpreted. The full
//! byte-exact specification (with the checksum algorithm) is DATASETS.md.

use crate::{Result, StorageError};

/// First 8 bytes of every on-disk CSR file.
pub const MAGIC: [u8; 8] = *b"EXPDCSR\0";

/// Format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Header flag: the vertex ids were Morton-relabeled by the converter.
pub const FLAG_MORTON: u32 = 1 << 0;

/// Header flag: the file carries a frozen query-engine artifact section.
pub const FLAG_HAS_ARTIFACT: u32 = 1 << 1;

/// Byte length of the fixed header.
pub const HEADER_LEN: usize = 64;

const KNOWN_FLAGS: u32 = FLAG_MORTON | FLAG_HAS_ARTIFACT;

/// Rounds `len` up to the next multiple of 8 (section padding).
pub(crate) fn pad8(len: u64) -> u64 {
    len.div_ceil(8) * 8
}

/// The parsed fixed-size header of an on-disk CSR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format version (see [`FORMAT_VERSION`]).
    pub version: u32,
    /// Flag bits ([`FLAG_MORTON`], [`FLAG_HAS_ARTIFACT`]).
    pub flags: u32,
    /// Number of vertices.
    pub n: u64,
    /// Number of non-loop undirected edges (with multiplicity).
    pub m: u64,
    /// Total adjacency slots: `offsets[n] = 2·m`.
    pub adj_len: u64,
    /// Total self loops across all vertices.
    pub total_loops: u64,
    /// Unpadded byte length of the artifact section (0 = absent).
    pub artifact_len: u64,
    /// Checksum over every byte after the header.
    pub checksum: u64,
}

/// Byte ranges of the four sections, resolved against a header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Offsets section start (always [`HEADER_LEN`]).
    pub offsets: u64,
    /// Adjacency section start.
    pub adj: u64,
    /// Self-loop section start.
    pub loops: u64,
    /// Artifact section start (== `file_len` when absent).
    pub artifact: u64,
    /// Exact total file length the header implies.
    pub file_len: u64,
}

impl Header {
    /// Parses and sanity-checks the first [`HEADER_LEN`] bytes.
    ///
    /// # Errors
    ///
    /// [`StorageError::Truncated`] if fewer than [`HEADER_LEN`] bytes are
    /// given, [`StorageError::BadMagic`] / [`StorageError::BadVersion`] on
    /// foreign or future files, [`StorageError::Corrupt`] on internally
    /// inconsistent counts.
    pub fn parse(bytes: &[u8]) -> Result<Header> {
        if bytes.len() < HEADER_LEN {
            return Err(StorageError::Truncated {
                expected: HEADER_LEN as u64,
                found: bytes.len() as u64,
            });
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        if bytes[..8] != MAGIC {
            return Err(StorageError::BadMagic {
                found: bytes[..8].try_into().unwrap(),
            });
        }
        let version = u32_at(8);
        if version != FORMAT_VERSION {
            return Err(StorageError::BadVersion { found: version });
        }
        let header = Header {
            version,
            flags: u32_at(12),
            n: u64_at(16),
            m: u64_at(24),
            adj_len: u64_at(32),
            total_loops: u64_at(40),
            artifact_len: u64_at(48),
            checksum: u64_at(56),
        };
        if header.flags & !KNOWN_FLAGS != 0 {
            return Err(StorageError::Corrupt {
                reason: format!("unknown flag bits {:#x}", header.flags & !KNOWN_FLAGS),
            });
        }
        if header.n > u32::MAX as u64 {
            return Err(StorageError::Corrupt {
                reason: format!("{} vertices exceed the u32 vertex-id space", header.n),
            });
        }
        if header.adj_len != header.m.wrapping_mul(2) {
            return Err(StorageError::Corrupt {
                reason: format!("adj_len {} is not 2·m (m = {})", header.adj_len, header.m),
            });
        }
        if header.artifact_len > 0 && header.flags & FLAG_HAS_ARTIFACT == 0 {
            return Err(StorageError::Corrupt {
                reason: "artifact bytes present but HAS_ARTIFACT flag clear".to_string(),
            });
        }
        if header.artifact_len == 0 && header.flags & FLAG_HAS_ARTIFACT != 0 {
            return Err(StorageError::Corrupt {
                reason: "HAS_ARTIFACT flag set but artifact_len is 0".to_string(),
            });
        }
        Ok(header)
    }

    /// Encodes the header into its [`HEADER_LEN`] bytes.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&self.version.to_le_bytes());
        out[12..16].copy_from_slice(&self.flags.to_le_bytes());
        out[16..24].copy_from_slice(&self.n.to_le_bytes());
        out[24..32].copy_from_slice(&self.m.to_le_bytes());
        out[32..40].copy_from_slice(&self.adj_len.to_le_bytes());
        out[40..48].copy_from_slice(&self.total_loops.to_le_bytes());
        out[48..56].copy_from_slice(&self.artifact_len.to_le_bytes());
        out[56..64].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    /// Resolves the section layout, with overflow-checked arithmetic.
    ///
    /// # Errors
    ///
    /// [`StorageError::Corrupt`] when the declared counts overflow a
    /// representable file length.
    pub fn layout(&self) -> Result<Layout> {
        let overflow = || StorageError::Corrupt {
            reason: "declared section sizes overflow".to_string(),
        };
        let offsets = HEADER_LEN as u64;
        let offsets_bytes = self
            .n
            .checked_add(1)
            .and_then(|rows| rows.checked_mul(8))
            .ok_or_else(overflow)?;
        let adj = offsets.checked_add(offsets_bytes).ok_or_else(overflow)?;
        let adj_bytes = pad8(self.adj_len.checked_mul(4).ok_or_else(overflow)?);
        let loops = adj.checked_add(adj_bytes).ok_or_else(overflow)?;
        let loops_bytes = pad8(self.n.checked_mul(4).ok_or_else(overflow)?);
        let artifact = loops.checked_add(loops_bytes).ok_or_else(overflow)?;
        let file_len = artifact
            .checked_add(pad8(self.artifact_len))
            .ok_or_else(overflow)?;
        Ok(Layout {
            offsets,
            adj,
            loops,
            artifact,
            file_len,
        })
    }

    /// Whether the converter Morton-relabeled the vertex ids.
    pub fn morton(&self) -> bool {
        self.flags & FLAG_MORTON != 0
    }

    /// Whether the file carries a frozen query-engine artifact.
    pub fn has_artifact(&self) -> bool {
        self.flags & FLAG_HAS_ARTIFACT != 0
    }
}

/// Streaming 64-bit checksum over section bytes (see DATASETS.md for the
/// byte-exact definition). Not cryptographic — it guards against
/// truncation, bit rot and interrupted writes, at memory speed.
///
/// # Examples
///
/// ```
/// use storage::Chk64;
///
/// let mut h = Chk64::new();
/// h.update(b"split across");
/// h.update(b" calls");
/// assert_eq!(h.finalize(), storage::checksum(b"split across calls"));
/// ```
#[derive(Debug, Clone)]
pub struct Chk64 {
    h: u64,
    carry: [u8; 8],
    carry_len: usize,
    len: u64,
}

const CHK_INIT: u64 = 0x9E37_79B9_7F4A_7C15;
const CHK_MUL: u64 = 0x517C_C1B7_2722_0A95;

impl Chk64 {
    /// A fresh hasher.
    pub fn new() -> Chk64 {
        Chk64 {
            h: CHK_INIT,
            carry: [0u8; 8],
            carry_len: 0,
            len: 0,
        }
    }

    #[inline]
    fn mix(&mut self, chunk: u64) {
        self.h = (self.h ^ chunk).wrapping_mul(CHK_MUL).rotate_left(27);
    }

    /// Absorbs `bytes` (any length; calls may split at any boundary).
    pub fn update(&mut self, bytes: &[u8]) {
        self.len += bytes.len() as u64;
        let mut rest = bytes;
        if self.carry_len > 0 {
            let take = rest.len().min(8 - self.carry_len);
            self.carry[self.carry_len..self.carry_len + take].copy_from_slice(&rest[..take]);
            self.carry_len += take;
            rest = &rest[take..];
            if self.carry_len == 8 {
                self.mix(u64::from_le_bytes(self.carry));
                self.carry_len = 0;
            } else {
                return;
            }
        }
        let mut chunks = rest.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        self.carry[..rem.len()].copy_from_slice(rem);
        self.carry_len = rem.len();
    }

    /// Finishes and returns the checksum.
    pub fn finalize(mut self) -> u64 {
        if self.carry_len > 0 {
            self.carry[self.carry_len..].fill(0);
            let chunk = u64::from_le_bytes(self.carry);
            self.mix(chunk);
        }
        let mut h = self.h ^ self.len;
        h ^= h >> 31;
        h = h.wrapping_mul(CHK_MUL);
        h ^= h >> 29;
        h
    }
}

impl Default for Chk64 {
    fn default() -> Self {
        Chk64::new()
    }
}

/// One-shot [`Chk64`] over a byte slice.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = Chk64::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            version: FORMAT_VERSION,
            flags: FLAG_MORTON,
            n: 10,
            m: 7,
            adj_len: 14,
            total_loops: 3,
            artifact_len: 0,
            checksum: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn header_roundtrips() {
        let h = sample_header();
        let parsed = Header::parse(&h.encode()).unwrap();
        assert_eq!(h, parsed);
    }

    #[test]
    fn layout_is_aligned_and_exact() {
        let l = sample_header().layout().unwrap();
        assert_eq!(l.offsets, 64);
        assert_eq!(l.adj, 64 + 11 * 8);
        // 14 × 4 = 56 bytes, already a multiple of 8.
        assert_eq!(l.loops, l.adj + 56);
        // 10 × 4 = 40 bytes, already aligned.
        assert_eq!(l.artifact, l.loops + 40);
        assert_eq!(l.file_len, l.artifact);
        for s in [l.offsets, l.adj, l.loops, l.artifact, l.file_len] {
            assert_eq!(s % 8, 0, "section start {s} unaligned");
        }
    }

    #[test]
    fn parse_rejects_bad_magic_version_flags() {
        let mut bytes = sample_header().encode();
        bytes[0] = b'X';
        assert!(matches!(
            Header::parse(&bytes),
            Err(StorageError::BadMagic { .. })
        ));

        let mut h = sample_header();
        h.version = 99;
        assert!(matches!(
            Header::parse(&h.encode()),
            Err(StorageError::BadVersion { found: 99 })
        ));

        let mut h = sample_header();
        h.flags = 0x80;
        assert!(matches!(
            Header::parse(&h.encode()),
            Err(StorageError::Corrupt { .. })
        ));

        assert!(matches!(
            Header::parse(&[0u8; 10]),
            Err(StorageError::Truncated { .. })
        ));
    }

    #[test]
    fn parse_rejects_inconsistent_counts() {
        let mut h = sample_header();
        h.adj_len = 13; // not 2·m
        assert!(matches!(
            Header::parse(&h.encode()),
            Err(StorageError::Corrupt { .. })
        ));

        let mut h = sample_header();
        h.artifact_len = 16; // bytes without the flag
        assert!(matches!(
            Header::parse(&h.encode()),
            Err(StorageError::Corrupt { .. })
        ));

        let mut h = sample_header();
        h.flags |= FLAG_HAS_ARTIFACT; // flag without bytes
        assert!(matches!(
            Header::parse(&h.encode()),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn layout_overflow_is_an_error_not_a_panic() {
        let mut h = sample_header();
        h.n = u32::MAX as u64;
        h.m = u64::MAX / 2;
        h.adj_len = h.m * 2;
        assert!(matches!(h.layout(), Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn checksum_is_split_invariant_and_length_sensitive() {
        let data: Vec<u8> = (0..1000u32).flat_map(|x| x.to_le_bytes()).collect();
        let whole = checksum(&data);
        for split in [0, 1, 7, 8, 9, 63, 999, data.len()] {
            let mut h = Chk64::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
        assert_ne!(checksum(b""), checksum(&[0u8]));
        assert_ne!(checksum(&[0u8; 8]), checksum(&[0u8; 16]));
        let mut flipped = data.clone();
        flipped[500] ^= 1;
        assert_ne!(checksum(&flipped), whole);
    }

    #[test]
    fn checksum_matches_the_pinned_datasets_md_vectors() {
        // These constants are published in DATASETS.md §1.3; changing the
        // algorithm without a version bump breaks every existing file.
        assert_eq!(checksum(b""), 0x19E1_B133_F182_F56A);
        assert_eq!(checksum(b"expander"), 0xDE9C_4201_37FE_D557);
        assert_eq!(checksum(b"DATASETS.md"), 0x9532_FC32_5E7B_AB0E);
    }

    #[test]
    fn pad8_rounds_up() {
        assert_eq!(pad8(0), 0);
        assert_eq!(pad8(1), 8);
        assert_eq!(pad8(8), 8);
        assert_eq!(pad8(9), 16);
    }
}
