//! Read-only file access: `mmap` when available, heap read as fallback.
//!
//! This is the **only** module in the workspace that contains `unsafe`
//! code, and all of it is the FFI surface of `mmap(2)`/`munmap(2)` plus
//! the reconstruction of the mapped bytes as a `&[u8]`. The safety
//! argument (DESIGN.md §13) rests on the crate-wide immutability
//! contract:
//!
//! * mappings are created `PROT_READ` + `MAP_PRIVATE` — nothing in this
//!   process can write through them, and writes by other processes to the
//!   same inode are not guaranteed to be visible (nor relied upon);
//! * every writer in this crate produces a **new** file and renames it
//!   into place, so the inode behind a live mapping is never rewritten by
//!   this codebase. (An external actor truncating a mapped file can still
//!   deliver `SIGBUS` — a crash, not memory unsafety — which is why the
//!   contract is documented rather than assumed silently.)
//!
//! Set `STORAGE_FORCE_HEAP=1` to bypass `mmap` (tests exercise both
//! backends; non-Unix targets always take the heap path).

#![allow(unsafe_code)]

use crate::{io_err, Result};
use std::fs::File;
use std::io::Read;
use std::path::Path;

/// A file's bytes, either memory-mapped or read onto the heap.
#[derive(Debug)]
pub(crate) struct MappedFile {
    backing: Backing,
}

#[derive(Debug)]
enum Backing {
    Heap(Vec<u8>),
    #[cfg(unix)]
    Mapped(Region),
}

impl MappedFile {
    /// Opens `path` read-only. Prefers `mmap`; falls back to a heap read
    /// when mapping is unavailable (empty file, exotic filesystem,
    /// `STORAGE_FORCE_HEAP=1`, non-Unix target).
    pub(crate) fn open(path: &Path) -> Result<MappedFile> {
        let mut file = File::open(path).map_err(|e| io_err(path, e))?;
        let len = file.metadata().map_err(|e| io_err(path, e))?.len();
        let force_heap = std::env::var_os("STORAGE_FORCE_HEAP").is_some_and(|v| v == "1");
        #[cfg(unix)]
        if !force_heap && len > 0 && len <= usize::MAX as u64 {
            if let Some(region) = Region::map(&file, len as usize) {
                return Ok(MappedFile {
                    backing: Backing::Mapped(region),
                });
            }
        }
        let _ = force_heap;
        let mut buf = Vec::with_capacity(len.min(usize::MAX as u64) as usize);
        file.read_to_end(&mut buf).map_err(|e| io_err(path, e))?;
        Ok(MappedFile {
            backing: Backing::Heap(buf),
        })
    }

    /// The file's bytes.
    pub(crate) fn bytes(&self) -> &[u8] {
        match &self.backing {
            Backing::Heap(v) => v,
            #[cfg(unix)]
            Backing::Mapped(r) => r.bytes(),
        }
    }

    /// Whether the bytes come from a live `mmap` (false = heap copy).
    pub(crate) fn is_mapped(&self) -> bool {
        match &self.backing {
            Backing::Heap(_) => false,
            #[cfg(unix)]
            Backing::Mapped(_) => true,
        }
    }
}

#[cfg(unix)]
use sys::Region;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::fs::File;
    use std::os::raw::c_int;
    use std::os::unix::io::AsRawFd;

    // Minimal hand-written bindings: this environment vendors no `libc`
    // crate, and std already links the platform libc, so the two symbols
    // resolve at link time. Constants are the Linux/POSIX values shared
    // by every Unix this workspace targets.
    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// An owned `PROT_READ`/`MAP_PRIVATE` mapping of a whole file.
    #[derive(Debug)]
    pub(crate) struct Region {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the region is created PROT_READ and never handed out
    // mutably; a read-only mapping is freely shareable across threads,
    // exactly like the `&[u8]` it is exposed as.
    unsafe impl Send for Region {}
    unsafe impl Sync for Region {}

    impl Region {
        /// Maps `len > 0` bytes of `file`. Returns `None` when the kernel
        /// refuses (the caller falls back to a heap read).
        pub(crate) fn map(file: &File, len: usize) -> Option<Region> {
            // SAFETY: plain syscall; a NULL hint, a non-negative fd and
            // offset 0 are always valid arguments. The result is checked
            // against MAP_FAILED before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == usize::MAX as *mut c_void || ptr.is_null() {
                return None;
            }
            Some(Region {
                ptr: ptr as *const u8,
                len,
            })
        }

        pub(crate) fn bytes(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, held until Drop; the immutability contract (module
            // docs) guarantees no writer aliases it within this codebase.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Region {
        fn drop(&mut self) {
            // SAFETY: unmapping exactly what `map` mapped; the only
            // borrows of the region live inside `MappedFile`, which is
            // being dropped with us.
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_reads_back() {
        let dir = crate::test_dir("mmap");
        let path = dir.join("blob.bin");
        let data: Vec<u8> = (0..100_000u32).flat_map(|x| x.to_le_bytes()).collect();
        std::fs::write(&path, &data).unwrap();
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.bytes(), &data[..]);
        #[cfg(unix)]
        assert!(map.is_mapped(), "unix should take the mmap path");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_file_takes_heap_path() {
        let dir = crate::test_dir("mmap-empty");
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let map = MappedFile::open(&path).unwrap();
        assert!(map.bytes().is_empty());
        assert!(!map.is_mapped());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let dir = crate::test_dir("mmap-missing");
        let err = MappedFile::open(&dir.join("nope.bin")).unwrap_err();
        assert!(matches!(err, crate::StorageError::Io { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }
}
