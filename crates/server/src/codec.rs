//! The stream codec: reading and writing [`Frame`]s over any
//! `Read`/`Write` pair (in production, a `TcpStream`).
//!
//! The reader distinguishes three terminal conditions a byte stream can
//! reach, because the server must react differently to each:
//!
//! * **clean EOF** — the peer closed between frames: [`read_frame`]
//!   returns `Ok(None)`, the connection winds down quietly;
//! * **mid-frame truncation** — the peer closed (or the read timed out)
//!   with a frame half-delivered: a typed
//!   [`ProtocolError::Truncated`] — the stream cannot resync, the
//!   connection must close;
//! * **malformed header/payload** — typed [`ProtocolError`], surfaced to
//!   the peer as an [`Opcode::Error`](crate::protocol::Opcode) frame
//!   before the connection closes.
//!
//! Nothing in this module panics on wire input; `tests/server_protocol.rs`
//! drives arbitrary and bit-flipped byte streams through it.

use crate::protocol::{Frame, FrameHeader, ProtocolError, HEADER_LEN};
use std::io::{self, Read, Write};

/// A frame-layer failure: either the transport failed ([`CodecError::Io`])
/// or the bytes were malformed ([`CodecError::Protocol`]).
#[derive(Debug)]
pub enum CodecError {
    /// The underlying transport errored (includes read timeouts, which
    /// surface as `WouldBlock`/`TimedOut`).
    Io(io::Error),
    /// The bytes violated the frame grammar.
    Protocol(ProtocolError),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "transport error: {e}"),
            CodecError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> CodecError {
        CodecError::Io(e)
    }
}

impl From<ProtocolError> for CodecError {
    fn from(e: ProtocolError) -> CodecError {
        CodecError::Protocol(e)
    }
}

impl CodecError {
    /// Whether this is a read timeout (the socket's `read_timeout`
    /// fired) rather than a dead peer or malformed bytes.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            CodecError::Io(e) if e.kind() == io::ErrorKind::WouldBlock
                || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

/// Reads exactly `buf.len()` bytes. Returns `Ok(0)` on immediate clean
/// EOF, `Ok(buf.len())` on success, and a truncation error when EOF (or
/// a timeout) lands mid-buffer.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, CodecError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(0);
                }
                return Err(ProtocolError::Truncated {
                    expected: buf.len(),
                    got: filled,
                }
                .into());
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

/// Reads one frame. `Ok(None)` means the peer closed cleanly **between**
/// frames; every other shortfall is a typed error. `max_payload` bounds
/// the length prefix before any allocation happens.
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> Result<Option<Frame>, CodecError> {
    let mut head = [0u8; HEADER_LEN];
    if read_exact_or_eof(r, &mut head)? == 0 {
        return Ok(None);
    }
    let header = FrameHeader::decode(&head, max_payload)?;
    let mut payload = vec![0u8; header.payload_len as usize];
    if header.payload_len > 0 && read_exact_or_eof(r, &mut payload)? == 0 {
        return Err(ProtocolError::Truncated {
            expected: header.payload_len as usize,
            got: 0,
        }
        .into());
    }
    Ok(Some(Frame { header, payload }))
}

/// Writes one frame and flushes it.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Opcode;

    #[test]
    fn frames_stream_back_to_back() {
        let frames = [
            Frame::new(Opcode::Ping, 1, 0, Vec::new()),
            Frame::new(Opcode::Query, 2, 0, vec![9, 8, 7]),
            Frame::new(Opcode::Pong, 1, 3, Vec::new()),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = &wire[..];
        for f in &frames {
            assert_eq!(read_frame(&mut cursor, 1 << 20).unwrap().unwrap(), *f);
        }
        assert!(read_frame(&mut cursor, 1 << 20).unwrap().is_none());
    }

    #[test]
    fn truncation_mid_header_and_mid_payload_is_typed() {
        let f = Frame::new(Opcode::Query, 5, 0, vec![1, 2, 3, 4]);
        let wire = f.encode();
        // Every proper prefix fails with Truncated, never panics.
        for cut in 1..wire.len() {
            let mut cursor = &wire[..cut];
            let got = read_frame(&mut cursor, 1 << 20);
            assert!(
                matches!(
                    got,
                    Err(CodecError::Protocol(ProtocolError::Truncated { .. }))
                ),
                "prefix {cut} should be Truncated, got {got:?}"
            );
        }
    }

    #[test]
    fn oversize_prefix_rejected_before_allocation() {
        let mut head = FrameHeader {
            opcode: Opcode::Query,
            id: 0,
            generation: 0,
            payload_len: u32::MAX,
        }
        .encode();
        // Cap far below the claim: decode must fail on the header alone.
        let mut cursor = &head[..];
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(CodecError::Protocol(ProtocolError::Oversize { .. }))
        ));
        // Bad magic beats everything else.
        head[0] = 0;
        let mut cursor = &head[..];
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(CodecError::Protocol(ProtocolError::BadMagic { .. }))
        ));
    }
}
