//! A blocking client for the wire protocol: correlation-id matched,
//! optionally pipelined.
//!
//! The server answers out of order (batches complete independently
//! across the executor pool), so the client never assumes FIFO: every
//! request carries a fresh correlation id and every response is matched
//! back through it. [`Client::run_pipelined`] keeps a window of requests
//! outstanding and returns answers **in input order** regardless of the
//! order the wire delivered them — with `Busy` refusals transparently
//! retried a bounded number of times, since a refusal is an invitation
//! to retry, not an answer.

use crate::codec::{self, CodecError};
use crate::protocol::{
    decode_error, decode_outcome, encode_query, Frame, Opcode, ProtocolError, WireError,
    DEFAULT_MAX_PAYLOAD,
};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use triangle::service::{Query, QueryOutcome};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// The server's bytes violated the frame grammar.
    Protocol(ProtocolError),
    /// The server closed the connection while responses were still owed.
    ServerClosed,
    /// The server sent a frame that makes no sense here (a request
    /// opcode, or a correlation id nothing is waiting for).
    UnexpectedFrame {
        /// What was wrong with it.
        detail: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::ServerClosed => write!(f, "server closed the connection"),
            ClientError::UnexpectedFrame { detail } => write!(f, "unexpected frame: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> ClientError {
        match e {
            CodecError::Io(e) => ClientError::Io(e),
            CodecError::Protocol(p) => ClientError::Protocol(p),
        }
    }
}

/// What the server said about one request.
#[derive(Debug)]
pub enum ResponseBody {
    /// The query's outcome (answer plus its cost accounting).
    Answer(QueryOutcome),
    /// A typed refusal of the request's content.
    Error(WireError),
    /// Backpressure: the server declined to even queue the query.
    Busy,
    /// Reply to a `Ping`.
    Pong,
    /// Reply to a `Reload`; `true` if the engine was actually swapped.
    Reloaded(bool),
}

/// One matched response: correlation id, the generation of the engine
/// that produced it, the round-trip time, and the body.
#[derive(Debug)]
pub struct WireResponse {
    /// Echoed correlation id.
    pub id: u64,
    /// Engine generation stamped by the server.
    pub generation: u64,
    /// Round trip from send to receive (zero for unsolicited reads).
    pub rtt: Duration,
    /// The decoded body.
    pub body: ResponseBody,
}

/// A blocking connection to a triangle-query server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    max_payload: u32,
}

impl Client {
    /// Connects with the default payload cap.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            next_id: 1,
            max_payload: DEFAULT_MAX_PAYLOAD,
        })
    }

    /// Caps how long a single blocking read may wait for the server.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    fn send(&mut self, opcode: Opcode, payload: Vec<u8>) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        codec::write_frame(&mut self.writer, &Frame::new(opcode, id, 0, payload))?;
        Ok(id)
    }

    /// Writes raw bytes straight onto the socket, bypassing the frame
    /// encoder — the hostile-input path the smoke tests drive.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads and decodes the next response frame, whatever its id.
    pub fn recv(&mut self) -> Result<WireResponse, ClientError> {
        let frame = match codec::read_frame(&mut self.reader, self.max_payload)? {
            Some(f) => f,
            None => return Err(ClientError::ServerClosed),
        };
        let body = match frame.header.opcode {
            Opcode::Answer => ResponseBody::Answer(decode_outcome(&frame.payload)?),
            Opcode::Error => ResponseBody::Error(decode_error(&frame.payload)?),
            Opcode::Busy => ResponseBody::Busy,
            Opcode::Pong => ResponseBody::Pong,
            Opcode::Reloaded => ResponseBody::Reloaded(frame.payload.first() == Some(&1)),
            op @ (Opcode::Query | Opcode::Ping | Opcode::Reload) => {
                return Err(ClientError::UnexpectedFrame {
                    detail: format!("server sent request opcode 0x{:02x}", op as u8),
                })
            }
        };
        Ok(WireResponse {
            id: frame.header.id,
            generation: frame.header.generation,
            rtt: Duration::ZERO,
            body,
        })
    }

    fn call(&mut self, opcode: Opcode, payload: Vec<u8>) -> Result<WireResponse, ClientError> {
        let sent = Instant::now();
        let id = self.send(opcode, payload)?;
        let mut resp = self.recv()?;
        if resp.id != id {
            return Err(ClientError::UnexpectedFrame {
                detail: format!("correlation id {} where {id} was expected", resp.id),
            });
        }
        resp.rtt = sent.elapsed();
        Ok(resp)
    }

    /// Round-trips a `Ping`; returns the server's current generation.
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        let resp = self.call(Opcode::Ping, Vec::new())?;
        match resp.body {
            ResponseBody::Pong => Ok(resp.generation),
            other => Err(ClientError::UnexpectedFrame {
                detail: format!("{other:?} in reply to Ping"),
            }),
        }
    }

    /// Asks the server to hot-swap its engine; returns `(swapped,
    /// generation-after)`.
    pub fn reload(&mut self) -> Result<(bool, u64), ClientError> {
        let resp = self.call(Opcode::Reload, Vec::new())?;
        match resp.body {
            ResponseBody::Reloaded(swapped) => Ok((swapped, resp.generation)),
            other => Err(ClientError::UnexpectedFrame {
                detail: format!("{other:?} in reply to Reload"),
            }),
        }
    }

    /// Sends one query and waits for its response (`Answer`, `Error`, or
    /// `Busy`).
    pub fn query(&mut self, query: Query) -> Result<WireResponse, ClientError> {
        self.call(Opcode::Query, encode_query(&query))
    }

    /// Streams `queries` with up to `window` requests outstanding and
    /// returns the responses **in input order**. `Busy` refusals are
    /// re-sent up to `busy_retries` times each; a refusal that exhausts
    /// its retries is returned as-is for the caller to judge.
    pub fn run_pipelined(
        &mut self,
        queries: &[Query],
        window: usize,
        busy_retries: usize,
    ) -> Result<Vec<WireResponse>, ClientError> {
        let window = window.max(1);
        let mut results: Vec<Option<WireResponse>> = Vec::new();
        results.resize_with(queries.len(), || None);
        // id → (input index, send time, Busy retries left)
        let mut pending: HashMap<u64, (usize, Instant, usize)> = HashMap::new();
        let mut next = 0usize;
        let mut done = 0usize;
        while done < queries.len() {
            while next < queries.len() && pending.len() < window {
                let sent = Instant::now();
                let id = self.send(Opcode::Query, encode_query(&queries[next]))?;
                pending.insert(id, (next, sent, busy_retries));
                next += 1;
            }
            let mut resp = self.recv()?;
            let Some((index, sent, retries)) = pending.remove(&resp.id) else {
                return Err(ClientError::UnexpectedFrame {
                    detail: format!("correlation id {} matches no pending query", resp.id),
                });
            };
            if matches!(resp.body, ResponseBody::Busy) && retries > 0 {
                let resent = Instant::now();
                let id = self.send(Opcode::Query, encode_query(&queries[index]))?;
                pending.insert(id, (index, resent, retries - 1));
                continue;
            }
            resp.rtt = sent.elapsed();
            results[index] = Some(resp);
            done += 1;
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("all slots filled"))
            .collect())
    }
}
