//! The serve loop: a multi-threaded TCP frontend over
//! [`QueryEngine`], built on `std::net` alone.
//!
//! # Thread topology
//!
//! ```text
//! acceptor ──► one reader thread per connection ──► shared work queue
//!                         │ (bounded; try_send — full ⇒ Busy)
//!                         ▼
//!                      batcher ──► executor pool (max_inflight_batches)
//!                 (flush on batch_max │   snapshot (engine, generation),
//!                  or flush_interval) │   QueryEngine::serve, reply
//!                                    ▼
//!                    per-connection writer threads
//! ```
//!
//! Queries from **all** connections funnel into one bounded work queue;
//! the batcher flushes a batch when it holds
//! [`ServerConfig::batch_max`] queries or when
//! [`ServerConfig::flush_interval`] elapses since the batch's first
//! query — the amortization the in-process tier measured (per-query work
//! is microseconds, scheduling must be paid per *batch*). Each batch is
//! answered against a single `(engine, generation)` snapshot, so answers
//! within a batch are mutually consistent even across a reload.
//!
//! # Hot swap
//!
//! [`ServerHandle::reload`] (or a wire
//! [`Opcode::Reload`](crate::protocol::Opcode) frame, or the
//! [`ServerConfig::reload_poll`] mtime watcher — the poll-loop stand-in
//! for SIGHUP, which the workspace's `unsafe`-free rule keeps out)
//! re-opens the artifact via [`storage::artifact::restore_or_build`] and
//! atomically replaces the shared `Arc<QueryEngine>`. In-flight batches
//! hold their own `Arc` snapshot and drain against the **old** engine;
//! new batches see the new one. Every response header carries the
//! generation, so clients observe the swap from the stream alone. A
//! failed reload (corrupt or missing file) keeps the old engine serving
//! and counts `reload_failures` — degradation, never an outage.
//!
//! # Backpressure
//!
//! Three typed refusals instead of unbounded growth: the accept cap
//! refuses connections past [`ServerConfig::max_connections`] with a
//! `Busy` frame; a full work queue answers the overflowing query with
//! `Busy` (the query is *not* executed — the client owns the retry); and
//! a batch that finds all [`ServerConfig::max_inflight_batches`] executor
//! slots taken is Busy-answered wholesale. Readers enforce
//! [`ServerConfig::read_timeout`] so a stalled peer cannot pin its thread
//! forever.

use crate::codec::{self, CodecError};
use crate::protocol::{
    encode_error, encode_outcome, Frame, Opcode, ProtocolError, WireError, DEFAULT_MAX_PAYLOAD,
};
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant, SystemTime};
use storage::artifact::{restore_or_build, EngineSource};
use storage::StorageError;
use triangle::service::{Query, QueryEngine};
use triangle::PipelineParams;

use expander::scheduler::SchedulerPolicy;

/// Tuning knobs for [`serve_engine`]/[`serve_path`]. Every field has a
/// serviceable default; the CI smoke job runs them unchanged.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (port 0 picks a free port).
    pub addr: SocketAddr,
    /// Flush a batch once it holds this many queries.
    pub batch_max: usize,
    /// Flush a partial batch this long after its first query arrived.
    pub flush_interval: Duration,
    /// Scheduler workers *within* one batch (1 = serve sequentially;
    /// cross-batch parallelism comes from the executor pool).
    pub workers: usize,
    /// Executor threads — the max number of batches in flight at once.
    pub max_inflight_batches: usize,
    /// Work-queue capacity; `0` derives `batch_max · max_inflight_batches`.
    pub queue_cap: usize,
    /// Connections served concurrently; the acceptor refuses the rest
    /// with a `Busy` frame.
    pub max_connections: usize,
    /// Per-connection read timeout; a peer idle past it is disconnected.
    pub read_timeout: Duration,
    /// Per-frame payload cap in both directions.
    pub max_payload: u32,
    /// Re-check the artifact file's mtime this often and hot-swap on
    /// change (`None` disables polling; wire `Reload` still works).
    pub reload_poll: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            batch_max: 64,
            flush_interval: Duration::from_micros(500),
            workers: 1,
            max_inflight_batches: 4,
            queue_cap: 0,
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            max_payload: DEFAULT_MAX_PAYLOAD,
            reload_poll: None,
        }
    }
}

impl ServerConfig {
    fn effective_queue_cap(&self) -> usize {
        if self.queue_cap > 0 {
            self.queue_cap
        } else {
            (self.batch_max * self.max_inflight_batches).max(1)
        }
    }

    fn policy(&self) -> SchedulerPolicy {
        if self.workers <= 1 {
            SchedulerPolicy::sequential()
        } else {
            SchedulerPolicy::with_workers(self.workers)
        }
    }
}

/// Startup/bind failures (wire-level failures never surface here — they
/// are per-connection events).
#[derive(Debug)]
pub enum ServeError {
    /// Binding or configuring the listener failed.
    Io(io::Error),
    /// Opening/restoring the artifact at startup failed.
    Storage(StorageError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "cannot start server: {e}"),
            ServeError::Storage(e) => write!(f, "cannot restore engine: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<StorageError> for ServeError {
    fn from(e: StorageError) -> ServeError {
        ServeError::Storage(e)
    }
}

/// Monotonic counters the server keeps; snapshot via
/// [`ServerHandle::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted into service.
    pub accepted: u64,
    /// Connections refused at the accept cap.
    pub refused: u64,
    /// Queries enqueued for execution.
    pub queries: u64,
    /// Answer/Error frames produced by executors.
    pub answered: u64,
    /// Queries refused with `Busy` (queue full or no executor slot).
    pub busy: u64,
    /// Batches flushed to executors.
    pub batches: u64,
    /// Malformed frames/payloads received.
    pub protocol_errors: u64,
    /// Successful hot-swap reloads.
    pub reloads: u64,
    /// Reload attempts that failed (old engine kept serving).
    pub reload_failures: u64,
}

#[derive(Debug, Default)]
struct Stats {
    accepted: AtomicU64,
    refused: AtomicU64,
    queries: AtomicU64,
    answered: AtomicU64,
    busy: AtomicU64,
    batches: AtomicU64,
    protocol_errors: AtomicU64,
    reloads: AtomicU64,
    reload_failures: AtomicU64,
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            reload_failures: self.reload_failures.load(Ordering::Relaxed),
        }
    }
}

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// The engine slot every thread reads through: the `Arc` and its
/// generation swap together under one lock, so a snapshot is always a
/// consistent pair.
#[derive(Debug)]
struct EngineCell {
    slot: RwLock<(Arc<QueryEngine>, u64)>,
    generation: AtomicU64,
}

impl EngineCell {
    fn new(engine: Arc<QueryEngine>) -> EngineCell {
        EngineCell {
            slot: RwLock::new((engine, 1)),
            generation: AtomicU64::new(1),
        }
    }

    fn snapshot(&self) -> (Arc<QueryEngine>, u64) {
        let guard = self.slot.read().expect("engine slot poisoned");
        (Arc::clone(&guard.0), guard.1)
    }

    fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    fn swap(&self, engine: Arc<QueryEngine>) -> u64 {
        let mut guard = self.slot.write().expect("engine slot poisoned");
        let next = guard.1 + 1;
        *guard = (engine, next);
        self.generation.store(next, Ordering::Release);
        next
    }
}

/// One enqueued query: where to reply, under which correlation id.
struct WorkItem {
    reply: mpsc::Sender<Frame>,
    id: u64,
    query: Query,
}

struct Inner {
    cell: EngineCell,
    config: ServerConfig,
    source: Option<(PathBuf, PipelineParams)>,
    source_mtime: Mutex<Option<SystemTime>>,
    stats: Stats,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    inflight_batches: AtomicUsize,
    conns: Mutex<Vec<(u64, TcpStream)>>,
}

impl Inner {
    /// Re-opens the artifact and swaps the engine in; `true` on success.
    /// Without a file source the current engine is re-armed under a new
    /// generation — a reload drill, observable by clients all the same.
    fn reload(&self) -> bool {
        let swapped = match &self.source {
            Some((path, params)) => match restore_or_build(path, params) {
                Ok((engine, _)) => {
                    *self.source_mtime.lock().expect("mtime lock poisoned") = file_mtime(path);
                    self.cell.swap(Arc::new(engine));
                    true
                }
                Err(_) => false,
            },
            None => {
                let (current, _) = self.cell.snapshot();
                self.cell.swap(current);
                true
            }
        };
        if swapped {
            bump(&self.stats.reloads);
        } else {
            bump(&self.stats.reload_failures);
        }
        swapped
    }
}

fn file_mtime(path: &std::path::Path) -> Option<SystemTime> {
    std::fs::metadata(path).and_then(|m| m.modified()).ok()
}

/// A running server. Dropping the handle shuts the server down; keep it
/// alive for as long as the server should accept traffic.
#[derive(Debug)]
pub struct ServerHandle {
    inner: Arc<Inner>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
    work_tx: Option<mpsc::SyncSender<WorkItem>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("generation", &self.cell.generation())
            .field("stats", &self.stats.snapshot())
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (the OS-assigned port when the config asked
    /// for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current engine generation (starts at 1, +1 per reload).
    pub fn generation(&self) -> u64 {
        self.inner.cell.generation()
    }

    /// A consistent snapshot of the engine currently serving — the
    /// in-process oracle the smoke tests compare wire answers against.
    pub fn engine(&self) -> Arc<QueryEngine> {
        self.inner.cell.snapshot().0
    }

    /// Triggers a hot-swap reload (same path as a wire `Reload` frame);
    /// `true` if the engine was swapped.
    pub fn reload(&self) -> bool {
        self.inner.reload()
    }

    /// Swaps a caller-built engine into the serving slot and returns the
    /// new generation — the churn tier's rebuild hook: a
    /// `triangle::churn::DeltaLedger` refreezes incrementally in the
    /// background and installs the result here. Same contract as a
    /// reload: the generation advances exactly once, batches already in
    /// flight finish on the engine snapshot they started with, and the
    /// next batch answers on the new engine.
    pub fn swap_engine(&self, engine: Arc<QueryEngine>) -> u64 {
        let generation = self.inner.cell.swap(engine);
        bump(&self.inner.stats.reloads);
        generation
    }

    /// Current counter values.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Stops accepting, disconnects peers, drains worker threads. Called
    /// by `Drop` too; explicit calls just make shutdown points visible.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor with a throwaway connection; it re-checks
        // the flag per accept.
        let _ = TcpStream::connect(self.addr);
        // Disconnect every live peer so reader threads fall out of
        // blocking reads.
        for (_, s) in self
            .inner
            .conns
            .lock()
            .expect("conn registry poisoned")
            .iter()
        {
            let _ = s.shutdown(Shutdown::Both);
        }
        // Closing the work queue lets the batcher (and then the
        // executors, whose channel the batcher owns) drain and exit.
        self.work_tx.take();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Starts a server around an already-built engine (no disk involved —
/// the unit-test and embedded path). Wire `Reload` frames re-arm the same
/// engine under a fresh generation.
pub fn serve_engine(
    engine: Arc<QueryEngine>,
    config: &ServerConfig,
) -> Result<ServerHandle, ServeError> {
    start(engine, None, config)
}

/// Starts a server from a `.csr` file: restores the engine from the
/// frozen-artifact section when present, builds it from the graph
/// sections otherwise ([`restore_or_build`]), and remembers the path so
/// reloads (wire frames, [`ServerHandle::reload`], the mtime poller)
/// re-open it.
pub fn serve_path(
    path: impl Into<PathBuf>,
    params: &PipelineParams,
    config: &ServerConfig,
) -> Result<(ServerHandle, EngineSource), ServeError> {
    let path = path.into();
    let (engine, source) = restore_or_build(&path, params)?;
    let handle = start(Arc::new(engine), Some((path, params.clone())), config)?;
    Ok((handle, source))
}

fn start(
    engine: Arc<QueryEngine>,
    source: Option<(PathBuf, PipelineParams)>,
    config: &ServerConfig,
) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(config.addr)?;
    let addr = listener.local_addr()?;
    let initial_mtime = source.as_ref().and_then(|(p, _)| file_mtime(p));
    let inner = Arc::new(Inner {
        cell: EngineCell::new(engine),
        config: config.clone(),
        source,
        source_mtime: Mutex::new(initial_mtime),
        stats: Stats::default(),
        shutdown: AtomicBool::new(false),
        active_connections: AtomicUsize::new(0),
        inflight_batches: AtomicUsize::new(0),
        conns: Mutex::new(Vec::new()),
    });

    let (work_tx, work_rx) = mpsc::sync_channel::<WorkItem>(config.effective_queue_cap());
    let (exec_tx, exec_rx) = mpsc::sync_channel::<Vec<WorkItem>>(config.max_inflight_batches);
    let exec_rx = Arc::new(Mutex::new(exec_rx));

    let mut threads = Vec::new();
    for _ in 0..config.max_inflight_batches.max(1) {
        let inner = Arc::clone(&inner);
        let exec_rx = Arc::clone(&exec_rx);
        threads.push(thread::spawn(move || executor_loop(&inner, &exec_rx)));
    }
    {
        let inner = Arc::clone(&inner);
        threads.push(thread::spawn(move || {
            batcher_loop(&inner, work_rx, exec_tx)
        }));
    }
    {
        let inner = Arc::clone(&inner);
        let work_tx = work_tx.clone();
        threads.push(thread::spawn(move || {
            acceptor_loop(&inner, listener, work_tx)
        }));
    }
    if let Some(every) = config.reload_poll {
        let inner = Arc::clone(&inner);
        threads.push(thread::spawn(move || poll_loop(&inner, every)));
    }

    Ok(ServerHandle {
        inner,
        addr,
        threads,
        work_tx: Some(work_tx),
    })
}

fn acceptor_loop(inner: &Arc<Inner>, listener: TcpListener, work_tx: mpsc::SyncSender<WorkItem>) {
    let mut next_conn_id = 0u64;
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let cap = inner.config.max_connections.max(1);
        let admitted = inner
            .active_connections
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| {
                (c < cap).then_some(c + 1)
            })
            .is_ok();
        if !admitted {
            bump(&inner.stats.refused);
            // Typed refusal: one Busy frame, then the connection closes.
            let mut w = BufWriter::new(&stream);
            let _ = codec::write_frame(
                &mut w,
                &Frame::new(Opcode::Busy, 0, inner.cell.generation(), Vec::new()),
            );
            continue;
        }
        bump(&inner.stats.accepted);
        let conn_id = next_conn_id;
        next_conn_id += 1;
        if let Ok(clone) = stream.try_clone() {
            inner
                .conns
                .lock()
                .expect("conn registry poisoned")
                .push((conn_id, clone));
        }
        let inner = Arc::clone(inner);
        let work_tx = work_tx.clone();
        // Reader threads detach; shutdown disconnects their sockets and
        // the active-connection counter tracks them out. On exit the
        // connection deregisters itself and shuts the socket down — the
        // registry clone would otherwise keep the kernel socket open
        // (no FIN) after the reader/writer halves are dropped.
        thread::spawn(move || {
            connection_loop(&inner, stream, &work_tx);
            inner.active_connections.fetch_sub(1, Ordering::SeqCst);
            let mut conns = inner.conns.lock().expect("conn registry poisoned");
            if let Some(pos) = conns.iter().position(|(id, _)| *id == conn_id) {
                let (_, s) = conns.swap_remove(pos);
                let _ = s.shutdown(Shutdown::Both);
            }
        });
    }
}

fn connection_loop(inner: &Arc<Inner>, stream: TcpStream, work_tx: &mpsc::SyncSender<WorkItem>) {
    let _ = stream.set_read_timeout(Some(inner.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (reply_tx, reply_rx) = mpsc::channel::<Frame>();
    let writer = thread::spawn(move || {
        let mut w = BufWriter::new(write_half);
        while let Ok(frame) = reply_rx.recv() {
            if codec::write_frame(&mut w, &frame).is_err() {
                break;
            }
        }
    });

    let mut reader = BufReader::new(stream);
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match codec::read_frame(&mut reader, inner.config.max_payload) {
            Ok(None) => break,
            Ok(Some(frame)) => {
                if !handle_frame(inner, frame, &reply_tx, work_tx) {
                    break;
                }
            }
            Err(e) if e.is_timeout() => break,
            Err(CodecError::Protocol(p)) => {
                // Framing is lost — answer with the typed error, then
                // close; the stream cannot resync. The *server* stays up.
                bump(&inner.stats.protocol_errors);
                let _ = reply_tx.send(error_frame(inner, 0, &p));
                break;
            }
            Err(CodecError::Io(_)) => break,
        }
    }
    drop(reply_tx);
    let _ = writer.join();
}

/// Handles one well-framed request. Returns `false` when the connection
/// must close (work queue gone at shutdown).
fn handle_frame(
    inner: &Arc<Inner>,
    frame: Frame,
    reply_tx: &mpsc::Sender<Frame>,
    work_tx: &mpsc::SyncSender<WorkItem>,
) -> bool {
    match frame.header.opcode {
        Opcode::Query => match crate::protocol::decode_query(&frame.payload) {
            Ok(query) => {
                let item = WorkItem {
                    reply: reply_tx.clone(),
                    id: frame.header.id,
                    query,
                };
                match work_tx.try_send(item) {
                    Ok(()) => bump(&inner.stats.queries),
                    Err(TrySendError::Full(item)) => {
                        bump(&inner.stats.busy);
                        let _ = reply_tx.send(Frame::new(
                            Opcode::Busy,
                            item.id,
                            inner.cell.generation(),
                            Vec::new(),
                        ));
                    }
                    Err(TrySendError::Disconnected(_)) => return false,
                }
            }
            Err(p) => {
                // The frame itself was sound, only the payload grammar
                // failed: answer typed, keep the connection.
                bump(&inner.stats.protocol_errors);
                let _ = reply_tx.send(error_frame(inner, frame.header.id, &p));
            }
        },
        Opcode::Ping => {
            let _ = reply_tx.send(Frame::new(
                Opcode::Pong,
                frame.header.id,
                inner.cell.generation(),
                Vec::new(),
            ));
        }
        Opcode::Reload => {
            let swapped = inner.reload();
            let _ = reply_tx.send(Frame::new(
                Opcode::Reloaded,
                frame.header.id,
                inner.cell.generation(),
                vec![u8::from(swapped)],
            ));
        }
        // A client sending response opcodes is confused; tell it so and
        // keep listening (the framing is intact).
        Opcode::Answer | Opcode::Error | Opcode::Pong | Opcode::Busy | Opcode::Reloaded => {
            bump(&inner.stats.protocol_errors);
            let p = ProtocolError::BadPayload {
                reason: format!(
                    "response opcode 0x{:02x} is not a request",
                    frame.header.opcode as u8
                ),
            };
            let _ = reply_tx.send(error_frame(inner, frame.header.id, &p));
        }
    }
    true
}

fn error_frame(inner: &Arc<Inner>, id: u64, p: &ProtocolError) -> Frame {
    Frame::new(
        Opcode::Error,
        id,
        inner.cell.generation(),
        encode_error(&WireError::Malformed {
            reason: p.to_string(),
        }),
    )
}

fn batcher_loop(
    inner: &Arc<Inner>,
    work_rx: mpsc::Receiver<WorkItem>,
    exec_tx: mpsc::SyncSender<Vec<WorkItem>>,
) {
    let batch_max = inner.config.batch_max.max(1);
    let flush = inner.config.flush_interval;
    let max_inflight = inner.config.max_inflight_batches.max(1);
    'outer: loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Wait for a batch's first query; wake periodically to observe
        // shutdown.
        let first = match work_rx.recv_timeout(Duration::from_millis(25)) {
            Ok(item) => item,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + flush;
        while batch.len() < batch_max {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match work_rx.recv_timeout(left) {
                Ok(item) => batch.push(item),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    dispatch_or_refuse(inner, batch, &exec_tx, max_inflight);
                    break 'outer;
                }
            }
        }
        dispatch_or_refuse(inner, batch, &exec_tx, max_inflight);
    }
}

/// Hands a batch to the executor pool if an in-flight slot is free;
/// otherwise answers every query in it with `Busy` — the typed
/// backpressure response of a saturated server.
fn dispatch_or_refuse(
    inner: &Arc<Inner>,
    batch: Vec<WorkItem>,
    exec_tx: &mpsc::SyncSender<Vec<WorkItem>>,
    max_inflight: usize,
) {
    let slot = inner
        .inflight_batches
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| {
            (c < max_inflight).then_some(c + 1)
        })
        .is_ok();
    if slot {
        bump(&inner.stats.batches);
        if exec_tx.send(batch).is_err() {
            inner.inflight_batches.fetch_sub(1, Ordering::SeqCst);
        }
    } else {
        let generation = inner.cell.generation();
        for item in batch {
            bump(&inner.stats.busy);
            let _ = item
                .reply
                .send(Frame::new(Opcode::Busy, item.id, generation, Vec::new()));
        }
    }
}

fn executor_loop(inner: &Arc<Inner>, exec_rx: &Arc<Mutex<mpsc::Receiver<Vec<WorkItem>>>>) {
    let policy = inner.config.policy();
    loop {
        let batch = {
            let guard = exec_rx.lock().expect("executor queue poisoned");
            guard.recv()
        };
        let batch = match batch {
            Ok(b) => b,
            Err(_) => break,
        };
        // One consistent snapshot per batch: a reload mid-batch swaps the
        // cell, but this batch keeps draining against its own Arc.
        let (engine, generation) = inner.cell.snapshot();
        let queries: Vec<Query> = batch.iter().map(|item| item.query).collect();
        let report = engine.serve(&queries, &policy);
        for (item, answer) in batch.into_iter().zip(report.answers) {
            let frame = match answer {
                Ok(outcome) => Frame::new(
                    Opcode::Answer,
                    item.id,
                    generation,
                    encode_outcome(&outcome),
                ),
                Err(e) => Frame::new(
                    Opcode::Error,
                    item.id,
                    generation,
                    encode_error(&WireError::from(e)),
                ),
            };
            bump(&inner.stats.answered);
            let _ = item.reply.send(frame);
        }
        inner.inflight_batches.fetch_sub(1, Ordering::SeqCst);
    }
}

fn poll_loop(inner: &Arc<Inner>, every: Duration) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        thread::sleep(every.min(Duration::from_millis(100)));
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Some((path, _)) = &inner.source else {
            break;
        };
        let seen = file_mtime(path);
        let changed = {
            let last = inner.source_mtime.lock().expect("mtime lock poisoned");
            seen.is_some() && *last != seen
        };
        if changed {
            inner.reload();
        }
    }
}
