//! The wire frontend: serve the triangle-query engine over TCP with a
//! length-prefixed binary protocol, artifact-restore startup, and
//! hot-swap reloads.
//!
//! The in-process tier (`triangle::service`, PR 7) proved that one
//! decomposition can amortize across thousands of point queries; the
//! storage tier (PR 8) made the built engine a file that restores in
//! microseconds. This crate closes the remaining gap to an actual
//! service: a network listener in front of [`QueryEngine`], built on
//! `std::net` alone — no async runtime, no serialization framework.
//!
//! * [`protocol`] — the frame grammar: a 24-byte little-endian header
//!   (magic, version, opcode, payload length, correlation id, engine
//!   generation) and the payload codecs for queries, outcomes, and
//!   errors. Decoding is **total**: every malformed input — truncated,
//!   oversized, bit-flipped, forged length prefix — is a typed
//!   [`ProtocolError`], never a panic, the same fail-closed stance as
//!   `storage::format`.
//! * [`codec`] — framing over any `Read`/`Write` pair: clean EOF,
//!   mid-frame truncation, and malformed bytes are three distinct
//!   outcomes.
//! * [`server`] — the threaded serve loop: per-connection readers feed a
//!   shared bounded queue; a batcher flushes size- or deadline-triggered
//!   batches to an executor pool that answers each batch against one
//!   `(engine, generation)` snapshot through the deterministic
//!   scheduler; saturation answers `Busy` instead of queueing without
//!   bound. [`serve_path`] restores the engine from a `.csr` artifact at
//!   startup and re-opens it on reload — in-flight batches drain against
//!   the old engine while new ones see the new.
//! * [`client`] — a correlation-id-matched blocking client with
//!   pipelining, used by the CI smoke driver and the benches.
//!
//! # Examples
//!
//! Serve an engine on a loopback port and query it over the wire:
//!
//! ```
//! use std::sync::Arc;
//! use triangle::{PipelineParams, service::{Query, QueryEngine}};
//! use server::{serve_engine, Client, ResponseBody, ServerConfig};
//!
//! let g = graph::gen::gnp(40, 0.2, 7).unwrap();
//! let engine = Arc::new(QueryEngine::build(&g, &PipelineParams::default()));
//! let handle = serve_engine(Arc::clone(&engine), &ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let q = Query::Vertex { v: 3, emit: triangle::service::Emit::Count };
//! let resp = client.query(q).unwrap();
//! match resp.body {
//!     ResponseBody::Answer(outcome) => {
//!         // The wire answer is bit-identical to the in-process one.
//!         assert_eq!(outcome, engine.answer(q).unwrap());
//!     }
//!     other => panic!("expected an answer, got {other:?}"),
//! }
//! assert_eq!(resp.generation, 1);
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, ResponseBody, WireResponse};
pub use codec::{read_frame, write_frame, CodecError};
pub use protocol::{Frame, FrameHeader, Opcode, ProtocolError, WireError};
pub use server::{serve_engine, serve_path, ServeError, ServerConfig, ServerHandle, StatsSnapshot};

#[cfg(doc)]
use triangle::service::QueryEngine;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use triangle::service::{Emit, Query, QueryEngine};
    use triangle::PipelineParams;

    fn small_engine() -> Arc<QueryEngine> {
        let g = graph::gen::gnp(60, 0.2, 17).unwrap();
        Arc::new(QueryEngine::build(&g, &PipelineParams::default()))
    }

    fn mixed_queries(n: u32, count: usize) -> Vec<Query> {
        (0..count)
            .map(|i| {
                let v = (i as u32 * 7 + 3) % n;
                match i % 4 {
                    0 => Query::Vertex {
                        v,
                        emit: Emit::Count,
                    },
                    1 => Query::Vertex {
                        v,
                        emit: Emit::Enumerate,
                    },
                    2 => Query::Edge {
                        u: v,
                        v: (v + 1) % n,
                        emit: Emit::Count,
                    },
                    _ => Query::TopKBySupport { v, k: 3 },
                }
            })
            .collect()
    }

    #[test]
    fn wire_answers_match_the_in_process_oracle() {
        let engine = small_engine();
        let handle = serve_engine(Arc::clone(&engine), &ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let queries = mixed_queries(60, 64);
        let responses = client.run_pipelined(&queries, 16, 8).unwrap();
        assert_eq!(responses.len(), queries.len());
        for (q, resp) in queries.iter().zip(&responses) {
            let oracle = engine.answer(*q);
            match (&resp.body, oracle) {
                (ResponseBody::Answer(wire), Ok(local)) => assert_eq!(*wire, local),
                (ResponseBody::Error(WireError::UnknownVertex { v }), Err(e)) => {
                    assert!(format!("{e}").contains(&v.to_string()));
                }
                (body, oracle) => panic!("wire {body:?} vs oracle {oracle:?}"),
            }
            assert_eq!(resp.generation, 1);
        }
        let stats = handle.stats();
        assert_eq!(stats.answered, queries.len() as u64);
        assert!(stats.batches >= 1);
        handle.shutdown();
    }

    #[test]
    fn reload_bumps_the_generation_visible_on_the_wire() {
        let handle = serve_engine(small_engine(), &ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        assert_eq!(client.ping().unwrap(), 1);
        let (swapped, generation) = client.reload().unwrap();
        assert!(swapped);
        assert_eq!(generation, 2);
        assert_eq!(handle.generation(), 2);
        // Answers after the swap carry the new generation.
        let resp = client
            .query(Query::Vertex {
                v: 0,
                emit: Emit::Count,
            })
            .unwrap();
        assert_eq!(resp.generation, 2);
        handle.shutdown();
    }

    #[test]
    fn garbage_bytes_get_a_typed_error_and_the_server_survives() {
        let handle = serve_engine(small_engine(), &ServerConfig::default()).unwrap();
        // Connection 1 sends garbage: it is answered with a typed error
        // and closed.
        let mut hostile = Client::connect(handle.addr()).unwrap();
        // A full header's worth of garbage, so the grammar (not the read
        // timeout) rejects it.
        hostile.send_raw(&[0xAA; 32]).unwrap();
        match hostile.recv() {
            Ok(resp) => assert!(matches!(resp.body, ResponseBody::Error(_))),
            // The server may close before the error frame is read; both
            // are acceptable — what matters is the next connection works.
            Err(ClientError::ServerClosed | ClientError::Io(_)) => {}
            Err(other) => panic!("unexpected client error: {other}"),
        }
        // Connection 2 proves the server is still serving.
        let mut fresh = Client::connect(handle.addr()).unwrap();
        assert_eq!(fresh.ping().unwrap(), 1);
        assert!(handle.stats().protocol_errors >= 1);
        handle.shutdown();
    }

    #[test]
    fn connection_cap_refuses_with_a_typed_busy_frame() {
        let config = ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        };
        let handle = serve_engine(small_engine(), &config).unwrap();
        let mut first = Client::connect(handle.addr()).unwrap();
        assert_eq!(first.ping().unwrap(), 1);
        // The second connection is refused with Busy, then closed.
        let mut second = Client::connect(handle.addr()).unwrap();
        let resp = second.recv().unwrap();
        assert!(matches!(resp.body, ResponseBody::Busy));
        assert!(matches!(second.recv(), Err(ClientError::ServerClosed)));
        assert_eq!(handle.stats().refused, 1);
        handle.shutdown();
    }
}
