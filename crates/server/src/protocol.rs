//! The wire protocol: length-prefixed binary frames for the
//! triangle-query service.
//!
//! Every message on the wire is one [`Frame`]: a fixed 24-byte
//! little-endian header ([`FrameHeader`]) followed by `payload_len`
//! payload bytes. The header carries a magic, a protocol version, an
//! opcode, a client-chosen correlation id (echoed verbatim in the
//! response, so pipelined queries can complete out of order), and the
//! server's **engine generation** — bumped on every hot-swap reload, zero
//! in requests — so a client observes an artifact swap from the response
//! stream alone.
//!
//! ```text
//! offset  size  field
//! 0       2     magic        0x5154 ("TQ", little-endian)
//! 2       1     version      PROTOCOL_VERSION
//! 3       1     opcode       Opcode as u8
//! 4       4     payload_len  u32, <= max frame payload
//! 8       8     id           correlation id, echoed in responses
//! 16      8     generation   engine generation (responses; 0 in requests)
//! 24      -     payload      payload_len bytes, opcode-specific
//! ```
//!
//! Decoding is **total**: every malformed input — truncation, a bad
//! magic, an unknown version or opcode, an oversize length prefix, a
//! payload that does not parse or leaves trailing bytes — returns a typed
//! [`ProtocolError`], never panics and never reads out of bounds. This
//! mirrors `storage::format`'s fail-closed philosophy: the server cannot
//! crash on client bytes, and a client cannot crash on server bytes.
//! `tests/server_protocol.rs` fuzzes both directions.

use routing::QueryCharge;
use triangle::service::{Answer, EdgeSupport, Emit, Query, QueryOutcome, ServiceError};
use triangle::Triangle;

/// First two header bytes, little-endian `"TQ"`.
pub const MAGIC: u16 = 0x5154;

/// Version byte every frame carries; bump on any layout change.
pub const PROTOCOL_VERSION: u8 = 1;

/// Bytes of the fixed frame header.
pub const HEADER_LEN: usize = 24;

/// Default cap on a frame's payload length (16 MiB). Large enumerations
/// on hub vertices dominate; anything bigger is a protocol violation.
pub const DEFAULT_MAX_PAYLOAD: u32 = 16 << 20;

/// Frame kinds. Requests flow client → server (high bit clear), responses
/// server → client (high bit set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Request: one [`Query`] payload.
    Query = 0x01,
    /// Request: liveness probe, empty payload.
    Ping = 0x02,
    /// Request: re-open the artifact and hot-swap the engine (empty
    /// payload). Answered with [`Opcode::Reloaded`].
    Reload = 0x03,
    /// Response: a [`QueryOutcome`] payload.
    Answer = 0x81,
    /// Response: a typed [`WireError`] payload.
    Error = 0x82,
    /// Response to [`Opcode::Ping`], empty payload.
    Pong = 0x83,
    /// Response: the server is saturated (work queue or in-flight batch
    /// cap); the query was **not** executed. Empty payload.
    Busy = 0x84,
    /// Response to [`Opcode::Reload`]: payload is one u8 — 1 if the
    /// engine was swapped, 0 if the reload failed and the old engine
    /// keeps serving. The header's `generation` is current either way.
    Reloaded = 0x85,
}

impl Opcode {
    /// Total decode of the opcode byte.
    pub fn from_u8(b: u8) -> Result<Opcode, ProtocolError> {
        Ok(match b {
            0x01 => Opcode::Query,
            0x02 => Opcode::Ping,
            0x03 => Opcode::Reload,
            0x81 => Opcode::Answer,
            0x82 => Opcode::Error,
            0x83 => Opcode::Pong,
            0x84 => Opcode::Busy,
            0x85 => Opcode::Reloaded,
            other => return Err(ProtocolError::UnknownOpcode { got: other }),
        })
    }
}

/// The fixed 24-byte frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame kind.
    pub opcode: Opcode,
    /// Correlation id: chosen by the client, echoed by the server.
    pub id: u64,
    /// Engine generation (responses only; requests carry 0).
    pub generation: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
}

impl FrameHeader {
    /// Serializes the header into its 24 wire bytes.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut buf = [0u8; HEADER_LEN];
        buf[0..2].copy_from_slice(&MAGIC.to_le_bytes());
        buf[2] = PROTOCOL_VERSION;
        buf[3] = self.opcode as u8;
        buf[4..8].copy_from_slice(&self.payload_len.to_le_bytes());
        buf[8..16].copy_from_slice(&self.id.to_le_bytes());
        buf[16..24].copy_from_slice(&self.generation.to_le_bytes());
        buf
    }

    /// Total decode of 24 header bytes. `max_payload` bounds the length
    /// prefix — a single forged frame must not make a peer allocate
    /// gigabytes.
    pub fn decode(buf: &[u8; HEADER_LEN], max_payload: u32) -> Result<FrameHeader, ProtocolError> {
        let magic = u16::from_le_bytes([buf[0], buf[1]]);
        if magic != MAGIC {
            return Err(ProtocolError::BadMagic { got: magic });
        }
        if buf[2] != PROTOCOL_VERSION {
            return Err(ProtocolError::UnsupportedVersion { got: buf[2] });
        }
        let opcode = Opcode::from_u8(buf[3])?;
        let payload_len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
        if payload_len > max_payload {
            return Err(ProtocolError::Oversize {
                len: payload_len,
                max: max_payload,
            });
        }
        let id = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        let generation = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
        Ok(FrameHeader {
            opcode,
            id,
            generation,
            payload_len,
        })
    }
}

/// One complete wire message: header + payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The decoded header (`payload_len` always equals `payload.len()`).
    pub header: FrameHeader,
    /// The opcode-specific payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame, filling in the header's `payload_len`.
    pub fn new(opcode: Opcode, id: u64, generation: u64, payload: Vec<u8>) -> Frame {
        Frame {
            header: FrameHeader {
                opcode,
                id,
                generation,
                payload_len: payload.len() as u32,
            },
            payload,
        }
    }

    /// Serializes header + payload into one byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.header.encode());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Total decode of one frame from a byte slice; trailing bytes after
    /// the framed length are a typed error (a stream codec uses
    /// [`crate::codec`] instead, which consumes exactly one frame).
    pub fn decode(bytes: &[u8], max_payload: u32) -> Result<Frame, ProtocolError> {
        if bytes.len() < HEADER_LEN {
            return Err(ProtocolError::Truncated {
                expected: HEADER_LEN,
                got: bytes.len(),
            });
        }
        let head: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().expect("checked length");
        let header = FrameHeader::decode(head, max_payload)?;
        let want = HEADER_LEN + header.payload_len as usize;
        if bytes.len() < want {
            return Err(ProtocolError::Truncated {
                expected: want,
                got: bytes.len(),
            });
        }
        if bytes.len() > want {
            return Err(ProtocolError::TrailingBytes {
                extra: bytes.len() - want,
            });
        }
        Ok(Frame {
            header,
            payload: bytes[HEADER_LEN..want].to_vec(),
        })
    }
}

/// Every way a wire input can be malformed. Decoding never panics; it
/// returns one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Fewer bytes than the header (or the framed length) promises.
    Truncated {
        /// Bytes needed to finish the frame.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The first two bytes are not [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        got: u16,
    },
    /// A version this build does not speak.
    UnsupportedVersion {
        /// The version byte found.
        got: u8,
    },
    /// An opcode byte outside the table.
    UnknownOpcode {
        /// The opcode byte found.
        got: u8,
    },
    /// The length prefix exceeds the negotiated cap.
    Oversize {
        /// The claimed payload length.
        len: u32,
        /// The cap it violates.
        max: u32,
    },
    /// The payload does not parse under its opcode's grammar.
    BadPayload {
        /// What went wrong.
        reason: String,
    },
    /// Bytes left over after the payload grammar completed.
    TrailingBytes {
        /// How many bytes were left unconsumed.
        extra: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated { expected, got } => {
                write!(f, "truncated frame: need {expected} bytes, have {got}")
            }
            ProtocolError::BadMagic { got } => write!(f, "bad magic 0x{got:04x}"),
            ProtocolError::UnsupportedVersion { got } => {
                write!(f, "unsupported protocol version {got}")
            }
            ProtocolError::UnknownOpcode { got } => write!(f, "unknown opcode 0x{got:02x}"),
            ProtocolError::Oversize { len, max } => {
                write!(f, "payload length {len} exceeds cap {max}")
            }
            ProtocolError::BadPayload { reason } => write!(f, "bad payload: {reason}"),
            ProtocolError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after payload")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A per-query failure delivered in an [`Opcode::Error`] frame. The
/// connection survives; only the one query failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The query named a vertex outside the served graph
    /// ([`ServiceError::UnknownVertex`] on the server side).
    UnknownVertex {
        /// The offending vertex id.
        v: u32,
    },
    /// The request frame was malformed; `reason` echoes the server-side
    /// [`ProtocolError`].
    Malformed {
        /// Human-readable echo of the protocol error.
        reason: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnknownVertex { v } => write!(f, "unknown vertex {v}"),
            WireError::Malformed { reason } => write!(f, "malformed request: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<ServiceError> for WireError {
    fn from(e: ServiceError) -> WireError {
        match e {
            ServiceError::UnknownVertex { v } => WireError::UnknownVertex { v },
        }
    }
}

fn bad(reason: impl Into<String>) -> ProtocolError {
    ProtocolError::BadPayload {
        reason: reason.into(),
    }
}

/// Little-endian payload writer (the same shape as `storage`'s internal
/// encoder; duplicated here because that one is deliberately private to
/// its file-format module).
#[derive(Debug, Default)]
struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian payload reader; every read can fail with
/// [`ProtocolError::Truncated`] and [`PayloadReader::finish`] rejects
/// trailing bytes.
#[derive(Debug)]
struct PayloadReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, at: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.at.checked_add(len).ok_or(ProtocolError::Truncated {
            expected: usize::MAX,
            got: self.buf.len(),
        })?;
        if end > self.buf.len() {
            return Err(ProtocolError::Truncated {
                expected: end,
                got: self.buf.len(),
            });
        }
        let out = &self.buf[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn get_u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn get_u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn get_u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// A length prefix for a sequence of `elem_bytes`-sized elements; the
    /// claimed total must fit in the remaining payload, so a forged count
    /// cannot drive a huge allocation.
    fn get_count(&mut self, elem_bytes: usize) -> Result<usize, ProtocolError> {
        let count = self.get_u32()? as usize;
        let need = count
            .checked_mul(elem_bytes.max(1))
            .ok_or_else(|| bad("element count overflows"))?;
        if self.at + need > self.buf.len() {
            return Err(ProtocolError::Truncated {
                expected: self.at + need,
                got: self.buf.len(),
            });
        }
        Ok(count)
    }

    fn get_str(&mut self) -> Result<String, ProtocolError> {
        let len = self.get_count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("string is not UTF-8"))
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.at != self.buf.len() {
            Err(ProtocolError::TrailingBytes {
                extra: self.buf.len() - self.at,
            })
        } else {
            Ok(())
        }
    }
}

fn emit_to_u8(emit: Emit) -> u8 {
    match emit {
        Emit::Count => 0,
        Emit::Enumerate => 1,
    }
}

fn emit_from_u8(b: u8) -> Result<Emit, ProtocolError> {
    match b {
        0 => Ok(Emit::Count),
        1 => Ok(Emit::Enumerate),
        other => Err(bad(format!("emit flag must be 0/1, got {other}"))),
    }
}

/// Serializes a [`Query`] into [`Opcode::Query`] payload bytes.
pub fn encode_query(q: &Query) -> Vec<u8> {
    let mut w = PayloadWriter::default();
    match *q {
        Query::Vertex { v, emit } => {
            w.put_u8(1);
            w.put_u32(v);
            w.put_u8(emit_to_u8(emit));
        }
        Query::Edge { u, v, emit } => {
            w.put_u8(2);
            w.put_u32(u);
            w.put_u32(v);
            w.put_u8(emit_to_u8(emit));
        }
        Query::TopKBySupport { v, k } => {
            w.put_u8(3);
            w.put_u32(v);
            w.put_u64(k as u64);
        }
    }
    w.buf
}

/// Total decode of [`Opcode::Query`] payload bytes.
pub fn decode_query(bytes: &[u8]) -> Result<Query, ProtocolError> {
    let mut r = PayloadReader::new(bytes);
    let q = match r.get_u8()? {
        1 => Query::Vertex {
            v: r.get_u32()?,
            emit: emit_from_u8(r.get_u8()?)?,
        },
        2 => Query::Edge {
            u: r.get_u32()?,
            v: r.get_u32()?,
            emit: emit_from_u8(r.get_u8()?)?,
        },
        3 => Query::TopKBySupport {
            v: r.get_u32()?,
            k: usize::try_from(r.get_u64()?).map_err(|_| bad("k exceeds usize"))?,
        },
        other => return Err(bad(format!("unknown query tag {other}"))),
    };
    r.finish()?;
    Ok(q)
}

/// Serializes a [`QueryOutcome`] (answer + charge) into
/// [`Opcode::Answer`] payload bytes.
pub fn encode_outcome(o: &QueryOutcome) -> Vec<u8> {
    let mut w = PayloadWriter::default();
    w.put_u64(o.charge.words);
    w.put_u64(o.charge.queries);
    w.put_u64(o.charge.rounds);
    w.put_u64(o.charge.max_congestion);
    w.put_u8(o.charge.delivered as u8);
    match &o.answer {
        Answer::Count(c) => {
            w.put_u8(1);
            w.put_u64(*c);
        }
        Answer::Triangles(ts) => {
            w.put_u8(2);
            w.put_u32(ts.len() as u32);
            for t in ts {
                w.put_u32(t.a);
                w.put_u32(t.b);
                w.put_u32(t.c);
            }
        }
        Answer::TopEdges(es) => {
            w.put_u8(3);
            w.put_u32(es.len() as u32);
            for e in es {
                w.put_u32(e.u);
                w.put_u32(e.v);
                w.put_u64(e.support);
            }
        }
    }
    w.buf
}

/// Total decode of [`Opcode::Answer`] payload bytes. Triangle vertex
/// triples must be strictly ascending (the canonical form
/// [`Triangle::new`] enforces) — a forged frame cannot reach its panic.
pub fn decode_outcome(bytes: &[u8]) -> Result<QueryOutcome, ProtocolError> {
    let mut r = PayloadReader::new(bytes);
    let charge = QueryCharge {
        words: r.get_u64()?,
        queries: r.get_u64()?,
        rounds: r.get_u64()?,
        max_congestion: r.get_u64()?,
        delivered: match r.get_u8()? {
            0 => false,
            1 => true,
            other => return Err(bad(format!("delivered flag must be 0/1, got {other}"))),
        },
    };
    let answer = match r.get_u8()? {
        1 => Answer::Count(r.get_u64()?),
        2 => {
            let count = r.get_count(12)?;
            let mut ts = Vec::with_capacity(count);
            for _ in 0..count {
                let (a, b, c) = (r.get_u32()?, r.get_u32()?, r.get_u32()?);
                if !(a < b && b < c) {
                    return Err(bad(format!("triangle ({a}, {b}, {c}) is not canonical")));
                }
                ts.push(Triangle { a, b, c });
            }
            Answer::Triangles(ts)
        }
        3 => {
            let count = r.get_count(16)?;
            let mut es = Vec::with_capacity(count);
            for _ in 0..count {
                es.push(EdgeSupport {
                    u: r.get_u32()?,
                    v: r.get_u32()?,
                    support: r.get_u64()?,
                });
            }
            Answer::TopEdges(es)
        }
        other => return Err(bad(format!("unknown answer tag {other}"))),
    };
    r.finish()?;
    Ok(QueryOutcome { answer, charge })
}

/// Serializes a [`WireError`] into [`Opcode::Error`] payload bytes.
pub fn encode_error(e: &WireError) -> Vec<u8> {
    let mut w = PayloadWriter::default();
    match e {
        WireError::UnknownVertex { v } => {
            w.put_u8(1);
            w.put_u32(*v);
        }
        WireError::Malformed { reason } => {
            w.put_u8(2);
            w.put_str(reason);
        }
    }
    w.buf
}

/// Total decode of [`Opcode::Error`] payload bytes.
pub fn decode_error(bytes: &[u8]) -> Result<WireError, ProtocolError> {
    let mut r = PayloadReader::new(bytes);
    let e = match r.get_u8()? {
        1 => WireError::UnknownVertex { v: r.get_u32()? },
        2 => WireError::Malformed {
            reason: r.get_str()?,
        },
        other => return Err(bad(format!("unknown error tag {other}"))),
    };
    r.finish()?;
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = FrameHeader {
            opcode: Opcode::Answer,
            id: 0xDEADBEEF_01234567,
            generation: 42,
            payload_len: 9,
        };
        let bytes = h.encode();
        assert_eq!(FrameHeader::decode(&bytes, 1 << 20).unwrap(), h);
    }

    #[test]
    fn header_rejects_each_malformation() {
        let good = FrameHeader {
            opcode: Opcode::Query,
            id: 7,
            generation: 0,
            payload_len: 100,
        }
        .encode();
        let mut bad_magic = good;
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            FrameHeader::decode(&bad_magic, 1 << 20),
            Err(ProtocolError::BadMagic { .. })
        ));
        let mut bad_version = good;
        bad_version[2] = 99;
        assert!(matches!(
            FrameHeader::decode(&bad_version, 1 << 20),
            Err(ProtocolError::UnsupportedVersion { got: 99 })
        ));
        let mut bad_op = good;
        bad_op[3] = 0x7F;
        assert!(matches!(
            FrameHeader::decode(&bad_op, 1 << 20),
            Err(ProtocolError::UnknownOpcode { got: 0x7F })
        ));
        assert!(matches!(
            FrameHeader::decode(&good, 10),
            Err(ProtocolError::Oversize { len: 100, max: 10 })
        ));
    }

    #[test]
    fn query_payloads_roundtrip() {
        for q in [
            Query::Vertex {
                v: 0,
                emit: Emit::Count,
            },
            Query::Vertex {
                v: u32::MAX,
                emit: Emit::Enumerate,
            },
            Query::Edge {
                u: 3,
                v: 9,
                emit: Emit::Count,
            },
            Query::TopKBySupport { v: 17, k: 5 },
        ] {
            assert_eq!(decode_query(&encode_query(&q)).unwrap(), q);
        }
    }

    #[test]
    fn outcome_payloads_roundtrip() {
        let charge = QueryCharge {
            words: 10,
            queries: 3,
            rounds: 12,
            max_congestion: 4,
            delivered: true,
        };
        for answer in [
            Answer::Count(99),
            Answer::Triangles(vec![Triangle::new(5, 2, 9), Triangle::new(0, 1, 2)]),
            Answer::TopEdges(vec![EdgeSupport {
                u: 1,
                v: 2,
                support: 7,
            }]),
        ] {
            let o = QueryOutcome { answer, charge };
            assert_eq!(decode_outcome(&encode_outcome(&o)).unwrap(), o);
        }
    }

    #[test]
    fn forged_triangle_payload_is_an_error_not_a_panic() {
        let o = QueryOutcome {
            answer: Answer::Triangles(vec![Triangle::new(0, 1, 2)]),
            charge: QueryCharge::default(),
        };
        let mut bytes = encode_outcome(&o);
        // Overwrite the triangle's first vertex with its last: no longer
        // strictly ascending, must decode to BadPayload.
        let len = bytes.len();
        let first = len - 12;
        bytes.copy_within(len - 4..len, first);
        assert!(matches!(
            decode_outcome(&bytes),
            Err(ProtocolError::BadPayload { .. })
        ));
    }

    #[test]
    fn forged_count_cannot_demand_a_huge_allocation() {
        let o = QueryOutcome {
            answer: Answer::Triangles(Vec::new()),
            charge: QueryCharge::default(),
        };
        let mut bytes = encode_outcome(&o);
        // The triangle count is the last u32; forge it sky-high.
        let at = bytes.len() - 4;
        bytes[at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_outcome(&bytes),
            Err(ProtocolError::Truncated { .. })
        ));
    }

    #[test]
    fn error_payloads_roundtrip() {
        for e in [
            WireError::UnknownVertex { v: 12 },
            WireError::Malformed {
                reason: "bad payload: unknown query tag 9".to_string(),
            },
        ] {
            assert_eq!(decode_error(&encode_error(&e)).unwrap(), e);
        }
    }

    #[test]
    fn frame_decode_rejects_trailing_bytes() {
        let f = Frame::new(Opcode::Ping, 1, 0, Vec::new());
        let mut bytes = f.encode();
        assert_eq!(Frame::decode(&bytes, 1024).unwrap(), f);
        bytes.push(0);
        assert!(matches!(
            Frame::decode(&bytes, 1024),
            Err(ProtocolError::TrailingBytes { extra: 1 })
        ));
    }
}
