//! The GKS hierarchical routing structure.
//!
//! Levels `0..=k`: level 0 is the whole vertex set; each group at level
//! `i` splits into `β` random subgroups at level `i+1`, where
//! `β = ⌈n^{1/k}⌉` (so bottom groups have expected constant size). Each
//! group designates portal vertices connecting it to its parent. A query
//! (one routing instance with per-vertex load `O(deg(v))`) is delivered by
//! hierarchical addressing: a token descends from the root group toward
//! its destination's bottom group, re-randomizing through portals at each
//! level — the classic Valiant-style load balancing that keeps every
//! level's congestion near-uniform on an expander.

use crate::mixing::estimate_mixing_time;
use crate::{Result, RoutingError};
use graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One routing request: deliver one `O(log n)`-bit message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingRequest {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
}

/// One batched delivery: `words` `O(log n)`-bit edge words from `src` to
/// `dst` (e.g. an edge-bucket slice the triangle pipeline redistributes to
/// a triple owner). Equivalent to `words` identical [`RoutingRequest`]s,
/// but batching lets [`RoutingHierarchy::route_edges`] account the load
/// without materializing one request per word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeBatch {
    /// Vertex holding the slice.
    pub src: VertexId,
    /// Vertex that must receive it.
    pub dst: VertexId,
    /// Number of `O(log n)`-bit words in the slice.
    pub words: usize,
}

/// Outcome of a batched [`RoutingHierarchy::route_edges`] instance.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Whether every slice reached its destination's group addressing.
    pub delivered: bool,
    /// Maximum per-vertex word load observed at any level.
    pub max_congestion: usize,
    /// How many per-vertex-load-`O(deg(v))` routing queries the instance
    /// decomposed into (the `Õ(n^{1/3})` quantity of the DLP argument).
    pub queries: u64,
    /// Total charged rounds: `queries ×` [`RoutingHierarchy::query_rounds`].
    pub rounds: u64,
    /// Total words moved (for message accounting).
    pub words: u64,
}

/// Cost charged to one read-only point query by
/// [`RoutingHierarchy::route_query`].
///
/// The fields mirror [`BatchOutcome`] but the struct is `Copy`, `Eq` and
/// cheap to aggregate — a long-lived query service produces one per
/// answered query and compares them bit-for-bit between concurrent and
/// sequential replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryCharge {
    /// Words of adjacency data the query streamed to its destination.
    pub words: u64,
    /// Per-vertex-load-`O(deg(v))` routing queries the delivery decomposes
    /// into (the `Õ(n^{1/3})`-budgeted quantity of the DLP argument).
    pub queries: u64,
    /// Total charged rounds: `queries ×` [`RoutingHierarchy::query_rounds`].
    pub rounds: u64,
    /// Maximum per-vertex word load observed at any level.
    pub max_congestion: u64,
    /// Whether every level had a portal to carry the delivery.
    pub delivered: bool,
}

/// One level of the hierarchy: a partition of `V` into groups.
#[derive(Debug, Clone)]
struct Level {
    /// Group id of every vertex at this level.
    group_of: Vec<u32>,
    /// Portal vertices per group (sampled representatives that carry
    /// inter-level traffic).
    portals: Vec<Vec<VertexId>>,
}

/// The built GKS routing structure over a fixed graph.
///
/// # Example
///
/// ```
/// use routing::{RoutingHierarchy, RoutingRequest};
///
/// let g = graph::gen::random_regular(64, 8, 1).unwrap();
/// let h = RoutingHierarchy::build(&g, 2, 7).unwrap();
/// // Constant k: preprocessing is bounded and queries are polylog·τ_mix.
/// assert!(h.query_rounds() < h.preprocessing_rounds());
/// let reqs: Vec<_> = (0..64u32).map(|v| RoutingRequest { src: v, dst: 63 - v }).collect();
/// let out = h.route(&g, &reqs).unwrap();
/// assert!(out.delivered);
/// ```
#[derive(Debug, Clone)]
pub struct RoutingHierarchy {
    levels: Vec<Level>,
    k: usize,
    beta: usize,
    tau_mix: usize,
    n: usize,
    preprocessing_rounds: u64,
}

/// Outcome of simulating one routing query.
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    /// Whether every request reached its destination group addressing
    /// (always true unless the structure is corrupt — exposed for tests).
    pub delivered: bool,
    /// Maximum per-vertex token load observed at any level.
    pub max_congestion: usize,
    /// The charged query cost per GKS Lemma 3.4 (see
    /// [`RoutingHierarchy::query_rounds`]), scaled by the congestion
    /// overload factor when the instance exceeds per-vertex load
    /// `O(deg(v))`.
    pub rounds: u64,
}

/// One level of a [`HierarchyParts`]: the serializable twin of the
/// private level representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelParts {
    /// Group id of every vertex at this level.
    pub group_of: Vec<u32>,
    /// Portal vertices per group.
    pub portals: Vec<Vec<VertexId>>,
}

/// The complete serializable state of a [`RoutingHierarchy`].
///
/// A built hierarchy is plain data — group assignments, portal lists and
/// a handful of scalars — so persistence layers can extract it with
/// [`RoutingHierarchy::to_parts`], store it however they like, and
/// reconstruct a **bit-identical** hierarchy with
/// [`RoutingHierarchy::from_parts`]. Bit-identical matters: query charges
/// ([`RoutingHierarchy::route_query`]) are deterministic functions of
/// this state, and the serve tier's restore path promises byte-equal
/// answers to a freshly built engine.
///
/// # Examples
///
/// ```
/// use routing::RoutingHierarchy;
///
/// let g = graph::gen::random_regular(64, 8, 1).unwrap();
/// let h = RoutingHierarchy::build(&g, 2, 7).unwrap();
/// let restored = RoutingHierarchy::from_parts(h.to_parts()).unwrap();
/// let degrees: Vec<u32> = (0..64).map(|v| g.degree(v) as u32).collect();
/// assert_eq!(
///     h.route_query(&degrees, 3, 40).unwrap(),
///     restored.route_query(&degrees, 3, 40).unwrap(),
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyParts {
    /// All `k + 1` levels, root first.
    pub levels: Vec<LevelParts>,
    /// Hierarchy depth.
    pub k: usize,
    /// Branching factor `β`.
    pub beta: usize,
    /// Mixing-time estimate used for cost accounting.
    pub tau_mix: usize,
    /// Number of vertices the hierarchy covers.
    pub n: usize,
    /// Charged preprocessing rounds.
    pub preprocessing_rounds: u64,
}

impl RoutingHierarchy {
    /// Extracts the full serializable state (see [`HierarchyParts`]).
    pub fn to_parts(&self) -> HierarchyParts {
        HierarchyParts {
            levels: self
                .levels
                .iter()
                .map(|l| LevelParts {
                    group_of: l.group_of.clone(),
                    portals: l.portals.clone(),
                })
                .collect(),
            k: self.k,
            beta: self.beta,
            tau_mix: self.tau_mix,
            n: self.n,
            preprocessing_rounds: self.preprocessing_rounds,
        }
    }

    /// Reconstructs a hierarchy from extracted parts, validating the
    /// structural invariants the query paths index by.
    ///
    /// # Errors
    ///
    /// [`RoutingError::BadParts`] when the parts are inconsistent: wrong
    /// level count, a level not covering every vertex, group ids without
    /// a portal slot, or portal vertices outside `0..n`.
    pub fn from_parts(parts: HierarchyParts) -> Result<Self> {
        let bad = |reason: String| Err(RoutingError::BadParts { reason });
        if parts.k == 0 {
            return bad("depth k must be >= 1".to_string());
        }
        if parts.levels.len() != parts.k + 1 {
            return bad(format!(
                "{} levels for depth k = {} (want k + 1)",
                parts.levels.len(),
                parts.k
            ));
        }
        for (i, level) in parts.levels.iter().enumerate() {
            if level.group_of.len() != parts.n {
                return bad(format!(
                    "level {i} assigns {} vertices, hierarchy has {}",
                    level.group_of.len(),
                    parts.n
                ));
            }
            for (v, &gid) in level.group_of.iter().enumerate() {
                if gid as usize >= level.portals.len() {
                    return bad(format!(
                        "level {i}: vertex {v} in group {gid}, only {} portal slots",
                        level.portals.len()
                    ));
                }
            }
            for (gid, portals) in level.portals.iter().enumerate() {
                for &p in portals {
                    if p as usize >= parts.n {
                        return bad(format!(
                            "level {i}: portal {p} of group {gid} outside 0..{}",
                            parts.n
                        ));
                    }
                }
            }
        }
        Ok(RoutingHierarchy {
            levels: parts
                .levels
                .into_iter()
                .map(|l| Level {
                    group_of: l.group_of,
                    portals: l.portals,
                })
                .collect(),
            k: parts.k,
            beta: parts.beta,
            tau_mix: parts.tau_mix,
            n: parts.n,
            preprocessing_rounds: parts.preprocessing_rounds,
        })
    }

    /// Builds the hierarchy with depth `k` on `g`.
    ///
    /// # Errors
    ///
    /// [`RoutingError::EmptyGraph`] for graphs without edges;
    /// [`RoutingError::BadDepth`] for `k == 0`.
    pub fn build(g: &Graph, k: usize, seed: u64) -> Result<Self> {
        if g.n() == 0 || g.m() == 0 {
            return Err(RoutingError::EmptyGraph);
        }
        if k == 0 {
            return Err(RoutingError::BadDepth { k });
        }
        let n = g.n();
        let beta = (n as f64).powf(1.0 / k as f64).ceil().max(2.0) as usize;
        let tau_mix = estimate_mixing_time(g);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut levels = Vec::with_capacity(k + 1);
        // Level 0: one group containing everything.
        let mut group_of = vec![0u32; n];
        levels.push(make_level(g, group_of.clone(), 1, &mut rng));
        let mut groups = 1usize;
        for _ in 1..=k {
            let mut next = vec![0u32; n];
            for v in 0..n {
                let sub: u32 = rng.random_range(0..beta as u32);
                next[v] = group_of[v] * beta as u32 + sub;
            }
            groups *= beta;
            group_of = next;
            levels.push(make_level(g, group_of.clone(), groups, &mut rng));
        }
        let log_n = (n.max(2) as f64).log2().ceil().max(1.0);
        // GKS Lemma 3.2 + 3.3: O(kβ)(log n)^{O(k)}·τ_mix + O(kβ²·log n)·τ_mix.
        let pre = (k as f64 * beta as f64) * log_n.powi(k as i32) * tau_mix as f64
            + (k as f64 * (beta * beta) as f64) * log_n * tau_mix as f64;
        Ok(RoutingHierarchy {
            levels,
            k,
            beta,
            tau_mix,
            n,
            preprocessing_rounds: pre.ceil() as u64,
        })
    }

    /// Hierarchy depth `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Branching factor `β = ⌈n^{1/k}⌉`.
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// The mixing-time estimate used for cost accounting.
    pub fn tau_mix(&self) -> usize {
        self.tau_mix
    }

    /// Rounds charged for building the structure (GKS Lemmas 3.2–3.3).
    pub fn preprocessing_rounds(&self) -> u64 {
        self.preprocessing_rounds
    }

    /// Rounds charged per routing query (GKS Lemma 3.4):
    /// `(log n)^{O(k)}·τ_mix`.
    pub fn query_rounds(&self) -> u64 {
        let log_n = (self.n.max(2) as f64).log2().ceil().max(1.0);
        (log_n.powi(self.k as i32) * self.tau_mix as f64).ceil() as u64
    }

    /// Simulates one routing instance: tokens descend the hierarchy
    /// through random portals toward their destinations.
    ///
    /// The charged rounds are [`RoutingHierarchy::query_rounds`] times the
    /// *overload factor* `⌈max_v load(v)/deg(v)⌉` — a single query admits
    /// per-vertex load `O(deg(v))`; heavier instances decompose into that
    /// many queries (exactly how the triangle algorithm batches its
    /// deliveries).
    ///
    /// # Errors
    ///
    /// [`RoutingError::BadRequest`] if a request mentions an unknown
    /// vertex.
    pub fn route(&self, g: &Graph, requests: &[RoutingRequest]) -> Result<RouteOutcome> {
        let n = self.n;
        for r in requests {
            if r.src as usize >= n || r.dst as usize >= n {
                return Err(RoutingError::BadRequest {
                    vertex: r.src.max(r.dst) as u64,
                });
            }
        }
        // Token simulation: per level, count the load on portal vertices.
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ requests.len() as u64);
        let mut load = vec![0usize; n];
        let mut delivered = true;
        for r in requests {
            load[r.src as usize] += 1;
            // Descend levels 1..=k: at each level, the token passes
            // through a random portal of the destination's group.
            for level in &self.levels[1..] {
                let dst_group = level.group_of[r.dst as usize] as usize;
                let portals = &level.portals[dst_group];
                if portals.is_empty() {
                    delivered = false;
                    continue;
                }
                let portal = portals[rng.random_range(0..portals.len())];
                load[portal as usize] += 1;
            }
            load[r.dst as usize] += 1;
        }
        let mut overload = 1usize;
        let mut max_congestion = 0usize;
        for (v, &vload) in load.iter().enumerate() {
            max_congestion = max_congestion.max(vload);
            if vload > 0 {
                let deg = g.degree(v as VertexId).max(1);
                overload = overload.max(vload.div_ceil(deg));
            }
        }
        Ok(RouteOutcome {
            delivered,
            max_congestion,
            rounds: self.query_rounds() * overload as u64,
        })
    }

    /// Routes a batched instance of edge slices: the workhorse of the
    /// triangle pipeline's redistribution step.
    ///
    /// Each [`EdgeBatch`] stands for `words` identical unit requests. The
    /// instance is decomposed into queries in which every vertex sends and
    /// receives `O(deg(v))` words; the charged rounds are
    /// `queries × query_rounds()` and the portal loads are simulated
    /// word-weighted, exactly as [`RoutingHierarchy::route`] does per
    /// token.
    ///
    /// # Errors
    ///
    /// [`RoutingError::BadRequest`] if a batch mentions an unknown vertex.
    pub fn route_edges(&self, g: &Graph, batches: &[EdgeBatch]) -> Result<BatchOutcome> {
        let n = self.n;
        for b in batches {
            if b.src as usize >= n || b.dst as usize >= n {
                return Err(RoutingError::BadRequest {
                    vertex: b.src.max(b.dst) as u64,
                });
            }
        }
        let total_words: u64 = batches.iter().map(|b| b.words as u64).sum();
        let mut rng = StdRng::seed_from_u64(0xED6E ^ total_words ^ (batches.len() as u64) << 17);
        let mut load = vec![0usize; n];
        let mut delivered = true;
        for b in batches {
            if b.words == 0 {
                continue;
            }
            load[b.src as usize] += b.words;
            for level in &self.levels[1..] {
                let dst_group = level.group_of[b.dst as usize] as usize;
                let portals = &level.portals[dst_group];
                if portals.is_empty() {
                    delivered = false;
                    continue;
                }
                // A slice of `words` tokens spreads over the group's
                // portals: charge the heaviest portal its expected share
                // (ceil), re-drawing the portal per batch like `route`.
                let portal = portals[rng.random_range(0..portals.len())];
                load[portal as usize] += b.words.div_ceil(portals.len());
            }
            load[b.dst as usize] += b.words;
        }
        let mut queries = 1u64;
        let mut max_congestion = 0usize;
        for (v, &vload) in load.iter().enumerate() {
            max_congestion = max_congestion.max(vload);
            if vload > 0 {
                let deg = g.degree(v as VertexId).max(1);
                queries = queries.max(vload.div_ceil(deg) as u64);
            }
        }
        Ok(BatchOutcome {
            delivered,
            max_congestion,
            queries,
            rounds: self.query_rounds() * queries,
            words: total_words,
        })
    }

    /// Routes a batched instance given only its **aggregate per-vertex
    /// word loads** — `holders[i] = (v, w)` meaning `v` sends `w` words
    /// in total, `owners[j] = (v, w)` meaning `v` receives `w` words in
    /// total — without materializing the per-(src, dst) batch list.
    ///
    /// This is the output-sized entry point the closed-form DLP triple
    /// accounting uses: the triangle pipeline knows each holder's and
    /// each owner's word totals in `O(g² + Σ|bucket|)` arithmetic, and
    /// the batch list those totals summarize can be quadratic in the
    /// cluster. Endpoint charges are exactly [`Self::route_edges`]'s
    /// (`load[src] += w`, `load[dst] += w`). Portal charges are the
    /// deterministic balanced spread: at every level below the root,
    /// **each** portal of a receiver's group is charged the receiver's
    /// expected share `⌈w / |portals|⌉` — the per-batch random portal
    /// draw of `route_edges` degenerates to exactly this in expectation,
    /// and making it deterministic keeps the outcome independent of how
    /// word totals were split into batches (and of any RNG), which the
    /// sequential-vs-parallel and packed-vs-unpacked equivalence suites
    /// rely on.
    ///
    /// Vertices may appear multiple times in either slice; their words
    /// accumulate. `words` in the outcome is the owners' total (every
    /// routed word is received exactly once).
    ///
    /// # Errors
    ///
    /// [`RoutingError::BadRequest`] if a load mentions an unknown vertex.
    pub fn route_edge_loads(
        &self,
        g: &Graph,
        holders: &[(VertexId, u64)],
        owners: &[(VertexId, u64)],
    ) -> Result<BatchOutcome> {
        let n = self.n;
        for &(v, _) in holders.iter().chain(owners) {
            if v as usize >= n {
                return Err(RoutingError::BadRequest { vertex: v as u64 });
            }
        }
        let total_words: u64 = owners.iter().map(|&(_, w)| w).sum();
        let mut load = vec![0u64; n];
        let mut delivered = true;
        for &(v, w) in holders {
            load[v as usize] += w;
        }
        for &(v, w) in owners {
            if w == 0 {
                continue;
            }
            for level in &self.levels[1..] {
                let dst_group = level.group_of[v as usize] as usize;
                let portals = &level.portals[dst_group];
                if portals.is_empty() {
                    delivered = false;
                    continue;
                }
                let share = w.div_ceil(portals.len() as u64);
                for &p in portals {
                    load[p as usize] += share;
                }
            }
            load[v as usize] += w;
        }
        let mut queries = 1u64;
        let mut max_congestion = 0u64;
        for (v, &vload) in load.iter().enumerate() {
            max_congestion = max_congestion.max(vload);
            if vload > 0 {
                let deg = g.degree(v as VertexId).max(1) as u64;
                queries = queries.max(vload.div_ceil(deg));
            }
        }
        Ok(BatchOutcome {
            delivered,
            max_congestion: max_congestion as usize,
            queries,
            rounds: self.query_rounds() * queries,
            words: total_words,
        })
    }

    /// Charges one **read-only point query**: `words` words of adjacency
    /// data converge on `dst`, and the charge is computed without
    /// allocating any per-vertex state proportional to `n`.
    ///
    /// This is the query-time counterpart of [`Self::route_edge_loads`]
    /// and uses the identical deterministic portal-share model — at every
    /// level below the root, each portal of `dst`'s group is charged the
    /// expected share `⌈words / |portals|⌉`, and `dst` itself is charged
    /// `words` — so a batch of point queries replayed through
    /// `route_edge_loads` and the sum of their individual `route_query`
    /// congestion profiles agree vertex-by-vertex. The difference is purely
    /// operational: `route_edge_loads` builds an `O(n)` load vector per
    /// call (fine once per cluster at build time, ruinous per point query
    /// at serve time), while this walks only the `O(k·log n)` touched
    /// vertices.
    ///
    /// `degrees[v]` must give the degree of vertex `v` in the routed
    /// (cluster-local) graph; callers that froze the graph into an
    /// artifact pass their snapshot instead of a live [`Graph`], which is
    /// what keeps this path free of any build-time state.
    ///
    /// # Examples
    ///
    /// ```
    /// use routing::RoutingHierarchy;
    ///
    /// let g = graph::gen::random_regular(64, 8, 1).unwrap();
    /// let h = RoutingHierarchy::build(&g, 2, 7).unwrap();
    /// let degrees: Vec<u32> = (0..64).map(|v| g.degree(v) as u32).collect();
    /// let charge = h.route_query(&degrees, 3, 40).unwrap();
    /// assert!(charge.delivered);
    /// // Degree 8 at the destination: 40 words need ≥ ⌈40/8⌉ queries.
    /// assert!(charge.queries >= 5);
    /// assert_eq!(charge.rounds, h.query_rounds() * charge.queries);
    /// ```
    ///
    /// # Errors
    ///
    /// [`RoutingError::BadRequest`] if `dst` is outside the graph;
    /// [`RoutingError::BadDegrees`] if the degree oracle does not cover
    /// every vertex.
    pub fn route_query(&self, degrees: &[u32], dst: VertexId, words: u64) -> Result<QueryCharge> {
        if dst as usize >= self.n {
            return Err(RoutingError::BadRequest { vertex: dst as u64 });
        }
        if degrees.len() != self.n {
            return Err(RoutingError::BadDegrees {
                expected: self.n,
                got: degrees.len(),
            });
        }
        // Touched vertices only: dst plus ≤ (log n + 1) portals per level.
        let mut touched: Vec<(VertexId, u64)> = Vec::with_capacity(1 + self.k * 8);
        let mut delivered = true;
        if words > 0 {
            for level in &self.levels[1..] {
                let dst_group = level.group_of[dst as usize] as usize;
                let portals = &level.portals[dst_group];
                if portals.is_empty() {
                    delivered = false;
                    continue;
                }
                let share = words.div_ceil(portals.len() as u64);
                for &p in portals {
                    touched.push((p, share));
                }
            }
        }
        touched.push((dst, words));
        // Fold duplicate vertices (dst may itself be a portal).
        touched.sort_unstable_by_key(|&(v, _)| v);
        let mut queries = 1u64;
        let mut max_congestion = 0u64;
        let mut i = 0;
        while i < touched.len() {
            let v = touched[i].0;
            let mut load = 0u64;
            while i < touched.len() && touched[i].0 == v {
                load += touched[i].1;
                i += 1;
            }
            max_congestion = max_congestion.max(load);
            if load > 0 {
                let deg = (degrees[v as usize] as u64).max(1);
                queries = queries.max(load.div_ceil(deg));
            }
        }
        Ok(QueryCharge {
            words,
            queries,
            rounds: self.query_rounds() * queries,
            max_congestion,
            delivered,
        })
    }
}

fn make_level(g: &Graph, group_of: Vec<u32>, groups: usize, rng: &mut StdRng) -> Level {
    let _ = groups;
    // Portals: up to ⌈log₂ n⌉ + 1 sampled members per group, degree-biased
    // (high-degree vertices carry proportionally more traffic in GKS).
    let n = g.n();
    let per_group = ((n.max(2) as f64).log2().ceil() as usize) + 1;
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); groups];
    for v in 0..n {
        members[group_of[v] as usize].push(v as VertexId);
    }
    let portals = members
        .iter()
        .map(|ms| {
            if ms.is_empty() {
                return Vec::new();
            }
            let mut chosen = Vec::with_capacity(per_group.min(ms.len()));
            // Degree-weighted sampling without replacement (small counts).
            let mut pool: Vec<VertexId> = ms.clone();
            for _ in 0..per_group.min(ms.len()) {
                let total: usize = pool.iter().map(|&v| g.degree(v).max(1)).sum();
                let mut target = rng.random_range(0..total);
                let mut pick = 0usize;
                for (i, &v) in pool.iter().enumerate() {
                    let d = g.degree(v).max(1);
                    if target < d {
                        pick = i;
                        break;
                    }
                    target -= d;
                }
                chosen.push(pool.swap_remove(pick));
            }
            chosen
        })
        .collect();
    Level { group_of, portals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    fn expander(n: usize, seed: u64) -> Graph {
        gen::random_regular(n, 8, seed).unwrap()
    }

    #[test]
    fn build_rejects_degenerate_inputs() {
        let g = graph::Graph::from_edges(3, []).unwrap();
        assert!(matches!(
            RoutingHierarchy::build(&g, 2, 0),
            Err(RoutingError::EmptyGraph)
        ));
        let g = gen::complete(4).unwrap();
        assert!(matches!(
            RoutingHierarchy::build(&g, 0, 0),
            Err(RoutingError::BadDepth { k: 0 })
        ));
    }

    #[test]
    fn beta_matches_depth() {
        let g = expander(256, 1);
        for k in 1..=4 {
            let h = RoutingHierarchy::build(&g, k, 5).unwrap();
            let want = (256f64).powf(1.0 / k as f64).ceil() as usize;
            assert_eq!(h.beta(), want, "k = {k}");
            assert_eq!(h.k(), k);
        }
    }

    #[test]
    fn trade_off_shape_preprocessing_vs_query() {
        // Larger k: preprocessing shrinks in β (β = n^{1/k}) but query
        // grows in (log n)^k — the §3 trade-off.
        let g = expander(512, 2);
        let h1 = RoutingHierarchy::build(&g, 1, 3).unwrap();
        let h3 = RoutingHierarchy::build(&g, 3, 3).unwrap();
        assert!(
            h3.query_rounds() > h1.query_rounds(),
            "query cost must grow with k: {} vs {}",
            h3.query_rounds(),
            h1.query_rounds()
        );
        // β shrinks drastically.
        assert!(h3.beta() < h1.beta());
    }

    #[test]
    fn query_cost_scales_with_mixing_time() {
        let fast = gen::complete(64).unwrap();
        let (slow, _) = gen::barbell(32).unwrap();
        let hf = RoutingHierarchy::build(&fast, 2, 1).unwrap();
        let hs = RoutingHierarchy::build(&slow, 2, 1).unwrap();
        assert!(
            hs.query_rounds() > 10 * hf.query_rounds(),
            "slow mixer must cost more: {} vs {}",
            hs.query_rounds(),
            hf.query_rounds()
        );
    }

    #[test]
    fn routes_deliver_and_measure_congestion() {
        let g = expander(128, 4);
        let h = RoutingHierarchy::build(&g, 2, 9).unwrap();
        let reqs: Vec<RoutingRequest> = (0..128u32)
            .map(|v| RoutingRequest {
                src: v,
                dst: (v * 37 + 11) % 128,
            })
            .collect();
        let out = h.route(&g, &reqs).unwrap();
        assert!(out.delivered);
        assert!(out.max_congestion >= 1);
        assert!(out.rounds >= h.query_rounds());
    }

    #[test]
    fn overload_scales_rounds_linearly() {
        let g = expander(64, 6);
        let h = RoutingHierarchy::build(&g, 2, 11).unwrap();
        // All tokens target one vertex: load n at the destination, degree
        // 8 ⇒ overload ≈ n/8.
        let reqs: Vec<RoutingRequest> = (1..64u32)
            .map(|v| RoutingRequest { src: v, dst: 0 })
            .collect();
        let out = h.route(&g, &reqs).unwrap();
        let expect_overload = (63f64 / 8.0).ceil() as u64;
        assert!(
            out.rounds >= h.query_rounds() * expect_overload,
            "rounds {} must reflect the hot-spot overload",
            out.rounds
        );
    }

    #[test]
    fn batched_route_matches_unit_requests_on_queries() {
        // A batch of w words from s to d costs at least as many queries as
        // one unit request and at most w of them.
        let g = expander(64, 8);
        let h = RoutingHierarchy::build(&g, 2, 13).unwrap();
        let out = h
            .route_edges(
                &g,
                &[EdgeBatch {
                    src: 1,
                    dst: 2,
                    words: 40,
                }],
            )
            .unwrap();
        assert!(out.delivered);
        assert_eq!(out.words, 40);
        // Degree 8 at the destination: 40 words need ≥ ⌈40/8⌉ queries.
        assert!(out.queries >= 5, "queries = {}", out.queries);
        assert_eq!(out.rounds, h.query_rounds() * out.queries);
    }

    #[test]
    fn batched_route_balances_across_destinations() {
        // Spreading the same words over all vertices needs fewer queries
        // than concentrating them on one.
        let g = expander(64, 9);
        let h = RoutingHierarchy::build(&g, 2, 17).unwrap();
        let spread: Vec<EdgeBatch> = (0..64u32)
            .map(|v| EdgeBatch {
                src: v,
                dst: (v + 1) % 64,
                words: 8,
            })
            .collect();
        let hot: Vec<EdgeBatch> = (1..64u32)
            .map(|v| EdgeBatch {
                src: v,
                dst: 0,
                words: 8,
            })
            .collect();
        let a = h.route_edges(&g, &spread).unwrap();
        let b = h.route_edges(&g, &hot).unwrap();
        assert!(
            a.queries < b.queries,
            "spread {} vs hot-spot {}",
            a.queries,
            b.queries
        );
    }

    #[test]
    fn batched_route_ignores_empty_slices() {
        let g = expander(32, 10);
        let h = RoutingHierarchy::build(&g, 2, 19).unwrap();
        let out = h
            .route_edges(
                &g,
                &[EdgeBatch {
                    src: 0,
                    dst: 1,
                    words: 0,
                }],
            )
            .unwrap();
        assert_eq!(out.words, 0);
        assert_eq!(out.max_congestion, 0);
        assert_eq!(out.queries, 1); // floor: an instance costs ≥ 1 query
    }

    #[test]
    fn batched_route_rejects_unknown_vertices() {
        let g = expander(32, 11);
        let h = RoutingHierarchy::build(&g, 2, 23).unwrap();
        let err = h
            .route_edges(
                &g,
                &[EdgeBatch {
                    src: 5,
                    dst: 200,
                    words: 3,
                }],
            )
            .unwrap_err();
        assert!(matches!(err, RoutingError::BadRequest { vertex: 200 }));
    }

    #[test]
    fn route_rejects_unknown_vertices() {
        let g = expander(32, 7);
        let h = RoutingHierarchy::build(&g, 2, 1).unwrap();
        let err = h
            .route(&g, &[RoutingRequest { src: 1, dst: 99 }])
            .unwrap_err();
        assert!(matches!(err, RoutingError::BadRequest { vertex: 99 }));
    }

    #[test]
    fn constant_k_preprocessing_is_sublinear_in_n_cubed_root_regime() {
        // The §3 punchline: with constant k the preprocessing rounds grow
        // like n^{1/k}·polylog — slower than n^{1/3} for k ≥ 4. Check the
        // growth *ratio* between two sizes against the n^{1/3} ratio.
        let g1 = expander(256, 1);
        let g2 = expander(2048, 1);
        let k = 4;
        let h1 = RoutingHierarchy::build(&g1, k, 2).unwrap();
        let h2 = RoutingHierarchy::build(&g2, k, 2).unwrap();
        let growth = h2.preprocessing_rounds() as f64 / h1.preprocessing_rounds() as f64;
        let n_growth = (2048f64 / 256.0).powf(1.0 / 3.0);
        // polylog factors make small-scale comparisons noisy; require the
        // growth to stay within a generous constant of n^{1/3}'s.
        assert!(
            growth < 8.0 * n_growth,
            "preprocessing growth {growth} vs n^(1/3) growth {n_growth}"
        );
    }

    #[test]
    fn deterministic_build() {
        let g = expander(64, 3);
        let a = RoutingHierarchy::build(&g, 2, 42).unwrap();
        let b = RoutingHierarchy::build(&g, 2, 42).unwrap();
        assert_eq!(a.preprocessing_rounds(), b.preprocessing_rounds());
        assert_eq!(a.query_rounds(), b.query_rounds());
    }

    #[test]
    fn edge_loads_accounting_shape() {
        let g = expander(128, 9);
        let h = RoutingHierarchy::build(&g, 2, 9).unwrap();
        let holders = vec![(0u32, 40u64), (5, 24), (17, 8)];
        let owners = vec![(3u32, 30u64), (9, 42)];
        let out = h.route_edge_loads(&g, &holders, &owners).unwrap();
        // Words are the owner total (every routed word has one owner).
        assert_eq!(out.words, 72);
        assert!(out.delivered);
        assert!(out.queries >= 1);
        assert_eq!(out.rounds, h.query_rounds() * out.queries);
        // Heavier loads can only cost more queries.
        let heavier = vec![(3u32, 300u64), (9, 420)];
        let out2 = h.route_edge_loads(&g, &holders, &heavier).unwrap();
        assert!(out2.queries >= out.queries);
    }

    #[test]
    fn point_query_matches_edge_loads_accounting() {
        // A single point query and the equivalent one-owner batched
        // instance must charge the same queries/congestion: route_query is
        // route_edge_loads with the O(n) load vector elided.
        let g = expander(128, 12);
        let h = RoutingHierarchy::build(&g, 2, 31).unwrap();
        let degrees: Vec<u32> = (0..g.n()).map(|v| g.degree(v as VertexId) as u32).collect();
        for (dst, words) in [(0u32, 1u64), (7, 40), (63, 997), (127, 0)] {
            let q = h.route_query(&degrees, dst, words).unwrap();
            let b = h.route_edge_loads(&g, &[], &[(dst, words)]).unwrap();
            assert_eq!(q.queries, b.queries, "dst {dst} words {words}");
            assert_eq!(q.max_congestion, b.max_congestion as u64);
            assert_eq!(q.rounds, b.rounds);
            assert_eq!(q.words, words);
            assert!(q.delivered);
        }
    }

    #[test]
    fn point_query_is_deterministic_and_validated() {
        let g = expander(64, 13);
        let h = RoutingHierarchy::build(&g, 3, 5).unwrap();
        let degrees: Vec<u32> = (0..g.n()).map(|v| g.degree(v as VertexId) as u32).collect();
        let a = h.route_query(&degrees, 9, 123).unwrap();
        let b = h.route_query(&degrees, 9, 123).unwrap();
        assert_eq!(a, b, "charge model must be RNG-free");
        assert!(matches!(
            h.route_query(&degrees, 64, 1),
            Err(RoutingError::BadRequest { vertex: 64 })
        ));
        assert!(matches!(
            h.route_query(&degrees[..10], 1, 1),
            Err(RoutingError::BadDegrees {
                expected: 64,
                got: 10
            })
        ));
        // Zero words: the trivial single-query floor, nothing congested.
        let idle = h.route_query(&degrees, 0, 0).unwrap();
        assert_eq!(idle.queries, 1);
        assert_eq!(idle.max_congestion, 0);
    }

    #[test]
    fn parts_roundtrip_is_query_identical() {
        let g = expander(128, 21);
        let h = RoutingHierarchy::build(&g, 3, 77).unwrap();
        let restored = RoutingHierarchy::from_parts(h.to_parts()).unwrap();
        assert_eq!(h.to_parts(), restored.to_parts());
        assert_eq!(h.preprocessing_rounds(), restored.preprocessing_rounds());
        assert_eq!(h.query_rounds(), restored.query_rounds());
        let degrees: Vec<u32> = (0..g.n()).map(|v| g.degree(v as VertexId) as u32).collect();
        for dst in [0u32, 17, 127] {
            assert_eq!(
                h.route_query(&degrees, dst, 99).unwrap(),
                restored.route_query(&degrees, dst, 99).unwrap(),
            );
        }
    }

    #[test]
    fn from_parts_rejects_inconsistent_state() {
        let g = expander(32, 22);
        let h = RoutingHierarchy::build(&g, 2, 5).unwrap();
        let ok = h.to_parts();

        let mut p = ok.clone();
        p.k = 0;
        assert!(matches!(
            RoutingHierarchy::from_parts(p),
            Err(RoutingError::BadParts { .. })
        ));

        let mut p = ok.clone();
        p.levels.pop();
        assert!(matches!(
            RoutingHierarchy::from_parts(p),
            Err(RoutingError::BadParts { .. })
        ));

        let mut p = ok.clone();
        p.levels[1].group_of.pop();
        assert!(matches!(
            RoutingHierarchy::from_parts(p),
            Err(RoutingError::BadParts { .. })
        ));

        let mut p = ok.clone();
        p.levels[1].group_of[0] = u32::MAX;
        assert!(matches!(
            RoutingHierarchy::from_parts(p),
            Err(RoutingError::BadParts { .. })
        ));

        let mut p = ok.clone();
        p.levels[1].portals[0].push(99);
        assert!(matches!(
            RoutingHierarchy::from_parts(p),
            Err(RoutingError::BadParts { .. })
        ));

        assert!(RoutingHierarchy::from_parts(ok).is_ok());
    }

    #[test]
    fn edge_loads_deterministic_and_validated() {
        let g = expander(64, 4);
        let h = RoutingHierarchy::build(&g, 3, 4).unwrap();
        let holders = vec![(1u32, 7u64)];
        let owners = vec![(2u32, 7u64)];
        // The charge model is RNG-free: identical outcome on repeat.
        let a = h.route_edge_loads(&g, &holders, &owners).unwrap();
        let b = h.route_edge_loads(&g, &holders, &owners).unwrap();
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.max_congestion, b.max_congestion);
        assert_eq!(a.rounds, b.rounds);
        // Out-of-range vertices are rejected, not clamped.
        assert!(matches!(
            h.route_edge_loads(&g, &[(64, 1)], &[]),
            Err(RoutingError::BadRequest { vertex: 64 })
        ));
        // No load at all: the trivial single-query outcome.
        let empty = h.route_edge_loads(&g, &[], &[]).unwrap();
        assert_eq!(empty.words, 0);
        assert_eq!(empty.queries, 1);
        assert!(empty.delivered);
    }
}
