//! Ghaffari–Kuhn–Su expander routing, viewed as a **distributed data
//! structure** with a preprocessing/query trade-off (paper §3).
//!
//! On a graph with mixing time `τ_mix`, GKS route any instance in which
//! every vertex is source and destination of `O(deg(v))` messages. Their
//! construction is hierarchical with a tunable depth `k`:
//!
//! * **Preprocessing**: building the hierarchy costs
//!   `O(kβ)·(log n)^{O(k)}·τ_mix` rounds plus `O(kβ²·log n)·τ_mix` for the
//!   portals, where `β = m^{1/k}`.
//! * **Query**: each routing instance then costs `(log n)^{O(k)}·τ_mix`.
//!
//! The paper's observation: with **constant** `k`, preprocessing is
//! `o(n^{1/3})` while queries stay polylogarithmic — exactly what the
//! triangle algorithm needs, since it performs `Õ(n^{1/3})` queries per
//! cluster. (GKS originally set `k = Θ(√(log n/log log n))` to balance the
//! two, giving `2^{O(√(log n log log n))}`; Ghaffari–Li's improvement does
//! *not* admit this trade-off — §3 — so GKS is what Theorem 2 uses.)
//!
//! [`RoutingHierarchy`] materializes the recursive β-way splitting and
//! charges rounds per the three GKS lemmas with *measured* quantities
//! (actual `β`, actual mixing-time estimate, actual congestion);
//! [`RoutingHierarchy::route`] additionally executes a token-level
//! simulation of a query, verifying deliverability and measuring the
//! realized congestion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hierarchy;
mod mixing;

pub use hierarchy::{
    BatchOutcome, EdgeBatch, HierarchyParts, LevelParts, QueryCharge, RouteOutcome,
    RoutingHierarchy, RoutingRequest,
};
pub use mixing::estimate_mixing_time;

/// Errors from building or querying the routing structure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RoutingError {
    /// The graph is empty or has no edges.
    EmptyGraph,
    /// The hierarchy depth `k` must be at least 1.
    BadDepth {
        /// The offending depth.
        k: usize,
    },
    /// A request referenced a vertex outside the graph.
    BadRequest {
        /// The offending vertex id.
        vertex: u64,
    },
    /// A degree oracle of the wrong length was supplied to a read-only
    /// query (it must cover every vertex of the routed graph).
    BadDegrees {
        /// Number of vertices the hierarchy was built over.
        expected: usize,
        /// Length of the supplied degree slice.
        got: usize,
    },
    /// Deserialized [`HierarchyParts`] violate a structural invariant.
    BadParts {
        /// Which invariant was violated.
        reason: String,
    },
}

impl std::fmt::Display for RoutingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingError::EmptyGraph => write!(f, "routing requires a non-empty graph"),
            RoutingError::BadDepth { k } => write!(f, "hierarchy depth k = {k} must be >= 1"),
            RoutingError::BadRequest { vertex } => {
                write!(f, "request references unknown vertex {vertex}")
            }
            RoutingError::BadDegrees { expected, got } => {
                write!(
                    f,
                    "degree oracle covers {got} vertices, hierarchy has {expected}"
                )
            }
            RoutingError::BadParts { reason } => {
                write!(f, "invalid hierarchy parts: {reason}")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

/// Result alias for routing operations.
pub type Result<T> = std::result::Result<T, RoutingError>;
