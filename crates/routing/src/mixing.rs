//! Mixing-time estimation for routing cost accounting.

use graph::{spectral, Graph};

/// Estimates the mixing time of `g` from the lazy-walk spectral gap:
/// `τ_mix ≈ ln(Vol(V))/(1 − λ₂)`, clamped to at least 1.
///
/// This is the standard relaxation-time bound; for the expander components
/// the routing structure runs on (`Φ = Ω(1/polylog)`), it is within the
/// Jerrum–Sinclair window `Θ(1/Φ) ≤ τ_mix ≤ Θ(log n/Φ²)` the paper quotes.
/// Falls back to `n` when the gap estimate degenerates (disconnected or
/// near-disconnected graphs).
pub fn estimate_mixing_time(g: &Graph) -> usize {
    let n = g.n().max(2);
    match spectral::lazy_walk_lambda2(g, 200) {
        Ok(gap) => {
            let spectral_gap = (1.0 - gap.lambda2).max(0.0);
            if spectral_gap < 1.0 / (n * n) as f64 {
                return n;
            }
            let ln_vol = (g.total_volume().max(2) as f64).ln();
            ((ln_vol / spectral_gap).ceil() as usize).clamp(1, n * n)
        }
        Err(_) => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn expander_mixes_fast() {
        let g = gen::random_regular(128, 8, 3).unwrap();
        let t = estimate_mixing_time(&g);
        assert!(t <= 40, "8-regular expander should mix in O(log n): {t}");
    }

    #[test]
    fn barbell_mixes_slowly() {
        let (g, _) = gen::barbell(12).unwrap();
        let t_bar = estimate_mixing_time(&g);
        let clique = gen::complete(24).unwrap();
        let t_clq = estimate_mixing_time(&clique);
        assert!(t_bar > 10 * t_clq, "barbell {t_bar} vs clique {t_clq}");
    }

    #[test]
    fn mixing_estimate_respects_jerrum_sinclair_window() {
        // On C32: Φ = 2/32 = 1/16; window [c/Φ, C·log n/Φ²].
        let g = gen::cycle(32).unwrap();
        let t = estimate_mixing_time(&g) as f64;
        let phi = 2.0 / 32.0;
        assert!(t >= 0.1 / phi, "estimate {t} too small");
        assert!(
            t <= 40.0 * (32f64).ln() / (phi * phi),
            "estimate {t} too large"
        );
    }

    #[test]
    fn degenerate_graphs_fall_back() {
        let g = graph::Graph::from_edges(5, [(0, 1)]).unwrap(); // disconnected
        let t = estimate_mixing_time(&g);
        assert!(t >= 5, "disconnected graph must report a large mixing time");
    }
}
