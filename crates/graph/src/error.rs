//! Error types for graph construction and queries.

use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and graph queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex id was `>= n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// An operation required a non-empty graph or set.
    Empty {
        /// Which object was empty.
        what: &'static str,
    },
    /// A conductance/sparsity query was made against a cut with zero volume
    /// on one side (conductance is undefined there).
    ZeroVolumeSide,
    /// The requested generator parameters are infeasible
    /// (e.g. a `d`-regular graph with `n * d` odd).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Failure while parsing an edge-list document.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// The operation requires a connected graph.
    NotConnected,
    /// Externally supplied CSR arrays violate a structural invariant
    /// (non-monotone offsets, unsorted rows, asymmetric adjacency, …).
    InvalidCsr {
        /// Which invariant was violated.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex id {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::Empty { what } => write!(f, "{what} is empty"),
            GraphError::ZeroVolumeSide => {
                write!(
                    f,
                    "conductance undefined: one side of the cut has zero volume"
                )
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid generator parameter: {reason}")
            }
            GraphError::Parse { line, reason } => {
                write!(f, "parse error on line {line}: {reason}")
            }
            GraphError::NotConnected => write!(f, "graph is not connected"),
            GraphError::InvalidCsr { reason } => {
                write!(f, "invalid CSR arrays: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 9, n: 4 };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }

    #[test]
    fn parse_error_reports_line() {
        let e = GraphError::Parse {
            line: 3,
            reason: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
