//! Plain-text edge-list serialization.
//!
//! Format: first non-comment line `n <vertices>`, then one `u v` pair per
//! line; `#`-prefixed lines are comments. Self loops are written as `v v`.

use crate::{Graph, GraphError, Result};

/// Serializes a graph to the edge-list format.
///
/// # Example
///
/// ```
/// use graph::{Graph, io};
/// let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 2)]).unwrap();
/// let text = io::to_edge_list(&g);
/// let h = io::from_edge_list(&text).unwrap();
/// assert_eq!(g, h);
/// ```
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!("n {}\n", g.n()));
    for (u, v) in g.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    for v in 0..g.n() as u32 {
        for _ in 0..g.self_loops(v) {
            out.push_str(&format!("{v} {v}\n"));
        }
    }
    out
}

/// Parses the edge-list format produced by [`to_edge_list`].
///
/// Every rejection is a [`GraphError::Parse`] carrying the 1-based line
/// number and the offending token, so errors in pipeline-scale inputs
/// (hundreds of thousands of lines) point at the exact record to fix.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input, including edge
/// endpoints that exceed the declared vertex count.
pub fn from_edge_list(text: &str) -> Result<Graph> {
    let mut n: Option<usize> = None;
    let mut edges = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match (fields.as_slice(), n) {
            (["n", count], None) => {
                n = Some(count.parse().map_err(|_| GraphError::Parse {
                    line: line_no,
                    reason: format!("bad vertex count {count:?} in header"),
                })?);
            }
            (["n", _], Some(_)) => {
                return Err(GraphError::Parse {
                    line: line_no,
                    reason: format!("duplicate 'n <count>' header {line:?}"),
                });
            }
            ([_, _], None) => {
                return Err(GraphError::Parse {
                    line: line_no,
                    reason: format!("edge record {line:?} before the 'n <count>' header"),
                });
            }
            ([a, b], Some(count)) => {
                let parse_id = |tok: &str| -> Result<u32> {
                    let id: u32 = tok.parse().map_err(|_| GraphError::Parse {
                        line: line_no,
                        reason: format!("bad vertex id {tok:?}"),
                    })?;
                    if id as usize >= count {
                        return Err(GraphError::Parse {
                            line: line_no,
                            reason: format!("vertex id {tok:?} out of range (n = {count})"),
                        });
                    }
                    Ok(id)
                };
                edges.push((parse_id(a)?, parse_id(b)?));
            }
            (fields, _) => {
                return Err(GraphError::Parse {
                    line: line_no,
                    reason: format!(
                        "unrecognized record {line:?}: expected 'u v', found {} field(s)",
                        fields.len()
                    ),
                });
            }
        }
    }
    let n = n.ok_or(GraphError::Parse {
        line: 0,
        reason: "missing 'n <count>' header".to_string(),
    })?;
    Graph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_random_graph() {
        let g = gen::gnp(40, 0.15, 8).unwrap();
        let h = from_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn roundtrip_preserves_loops() {
        let g = Graph::from_edges(2, [(0, 1), (0, 0), (0, 0), (1, 1)]).unwrap();
        let h = from_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(h.self_loops(0), 2);
        assert_eq!(h.self_loops(1), 1);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a comment\n\nn 3\n0 1\n# another\n1 2\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    fn parse_reason(err: GraphError) -> (usize, String) {
        match err {
            GraphError::Parse { line, reason } => (line, reason),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers_and_tokens() {
        let (line, reason) = parse_reason(from_edge_list("n 3\n0 x\n").unwrap_err());
        assert_eq!(line, 2);
        assert!(reason.contains("\"x\""), "token missing: {reason}");

        let (line, reason) = parse_reason(from_edge_list("0 1\n").unwrap_err());
        assert_eq!(line, 1);
        assert!(reason.contains("before the 'n <count>' header"), "{reason}");

        let (line, _) = parse_reason(from_edge_list("").unwrap_err());
        assert_eq!(line, 0);

        let (line, reason) = parse_reason(from_edge_list("n 2\n0 1 2\n").unwrap_err());
        assert_eq!(line, 2);
        assert!(reason.contains("3 field(s)"), "{reason}");

        let (line, reason) = parse_reason(from_edge_list("n three\n").unwrap_err());
        assert_eq!(line, 1);
        assert!(reason.contains("\"three\""), "{reason}");

        let (line, reason) = parse_reason(from_edge_list("n 2\nn 3\n0 1\n").unwrap_err());
        assert_eq!(line, 2);
        assert!(reason.contains("duplicate"), "{reason}");
    }

    #[test]
    fn out_of_range_edge_rejected_with_context() {
        let (line, reason) = parse_reason(from_edge_list("n 2\n0 1\n0 7\n").unwrap_err());
        assert_eq!(line, 3);
        assert!(
            reason.contains("\"7\"") && reason.contains("n = 2"),
            "{reason}"
        );
    }
}
