//! The incremental working graph of the decomposition: a CSR overlay with
//! per-edge tombstones, per-vertex live-degree counters, and self-loop
//! compensation tracked as **counts** rather than materialized edges.
//!
//! Theorem 1 maintains a working graph in which every removed edge
//! `{u, v}` is replaced by one self loop at `u` and one at `v`, so degrees
//! never change. The original implementation rebuilt the whole CSR on
//! every removal (`O(n + m)` per `try_remove` call — the quadratic wall
//! the ROADMAP tracked). [`WorkingGraph`] instead snapshots the base CSR
//! once and then:
//!
//! * removal of `k` edges costs `O(k·log Δ)` — one binary search per
//!   directed slot, a tombstone flip, a live-degree decrement, and a loop
//!   counter bump;
//! * insertion of `k` edges costs `O(k·(log Δ + row))` — a dead slot is
//!   resurrected when the base CSR ever held a copy, otherwise the edge
//!   lands in a per-vertex sorted **insert-overlay row** (`extra`);
//! * every read (`degree`, [`WorkingGraph::live_neighbors`], subgraph
//!   extraction via [`crate::view::Subgraph`]) merges the live base slots
//!   with the insert rows in place — nothing is ever copied back into a
//!   fresh `Graph`.
//!
//! # Invariants (the overlay contract, DESIGN.md §9 and §15)
//!
//! 1. **Symmetric tombstones.** The CSR stores each undirected edge as two
//!    directed slots; a removal kills exactly one live slot in each row,
//!    so `#live slots of v in row(u) == #live slots of u in row(v)` holds
//!    at all times (parallel edges lose copies one at a time).
//! 2. **Symmetric insert rows.** An inserted copy of `{u, v}` that cannot
//!    resurrect a dead slot pair appears exactly once in `extra[u]` and
//!    once in `extra[v]`, both rows kept sorted. Because base
//!    multiplicities and live counts are symmetric, dead-slot counts are
//!    too — resurrection always finds a pair.
//! 3. **Live-degree agreement.** `live_deg[v]` equals the number of live
//!    slots in `row(v)` plus `extra[v].len()`; `m()` equals half the total
//!    over all rows.
//! 4. **Degree preservation.** With compensation, `degree(v)` (live
//!    endpoints + loop count) is invariant under removal — exactly the
//!    paper's convention, checked bit-for-bit against a from-scratch
//!    [`Graph::remove_edges`] rebuild by `tests/working_graph.rs`. The
//!    same harness checks insert == rebuild identity via
//!    [`WorkingGraph::to_graph`].

use crate::cut::VertexSet;
use crate::{Graph, VertexId};

/// An incrementally editable overlay over a base [`Graph`] CSR. See the
/// [module docs](self) for the invariant contract.
///
/// # Example
///
/// ```
/// use graph::{Graph, working::WorkingGraph};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// let mut w = WorkingGraph::new(&g);
/// w.remove_edges([(1, 2)], true);
/// assert_eq!(w.m(), 3);
/// assert_eq!(w.degree(1), g.degree(1)); // loop compensation
/// assert_eq!(w.self_loops(1), 1);
/// assert_eq!(w.to_graph(), g.remove_edges([(1, 2)], true));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkingGraph {
    /// CSR offsets (shared shape with the base graph; never changes).
    offsets: Vec<usize>,
    /// Flattened sorted neighbor rows (self loops excluded).
    adj: Vec<VertexId>,
    /// Tombstones: `alive[i]` tells whether directed slot `i` still counts.
    alive: Vec<bool>,
    /// Per-vertex sorted insert-overlay rows: copies of edges inserted
    /// after the snapshot that have no dead base slot to resurrect.
    extra: Vec<Vec<VertexId>>,
    /// Number of live slots per row (`deg(v)` without loops).
    live_deg: Vec<u32>,
    /// Self-loop count per vertex: base loops plus compensation.
    loops: Vec<u32>,
    /// Live non-loop undirected edge count.
    m: usize,
    /// Total self loops (base + compensation).
    total_loops: usize,
}

impl WorkingGraph {
    /// Snapshots `g` into an overlay with every edge live. `O(n + m)` —
    /// paid once per decomposition run instead of once per removal.
    pub fn new(g: &Graph) -> Self {
        WorkingGraph {
            offsets: g.offsets.clone(),
            adj: g.adj.clone(),
            alive: vec![true; g.adj.len()],
            extra: vec![Vec::new(); g.n()],
            live_deg: g.offsets.windows(2).map(|w| (w[1] - w[0]) as u32).collect(),
            loops: g.loops.clone(),
            m: g.m(),
            total_loops: g.total_self_loops(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Live non-loop undirected edge count.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total self loops (base + compensation).
    #[inline]
    pub fn total_self_loops(&self) -> usize {
        self.total_loops
    }

    /// Degree of `v`: live non-loop endpoints plus self loops (each loop
    /// counts 1, per the paper's convention). With compensation enabled
    /// this is invariant under removal.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.live_deg[v as usize] as usize + self.loops[v as usize] as usize
    }

    /// Number of live non-loop edge endpoints at `v`.
    #[inline]
    pub fn degree_without_loops(&self, v: VertexId) -> usize {
        self.live_deg[v as usize] as usize
    }

    /// Self loops at `v` (base + compensation).
    #[inline]
    pub fn self_loops(&self, v: VertexId) -> u32 {
        self.loops[v as usize]
    }

    /// `Vol(V) = 2·m + total self loops` over the live graph.
    #[inline]
    pub fn total_volume(&self) -> usize {
        2 * self.m + self.total_loops
    }

    /// Iterator over `v`'s **live** neighbors in ascending order (self
    /// loops excluded; parallel edges repeat): the live base slots merged
    /// with the sorted insert-overlay row. Reads through the overlay — no
    /// copy.
    pub fn live_neighbors(&self, v: VertexId) -> LiveNeighbors<'_> {
        let lo = self.offsets[v as usize];
        let hi = self.offsets[v as usize + 1];
        LiveNeighbors {
            adj: &self.adj[lo..hi],
            alive: &self.alive[lo..hi],
            i: 0,
            extra: &self.extra[v as usize],
            j: 0,
        }
    }

    /// Whether at least one live copy of the non-loop edge `{u, v}` exists.
    /// `O(log Δ + multiplicity)`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if (u as usize) >= self.n() || (v as usize) >= self.n() {
            return false;
        }
        if u == v {
            return self.loops[u as usize] > 0;
        }
        self.find_live_slot(u, v).is_some() || !self.extra_range(u, v).is_empty()
    }

    /// Live copies of `{u, v}` in the overlay: `loops[u]` when `u == v`,
    /// otherwise live base slots plus insert-row occurrences. Out-of-range
    /// pairs have multiplicity 0.
    pub fn multiplicity(&self, u: VertexId, v: VertexId) -> usize {
        if (u as usize) >= self.n() || (v as usize) >= self.n() {
            return 0;
        }
        if u == v {
            return self.loops[u as usize] as usize;
        }
        let lo = self.offsets[u as usize];
        let hi = self.offsets[u as usize + 1];
        let row = &self.adj[lo..hi];
        let mut i = lo + row.partition_point(|&x| x < v);
        let mut live = 0usize;
        while i < hi && self.adj[i] == v {
            if self.alive[i] {
                live += 1;
            }
            i += 1;
        }
        live + self.extra_range(u, v).len()
    }

    /// First live slot holding `v` inside `u`'s row, if any.
    fn find_live_slot(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let lo = self.offsets[u as usize];
        let hi = self.offsets[u as usize + 1];
        let row = &self.adj[lo..hi];
        let mut i = lo + row.partition_point(|&x| x < v);
        while i < hi && self.adj[i] == v {
            if self.alive[i] {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// First tombstoned slot holding `v` inside `u`'s row, if any — the
    /// resurrection target for an insertion of a previously removed copy.
    fn find_dead_slot(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let lo = self.offsets[u as usize];
        let hi = self.offsets[u as usize + 1];
        let row = &self.adj[lo..hi];
        let mut i = lo + row.partition_point(|&x| x < v);
        while i < hi && self.adj[i] == v {
            if !self.alive[i] {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Index range of `v`'s occurrences inside `u`'s insert-overlay row.
    fn extra_range(&self, u: VertexId, v: VertexId) -> std::ops::Range<usize> {
        let row = &self.extra[u as usize];
        let lo = row.partition_point(|&x| x < v);
        let hi = lo + row[lo..].partition_point(|&x| x == v);
        lo..hi
    }

    /// Inserts one copy of each listed edge. A copy whose base CSR row
    /// holds a tombstoned slot resurrects that slot pair (`O(log Δ)`);
    /// otherwise it lands in both endpoints' sorted insert-overlay rows.
    /// Self loops (`u == v`) bump the loop counter directly; out-of-range
    /// pairs are ignored (mirroring [`WorkingGraph::remove_edges`]).
    /// Returns how many copies were inserted.
    pub fn insert_edges<I>(&mut self, edges: I) -> usize
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut inserted = 0usize;
        let n = self.n();
        for (u, v) in edges {
            if (u as usize) >= n || (v as usize) >= n {
                continue;
            }
            if u == v {
                self.loops[u as usize] += 1;
                self.total_loops += 1;
                inserted += 1;
                continue;
            }
            if let Some(slot_u) = self.find_dead_slot(u, v) {
                let slot_v = self
                    .find_dead_slot(v, u)
                    .expect("symmetric dead-slot invariant");
                self.alive[slot_u] = true;
                self.alive[slot_v] = true;
            } else {
                let pos_u = self.extra[u as usize].partition_point(|&x| x <= v);
                self.extra[u as usize].insert(pos_u, v);
                let pos_v = self.extra[v as usize].partition_point(|&x| x <= u);
                self.extra[v as usize].insert(pos_v, u);
            }
            self.live_deg[u as usize] += 1;
            self.live_deg[v as usize] += 1;
            self.m += 1;
            inserted += 1;
        }
        inserted
    }

    /// Removes one live copy of each listed edge, `O(log Δ)` per edge.
    /// Absent edges are ignored (same contract as [`Graph::remove_edges`]).
    /// With `compensate_with_loops`, each removal adds one self loop at
    /// both endpoints so degrees are preserved. Returns how many edges
    /// were actually removed.
    pub fn remove_edges<I>(&mut self, edges: I, compensate_with_loops: bool) -> usize
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut removed = 0usize;
        let n = self.n();
        for (u, v) in edges {
            if u == v || (u as usize) >= n || (v as usize) >= n {
                continue; // loops are never slots; out-of-range pairs
                          // match nothing (same as Graph::remove_edges)
            }
            if let Some(slot_u) = self.find_live_slot(u, v) {
                let slot_v = self
                    .find_live_slot(v, u)
                    .expect("symmetric tombstone invariant");
                self.alive[slot_u] = false;
                self.alive[slot_v] = false;
            } else {
                let at_u = self.extra_range(u, v);
                if at_u.is_empty() {
                    continue; // absent (or all copies already tombstoned)
                }
                let at_v = self.extra_range(v, u);
                debug_assert!(!at_v.is_empty(), "symmetric insert-row invariant");
                self.extra[u as usize].remove(at_u.start);
                self.extra[v as usize].remove(at_v.start);
            }
            self.live_deg[u as usize] -= 1;
            self.live_deg[v as usize] -= 1;
            self.m -= 1;
            removed += 1;
            if compensate_with_loops {
                self.loops[u as usize] += 1;
                self.loops[v as usize] += 1;
                self.total_loops += 2;
            }
        }
        removed
    }

    /// Number of live edges with both endpoints in `s` (loops excluded).
    /// `O(Vol(S))` through the overlay.
    pub fn internal_edges(&self, s: &VertexSet) -> usize {
        let mut twice = 0usize;
        for u in s.iter() {
            for w in self.live_neighbors(u) {
                if s.contains(w) {
                    twice += 1;
                }
            }
        }
        twice / 2
    }

    /// Volume of a vertex set under the overlay's degrees.
    pub fn volume(&self, s: &VertexSet) -> usize {
        s.iter().map(|v| self.degree(v)).sum()
    }

    /// The vertices that still carry any live volume (a live incident edge
    /// or a self loop) — the overlay's live-vertex list, from which sparse
    /// complements and residual sets can be derived without scanning the
    /// whole universe.
    pub fn live_vertices(&self) -> VertexSet {
        VertexSet::from_fn(self.n(), |v| {
            self.live_deg[v as usize] > 0 || self.loops[v as usize] > 0
        })
    }

    /// Materializes the overlay into a standalone [`Graph`] —
    /// bit-identical to applying every removal to the base graph via
    /// [`Graph::remove_edges`]. Used at audit points and in tests; the hot
    /// path never calls it.
    pub fn to_graph(&self) -> Graph {
        let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.m);
        for u in 0..self.n() as VertexId {
            for w in self.live_neighbors(u) {
                if u <= w {
                    edges.push((u, w));
                }
            }
        }
        let mut g = Graph::from_edges(self.n(), edges).expect("overlay ids in range");
        g.loops.copy_from_slice(&self.loops);
        g.total_loops = self.total_loops;
        g
    }
}

/// Iterator over a vertex's live neighbors: the tombstone-filtered base
/// CSR row merged on the fly with the sorted insert-overlay row. Both
/// inputs are ascending, so the merge is ascending; ties emit the base
/// copy first (parallel edges repeat either way).
pub struct LiveNeighbors<'a> {
    adj: &'a [VertexId],
    alive: &'a [bool],
    i: usize,
    extra: &'a [VertexId],
    j: usize,
}

impl Iterator for LiveNeighbors<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        while self.i < self.adj.len() && !self.alive[self.i] {
            self.i += 1;
        }
        let base = (self.i < self.adj.len()).then(|| self.adj[self.i]);
        let ins = (self.j < self.extra.len()).then(|| self.extra[self.j]);
        match (base, ins) {
            (Some(b), Some(e)) if b <= e => {
                self.i += 1;
                Some(b)
            }
            (_, Some(e)) => {
                self.j += 1;
                Some(e)
            }
            (Some(b), None) => {
                self.i += 1;
                Some(b)
            }
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn fresh_overlay_mirrors_base() {
        let g = c4();
        let w = WorkingGraph::new(&g);
        assert_eq!(w.n(), 4);
        assert_eq!(w.m(), 4);
        assert_eq!(w.total_volume(), g.total_volume());
        for v in 0..4 {
            assert_eq!(w.degree(v), g.degree(v));
            assert_eq!(
                w.live_neighbors(v).collect::<Vec<_>>(),
                g.neighbors(v).to_vec()
            );
        }
        assert_eq!(w.to_graph(), g);
    }

    #[test]
    fn compensated_removal_preserves_degrees() {
        let g = c4();
        let mut w = WorkingGraph::new(&g);
        assert_eq!(w.remove_edges([(1, 2), (3, 0)], true), 2);
        assert_eq!(w.m(), 2);
        for v in 0..4 {
            assert_eq!(w.degree(v), g.degree(v), "vertex {v}");
        }
        assert_eq!(w.total_volume(), g.total_volume());
        assert_eq!(w.to_graph(), g.remove_edges([(1, 2), (3, 0)], true));
    }

    #[test]
    fn uncompensated_removal_drops_volume() {
        let g = c4();
        let mut w = WorkingGraph::new(&g);
        w.remove_edges([(0, 1)], false);
        assert_eq!(w.degree(0), 1);
        assert_eq!(w.total_self_loops(), 0);
        assert!(!w.has_edge(0, 1));
        assert!(w.has_edge(1, 2));
    }

    #[test]
    fn parallel_edges_lose_one_copy_per_request() {
        let g = Graph::from_edges(2, [(0, 1), (0, 1), (0, 1)]).unwrap();
        let mut w = WorkingGraph::new(&g);
        assert_eq!(w.remove_edges([(0, 1)], false), 1);
        assert_eq!(w.m(), 2);
        assert!(w.has_edge(0, 1));
        assert_eq!(w.live_neighbors(0).count(), 2);
        assert_eq!(w.remove_edges([(0, 1), (0, 1)], false), 2);
        assert_eq!(w.m(), 0);
        assert!(!w.has_edge(0, 1));
    }

    #[test]
    fn absent_and_loop_requests_are_ignored() {
        let g = c4();
        let mut w = WorkingGraph::new(&g);
        assert_eq!(w.remove_edges([(0, 2), (1, 1), (9, 0), (0, 9)], true), 0);
        assert!(!w.has_edge(9, 0), "out-of-range pairs match nothing");
        assert_eq!(w.m(), 4);
        assert_eq!(w.total_self_loops(), 0);
        // Removing the same edge twice only works once.
        assert_eq!(w.remove_edges([(0, 1), (1, 0)], true), 1);
    }

    #[test]
    fn internal_edges_and_volume_read_through() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        let mut w = WorkingGraph::new(&g);
        let s = VertexSet::from_iter(4, [0u32, 1, 2]);
        assert_eq!(w.internal_edges(&s), 3);
        w.remove_edges([(1, 2)], true);
        assert_eq!(w.internal_edges(&s), 2);
        assert_eq!(w.volume(&s), g.volume(&s)); // compensated
    }

    #[test]
    fn insert_matches_rebuild() {
        let g = c4();
        let mut w = WorkingGraph::new(&g);
        assert_eq!(w.insert_edges([(0, 2), (1, 3)]), 2);
        assert_eq!(w.m(), 6);
        assert!(w.has_edge(0, 2) && w.has_edge(3, 1));
        assert_eq!(w.live_neighbors(0).collect::<Vec<_>>(), vec![1, 2, 3]);
        let rebuilt =
            Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)]).unwrap();
        assert_eq!(w.to_graph(), rebuilt);
    }

    #[test]
    fn reinsert_resurrects_dead_slots() {
        let g = c4();
        let mut w = WorkingGraph::new(&g);
        w.remove_edges([(1, 2)], false);
        assert_eq!(w.insert_edges([(2, 1)]), 1);
        assert_eq!(w.to_graph(), g, "delete-then-reinsert is the identity");
        // The copy went back into the base slots, not the insert rows.
        assert!(w.extra.iter().all(Vec::is_empty));
    }

    #[test]
    fn inserted_parallel_copies_and_loops() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut w = WorkingGraph::new(&g);
        assert_eq!(w.insert_edges([(0, 1), (1, 0), (1, 1)]), 3);
        assert_eq!(w.multiplicity(0, 1), 3);
        assert_eq!(w.multiplicity(1, 1), 1);
        assert_eq!(w.live_neighbors(0).collect::<Vec<_>>(), vec![1, 1, 1]);
        assert_eq!(w.degree(1), 4); // 3 endpoints + 1 loop
        assert_eq!(w.total_self_loops(), 1);
        // Deleting strips extra copies once the base slot is tombstoned.
        assert_eq!(w.remove_edges([(0, 1), (0, 1), (0, 1)], false), 3);
        assert_eq!(w.multiplicity(0, 1), 0);
        assert!(!w.has_edge(0, 1));
        assert!(w.has_edge(1, 1), "loop deletion is not requested here");
    }

    #[test]
    fn insert_ignores_out_of_range() {
        let g = c4();
        let mut w = WorkingGraph::new(&g);
        assert_eq!(w.insert_edges([(9, 0), (0, 9)]), 0);
        assert_eq!(w.m(), 4);
    }

    #[test]
    fn mixed_churn_tracks_rebuild() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let mut w = WorkingGraph::new(&g);
        w.remove_edges([(0, 1), (2, 3)], true);
        w.insert_edges([(0, 3), (1, 4), (0, 1)]);
        w.remove_edges([(1, 4)], true);
        // Final multiset: {12, 34, 40, 03, 01}; compensation loops from the
        // three removals land at 0, 1 (twice), 2, 3, and 4.
        let reference = Graph::from_edges(
            5,
            [
                (1, 2),
                (3, 4),
                (4, 0),
                (0, 3),
                (0, 1),
                (0, 0),
                (1, 1),
                (1, 1),
                (2, 2),
                (3, 3),
                (4, 4),
            ],
        )
        .unwrap();
        assert_eq!(w.to_graph(), reference);
        assert_eq!(w.m(), reference.m());
        assert_eq!(w.total_self_loops(), reference.total_self_loops());
    }

    #[test]
    fn live_vertices_shrink_only_without_compensation() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let mut w = WorkingGraph::new(&g);
        assert_eq!(w.live_vertices().iter().collect::<Vec<_>>(), vec![0, 1]);
        w.remove_edges([(0, 1)], false);
        assert!(w.live_vertices().is_empty());
        let mut w2 = WorkingGraph::new(&g);
        w2.remove_edges([(0, 1)], true);
        assert_eq!(w2.live_vertices().len(), 2, "loops keep vertices live");
    }
}
