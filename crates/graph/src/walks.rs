//! Lazy random walks and the truncation operator of Spielman–Teng.
//!
//! The walk matrix is `M = (A·D⁻¹ + I)/2`: with probability 1/2 stay put,
//! otherwise move along a uniformly random incident edge. **Self loops are
//! incident edges** — a walk that picks a loop stays where it is, which is
//! exactly why the decomposition's loop-compensation keeps walk behaviour
//! consistent after edge removals.
//!
//! [`WalkDistribution`] stores the probability vector `p` together with
//! the normalized masses `ρ(v) = p(v)/deg(v)` used everywhere in Nibble,
//! and supports the truncation `[p]_ε(v) = p(v)·1[p(v) ≥ 2ε·deg(v)]`.
//!
//! Representation: a dense mass vector plus a sorted support list, with a
//! double-buffered scratch vector for stepping. A step touches only the
//! support and its neighborhood (`O(Σ_{v ∈ supp} deg(v))`), and every
//! slot accumulates its contributions in ascending source order, so sums
//! are bit-for-bit deterministic. The previous `BTreeMap` representation
//! had the same asymptotics but an order of magnitude more constant cost
//! per touched edge — it dominated the measured decomposition's profile
//! once walks mix across a large component.

use crate::{Graph, VertexId};

/// A sparse probability distribution over vertices, tracked together with
/// the graph degrees so `ρ(v) = p(v)/deg(v)` is cheap.
///
/// # Example
///
/// ```
/// use graph::{Graph, walks::WalkDistribution};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
/// let mut p = WalkDistribution::dirac(&g, 1);
/// p.step(&g);
/// // After one lazy step: half stays at 1, a quarter at each neighbor.
/// assert!((p.mass(1) - 0.5).abs() < 1e-12);
/// assert!((p.mass(0) - 0.25).abs() < 1e-12);
/// assert!((p.total_mass() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone)]
pub struct WalkDistribution {
    /// Dense mass vector; slots outside [`WalkDistribution::support`] are
    /// zero. Grown lazily to the graph size on first use.
    dense: Vec<f64>,
    /// Sorted list of the slots that may hold non-zero mass.
    support: Vec<VertexId>,
    /// All-zero scratch buffer for the next step (double buffering).
    next: Vec<f64>,
    /// Scratch slot list for the next step's support.
    touched: Vec<VertexId>,
}

impl WalkDistribution {
    /// The Dirac distribution `χ_v` (all mass on `v`).
    ///
    /// # Panics
    ///
    /// Panics if `v >= g.n()`.
    pub fn dirac(g: &Graph, v: VertexId) -> Self {
        assert!((v as usize) < g.n(), "vertex {v} out of range");
        let mut dense = vec![0.0; g.n()];
        dense[v as usize] = 1.0;
        WalkDistribution {
            dense,
            support: vec![v],
            next: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// The degree distribution `ψ_S` restricted to a slice of vertices:
    /// `p(v) = deg(v)/Vol(S)` for `v ∈ S`.
    ///
    /// # Panics
    ///
    /// Panics if `vs` is empty or has zero volume.
    pub fn degree_distribution(g: &Graph, vs: &[VertexId]) -> Self {
        let vol: usize = vs.iter().map(|&v| g.degree(v)).sum();
        assert!(vol > 0, "degree distribution over zero-volume set");
        let mut dense = vec![0.0; g.n()];
        let mut support: Vec<VertexId> = vs.to_vec();
        support.sort_unstable();
        support.dedup();
        for &v in &support {
            dense[v as usize] = g.degree(v) as f64 / vol as f64;
        }
        WalkDistribution {
            dense,
            support,
            next: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// An empty (all-zero) distribution.
    pub fn zero() -> Self {
        WalkDistribution {
            dense: Vec::new(),
            support: Vec::new(),
            next: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// Mass at `v` (`p(v)`).
    pub fn mass(&self, v: VertexId) -> f64 {
        self.dense.get(v as usize).copied().unwrap_or(0.0)
    }

    /// Normalized mass `ρ(v) = p(v)/deg(v)`.
    pub fn rho(&self, g: &Graph, v: VertexId) -> f64 {
        let d = g.degree(v);
        if d == 0 {
            0.0
        } else {
            self.mass(v) / d as f64
        }
    }

    /// Total mass `‖p‖₁` (≤ 1 once truncation has happened).
    pub fn total_mass(&self) -> f64 {
        self.support.iter().map(|&v| self.dense[v as usize]).sum()
    }

    /// Number of vertices currently holding non-zero mass (the *support*).
    pub fn support_size(&self) -> usize {
        self.support.len()
    }

    /// Iterator over `(vertex, mass)` pairs of the support, unordered.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        self.support.iter().map(|&v| (v, self.dense[v as usize]))
    }

    /// The support sorted by decreasing `ρ(v) = p(v)/deg(v)`, ties broken by
    /// vertex id — the permutation `π̃_t` of the paper.
    pub fn support_by_rho(&self, g: &Graph) -> Vec<VertexId> {
        let mut keyed = Vec::new();
        let mut out = Vec::new();
        self.support_by_rho_into(g, &mut keyed, &mut out);
        out
    }

    /// [`WalkDistribution::support_by_rho`] into caller-provided buffers
    /// (`keyed` is the `(ρ, v)` sort scratch): the allocation-free form
    /// the sweep inner loop uses every step, and the single
    /// implementation of the π̃_t ordering.
    pub fn support_by_rho_into(
        &self,
        g: &Graph,
        keyed: &mut Vec<(f64, VertexId)>,
        out: &mut Vec<VertexId>,
    ) {
        keyed.clear();
        out.clear();
        keyed.extend(self.support.iter().map(|&v| (self.rho(g, v), v)));
        keyed.sort_by(|&(ra, a), &(rb, b)| {
            rb.partial_cmp(&ra)
                .expect("masses are finite")
                .then(a.cmp(&b))
        });
        out.extend(keyed.iter().map(|&(_, v)| v));
    }

    /// One lazy walk step: `p ← M·p` with `M = (A·D⁻¹ + I)/2`.
    ///
    /// Each self loop at `u` routes `p(u)/(2·deg(u))` back to `u`.
    /// Work is `O(Σ_{v ∈ supp} deg(v))` — the walk never touches vertices
    /// outside the frontier, matching the distributed implementation where a
    /// step is one CONGEST round.
    pub fn step(&mut self, g: &Graph) {
        let n = g.n();
        if self.dense.len() < n {
            self.dense.resize(n, 0.0);
        }
        if self.next.len() < n {
            self.next.resize(n, 0.0);
        }
        self.touched.clear();
        // Sources in ascending order, so each target slot accumulates its
        // contributions in ascending source order — deterministic sums.
        for idx in 0..self.support.len() {
            let u = self.support[idx];
            let p = self.dense[u as usize];
            if p == 0.0 {
                continue;
            }
            let deg = g.degree(u) as f64;
            if deg == 0.0 {
                // Isolated vertex keeps its mass.
                if self.next[u as usize] == 0.0 {
                    self.touched.push(u);
                }
                self.next[u as usize] += p;
                continue;
            }
            let stay = p / 2.0 + p / 2.0 * (g.self_loops(u) as f64 / deg);
            if self.next[u as usize] == 0.0 {
                self.touched.push(u);
            }
            self.next[u as usize] += stay;
            let share = p / (2.0 * deg);
            for &w in g.neighbors(u) {
                if self.next[w as usize] == 0.0 {
                    self.touched.push(w);
                }
                self.next[w as usize] += share;
            }
        }
        // Swap buffers: zero the old support slots first so the scratch
        // buffer comes back all-zero for the next step.
        for &v in &self.support {
            self.dense[v as usize] = 0.0;
        }
        std::mem::swap(&mut self.dense, &mut self.next);
        // Contributions are positive, so a slot is pushed exactly once —
        // unless an addition underflowed to zero; sort + dedup restores
        // the sorted-support invariant either way.
        self.touched.sort_unstable();
        self.touched.dedup();
        std::mem::swap(&mut self.support, &mut self.touched);
    }

    /// The truncation operator `[p]_ε`: zero out every `v` with
    /// `p(v) < 2·ε·deg(v)`. Returns the amount of mass dropped.
    pub fn truncate(&mut self, g: &Graph, eps: f64) -> f64 {
        let mut dropped = 0.0;
        let mut support = std::mem::take(&mut self.support);
        support.retain(|&v| {
            let p = self.dense[v as usize];
            if p >= 2.0 * eps * g.degree(v) as f64 {
                true
            } else {
                dropped += p;
                self.dense[v as usize] = 0.0;
                false
            }
        });
        self.support = support;
        dropped
    }

    /// Convenience: `t` steps of step-then-truncate, the sequence
    /// `p̃_t = [M p̃_{t−1}]_ε` from the paper, returning the distribution at
    /// every time `0..=t`.
    pub fn truncated_walk(g: &Graph, start: VertexId, eps: f64, t: usize) -> Vec<Self> {
        let mut out = Vec::with_capacity(t + 1);
        let mut p = WalkDistribution::dirac(g, start);
        // The paper applies truncation to every p̃_t including comparing
        // against the initial Dirac (which always survives truncation for
        // sensible ε since p(v) = 1 ≥ 2ε·deg(v)).
        out.push(p.clone());
        for _ in 0..t {
            p.step(g);
            p.truncate(g, eps);
            out.push(p.clone());
        }
        out
    }

    /// The stationary mass of `v`: `π(v) = deg(v)/Vol(V)`.
    pub fn stationary(g: &Graph, v: VertexId) -> f64 {
        g.degree(v) as f64 / g.total_volume() as f64
    }

    /// Total-variation distance from this distribution to stationarity:
    /// `½·Σ_v |p(v) − π(v)|`.
    pub fn tv_from_stationary(&self, g: &Graph) -> f64 {
        let mut acc = 0.0;
        let vol = g.total_volume() as f64;
        for v in 0..g.n() as VertexId {
            let pi = g.degree(v) as f64 / vol;
            acc += (self.mass(v) - pi).abs();
        }
        acc / 2.0
    }
}

impl PartialEq for WalkDistribution {
    /// Distributions are equal when they give every vertex the same mass —
    /// buffer capacities and explicit zeros are invisible.
    fn eq(&self, other: &Self) -> bool {
        let nonzero = |d: &WalkDistribution| {
            d.support
                .iter()
                .map(|&v| (v, d.dense[v as usize]))
                .filter(|&(_, m)| m != 0.0)
                .collect::<Vec<_>>()
        };
        nonzero(self) == nonzero(other)
    }
}

impl std::fmt::Debug for WalkDistribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WalkDistribution(|supp| = {}; ", self.support.len())?;
        f.debug_map().entries(self.iter().take(8)).finish()?;
        if self.support.len() > 8 {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn dirac_mass() {
        let g = gen::cycle(5).unwrap();
        let p = WalkDistribution::dirac(&g, 2);
        assert_eq!(p.mass(2), 1.0);
        assert_eq!(p.mass(0), 0.0);
        assert_eq!(p.support_size(), 1);
    }

    #[test]
    fn step_conserves_mass() {
        let g = gen::gnp(40, 0.2, 3).unwrap();
        let mut p = WalkDistribution::dirac(&g, 0);
        for _ in 0..20 {
            p.step(&g);
            assert!((p.total_mass() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn self_loops_keep_mass_in_place() {
        // Vertex 0 has 3 loops and one edge: stay prob = 1/2 + 1/2·(3/4) = 7/8.
        let g = Graph::from_edges(2, [(0, 1), (0, 0), (0, 0), (0, 0)]).unwrap();
        let mut p = WalkDistribution::dirac(&g, 0);
        p.step(&g);
        assert!((p.mass(0) - 7.0 / 8.0).abs() < 1e-12);
        assert!((p.mass(1) - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_vertex_traps_mass() {
        let g = Graph::from_edges(2, []).unwrap();
        let mut p = WalkDistribution::dirac(&g, 0);
        p.step(&g);
        assert_eq!(p.mass(0), 1.0);
    }

    #[test]
    fn truncation_drops_small_mass() {
        let g = gen::path(3).unwrap();
        let mut p = WalkDistribution::dirac(&g, 0);
        p.step(&g); // mass: 0 -> 1/2, 1 -> 1/2
                    // Thresholds 2·ε·deg: v0 (deg 1) -> 0.4 keeps its 0.5;
                    // v1 (deg 2) -> 0.8 drops its 0.5.
        let dropped = p.truncate(&g, 0.2);
        assert!((dropped - 0.5).abs() < 1e-12);
        assert_eq!(p.mass(1), 0.0);
        assert!((p.mass(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn truncated_is_pointwise_below_exact() {
        let g = gen::gnp(30, 0.3, 7).unwrap();
        let eps = 1e-3;
        let exact: Vec<WalkDistribution> = {
            let mut out = Vec::new();
            let mut p = WalkDistribution::dirac(&g, 0);
            out.push(p.clone());
            for _ in 0..10 {
                p.step(&g);
                out.push(p.clone());
            }
            out
        };
        let truncated = WalkDistribution::truncated_walk(&g, 0, eps, 10);
        for (pt, qt) in exact.iter().zip(&truncated) {
            for v in 0..g.n() as VertexId {
                assert!(
                    qt.mass(v) <= pt.mass(v) + 1e-12,
                    "truncated exceeded exact at {v}"
                );
            }
        }
    }

    #[test]
    fn stationary_is_fixed_point() {
        let g = gen::gnp(25, 0.4, 5).unwrap();
        let vs: Vec<VertexId> = (0..25).collect();
        let mut p = WalkDistribution::degree_distribution(&g, &vs);
        let before: Vec<f64> = (0..25).map(|v| p.mass(v)).collect();
        p.step(&g);
        for v in 0..25u32 {
            assert!((p.mass(v) - before[v as usize]).abs() < 1e-12);
        }
    }

    #[test]
    fn walk_converges_to_stationary_on_expander() {
        let g = gen::random_regular(64, 6, 2).unwrap();
        let mut p = WalkDistribution::dirac(&g, 0);
        for _ in 0..200 {
            p.step(&g);
        }
        assert!(p.tv_from_stationary(&g) < 1e-6);
    }

    #[test]
    fn support_by_rho_orders_descending() {
        let g = gen::path(5).unwrap();
        let mut p = WalkDistribution::dirac(&g, 2);
        p.step(&g);
        let order = p.support_by_rho(&g);
        let rhos: Vec<f64> = order.iter().map(|&v| p.rho(&g, v)).collect();
        for w in rhos.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(order[0], 2);
    }

    #[test]
    fn rho_symmetry_identity() {
        // ρ_t^v(u) == ρ_t^u(v) — the reversibility fact behind Lemma 3.
        let g = gen::gnp(20, 0.3, 13).unwrap();
        let t = 5;
        for (a, b) in [(0u32, 7u32), (3, 15), (2, 19)] {
            let mut pa = WalkDistribution::dirac(&g, a);
            let mut pb = WalkDistribution::dirac(&g, b);
            for _ in 0..t {
                pa.step(&g);
                pb.step(&g);
            }
            assert!(
                (pa.rho(&g, b) - pb.rho(&g, a)).abs() < 1e-12,
                "reversibility violated for ({a},{b})"
            );
        }
    }
}
