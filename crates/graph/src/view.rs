//! Subgraph extraction: the induced subgraph `G[S]` and the paper's
//! degree-preserving loop-augmented subgraph `G{S}`.
//!
//! `G{S}` is `G[S]` plus `deg_G(v) − deg_{G[S]}(v)` self loops at every
//! `v ∈ S`, so each vertex keeps the degree it had in the *original* graph.
//! The paper works with `G{S}` throughout because conductance statements
//! about pieces must be measured against original volumes; it always holds
//! that `Φ(G{S}) ≤ Φ(G[S])`.
//!
//! Extraction is generic over [`AdjacencyView`], so it reads through
//! either an immutable [`Graph`] or the decomposition's incremental
//! [`WorkingGraph`] overlay — tombstoned edges are filtered during the
//! single `O(Vol(S))` pass, never materialized into an intermediate copy.

use crate::working::WorkingGraph;
use crate::{Graph, VertexId, VertexSet};

/// Read-only adjacency access shared by [`Graph`] and the tombstone
/// overlay [`WorkingGraph`] — the surface subgraph extraction (and any
/// kernel that only walks neighborhoods) needs.
pub trait AdjacencyView {
    /// Number of vertices.
    fn view_n(&self) -> usize;
    /// `deg(v)` including self loops (each loop counts 1).
    fn view_degree(&self, v: VertexId) -> usize;
    /// Non-loop edge endpoints at `v` ([`WorkingGraph`]: live ones only).
    fn view_degree_without_loops(&self, v: VertexId) -> usize;
    /// Self loops at `v` ([`WorkingGraph`]: base plus compensation).
    fn view_self_loops(&self, v: VertexId) -> u32;
    /// Calls `f` for every (live) non-loop neighbor of `v`, in ascending
    /// order, parallel edges repeated.
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId));
}

impl AdjacencyView for Graph {
    fn view_n(&self) -> usize {
        self.n()
    }

    fn view_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    fn view_degree_without_loops(&self, v: VertexId) -> usize {
        self.degree_without_loops(v)
    }

    fn view_self_loops(&self, v: VertexId) -> u32 {
        self.self_loops(v)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        for &w in self.neighbors(v) {
            f(w);
        }
    }
}

impl AdjacencyView for WorkingGraph {
    fn view_n(&self) -> usize {
        self.n()
    }

    fn view_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    fn view_degree_without_loops(&self, v: VertexId) -> usize {
        self.degree_without_loops(v)
    }

    fn view_self_loops(&self, v: VertexId) -> u32 {
        self.self_loops(v)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        for w in self.live_neighbors(v) {
            f(w);
        }
    }
}

/// A subgraph together with the mapping back to the parent graph's ids.
///
/// Vertices of the subgraph are relabeled densely to `0..s.len()`;
/// [`Subgraph::to_parent`] and [`Subgraph::to_local`] translate ids (the
/// member list is sorted, so the inverse map is a binary search — no
/// per-subgraph hash table).
///
/// # Example
///
/// ```
/// use graph::{Graph, VertexSet};
/// use graph::view::Subgraph;
///
/// let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
/// let s = VertexSet::from_iter(5, [1u32, 2, 3]);
/// let sub = Subgraph::loop_augmented(&g, &s); // G{S}
/// // Degrees are preserved: vertex 1 had degree 2 in G.
/// let local = sub.to_local(1).unwrap();
/// assert_eq!(sub.graph().degree(local), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Subgraph {
    graph: Graph,
    /// `orig[i]` is the parent id of local vertex `i` (sorted ascending).
    orig: Vec<VertexId>,
}

impl Subgraph {
    /// The plain induced subgraph `G[S]`: edges with both endpoints in `s`,
    /// plus any self loops the source already had at members of `s`.
    /// Accepts a [`Graph`] or a [`WorkingGraph`] overlay.
    pub fn induced<A: AdjacencyView + ?Sized>(g: &A, s: &VertexSet) -> Subgraph {
        Self::build(g, s, false)
    }

    /// The loop-augmented subgraph `G{S}`: `G[S]` plus enough self loops at
    /// each `v ∈ S` to preserve `deg(v)` as the source reports it.
    /// Accepts a [`Graph`] or a [`WorkingGraph`] overlay.
    pub fn loop_augmented<A: AdjacencyView + ?Sized>(g: &A, s: &VertexSet) -> Subgraph {
        Self::build(g, s, true)
    }

    fn build<A: AdjacencyView + ?Sized>(g: &A, s: &VertexSet, augment: bool) -> Subgraph {
        let orig: Vec<VertexId> = s.iter().collect();
        let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
        for (idx, &u) in orig.iter().enumerate() {
            let lu = idx as VertexId;
            let mut in_set = 0usize;
            g.for_each_neighbor(u, &mut |w| {
                if s.contains(w) {
                    in_set += 1;
                    // Each undirected in-set edge is pushed once, from its
                    // larger endpoint (both directions are visited).
                    if w < u {
                        let lw = orig.binary_search(&w).expect("member of s") as VertexId;
                        edges.push((lu, lw));
                    }
                }
            });
            // Loops the source already has at u, plus — when augmenting —
            // one per neighbor that fell outside `s`, so deg is preserved.
            // Batched here instead of per-vertex `with_extra_loops` calls,
            // which each cloned the whole subgraph.
            let extra = if augment {
                g.view_degree_without_loops(u) - in_set
            } else {
                0
            };
            for _ in 0..(g.view_self_loops(u) as usize + extra) {
                edges.push((lu, lu));
            }
        }
        let graph = Graph::from_edges(orig.len(), edges).expect("local ids in range");
        Subgraph { graph, orig }
    }

    /// The subgraph itself (vertices relabeled to `0..len`).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of vertices in the subgraph.
    pub fn len(&self) -> usize {
        self.orig.len()
    }

    /// Whether the subgraph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.orig.is_empty()
    }

    /// Parent id of a local vertex.
    ///
    /// Returns `None` when `local` is out of range.
    pub fn to_parent(&self, local: VertexId) -> Option<VertexId> {
        self.orig.get(local as usize).copied()
    }

    /// Local id of a parent vertex, if it is in the subgraph
    /// (`O(log |S|)` — the sorted member list is its own index).
    pub fn to_local(&self, parent: VertexId) -> Option<VertexId> {
        self.orig.binary_search(&parent).ok().map(|i| i as VertexId)
    }

    /// Maps a local vertex set back to parent ids.
    ///
    /// # Panics
    ///
    /// Panics if `local` contains ids outside the subgraph (impossible for
    /// sets produced against [`Subgraph::graph`]).
    pub fn set_to_parent(&self, local: &VertexSet, parent_n: usize) -> VertexSet {
        VertexSet::from_iter(parent_n, local.iter().map(|l| self.orig[l as usize]))
    }

    /// The parent ids of all subgraph vertices, in local order.
    pub fn parent_ids(&self) -> &[VertexId] {
        &self.orig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c5() -> Graph {
        Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap()
    }

    #[test]
    fn induced_drops_crossing_edges() {
        let g = c5();
        let s = VertexSet::from_iter(5, [0u32, 1, 2]);
        let sub = Subgraph::induced(&g, &s);
        assert_eq!(sub.graph().n(), 3);
        assert_eq!(sub.graph().m(), 2); // 0-1, 1-2 survive
        assert_eq!(sub.graph().total_self_loops(), 0);
    }

    #[test]
    fn loop_augmented_preserves_degrees() {
        let g = c5();
        let s = VertexSet::from_iter(5, [0u32, 1, 2]);
        let sub = Subgraph::loop_augmented(&g, &s);
        for &parent in sub.parent_ids() {
            let local = sub.to_local(parent).unwrap();
            assert_eq!(
                sub.graph().degree(local),
                g.degree(parent),
                "vertex {parent}"
            );
        }
        // Boundary endpoints 0 and 2 each gained one loop.
        assert_eq!(sub.graph().total_self_loops(), 2);
    }

    #[test]
    fn extraction_through_overlay_matches_rebuild() {
        // Remove edges on the overlay and on a from-scratch rebuild; the
        // extracted subgraphs must be identical.
        let g = c5();
        let mut w = WorkingGraph::new(&g);
        w.remove_edges([(1, 2), (4, 0)], true);
        let rebuilt = g.remove_edges([(1, 2), (4, 0)], true);
        let s = VertexSet::from_iter(5, [0u32, 1, 2, 4]);
        for augment in [false, true] {
            let via_overlay = Subgraph::build(&w, &s, augment);
            let via_graph = Subgraph::build(&rebuilt, &s, augment);
            assert_eq!(via_overlay.graph(), via_graph.graph(), "augment {augment}");
            assert_eq!(via_overlay.parent_ids(), via_graph.parent_ids());
        }
        // And the augmented view preserves the original degrees.
        let aug = Subgraph::loop_augmented(&w, &s);
        for &p in aug.parent_ids() {
            let l = aug.to_local(p).unwrap();
            assert_eq!(aug.graph().degree(l), g.degree(p));
        }
    }

    #[test]
    fn loop_augmented_conductance_at_most_induced() {
        // Φ(G{S}) ≤ Φ(G[S]) — the paper's observation. Check on a set where
        // loops make the denominator strictly larger.
        let g = c5();
        let s = VertexSet::from_iter(5, [0u32, 1, 2, 3]);
        let induced = Subgraph::induced(&g, &s);
        let augmented = Subgraph::loop_augmented(&g, &s);
        let t_ind = VertexSet::from_iter(induced.graph().n(), [induced.to_local(0).unwrap()]);
        let t_aug = VertexSet::from_iter(augmented.graph().n(), [augmented.to_local(0).unwrap()]);
        let phi_ind = induced.graph().conductance(&t_ind).unwrap();
        let phi_aug = augmented.graph().conductance(&t_aug).unwrap();
        assert!(phi_aug <= phi_ind + 1e-12);
    }

    #[test]
    fn id_mapping_roundtrips() {
        let g = c5();
        let s = VertexSet::from_iter(5, [1u32, 3, 4]);
        let sub = Subgraph::induced(&g, &s);
        for &p in sub.parent_ids() {
            let l = sub.to_local(p).unwrap();
            assert_eq!(sub.to_parent(l), Some(p));
        }
        assert_eq!(sub.to_local(0), None);
        assert_eq!(sub.to_parent(99), None);
    }

    #[test]
    fn set_to_parent_translates() {
        let g = c5();
        let s = VertexSet::from_iter(5, [1u32, 3, 4]);
        let sub = Subgraph::induced(&g, &s);
        let local = VertexSet::from_iter(3, [0u32, 2]);
        let parent = sub.set_to_parent(&local, 5);
        assert_eq!(parent.iter().collect::<Vec<_>>(), vec![1, 4]);
    }

    #[test]
    fn existing_loops_survive_extraction() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (1, 1)]).unwrap();
        let s = VertexSet::from_iter(3, [0u32, 1]);
        let sub = Subgraph::induced(&g, &s);
        let l1 = sub.to_local(1).unwrap();
        assert_eq!(sub.graph().self_loops(l1), 1);
    }

    #[test]
    fn parallel_edges_survive_extraction() {
        let g = Graph::from_edges(3, [(0, 1), (0, 1), (1, 2)]).unwrap();
        let s = VertexSet::from_iter(3, [0u32, 1]);
        let sub = Subgraph::induced(&g, &s);
        assert_eq!(sub.graph().m(), 2, "both parallel copies kept");
    }

    #[test]
    fn empty_subgraph() {
        let g = c5();
        let sub = Subgraph::induced(&g, &VertexSet::empty(5));
        assert!(sub.is_empty());
        assert_eq!(sub.graph().n(), 0);
    }
}
