//! Subgraph extraction: the induced subgraph `G[S]` and the paper's
//! degree-preserving loop-augmented subgraph `G{S}`.
//!
//! `G{S}` is `G[S]` plus `deg_G(v) − deg_{G[S]}(v)` self loops at every
//! `v ∈ S`, so each vertex keeps the degree it had in the *original* graph.
//! The paper works with `G{S}` throughout because conductance statements
//! about pieces must be measured against original volumes; it always holds
//! that `Φ(G{S}) ≤ Φ(G[S])`.

use crate::{Graph, VertexId, VertexSet};

/// A subgraph together with the mapping back to the parent graph's ids.
///
/// Vertices of the subgraph are relabeled densely to `0..s.len()`;
/// [`Subgraph::to_parent`] and [`Subgraph::to_local`] translate ids.
///
/// # Example
///
/// ```
/// use graph::{Graph, VertexSet};
/// use graph::view::Subgraph;
///
/// let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
/// let s = VertexSet::from_iter(5, [1u32, 2, 3]);
/// let sub = Subgraph::loop_augmented(&g, &s); // G{S}
/// // Degrees are preserved: vertex 1 had degree 2 in G.
/// let local = sub.to_local(1).unwrap();
/// assert_eq!(sub.graph().degree(local), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Subgraph {
    graph: Graph,
    /// `orig[i]` is the parent id of local vertex `i`.
    orig: Vec<VertexId>,
    /// Sparse inverse map: parent id -> local id.
    inverse: std::collections::HashMap<VertexId, VertexId>,
}

impl Subgraph {
    /// The plain induced subgraph `G[S]`: edges with both endpoints in `s`,
    /// plus any self loops `G` already had at members of `s`.
    pub fn induced(g: &Graph, s: &VertexSet) -> Subgraph {
        Self::build(g, s, false)
    }

    /// The loop-augmented subgraph `G{S}`: `G[S]` plus enough self loops at
    /// each `v ∈ S` to preserve `deg_G(v)`.
    pub fn loop_augmented(g: &Graph, s: &VertexSet) -> Subgraph {
        Self::build(g, s, true)
    }

    fn build(g: &Graph, s: &VertexSet, augment: bool) -> Subgraph {
        let orig: Vec<VertexId> = s.iter().collect();
        let inverse: std::collections::HashMap<VertexId, VertexId> = orig
            .iter()
            .enumerate()
            .map(|(local, &parent)| (parent, local as VertexId))
            .collect();
        let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
        for (idx, &u) in orig.iter().enumerate() {
            let lu = idx as VertexId;
            for &w in g.neighbors(u) {
                if w > u || !s.contains(w) {
                    continue;
                }
                if let Some(&lw) = inverse.get(&w) {
                    edges.push((lu, lw));
                }
            }
            // Loops G already has at u.
            for _ in 0..g.self_loops(u) {
                edges.push((lu, lu));
            }
        }
        let mut sub = Graph::from_edges(orig.len(), edges).expect("local ids in range");
        if augment {
            for (idx, &u) in orig.iter().enumerate() {
                let lu = idx as VertexId;
                let missing = g.degree(u).saturating_sub(sub.degree(lu));
                if missing > 0 {
                    sub = sub
                        .with_extra_loops(lu, missing as u32)
                        .expect("local id in range");
                }
            }
        }
        Subgraph {
            graph: sub,
            orig,
            inverse,
        }
    }

    /// The subgraph itself (vertices relabeled to `0..len`).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of vertices in the subgraph.
    pub fn len(&self) -> usize {
        self.orig.len()
    }

    /// Whether the subgraph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.orig.is_empty()
    }

    /// Parent id of a local vertex.
    ///
    /// Returns `None` when `local` is out of range.
    pub fn to_parent(&self, local: VertexId) -> Option<VertexId> {
        self.orig.get(local as usize).copied()
    }

    /// Local id of a parent vertex, if it is in the subgraph.
    pub fn to_local(&self, parent: VertexId) -> Option<VertexId> {
        self.inverse.get(&parent).copied()
    }

    /// Maps a local vertex set back to parent ids.
    ///
    /// # Panics
    ///
    /// Panics if `local` contains ids outside the subgraph (impossible for
    /// sets produced against [`Subgraph::graph`]).
    pub fn set_to_parent(&self, local: &VertexSet, parent_n: usize) -> VertexSet {
        VertexSet::from_iter(parent_n, local.iter().map(|l| self.orig[l as usize]))
    }

    /// The parent ids of all subgraph vertices, in local order.
    pub fn parent_ids(&self) -> &[VertexId] {
        &self.orig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c5() -> Graph {
        Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap()
    }

    #[test]
    fn induced_drops_crossing_edges() {
        let g = c5();
        let s = VertexSet::from_iter(5, [0u32, 1, 2]);
        let sub = Subgraph::induced(&g, &s);
        assert_eq!(sub.graph().n(), 3);
        assert_eq!(sub.graph().m(), 2); // 0-1, 1-2 survive
        assert_eq!(sub.graph().total_self_loops(), 0);
    }

    #[test]
    fn loop_augmented_preserves_degrees() {
        let g = c5();
        let s = VertexSet::from_iter(5, [0u32, 1, 2]);
        let sub = Subgraph::loop_augmented(&g, &s);
        for &parent in sub.parent_ids() {
            let local = sub.to_local(parent).unwrap();
            assert_eq!(
                sub.graph().degree(local),
                g.degree(parent),
                "vertex {parent}"
            );
        }
        // Boundary endpoints 0 and 2 each gained one loop.
        assert_eq!(sub.graph().total_self_loops(), 2);
    }

    #[test]
    fn loop_augmented_conductance_at_most_induced() {
        // Φ(G{S}) ≤ Φ(G[S]) — the paper's observation. Check on a set where
        // loops make the denominator strictly larger.
        let g = c5();
        let s = VertexSet::from_iter(5, [0u32, 1, 2, 3]);
        let induced = Subgraph::induced(&g, &s);
        let augmented = Subgraph::loop_augmented(&g, &s);
        let t_ind = VertexSet::from_iter(induced.graph().n(), [induced.to_local(0).unwrap()]);
        let t_aug = VertexSet::from_iter(augmented.graph().n(), [augmented.to_local(0).unwrap()]);
        let phi_ind = induced.graph().conductance(&t_ind).unwrap();
        let phi_aug = augmented.graph().conductance(&t_aug).unwrap();
        assert!(phi_aug <= phi_ind + 1e-12);
    }

    #[test]
    fn id_mapping_roundtrips() {
        let g = c5();
        let s = VertexSet::from_iter(5, [1u32, 3, 4]);
        let sub = Subgraph::induced(&g, &s);
        for &p in sub.parent_ids() {
            let l = sub.to_local(p).unwrap();
            assert_eq!(sub.to_parent(l), Some(p));
        }
        assert_eq!(sub.to_local(0), None);
        assert_eq!(sub.to_parent(99), None);
    }

    #[test]
    fn set_to_parent_translates() {
        let g = c5();
        let s = VertexSet::from_iter(5, [1u32, 3, 4]);
        let sub = Subgraph::induced(&g, &s);
        let local = VertexSet::from_iter(3, [0u32, 2]);
        let parent = sub.set_to_parent(&local, 5);
        assert_eq!(parent.iter().collect::<Vec<_>>(), vec![1, 4]);
    }

    #[test]
    fn existing_loops_survive_extraction() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (1, 1)]).unwrap();
        let s = VertexSet::from_iter(3, [0u32, 1]);
        let sub = Subgraph::induced(&g, &s);
        let l1 = sub.to_local(1).unwrap();
        assert_eq!(sub.graph().self_loops(l1), 1);
    }

    #[test]
    fn empty_subgraph() {
        let g = c5();
        let sub = Subgraph::induced(&g, &VertexSet::empty(5));
        assert!(sub.is_empty());
        assert_eq!(sub.graph().n(), 0);
    }
}
