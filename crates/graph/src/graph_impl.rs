//! The core [`Graph`] type: an immutable undirected multigraph in CSR form
//! with explicit self-loop bookkeeping.

use crate::cut::VertexSet;
use crate::{GraphError, Result, VertexId};

/// An undirected multigraph in compressed sparse row (CSR) form.
///
/// Self loops are stored separately from ordinary edges because the paper's
/// algorithms add a self loop at both endpoints of every removed edge so that
/// **degrees never change**. Each self loop contributes exactly 1 to
/// `deg(v)` (the convention of Spielman–Srivastava adopted by the paper).
///
/// The adjacency list of every vertex is sorted, which makes
/// [`Graph::has_edge`] logarithmic and supports merge-based triangle
/// enumeration downstream.
///
/// # Example
///
/// ```
/// use graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// assert_eq!(g.degree(0), 2);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR offsets; `adj[offsets[v]..offsets[v + 1]]` are `v`'s neighbors.
    /// Crate-visible so [`crate::working::WorkingGraph`] can snapshot the
    /// CSR without re-deriving it edge by edge.
    pub(crate) offsets: Vec<usize>,
    /// Flattened sorted neighbor lists (self loops excluded).
    pub(crate) adj: Vec<VertexId>,
    /// Number of self loops at each vertex (each counts 1 toward the degree).
    pub(crate) loops: Vec<u32>,
    /// Number of non-loop undirected edges (with multiplicity).
    pub(crate) m: usize,
    /// Total number of self loops in the graph.
    pub(crate) total_loops: usize,
}

impl Graph {
    /// Builds a graph from an edge list over vertices `0..n`.
    ///
    /// Edges of the form `(v, v)` become self loops. Parallel edges are kept
    /// (the type is a multigraph).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`.
    ///
    /// # Example
    ///
    /// ```
    /// use graph::Graph;
    /// let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 2)]).unwrap();
    /// assert_eq!(g.m(), 2);
    /// assert_eq!(g.self_loops(2), 1);
    /// assert_eq!(g.degree(2), 2); // one real edge + one loop
    /// ```
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut loops = vec![0u32; n];
        let mut deg = vec![0usize; n];
        let mut plain: Vec<(VertexId, VertexId)> = Vec::new();
        for (u, v) in edges {
            check_vertex(u, n)?;
            check_vertex(v, n)?;
            if u == v {
                loops[u as usize] += 1;
            } else {
                deg[u as usize] += 1;
                deg[v as usize] += 1;
                plain.push((u, v));
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut adj = vec![0 as VertexId; acc];
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        for &(u, v) in &plain {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        let total_loops = loops.iter().map(|&l| l as usize).sum();
        Ok(Graph {
            offsets,
            adj,
            loops,
            m: plain.len(),
            total_loops,
        })
    }

    /// Builds a graph from per-chunk edge lists, finalizing the CSR rows
    /// **in parallel** — the constructor the large-graph generators in
    /// [`crate::gen::scale`] feed (they produce one edge list per vertex
    /// chunk). Semantically identical to concatenating the chunks and
    /// calling [`Graph::from_edges`], but the dominant cost — sorting
    /// every adjacency row — runs one row per parallel task, so
    /// million-edge graphs finalize at memory speed on multicore hosts.
    /// Degree counting and the scatter pass stay sequential (they are
    /// cheap linear sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`.
    pub fn from_edge_chunks(n: usize, chunks: &[Vec<(VertexId, VertexId)>]) -> Result<Self> {
        use rayon::prelude::*;

        let mut loops = vec![0u32; n];
        let mut deg = vec![0usize; n];
        let mut m = 0usize;
        for chunk in chunks {
            for &(u, v) in chunk {
                check_vertex(u, n)?;
                check_vertex(v, n)?;
                if u == v {
                    loops[u as usize] += 1;
                } else {
                    deg[u as usize] += 1;
                    deg[v as usize] += 1;
                    m += 1;
                }
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut adj = vec![0 as VertexId; acc];
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        for chunk in chunks {
            for &(u, v) in chunk {
                if u != v {
                    adj[cursor[u as usize]] = v;
                    cursor[u as usize] += 1;
                    adj[cursor[v as usize]] = u;
                    cursor[v as usize] += 1;
                }
            }
        }
        // Parallel row sort: slice the flat adjacency into per-vertex
        // rows (safe disjoint splits) and sort each independently.
        let mut rows: Vec<&mut [VertexId]> = Vec::with_capacity(n);
        let mut rest: &mut [VertexId] = &mut adj;
        for v in 0..n {
            let (row, tail) = rest.split_at_mut(offsets[v + 1] - offsets[v]);
            rows.push(row);
            rest = tail;
        }
        rows.par_iter_mut().for_each(|row| row.sort_unstable());
        let total_loops = loops.iter().map(|&l| l as usize).sum();
        Ok(Graph {
            offsets,
            adj,
            loops,
            m,
            total_loops,
        })
    }

    /// Builds a graph directly from pre-assembled CSR arrays, validating
    /// every invariant the accessors rely on. This is the trust boundary
    /// for adjacency data that arrives from **outside** the type system —
    /// e.g. the on-disk CSR files of the `storage` crate — so the checks
    /// are exhaustive rather than debug-only:
    ///
    /// * `offsets` is non-empty, starts at 0, is monotone, and ends at
    ///   `adj.len()`;
    /// * `loops.len() == n`;
    /// * every neighbor id is `< n` and no row contains its own vertex
    ///   (self loops live in `loops`, never in `adj`);
    /// * every row is sorted ascending;
    /// * the adjacency is **symmetric with multiplicity**: `w` appears in
    ///   row `u` exactly as often as `u` appears in row `w`.
    ///
    /// The symmetry pass costs `O(m log Δ)` on top of the `O(n + m)`
    /// structural sweep.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] naming the violated invariant.
    ///
    /// # Example
    ///
    /// ```
    /// use graph::Graph;
    ///
    /// // A triangle, in raw CSR form.
    /// let g = Graph::from_csr_parts(
    ///     vec![0, 2, 4, 6],
    ///     vec![1, 2, 0, 2, 0, 1],
    ///     vec![0, 0, 0],
    /// )
    /// .unwrap();
    /// assert_eq!(g, Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap());
    ///
    /// // Asymmetric adjacency is rejected.
    /// assert!(Graph::from_csr_parts(vec![0, 1, 1], vec![1], vec![0, 0]).is_err());
    /// ```
    pub fn from_csr_parts(
        offsets: Vec<usize>,
        adj: Vec<VertexId>,
        loops: Vec<u32>,
    ) -> Result<Self> {
        let invalid = |reason: String| Err(GraphError::InvalidCsr { reason });
        if offsets.is_empty() {
            return invalid("offsets must contain at least the terminal entry".to_string());
        }
        let n = offsets.len() - 1;
        if offsets[0] != 0 {
            return invalid(format!("offsets[0] = {} (want 0)", offsets[0]));
        }
        if offsets[n] != adj.len() {
            return invalid(format!(
                "offsets end at {} but adj holds {} entries",
                offsets[n],
                adj.len()
            ));
        }
        if loops.len() != n {
            return invalid(format!(
                "loops has {} entries for {n} vertices",
                loops.len()
            ));
        }
        for v in 0..n {
            if offsets[v + 1] < offsets[v] {
                return invalid(format!("offsets decrease at vertex {v}"));
            }
            let row = &adj[offsets[v]..offsets[v + 1]];
            let mut prev: Option<VertexId> = None;
            for &w in row {
                if (w as usize) >= n {
                    return invalid(format!("neighbor {w} of vertex {v} out of range"));
                }
                if (w as usize) == v {
                    return invalid(format!(
                        "self loop {v} stored in adj (self loops belong in the loops array)"
                    ));
                }
                if prev.is_some_and(|p| w < p) {
                    return invalid(format!("row of vertex {v} not sorted"));
                }
                prev = Some(w);
            }
        }
        // Symmetry with multiplicity: walk each row in runs of equal
        // neighbors and compare against the run of `v` inside that
        // neighbor's (sorted) row. Checking only u < w visits each
        // undirected pair once from both sides' perspective.
        let run_count = |row: &[VertexId], x: VertexId| -> usize {
            let start = row.partition_point(|&y| y < x);
            row[start..].iter().take_while(|&&y| y == x).count()
        };
        for u in 0..n {
            let row = &adj[offsets[u]..offsets[u + 1]];
            let mut i = 0;
            while i < row.len() {
                let w = row[i];
                let mut j = i + 1;
                while j < row.len() && row[j] == w {
                    j += 1;
                }
                if (u as VertexId) < w {
                    let back = &adj[offsets[w as usize]..offsets[w as usize + 1]];
                    let reverse = run_count(back, u as VertexId);
                    if reverse != j - i {
                        return invalid(format!(
                            "asymmetric adjacency: {w} appears {}× in row {u} but {u} appears {reverse}× in row {w}",
                            j - i
                        ));
                    }
                }
                i = j;
            }
        }
        let twice_m = adj.len();
        if twice_m % 2 != 0 {
            return invalid(format!("adj holds {twice_m} entries (must be even)"));
        }
        let total_loops = loops.iter().map(|&l| l as usize).sum();
        Ok(Graph {
            offsets,
            adj,
            loops,
            m: twice_m / 2,
            total_loops,
        })
    }

    /// The raw CSR arrays: `(offsets, adj, loops)`. The inverse of
    /// [`Graph::from_csr_parts`] — what a serializer needs to write the
    /// graph without re-deriving the layout edge by edge.
    pub fn csr_slices(&self) -> (&[usize], &[VertexId], &[u32]) {
        (&self.offsets, &self.adj, &self.loops)
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of non-loop undirected edges (with multiplicity).
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total number of self loops across all vertices.
    #[inline]
    pub fn total_self_loops(&self) -> usize {
        self.total_loops
    }

    /// Degree of `v`: incident non-loop edge endpoints plus self loops
    /// (each loop counts 1, per the paper's convention).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n` (degree lookups are on the hot path; use
    /// [`Graph::n`] to validate externally supplied ids).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) + self.loops[v] as usize
    }

    /// Number of non-loop edge endpoints at `v` (i.e. `|N(v)|` with
    /// multiplicity, loops excluded).
    #[inline]
    pub fn degree_without_loops(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Number of self loops at `v`.
    #[inline]
    pub fn self_loops(&self, v: VertexId) -> u32 {
        self.loops[v as usize]
    }

    /// `Vol(V) = Σ_v deg(v) = 2·m + total self loops`.
    #[inline]
    pub fn total_volume(&self) -> usize {
        2 * self.m + self.total_loops
    }

    /// Sorted slice of `v`'s neighbors (self loops excluded).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Iterator over `v`'s neighbors (self loops excluded).
    pub fn neighbor_iter(&self, v: VertexId) -> NeighborIter<'_> {
        NeighborIter {
            inner: self.neighbors(v).iter(),
        }
    }

    /// Whether the non-loop edge `{u, v}` is present (any multiplicity).
    ///
    /// Runs in `O(log deg(u))`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return self.loops[u as usize] > 0;
        }
        // Search from the lower-degree endpoint.
        let (a, b) = if self.degree_without_loops(u) <= self.degree_without_loops(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over every non-loop undirected edge once, as `(u, v)` with
    /// `u < v` for simple edges (parallel edges repeat).
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            g: self,
            v: 0,
            idx: 0,
        }
    }

    /// Volume of a vertex set: `Vol(S) = Σ_{v ∈ S} deg(v)`.
    pub fn volume(&self, s: &VertexSet) -> usize {
        s.iter().map(|v| self.degree(v)).sum()
    }

    /// `|∂(S)|`: the number of non-loop edges with exactly one endpoint in
    /// `S`. Self loops never cross a cut.
    pub fn boundary(&self, s: &VertexSet) -> usize {
        let mut count = 0usize;
        for u in s.iter() {
            for &w in self.neighbors(u) {
                if !s.contains(w) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Conductance `Φ(S) = |∂(S)| / min{Vol(S), Vol(V \ S)}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ZeroVolumeSide`] if either side has volume 0.
    pub fn conductance(&self, s: &VertexSet) -> Result<f64> {
        let vol_s = self.volume(s);
        let vol_rest = self.total_volume() - vol_s;
        if vol_s == 0 || vol_rest == 0 {
            return Err(GraphError::ZeroVolumeSide);
        }
        Ok(self.boundary(s) as f64 / vol_s.min(vol_rest) as f64)
    }

    /// Balance `bal(S) = min{Vol(S), Vol(S̄)} / Vol(V)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] if the graph has zero volume.
    pub fn balance(&self, s: &VertexSet) -> Result<f64> {
        let total = self.total_volume();
        if total == 0 {
            return Err(GraphError::Empty {
                what: "graph volume",
            });
        }
        let vol_s = self.volume(s);
        let vol_rest = total - vol_s;
        Ok(vol_s.min(vol_rest) as f64 / total as f64)
    }

    /// The edges of `E(S, V∖S)`, each reported once as `(inside, outside)`.
    pub fn cut_edges(&self, s: &VertexSet) -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::new();
        for u in s.iter() {
            for &w in self.neighbors(u) {
                if !s.contains(w) {
                    out.push((u, w));
                }
            }
        }
        out
    }

    /// Number of edges with **both** endpoints in `S` (`|E(S)|`), loops at
    /// members of `S` excluded.
    pub fn internal_edges(&self, s: &VertexSet) -> usize {
        let mut twice = 0usize;
        for u in s.iter() {
            for &w in self.neighbors(u) {
                if s.contains(w) {
                    twice += 1;
                }
            }
        }
        twice / 2
    }

    /// Returns a new graph with the given non-loop edges removed.
    ///
    /// When `compensate_with_loops` is true, each removed edge `{u, v}` adds
    /// one self loop at `u` and one at `v`, exactly as the paper's
    /// decomposition does (`Remove-1/2/3`), so every vertex degree is
    /// preserved.
    ///
    /// Edges listed but not present are ignored; if an edge has multiplicity
    /// `c` and is listed once, only one copy is removed.
    ///
    /// # Example
    ///
    /// ```
    /// use graph::Graph;
    /// let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
    /// let h = g.remove_edges([(0, 1)], true);
    /// assert_eq!(h.m(), 1);
    /// assert_eq!(h.degree(0), g.degree(0));
    /// assert_eq!(h.degree(1), g.degree(1));
    /// assert_eq!(h.self_loops(0), 1);
    /// ```
    pub fn remove_edges<I>(&self, edges: I, compensate_with_loops: bool) -> Graph
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let n = self.n();
        // Count removal requests per normalized edge.
        let mut to_remove: std::collections::HashMap<(VertexId, VertexId), usize> =
            std::collections::HashMap::new();
        for (u, v) in edges {
            let key = if u <= v { (u, v) } else { (v, u) };
            *to_remove.entry(key).or_insert(0) += 1;
        }
        let mut loops = self.loops.clone();
        let mut kept: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.m);
        for (u, v) in self.edges() {
            let key = if u <= v { (u, v) } else { (v, u) };
            match to_remove.get_mut(&key) {
                Some(c) if *c > 0 => {
                    *c -= 1;
                    if compensate_with_loops {
                        loops[u as usize] += 1;
                        loops[v as usize] += 1;
                    }
                }
                _ => kept.push((u, v)),
            }
        }
        let mut g = Graph::from_edges(n, kept).expect("kept edges are in range");
        g.loops.copy_from_slice(&loops);
        g.total_loops = loops.iter().map(|&l| l as usize).sum();
        g
    }

    /// Returns a copy with `extra` additional self loops at `v`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if `v >= n`.
    pub fn with_extra_loops(&self, v: VertexId, extra: u32) -> Result<Graph> {
        check_vertex(v, self.n())?;
        let mut g = self.clone();
        g.loops[v as usize] += extra;
        g.total_loops += extra as usize;
        Ok(g)
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree over all vertices (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        (0..self.n() as VertexId)
            .map(|v| self.degree(v))
            .min()
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n())
            .field("m", &self.m)
            .field("self_loops", &self.total_loops)
            .finish()
    }
}

fn check_vertex(v: VertexId, n: usize) -> Result<()> {
    if (v as usize) < n {
        Ok(())
    } else {
        Err(GraphError::VertexOutOfRange {
            vertex: v as u64,
            n,
        })
    }
}

/// Iterator over a vertex's neighbors. Created by [`Graph::neighbor_iter`].
#[derive(Debug, Clone)]
pub struct NeighborIter<'a> {
    inner: std::slice::Iter<'a, VertexId>,
}

impl Iterator for NeighborIter<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

/// Iterator over undirected non-loop edges, each reported once.
/// Created by [`Graph::edges`].
#[derive(Debug, Clone)]
pub struct EdgeIter<'a> {
    g: &'a Graph,
    v: usize,
    idx: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (VertexId, VertexId);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.g.n();
        while self.v < n {
            let lo = self.g.offsets[self.v];
            let hi = self.g.offsets[self.v + 1];
            while lo + self.idx < hi {
                let w = self.g.adj[lo + self.idx];
                self.idx += 1;
                // Report each undirected edge from its smaller endpoint.
                // For parallel edges both directions have equal count, so
                // reporting only (v < w) yields each copy exactly once.
                if (self.v as VertexId) < w {
                    return Some((self.v as VertexId, w));
                }
            }
            self.v += 1;
            self.idx = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.total_volume(), 6);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn self_loop_counts_one_toward_degree() {
        let g = Graph::from_edges(2, [(0, 1), (1, 1), (1, 1)]).unwrap();
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.self_loops(1), 2);
        assert_eq!(g.total_volume(), 2 + 2);
        assert!(g.has_edge(1, 1));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn edge_iter_reports_each_edge_once() {
        let g = path4();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn edge_iter_handles_parallel_edges() {
        let g = Graph::from_edges(2, [(0, 1), (0, 1)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 1)]);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn boundary_and_conductance() {
        let g = path4();
        let s = VertexSet::from_iter(4, [0u32, 1]);
        assert_eq!(g.boundary(&s), 1);
        assert_eq!(g.volume(&s), 3);
        let phi = g.conductance(&s).unwrap();
        assert!((phi - 1.0 / 3.0).abs() < 1e-12);
        let b = g.balance(&s).unwrap();
        assert!((b - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conductance_rejects_zero_volume_side() {
        let g = path4();
        let empty = VertexSet::empty(4);
        assert_eq!(g.conductance(&empty), Err(GraphError::ZeroVolumeSide));
        let all = VertexSet::full(4);
        assert_eq!(g.conductance(&all), Err(GraphError::ZeroVolumeSide));
    }

    #[test]
    fn boundary_ignores_self_loops() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (1, 1)]).unwrap();
        let s = VertexSet::from_iter(3, [1u32]);
        assert_eq!(g.boundary(&s), 2); // the loop at 1 does not cross
    }

    #[test]
    fn remove_edges_with_compensation_preserves_degrees() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let degs: Vec<_> = (0..4).map(|v| g.degree(v)).collect();
        let h = g.remove_edges([(1, 2), (3, 0)], true);
        assert_eq!(h.m(), 2);
        let degs2: Vec<_> = (0..4).map(|v| h.degree(v)).collect();
        assert_eq!(degs, degs2);
        assert_eq!(h.total_volume(), g.total_volume());
    }

    #[test]
    fn remove_edges_without_compensation() {
        let g = path4();
        let h = g.remove_edges([(1, 2)], false);
        assert_eq!(h.m(), 2);
        assert_eq!(h.degree(1), 1);
        assert_eq!(h.total_self_loops(), 0);
    }

    #[test]
    fn remove_only_one_copy_of_parallel_edge() {
        let g = Graph::from_edges(2, [(0, 1), (0, 1)]).unwrap();
        let h = g.remove_edges([(0, 1)], false);
        assert_eq!(h.m(), 1);
        assert!(h.has_edge(0, 1));
    }

    #[test]
    fn remove_absent_edge_is_noop() {
        let g = path4();
        let h = g.remove_edges([(0, 3)], true);
        assert_eq!(h.m(), 3);
        assert_eq!(h.total_self_loops(), 0);
    }

    #[test]
    fn internal_edges_counts_both_endpoint_edges() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        let s = VertexSet::from_iter(4, [0u32, 1, 2]);
        assert_eq!(g.internal_edges(&s), 3);
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        let err = Graph::from_edges(2, [(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, n: 2 }
        ));
    }

    #[test]
    fn with_extra_loops() {
        let g = path4();
        let h = g.with_extra_loops(1, 3).unwrap();
        assert_eq!(h.degree(1), 5);
        assert_eq!(h.total_volume(), g.total_volume() + 3);
        assert!(h.with_extra_loops(99, 1).is_err());
    }

    #[test]
    fn debug_is_nonempty() {
        let g = path4();
        let dbg = format!("{g:?}");
        assert!(dbg.contains("Graph") && dbg.contains('4'));
    }

    #[test]
    fn from_edge_chunks_matches_from_edges() {
        let chunks = vec![
            vec![(0u32, 1u32), (3, 2), (1, 1)],
            vec![],
            vec![(2, 0), (1, 3), (0, 1)], // parallel edge across chunks
        ];
        let flat: Vec<_> = chunks.iter().flatten().copied().collect();
        let a = Graph::from_edge_chunks(4, &chunks).unwrap();
        let b = Graph::from_edges(4, flat).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.m(), 5);
        assert_eq!(a.self_loops(1), 1);
        assert!(Graph::from_edge_chunks(2, &[vec![(0, 9)]]).is_err());
        assert_eq!(Graph::from_edge_chunks(3, &[]).unwrap().m(), 0);
    }

    #[test]
    fn from_csr_parts_roundtrips_and_validates() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 4), (1, 2), (2, 2)]).unwrap();
        let (offsets, adj, loops) = g.csr_slices();
        let rebuilt =
            Graph::from_csr_parts(offsets.to_vec(), adj.to_vec(), loops.to_vec()).unwrap();
        assert_eq!(rebuilt, g);

        let bad = |o: Vec<usize>, a: Vec<VertexId>, l: Vec<u32>, what: &str| {
            let err = Graph::from_csr_parts(o, a, l).unwrap_err();
            assert!(
                matches!(err, GraphError::InvalidCsr { .. }),
                "{what}: {err}"
            );
        };
        bad(vec![], vec![], vec![], "empty offsets");
        bad(vec![1, 1], vec![], vec![0], "offsets[0] != 0");
        bad(vec![0, 2], vec![1], vec![0], "terminal offset mismatch");
        bad(vec![0, 0], vec![], vec![], "loops length mismatch");
        bad(
            vec![0, 1, 2],
            vec![7, 0],
            vec![0, 0],
            "neighbor out of range",
        );
        bad(vec![0, 1, 2], vec![0, 0], vec![0, 0], "loop stored in adj");
        bad(
            vec![0, 2, 3, 4],
            vec![2, 1, 0, 0],
            vec![0, 0, 0],
            "unsorted row",
        );
        bad(vec![0, 1, 1], vec![1], vec![0, 0], "asymmetric simple edge");
        bad(
            vec![0, 2, 3],
            vec![1, 1, 0],
            vec![0, 0],
            "asymmetric multiplicity",
        );
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.total_volume(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
