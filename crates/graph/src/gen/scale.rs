//! The large-graph workload tier: `O(n + m)` generators that build CSR
//! through [`Graph::from_edge_chunks`] with chunk-parallel edge
//! generation, targeting million-edge instances.
//!
//! The quadratic-pair generators in `gen::random` are fine up to a
//! few hundred vertices; these three families replace them at scale:
//!
//! * [`power_law_fast`] — Chung–Lu with the Miller–Hagberg skipping
//!   sampler: expected work `O(n + m)` instead of `O(n²)`, identical
//!   per-pair marginals to [`super::chung_lu`].
//! * [`planted_partition_fast`] — the stochastic block model with
//!   geometric skipping per (row, block) segment; identical marginals to
//!   [`super::planted_partition`].
//! * [`ring_of_expanders`] — a cycle of random-regular expanders joined
//!   by single bridge edges: many planted sparse cuts between
//!   high-conductance clusters, the decomposition stress test at scale.
//!
//! **Determinism is chunk-logical, not thread-logical:** the vertex range
//! is split into fixed-size chunks, chunk `c` generates its rows with an
//! RNG seeded [`derive_seed`]`(seed, c)`, and chunks land in CSR in chunk
//! order — so the output is a function of `(parameters, seed)` alone,
//! bit-for-bit identical at any thread count (including 1).

use crate::gen::random::PlantedPartition;
use crate::seed::derive_seed;
use crate::{gen, Graph, GraphError, Result, VertexId, VertexSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Rows per generation chunk. Fixed (never derived from the thread
/// count) so chunk seeds — and therefore the graph — are scheduling-
/// independent.
const CHUNK_ROWS: usize = 4096;

/// Splits `0..n` into [`CHUNK_ROWS`]-sized row ranges.
fn row_chunks(n: usize) -> Vec<(usize, usize)> {
    (0..n.div_ceil(CHUNK_ROWS))
        .map(|c| (c * CHUNK_ROWS, ((c + 1) * CHUNK_ROWS).min(n)))
        .collect()
}

/// Runs `fill(chunk_index, row_range, rng, out)` for every row chunk in
/// parallel, each chunk under its derived seed, and returns the per-chunk
/// edge lists in chunk order.
fn generate_chunks<F>(n: usize, seed: u64, fill: F) -> Vec<Vec<(VertexId, VertexId)>>
where
    F: Fn(usize, (usize, usize), &mut StdRng, &mut Vec<(VertexId, VertexId)>) + Sync,
{
    let ranges = row_chunks(n);
    let mut chunks: Vec<Vec<(VertexId, VertexId)>> = Vec::new();
    chunks.resize_with(ranges.len(), Vec::new);
    chunks
        .par_iter_mut()
        .zip(ranges.par_iter())
        .enumerate()
        .for_each(|(c, (out, &range))| {
            let mut rng = StdRng::seed_from_u64(derive_seed(seed, c as u64));
            fill(c, range, &mut rng, out);
        });
    chunks
}

/// Geometric skip length for success probability `p ∈ (0, 1)`: the
/// number of consecutive misses before the next hit.
#[inline]
fn geometric_skip(rng: &mut StdRng, p: f64) -> usize {
    let r: f64 = rng.random();
    ((1.0 - r).ln() / (1.0 - p).ln()).floor() as usize
}

/// Chung–Lu power-law graph in expected `O(n + m)` time: vertex `v` gets
/// weight `w_v ∝ (v+1)^{-1/(γ−1)}` and pair `{u, v}` connects with
/// probability `min(1, w_u·w_v/Σw)` — the same marginals as
/// [`super::chung_lu`], sampled with the Miller–Hagberg skipping walk
/// (weights are non-increasing in the vertex id, so each row walks its
/// tail with a decreasing probability bound and geometric skips).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `γ > 2` (finite mean).
pub fn power_law_fast(n: usize, gamma: f64, avg_degree: f64, seed: u64) -> Result<Graph> {
    if gamma <= 2.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("power-law exponent gamma = {gamma} must be > 2"),
        });
    }
    if avg_degree <= 0.0 || avg_degree.is_nan() {
        return Err(GraphError::InvalidParameter {
            reason: format!("average degree {avg_degree} must be positive"),
        });
    }
    let exponent = -1.0 / (gamma - 1.0);
    let mut weights: Vec<f64> = (0..n).map(|v| ((v + 1) as f64).powf(exponent)).collect();
    let sum: f64 = weights.iter().sum();
    // Σw = avg·n makes E[deg u] ≈ w_u (see `gen::chung_lu`).
    let scale = avg_degree * n as f64 / sum.max(f64::MIN_POSITIVE);
    for w in &mut weights {
        *w *= scale;
    }
    let total: f64 = weights.iter().sum::<f64>().max(f64::MIN_POSITIVE);

    let chunks = generate_chunks(n, seed, |_, (lo, hi), rng, out| {
        for u in lo..hi {
            let mut v = u + 1;
            // Invariant: p bounds the connect probability of every pair
            // {u, x} with x ≥ v (weights are non-increasing).
            let mut p = match weights.get(v) {
                Some(&wv) => (weights[u] * wv / total).min(1.0),
                None => continue,
            };
            while v < n && p > 0.0 {
                if p < 1.0 {
                    v += geometric_skip(rng, p);
                    if v >= n {
                        break;
                    }
                }
                let q = (weights[u] * weights[v] / total).min(1.0);
                if rng.random::<f64>() < q / p {
                    out.push((u as VertexId, v as VertexId));
                }
                p = q;
                v += 1;
            }
        }
    });
    Graph::from_edge_chunks(n, &chunks)
}

/// Stochastic block model in expected `O(n + m)` time: consecutive
/// blocks of the given sizes, intra-block pairs with `p_in`, inter-block
/// pairs with `p_out` — the same marginals as
/// [`super::planted_partition`], sampled with geometric skipping over
/// each row's constant-probability block segments.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for empty blocks or
/// probabilities outside `[0, 1]`.
pub fn planted_partition_fast(
    sizes: &[usize],
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Result<PlantedPartition> {
    if sizes.is_empty() || sizes.contains(&0) {
        return Err(GraphError::InvalidParameter {
            reason: "planted partition needs non-empty blocks".to_string(),
        });
    }
    for &p in &[p_in, p_out] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidParameter {
                reason: format!("probability {p} outside [0, 1]"),
            });
        }
    }
    let n: usize = sizes.iter().sum();
    let mut block_of = vec![0usize; n];
    let mut starts = Vec::with_capacity(sizes.len() + 1);
    let mut start = 0usize;
    for (b, &sz) in sizes.iter().enumerate() {
        starts.push(start);
        block_of[start..start + sz].fill(b);
        start += sz;
    }
    starts.push(n);

    let block_of_ref = &block_of;
    let starts_ref = &starts;
    let chunks = generate_chunks(n, seed, |_, (lo, hi), rng, out| {
        for (u, &ub) in block_of_ref.iter().enumerate().take(hi).skip(lo) {
            // The row u+1..n is a run of constant-probability segments:
            // the tail of u's own block, then each later block whole.
            for b in ub..starts_ref.len() - 1 {
                let seg_lo = starts_ref[b].max(u + 1);
                let seg_hi = starts_ref[b + 1];
                if seg_lo >= seg_hi {
                    continue;
                }
                let p = if b == ub { p_in } else { p_out };
                if p <= 0.0 {
                    continue;
                }
                if p >= 1.0 {
                    for v in seg_lo..seg_hi {
                        out.push((u as VertexId, v as VertexId));
                    }
                    continue;
                }
                let mut pos = seg_lo;
                loop {
                    pos += geometric_skip(rng, p);
                    if pos >= seg_hi {
                        break;
                    }
                    out.push((u as VertexId, pos as VertexId));
                    pos += 1;
                }
            }
        }
    });
    let graph = Graph::from_edge_chunks(n, &chunks)?;
    let blocks = (0..sizes.len())
        .map(|b| VertexSet::from_fn(n, |v| block_of[v as usize] == b))
        .collect();
    Ok(PlantedPartition {
        graph,
        block_of,
        blocks,
    })
}

/// A cycle of `count` random `degree`-regular expanders on `size`
/// vertices each, consecutive blocks joined by one bridge edge. Returns
/// the graph and the planted blocks (each a sparse cut of conductance
/// `O(1/(size·degree))` against a Θ(1) intra-block conductance w.h.p.).
///
/// Blocks are generated **in parallel**, one job per block under seed
/// `derive_seed(seed, block)`, so the graph is identical at any thread
/// count.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `count == 0` or no simple
/// `degree`-regular graph on `size` vertices exists.
pub fn ring_of_expanders(
    count: usize,
    size: usize,
    degree: usize,
    seed: u64,
) -> Result<(Graph, Vec<VertexSet>)> {
    if count == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "ring of expanders needs at least one block".to_string(),
        });
    }
    let n = count * size;
    // One chunk per block: generate each expander under its derived seed.
    let mut chunks: Vec<std::result::Result<Vec<(VertexId, VertexId)>, GraphError>> = Vec::new();
    chunks.resize_with(count, || Ok(Vec::new()));
    chunks.par_iter_mut().enumerate().for_each(|(b, out)| {
        *out = gen::random_regular(size, degree, derive_seed(seed, b as u64)).map(|g| {
            let base = (b * size) as VertexId;
            g.edges().map(|(u, v)| (base + u, base + v)).collect()
        });
    });
    let mut edge_chunks = Vec::with_capacity(count + 1);
    for c in chunks {
        edge_chunks.push(c?);
    }
    // The ring bridges. Skipped for a single block (the "next" block is
    // the block itself); with exactly two blocks the wrap-around bridge
    // would duplicate the forward one, so only the forward bridge is
    // emitted — the graph stays simple with one bridge per block pair.
    if count > 1 {
        let bridge_count = if count == 2 { 1 } else { count };
        let bridges: Vec<(VertexId, VertexId)> = (0..bridge_count)
            .map(|b| {
                let next = (b + 1) % count;
                ((b * size) as VertexId, (next * size) as VertexId)
            })
            .collect();
        edge_chunks.push(bridges);
    }
    let graph = Graph::from_edge_chunks(n, &edge_chunks)?;
    let blocks = (0..count)
        .map(|b| VertexSet::from_fn(n, |v| (v as usize) / size == b))
        .collect();
    Ok((graph, blocks))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_fast_is_deterministic_and_heavy_tailed() {
        let a = power_law_fast(2000, 2.5, 8.0, 11).unwrap();
        let b = power_law_fast(2000, 2.5, 8.0, 11).unwrap();
        assert_eq!(a, b);
        let c = power_law_fast(2000, 2.5, 8.0, 12).unwrap();
        assert_ne!(a, c);
        let avg = a.total_volume() as f64 / a.n() as f64;
        assert!((avg - 8.0).abs() < 2.0, "average degree {avg} far from 8");
        assert!(
            a.max_degree() as f64 > 3.0 * avg,
            "max {} vs avg {avg} not heavy-tailed",
            a.max_degree()
        );
        assert!(power_law_fast(10, 1.5, 4.0, 0).is_err());
        assert!(power_law_fast(10, 2.5, 0.0, 0).is_err());
    }

    #[test]
    fn power_law_fast_marginals_match_chung_lu_scale() {
        // Same weight formula as the quadratic sampler ⇒ comparable m.
        let fast = power_law_fast(400, 2.5, 8.0, 5).unwrap();
        let slow = gen::chung_lu(400, 2.5, 8.0, 5).unwrap();
        let (mf, ms) = (fast.m() as f64, slow.m() as f64);
        assert!(
            (mf - ms).abs() < 0.25 * ms.max(1.0),
            "fast m = {mf}, quadratic m = {ms}"
        );
    }

    #[test]
    fn planted_partition_fast_has_sparse_planted_cuts() {
        let pp = planted_partition_fast(&[300, 300], 0.1, 0.002, 9).unwrap();
        assert_eq!(pp.graph.n(), 600);
        assert_eq!(pp.blocks[0].len(), 300);
        assert_eq!(pp.block_of[0], 0);
        assert_eq!(pp.block_of[599], 1);
        let phi = pp.graph.conductance(&pp.blocks[0]).unwrap();
        assert!(phi < 0.1, "planted cut conductance {phi}");
        let expected_m = 2.0 * (300.0 * 299.0 / 2.0) * 0.1 + 300.0 * 300.0 * 0.002;
        let m = pp.graph.m() as f64;
        assert!(
            (m - expected_m).abs() < 0.15 * expected_m,
            "m = {m}, expected ≈ {expected_m}"
        );
        assert!(planted_partition_fast(&[], 0.5, 0.1, 0).is_err());
        assert!(planted_partition_fast(&[3, 0], 0.5, 0.1, 0).is_err());
        assert!(planted_partition_fast(&[3, 3], 1.5, 0.1, 0).is_err());
    }

    #[test]
    fn planted_partition_fast_extreme_probabilities() {
        let full = planted_partition_fast(&[4, 4], 1.0, 0.0, 0).unwrap();
        assert_eq!(full.graph.m(), 2 * (4 * 3 / 2));
        assert_eq!(full.graph.boundary(&full.blocks[0]), 0);
        let empty = planted_partition_fast(&[5, 5], 0.0, 0.0, 0).unwrap();
        assert_eq!(empty.graph.m(), 0);
    }

    #[test]
    fn ring_of_expanders_structure() {
        let (g, blocks) = ring_of_expanders(6, 20, 4, 3).unwrap();
        assert_eq!(g.n(), 120);
        assert_eq!(g.m(), 6 * (20 * 4 / 2) + 6);
        assert_eq!(blocks.len(), 6);
        // Bridge endpoints have degree d+2 (two ring bridges at vertex 0
        // of each block); everyone else is d-regular.
        for (b, block) in blocks.iter().enumerate() {
            for v in block.iter() {
                let expect = if v as usize % 20 == 0 { 6 } else { 4 };
                assert_eq!(g.degree(v), expect, "vertex {v}");
            }
            let phi = g.conductance(block).unwrap();
            assert!(phi < 0.05, "block {b} conductance {phi}");
        }
        // Deterministic per seed.
        let (h, _) = ring_of_expanders(6, 20, 4, 3).unwrap();
        assert_eq!(g, h);
        assert!(ring_of_expanders(0, 10, 3, 0).is_err());
        assert!(ring_of_expanders(3, 4, 9, 0).is_err());
    }

    #[test]
    fn two_block_ring_has_exactly_one_simple_bridge() {
        let (g, blocks) = ring_of_expanders(2, 12, 4, 3).unwrap();
        assert_eq!(g.m(), 2 * (12 * 4 / 2) + 1, "one bridge, not a doubled one");
        assert_eq!(g.boundary(&blocks[0]), 1);
        assert_eq!(g.degree(0), 5);
        assert_eq!(g.degree(12), 5);
        // No parallel edges anywhere.
        for v in 0..g.n() as u32 {
            for w in g.neighbors(v).windows(2) {
                assert!(w[0] < w[1], "parallel edge at {v}");
            }
        }
    }

    #[test]
    fn single_block_ring_has_no_bridges() {
        let (g, blocks) = ring_of_expanders(1, 16, 4, 7).unwrap();
        assert_eq!(g.m(), 16 * 4 / 2);
        assert_eq!(blocks.len(), 1);
        assert!((0..16u32).all(|v| g.degree(v) == 4));
    }

    #[test]
    fn chunk_boundaries_do_not_show_in_output() {
        // A graph larger than one chunk: row CHUNK_ROWS-1 and CHUNK_ROWS
        // are generated by different chunks; the CSR must still be a
        // well-formed simple-ish graph with sorted rows (checked by
        // equality with a from_edges rebuild).
        let n = super::CHUNK_ROWS + 100;
        let g = power_law_fast(n, 2.6, 4.0, 1).unwrap();
        let rebuilt = Graph::from_edges(n, g.edges()).unwrap();
        assert_eq!(g, rebuilt);
    }
}
