//! Deterministic structured families: paths, cycles, grids, hypercubes,
//! cliques, stars.

use crate::{Graph, GraphError, Result, VertexId};

/// The path `P_n` on `n` vertices (`n − 1` edges).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
pub fn path(n: usize) -> Result<Graph> {
    require(n >= 1, "path needs n >= 1")?;
    Graph::from_edges(
        n,
        (0..n.saturating_sub(1)).map(|i| (i as VertexId, i as VertexId + 1)),
    )
}

/// The cycle `C_n` (`n ≥ 3`).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 3`.
pub fn cycle(n: usize) -> Result<Graph> {
    require(n >= 3, "cycle needs n >= 3")?;
    Graph::from_edges(
        n,
        (0..n).map(|i| (i as VertexId, ((i + 1) % n) as VertexId)),
    )
}

/// The `rows × cols` grid graph.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either dimension is 0.
pub fn grid(rows: usize, cols: usize) -> Result<Graph> {
    require(rows >= 1 && cols >= 1, "grid needs rows, cols >= 1")?;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    Graph::from_edges(rows * cols, edges)
}

/// The `dim`-dimensional hypercube `Q_dim` on `2^dim` vertices.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `dim > 24` (size guard).
pub fn hypercube(dim: u32) -> Result<Graph> {
    require(dim <= 24, "hypercube dimension capped at 24")?;
    let n = 1usize << dim;
    let mut edges = Vec::with_capacity(n * dim as usize / 2);
    for v in 0..n {
        for b in 0..dim {
            let u = v ^ (1 << b);
            if u > v {
                edges.push((v as VertexId, u as VertexId));
            }
        }
    }
    Graph::from_edges(n, edges)
}

/// The complete graph `K_n`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
pub fn complete(n: usize) -> Result<Graph> {
    require(n >= 1, "complete graph needs n >= 1")?;
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u as VertexId, v as VertexId));
        }
    }
    Graph::from_edges(n, edges)
}

/// The star `K_{1,n-1}`: vertex 0 joined to all others.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2`.
pub fn star(n: usize) -> Result<Graph> {
    require(n >= 2, "star needs n >= 2")?;
    Graph::from_edges(n, (1..n).map(|v| (0, v as VertexId)))
}

fn require(cond: bool, reason: &str) -> Result<()> {
    if cond {
        Ok(())
    } else {
        Err(GraphError::InvalidParameter {
            reason: reason.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn path_shape() {
        let g = path(6).unwrap();
        assert_eq!(g.m(), 5);
        assert_eq!(traversal::diameter(&g).unwrap(), 5);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(8).unwrap();
        assert_eq!(g.m(), 8);
        assert!(g.has_edge(7, 0));
        assert!((0..8).all(|v| g.degree(v) == 2));
        assert!(cycle(2).is_err());
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(traversal::diameter(&g).unwrap(), 2 + 3);
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        assert!((0..16).all(|v| g.degree(v) == 4));
        assert_eq!(traversal::diameter(&g).unwrap(), 4);
        assert!(hypercube(25).is_err());
    }

    #[test]
    fn complete_shape() {
        let g = complete(6).unwrap();
        assert_eq!(g.m(), 15);
        assert_eq!(traversal::diameter(&g).unwrap(), 1);
    }

    #[test]
    fn star_shape() {
        let g = star(5).unwrap();
        assert_eq!(g.degree(0), 4);
        assert_eq!(traversal::diameter(&g).unwrap(), 2);
        assert!(star(1).is_err());
    }

    #[test]
    fn singleton_path() {
        let g = path(1).unwrap();
        assert_eq!(g.n(), 1);
        assert_eq!(g.m(), 0);
    }
}
