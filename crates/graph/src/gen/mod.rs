//! Graph generators: the workload families for every experiment.
//!
//! All randomized generators take an explicit `seed` so experiments are
//! reproducible; deterministic families (paths, grids, cliques…) take none.
//!
//! | family | why the experiments need it |
//! |---|---|
//! | [`gnp`] | Theorem 2's scaling workload (the Ω̃(n^{1/3}) lower-bound instances are `G(n, 1/2)`) |
//! | [`random_regular`] | constant-degree expanders w.h.p. — routing + mixing-time workloads |
//! | [`planted_partition`] | known sparse cuts with tunable balance — Theorem 3's workload |
//! | [`barbell`], [`dumbbell`] | extreme low-conductance cuts (Φ = Θ(1/n²)) |
//! | [`ring_of_cliques`] | many balanced sparse cuts — decomposition stress test |
//! | [`path`], [`cycle`], [`grid`], [`hypercube`], [`complete`], [`star`] | structured baselines with known conductance/diameter |
//! | [`chung_lu`] | power-law degrees — heterogeneous-volume stress test |
//! | [`scale`] ([`power_law_fast`], [`planted_partition_fast`], [`ring_of_expanders`]) | the million-edge tier: `O(n + m)` chunk-parallel generators |

mod composite;
mod lattice;
mod random;
pub mod scale;

pub use composite::{barbell, dumbbell, ring_of_cliques};
pub use lattice::{complete, cycle, grid, hypercube, path, star};
pub use random::{chung_lu, gnp, planted_partition, random_regular, PlantedPartition};
pub use scale::{planted_partition_fast, power_law_fast, ring_of_expanders};
