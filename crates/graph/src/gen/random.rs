//! Randomized generators: Erdős–Rényi, random regular, planted partition
//! (stochastic block model), Chung–Lu power-law.

use crate::{Graph, GraphError, Result, VertexId, VertexSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, p)`: every pair becomes an edge independently with
/// probability `p`.
///
/// Uses geometric skipping, so the cost is `O(n + m)` rather than `O(n²)`
/// for small `p`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `0 ≤ p ≤ 1`.
///
/// # Example
///
/// ```
/// use graph::gen;
/// let g = gen::gnp(100, 0.1, 7).unwrap();
/// assert_eq!(g.n(), 100);
/// // Expected m = p · n(n-1)/2 = 495; the seed makes it deterministic.
/// assert!(g.m() > 300 && g.m() < 700);
/// ```
pub fn gnp(n: usize, p: f64, seed: u64) -> Result<Graph> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            reason: format!("edge probability p = {p} outside [0, 1]"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u as VertexId, v as VertexId));
            }
        }
        return Graph::from_edges(n, edges);
    }
    if p > 0.0 && n >= 2 {
        // Geometric skipping over the lexicographic pair order.
        let log_q = (1.0 - p).ln();
        let total_pairs = n * (n - 1) / 2;
        let mut idx: usize = 0;
        loop {
            let r: f64 = rng.random::<f64>();
            let skip = ((1.0 - r).ln() / log_q).floor() as usize;
            idx = match idx.checked_add(skip) {
                Some(i) => i,
                None => break,
            };
            if idx >= total_pairs {
                break;
            }
            edges.push(pair_from_index(n, idx));
            idx += 1;
        }
    }
    Graph::from_edges(n, edges)
}

#[inline]
fn norm(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Maps a lexicographic pair index to the pair `(u, v)`, `u < v`.
///
/// Row `u` holds the `n − 1 − u` pairs `(u, u+1)…(u, n−1)` and starts at
/// offset `S(u) = u·(2n − u − 1)/2`; invert with a float guess + fix-up.
fn pair_from_index(n: usize, idx: usize) -> (VertexId, VertexId) {
    let row_start = |u: usize| u * (2 * n - u - 1) / 2;
    let guess = ((2 * n - 1) as f64
        - ((((2 * n - 1) * (2 * n - 1)) as f64) - 8.0 * idx as f64)
            .max(0.0)
            .sqrt())
        / 2.0;
    let mut u = guess.max(0.0) as usize;
    u = u.min(n.saturating_sub(2));
    while u + 1 < n && row_start(u + 1) <= idx {
        u += 1;
    }
    while u > 0 && row_start(u) > idx {
        u -= 1;
    }
    let v = u + 1 + (idx - row_start(u));
    (u as VertexId, v as VertexId)
}

/// Random `d`-regular simple graph via the configuration (pairing) model
/// with rejection of loops/parallel edges; retries until success.
///
/// W.h.p. such graphs are expanders with conductance bounded below by a
/// constant (for `d ≥ 3`), which is exactly what the routing and
/// mixing-time experiments need.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n·d` is odd, `d ≥ n`, or
/// `d == 0`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph> {
    if d == 0 || d >= n || (n * d) % 2 == 1 {
        return Err(GraphError::InvalidParameter {
            reason: format!("no {d}-regular simple graph on {n} vertices"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stubs: Vec<VertexId> = (0..n as VertexId)
        .flat_map(|v| std::iter::repeat(v).take(d))
        .collect();
    stubs.shuffle(&mut rng);
    let mut edges: Vec<(VertexId, VertexId)> =
        stubs.chunks(2).map(|pair| norm(pair[0], pair[1])).collect();
    let mut seen: std::collections::HashSet<(VertexId, VertexId)> =
        std::collections::HashSet::with_capacity(edges.len());
    let is_bad = |e: (VertexId, VertexId), seen: &std::collections::HashSet<_>| {
        e.0 == e.1 || seen.contains(&e)
    };
    // Repair pass: a bad pair (loop or duplicate) is fixed by a random
    // 2-swap with another pair; this converges in O(d²) expected swaps.
    let mut bad: Vec<usize> = Vec::new();
    for (i, &e) in edges.iter().enumerate() {
        if is_bad(e, &seen) {
            bad.push(i);
        } else {
            seen.insert(e);
        }
    }
    let budget = 1000 * (bad.len() + 1) * (d + 1);
    let mut spent = 0usize;
    while let Some(&i) = bad.last() {
        spent += 1;
        if spent > budget {
            return Err(GraphError::InvalidParameter {
                reason: format!(
                    "pairing-model repair failed to produce a simple {d}-regular graph on {n} vertices"
                ),
            });
        }
        let j = rng.random_range(0..edges.len());
        if j == i || bad.contains(&j) {
            continue;
        }
        let (a, b) = edges[i];
        let (x, y) = edges[j];
        // Candidate rewiring: {a,x} and {b,y}.
        let e1 = norm(a, x);
        let e2 = norm(b, y);
        if e1 == e2 || is_bad(e1, &seen) || is_bad(e2, &seen) {
            continue;
        }
        seen.remove(&edges[j]);
        edges[i] = e1;
        edges[j] = e2;
        seen.insert(e1);
        seen.insert(e2);
        bad.pop();
    }
    Graph::from_edges(n, edges)
}

/// A planted-partition (stochastic block model) graph together with its
/// ground-truth blocks. Produced by [`planted_partition`].
#[derive(Debug, Clone)]
pub struct PlantedPartition {
    /// The generated graph.
    pub graph: Graph,
    /// Ground-truth block of each vertex.
    pub block_of: Vec<usize>,
    /// The blocks as vertex sets.
    pub blocks: Vec<VertexSet>,
}

impl PlantedPartition {
    /// The planted cut separating block `b` from the rest.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block_cut(&self, b: usize) -> &VertexSet {
        &self.blocks[b]
    }
}

/// Stochastic block model: vertices are split into consecutive blocks of
/// the given sizes; intra-block pairs connect with probability `p_in`,
/// inter-block pairs with `p_out`.
///
/// With `p_in ≫ p_out` every block boundary is a sparse cut of known
/// balance — the ground truth for the Theorem 3 experiments.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for empty blocks or
/// probabilities outside `[0, 1]`.
pub fn planted_partition(
    sizes: &[usize],
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Result<PlantedPartition> {
    if sizes.is_empty() || sizes.contains(&0) {
        return Err(GraphError::InvalidParameter {
            reason: "planted partition needs non-empty blocks".to_string(),
        });
    }
    for &p in &[p_in, p_out] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidParameter {
                reason: format!("probability {p} outside [0, 1]"),
            });
        }
    }
    let n: usize = sizes.iter().sum();
    let mut block_of = vec![0usize; n];
    let mut start = 0usize;
    for (b, &sz) in sizes.iter().enumerate() {
        block_of[start..start + sz].fill(b);
        start += sz;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block_of[u] == block_of[v] {
                p_in
            } else {
                p_out
            };
            if rng.random::<f64>() < p {
                edges.push((u as VertexId, v as VertexId));
            }
        }
    }
    let graph = Graph::from_edges(n, edges)?;
    let blocks = (0..sizes.len())
        .map(|b| VertexSet::from_fn(n, |v| block_of[v as usize] == b))
        .collect();
    Ok(PlantedPartition {
        graph,
        block_of,
        blocks,
    })
}

/// Chung–Lu power-law graph: vertex `v` gets weight `w_v ∝ (v+1)^{-1/(γ−1)}`
/// and pair `{u, v}` connects with probability
/// `min(1, w_u·w_v / Σw)` — expected degrees follow a power law with
/// exponent `γ`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `γ > 2` (finite mean).
pub fn chung_lu(n: usize, gamma: f64, avg_degree: f64, seed: u64) -> Result<Graph> {
    if gamma <= 2.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("chung-lu exponent gamma = {gamma} must be > 2"),
        });
    }
    let exponent = -1.0 / (gamma - 1.0);
    let mut weights: Vec<f64> = (0..n).map(|v| ((v + 1) as f64).powf(exponent)).collect();
    let sum: f64 = weights.iter().sum();
    // Scale so the expected average degree matches the request: with
    // p(u,v) = w_u·w_v/Σw, E[deg u] ≈ w_u, so Σw must equal avg·n
    // (up to the min(1, ·) clipping at the heavy head).
    let scale = avg_degree * n as f64 / sum;
    for w in &mut weights {
        *w *= scale;
    }
    let total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (weights[u] * weights[v] / total).min(1.0);
            if rng.random::<f64>() < p {
                edges.push((u as VertexId, v as VertexId));
            }
        }
    }
    Graph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = gnp(50, 0.2, 42).unwrap();
        let b = gnp(50, 0.2, 42).unwrap();
        assert_eq!(a, b);
        let c = gnp(50, 0.2, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 200;
        let p = 0.3;
        let g = gnp(n, p, 1).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let m = g.m() as f64;
        assert!(
            (m - expected).abs() < 0.15 * expected,
            "m = {m}, expected {expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        let empty = gnp(30, 0.0, 0).unwrap();
        assert_eq!(empty.m(), 0);
        let full = gnp(10, 1.0, 0).unwrap();
        assert_eq!(full.m(), 45);
        assert!(gnp(10, 1.5, 0).is_err());
    }

    #[test]
    fn pair_index_roundtrip() {
        let n = 17;
        let mut idx = 0;
        for u in 0..n {
            for v in (u + 1)..n {
                assert_eq!(pair_from_index(n, idx), (u as VertexId, v as VertexId));
                idx += 1;
            }
        }
    }

    #[test]
    fn regular_graph_has_uniform_degree() {
        let g = random_regular(60, 4, 9).unwrap();
        assert!((0..60).all(|v| g.degree(v) == 4));
        assert_eq!(g.m(), 120);
    }

    #[test]
    fn regular_rejects_infeasible() {
        assert!(random_regular(5, 3, 0).is_err()); // odd n*d
        assert!(random_regular(4, 4, 0).is_err()); // d >= n
        assert!(random_regular(4, 0, 0).is_err());
    }

    #[test]
    fn regular_is_simple() {
        let g = random_regular(40, 6, 3).unwrap();
        for v in 0..40u32 {
            assert_eq!(g.self_loops(v), 0);
            let nb = g.neighbors(v);
            for w in nb.windows(2) {
                assert!(w[0] < w[1], "parallel edge at {v}");
            }
        }
    }

    #[test]
    fn planted_partition_blocks_are_sparse_cuts() {
        let pp = planted_partition(&[50, 50], 0.5, 0.01, 11).unwrap();
        let phi_block = pp.graph.conductance(pp.block_cut(0)).unwrap();
        assert!(
            phi_block < 0.1,
            "block cut conductance {phi_block} not sparse"
        );
        assert_eq!(pp.blocks[0].len(), 50);
        assert_eq!(pp.block_of[0], 0);
        assert_eq!(pp.block_of[99], 1);
    }

    #[test]
    fn planted_partition_rejects_bad_input() {
        assert!(planted_partition(&[], 0.5, 0.1, 0).is_err());
        assert!(planted_partition(&[3, 0], 0.5, 0.1, 0).is_err());
        assert!(planted_partition(&[3, 3], 1.5, 0.1, 0).is_err());
    }

    #[test]
    fn chung_lu_has_skewed_degrees() {
        let g = chung_lu(300, 2.5, 8.0, 5).unwrap();
        let max = g.max_degree();
        let avg = g.total_volume() as f64 / g.n() as f64;
        assert!(
            max as f64 > 3.0 * avg,
            "max {max} vs avg {avg} not heavy-tailed"
        );
        assert!(chung_lu(10, 1.5, 2.0, 0).is_err());
    }
}
