//! Composite families with engineered sparse cuts: barbells, dumbbells and
//! rings of cliques.

use crate::{Graph, GraphError, Result, VertexId, VertexSet};

/// Barbell graph: two cliques `K_k` joined by a single edge.
///
/// The clique boundary is a cut with one crossing edge and volume
/// `Θ(k²)`, so `Φ = Θ(1/k²)` — the canonical extreme sparse cut.
///
/// Returns the graph and the left-clique vertex set (the planted cut).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `k < 2`.
pub fn barbell(k: usize) -> Result<(Graph, VertexSet)> {
    dumbbell(k, k, 0)
}

/// Dumbbell: a clique `K_a`, a clique `K_b`, and a path of `bridge_len`
/// intermediate vertices joining them (`bridge_len = 0` means a direct
/// edge).
///
/// Returns the graph and the vertex set of the left clique
/// (`{0, …, a−1}`) — a planted sparse cut with balance
/// `≈ Vol(K_a)/Vol(total)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `a < 2` or `b < 2`.
pub fn dumbbell(a: usize, b: usize, bridge_len: usize) -> Result<(Graph, VertexSet)> {
    if a < 2 || b < 2 {
        return Err(GraphError::InvalidParameter {
            reason: "dumbbell cliques need at least 2 vertices each".to_string(),
        });
    }
    let n = a + bridge_len + b;
    let mut edges = Vec::new();
    for u in 0..a {
        for v in (u + 1)..a {
            edges.push((u as VertexId, v as VertexId));
        }
    }
    let right_start = a + bridge_len;
    for u in 0..b {
        for v in (u + 1)..b {
            edges.push(((right_start + u) as VertexId, (right_start + v) as VertexId));
        }
    }
    // Bridge path: last left-clique vertex -> bridge vertices -> first right.
    let mut prev = (a - 1) as VertexId;
    for i in 0..bridge_len {
        let w = (a + i) as VertexId;
        edges.push((prev, w));
        prev = w;
    }
    edges.push((prev, right_start as VertexId));
    let g = Graph::from_edges(n, edges)?;
    let left = VertexSet::from_fn(n, |v| (v as usize) < a);
    Ok((g, left))
}

/// Ring of cliques: `count` cliques `K_size` arranged in a cycle, adjacent
/// cliques joined by a single edge.
///
/// Every contiguous arc of cliques is a sparse cut (2 crossing edges), so
/// the graph has sparse cuts of every balance `j/count` — the decomposition
/// should split it into (roughly) the cliques.
///
/// Returns the graph and the ground-truth clique sets.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `count < 3` or `size < 2`.
pub fn ring_of_cliques(count: usize, size: usize) -> Result<(Graph, Vec<VertexSet>)> {
    if count < 3 || size < 2 {
        return Err(GraphError::InvalidParameter {
            reason: "ring of cliques needs count >= 3, size >= 2".to_string(),
        });
    }
    let n = count * size;
    let mut edges = Vec::new();
    for c in 0..count {
        let base = c * size;
        for u in 0..size {
            for v in (u + 1)..size {
                edges.push(((base + u) as VertexId, (base + v) as VertexId));
            }
        }
        // Connector: vertex 0 of this clique to vertex 1 of the next.
        let next = ((c + 1) % count) * size;
        edges.push((base as VertexId, (next + 1) as VertexId));
    }
    let g = Graph::from_edges(n, edges)?;
    let cliques = (0..count)
        .map(|c| VertexSet::from_fn(n, |v| (v as usize) / size == c))
        .collect();
    Ok((g, cliques))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn barbell_cut_is_extremely_sparse() {
        let (g, left) = barbell(10).unwrap();
        assert_eq!(g.boundary(&left), 1);
        let phi = g.conductance(&left).unwrap();
        // Vol(left) = 10·9 + 1 = 91 -> phi = 1/91.
        assert!((phi - 1.0 / 91.0).abs() < 1e-12);
        let bal = g.balance(&left).unwrap();
        assert!((bal - 0.5).abs() < 0.01);
    }

    #[test]
    fn dumbbell_bridge_lengthens_diameter() {
        let (g, _) = dumbbell(4, 4, 5).unwrap();
        assert_eq!(g.n(), 13);
        assert_eq!(traversal::diameter(&g).unwrap(), 1 + 6 + 1);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn dumbbell_asymmetric_balance() {
        let (g, left) = dumbbell(20, 5, 0).unwrap();
        let bal = g.balance(&left).unwrap();
        // Left volume dominates, so min side is the right clique.
        assert!(bal < 0.2, "balance {bal}");
        assert_eq!(g.boundary(&left), 1);
    }

    #[test]
    fn dumbbell_rejects_tiny_cliques() {
        assert!(dumbbell(1, 5, 0).is_err());
        assert!(dumbbell(5, 1, 0).is_err());
    }

    #[test]
    fn ring_of_cliques_structure() {
        let (g, cliques) = ring_of_cliques(6, 5).unwrap();
        assert_eq!(g.n(), 30);
        assert!(traversal::is_connected(&g));
        assert_eq!(cliques.len(), 6);
        for c in &cliques {
            assert_eq!(c.len(), 5);
            assert_eq!(g.boundary(c), 2, "each clique touches 2 connectors");
            let phi = g.conductance(c).unwrap();
            assert!(phi < 0.1, "clique cut conductance {phi}");
        }
        assert!(ring_of_cliques(2, 5).is_err());
        assert!(ring_of_cliques(5, 1).is_err());
    }

    #[test]
    fn ring_arc_is_balanced_sparse_cut() {
        let (g, cliques) = ring_of_cliques(8, 4).unwrap();
        // Take the union of cliques 0..4 — half the ring.
        let mut arc = cliques[0].clone();
        for c in &cliques[1..4] {
            arc = arc.union(c);
        }
        assert_eq!(g.boundary(&arc), 2);
        let bal = g.balance(&arc).unwrap();
        assert!((bal - 0.5).abs() < 0.05, "arc balance {bal}");
    }
}
