//! Vertex sets and cuts: `∂(S)`, conductance `Φ(S)`, balance `bal(S)`.

use crate::{Graph, GraphError, Result, VertexId};

/// Density threshold: a set keeps a dense `O(n)` membership mask only when
/// it holds at least `1/DENSE_DIVISOR` of its universe (and at least
/// [`DENSE_MIN_LEN`] members). Below that it answers `contains` by binary
/// search over the sorted member list, so `count` small clusters cost
/// `O(Σ |cluster|)` memory instead of `O(count·n)`.
const DENSE_DIVISOR: usize = 4;

/// Minimum member count before a mask is worth allocating at all.
const DENSE_MIN_LEN: usize = 64;

/// A subset of the vertices of an `n`-vertex graph with cheap membership
/// tests and ordered iteration.
///
/// Internally a sorted member list, plus a dense membership mask **only
/// above a density threshold**: sets holding at least a quarter of the
/// universe get the `O(1)`-lookup mask the sweep-cut inner loops want,
/// while the many small cluster sets the decomposition produces stay
/// sparse (`O(log |S|)` membership by binary search, `O(|S|)` memory).
/// The representation is an implementation detail: two sets with the same
/// universe and members compare equal regardless of density.
///
/// # Example
///
/// ```
/// use graph::VertexSet;
///
/// let s = VertexSet::from_iter(10, [3u32, 1, 7, 3]);
/// assert_eq!(s.len(), 3); // duplicates collapse
/// assert!(s.contains(7));
/// assert!(!s.contains(2));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 7]);
/// ```
#[derive(Clone)]
pub struct VertexSet {
    universe: usize,
    /// Sorted, deduplicated member list — the canonical representation.
    members: Vec<VertexId>,
    /// Dense membership mask, present only above the density threshold.
    mask: Option<Vec<bool>>,
}

/// Whether a set of `len` members over `universe` vertices should carry the
/// dense mask.
#[inline]
fn wants_mask(len: usize, universe: usize) -> bool {
    len >= DENSE_MIN_LEN && len.saturating_mul(DENSE_DIVISOR) >= universe
}

impl VertexSet {
    /// The empty subset of an `n`-vertex graph. Allocation-free — the
    /// decomposition's peeling phase creates huge numbers of empty and
    /// singleton sets.
    pub fn empty(n: usize) -> Self {
        VertexSet {
            universe: n,
            members: Vec::new(),
            mask: None,
        }
    }

    /// The full vertex set `{0, …, n-1}`.
    pub fn full(n: usize) -> Self {
        Self::from_sorted_members(n, (0..n as VertexId).collect())
    }

    /// Builds a set from an **already sorted and deduplicated** member
    /// list, choosing the representation by density. Internal constructor
    /// every public builder funnels through.
    fn from_sorted_members(n: usize, members: Vec<VertexId>) -> Self {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "sorted + dedup");
        debug_assert!(members.last().map_or(true, |&v| (v as usize) < n));
        let mask = if wants_mask(members.len(), n) {
            let mut m = vec![false; n];
            for &v in &members {
                m[v as usize] = true;
            }
            Some(m)
        } else {
            None
        };
        VertexSet {
            universe: n,
            members,
            mask,
        }
    }

    /// Builds a set from an iterator of vertex ids; duplicates collapse.
    ///
    /// # Panics
    ///
    /// Panics if any id is `>= n`.
    pub fn from_iter<I>(n: usize, iter: I) -> Self
    where
        I: IntoIterator<Item = VertexId>,
    {
        let mut members: Vec<VertexId> = Vec::new();
        for v in iter {
            assert!((v as usize) < n, "vertex {v} out of range for n = {n}");
            members.push(v);
        }
        members.sort_unstable();
        members.dedup();
        Self::from_sorted_members(n, members)
    }

    /// Builds a set from a membership predicate over `0..n`.
    pub fn from_fn<F>(n: usize, mut pred: F) -> Self
    where
        F: FnMut(VertexId) -> bool,
    {
        let members: Vec<VertexId> = (0..n as VertexId).filter(|&v| pred(v)).collect();
        Self::from_sorted_members(n, members)
    }

    /// Size of the universe `n` this set lives in.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Membership test: `O(1)` when the set is dense enough to carry its
    /// mask, `O(log |S|)` binary search otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        match &self.mask {
            Some(mask) => mask[v as usize],
            None => {
                assert!(
                    (v as usize) < self.universe,
                    "vertex {v} outside universe {}",
                    self.universe
                );
                self.members.binary_search(&v).is_ok()
            }
        }
    }

    /// Whether this set carries the dense membership mask (diagnostic —
    /// the representation never changes observable behaviour).
    #[inline]
    pub fn is_dense(&self) -> bool {
        self.mask.is_some()
    }

    /// Iterator over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.members.iter().copied()
    }

    /// Sorted member slice.
    #[inline]
    pub fn as_slice(&self) -> &[VertexId] {
        &self.members
    }

    /// The complement `V ∖ S` within the same universe.
    ///
    /// Derived by a single gap-walk over the sorted member list — the
    /// sparse representation never materializes a mask just to scan it
    /// (the old implementation re-tested all `n` vertices through
    /// `from_fn`).
    pub fn complement(&self) -> VertexSet {
        let n = self.universe;
        let mut out: Vec<VertexId> = Vec::with_capacity(n - self.members.len());
        let mut next = 0 as VertexId;
        for &v in &self.members {
            out.extend(next..v);
            next = v + 1;
        }
        out.extend(next..n as VertexId);
        Self::from_sorted_members(n, out)
    }

    /// Set union (universes must match). `O(|self| + |other|)`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union(&self, other: &VertexSet) -> VertexSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let (a, b) = (&self.members, &other.members);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Self::from_sorted_members(self.universe, out)
    }

    /// Set intersection (universes must match). `O(|self| + |other|)`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection(&self, other: &VertexSet) -> VertexSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let (a, b) = (&self.members, &other.members);
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Self::from_sorted_members(self.universe, out)
    }

    /// Set difference `self ∖ other` (universes must match).
    /// `O(|self| + |other|)`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn difference(&self, other: &VertexSet) -> VertexSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let (a, b) = (&self.members, &other.members);
        let mut out = Vec::with_capacity(a.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        Self::from_sorted_members(self.universe, out)
    }

    /// Adds a vertex; returns whether it was newly inserted. May promote
    /// the set to the dense representation when it crosses the density
    /// threshold.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    pub fn insert(&mut self, v: VertexId) -> bool {
        assert!((v as usize) < self.universe);
        if self.contains(v) {
            return false;
        }
        let pos = self.members.partition_point(|&m| m < v);
        self.members.insert(pos, v);
        match &mut self.mask {
            Some(mask) => mask[v as usize] = true,
            None => {
                if wants_mask(self.members.len(), self.universe) {
                    let mut mask = vec![false; self.universe];
                    for &m in &self.members {
                        mask[m as usize] = true;
                    }
                    self.mask = Some(mask);
                }
            }
        }
        true
    }
}

impl PartialEq for VertexSet {
    /// Equality compares universe and membership only — the dense/sparse
    /// representation is invisible.
    fn eq(&self, other: &Self) -> bool {
        self.universe == other.universe && self.members == other.members
    }
}

impl Eq for VertexSet {}

impl std::fmt::Debug for VertexSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VertexSet({}/{}; ", self.len(), self.universe())?;
        f.debug_set()
            .entries(self.members.iter().take(16))
            .finish()?;
        if self.len() > 16 {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

/// A cut `(S, S̄)` together with its quality statistics, all computed against
/// a fixed graph at construction time.
///
/// # Example
///
/// ```
/// use graph::{Graph, VertexSet, Cut};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
/// let cut = Cut::new(&g, VertexSet::from_iter(4, [0u32, 1])).unwrap();
/// assert_eq!(cut.boundary(), 1);
/// assert!((cut.conductance() - 1.0 / 3.0).abs() < 1e-12);
/// assert!((cut.balance() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cut {
    side: VertexSet,
    boundary: usize,
    vol_side: usize,
    vol_total: usize,
}

impl Cut {
    /// Evaluates the cut `(s, V∖s)` on `g`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ZeroVolumeSide`] when either side has zero
    /// volume (conductance would be undefined).
    pub fn new(g: &Graph, s: VertexSet) -> Result<Self> {
        let vol_side = g.volume(&s);
        let vol_total = g.total_volume();
        if vol_side == 0 || vol_side == vol_total {
            return Err(GraphError::ZeroVolumeSide);
        }
        let boundary = g.boundary(&s);
        Ok(Cut {
            side: s,
            boundary,
            vol_side,
            vol_total,
        })
    }

    /// The side `S` of the cut this object stores.
    pub fn side(&self) -> &VertexSet {
        &self.side
    }

    /// Consumes the cut and returns its side.
    pub fn into_side(self) -> VertexSet {
        self.side
    }

    /// `|∂(S)|`.
    pub fn boundary(&self) -> usize {
        self.boundary
    }

    /// `Vol(S)`.
    pub fn volume(&self) -> usize {
        self.vol_side
    }

    /// `min{Vol(S), Vol(S̄)}`.
    pub fn small_side_volume(&self) -> usize {
        self.vol_side.min(self.vol_total - self.vol_side)
    }

    /// Conductance `Φ(S) = |∂(S)| / min{Vol(S), Vol(S̄)}`.
    pub fn conductance(&self) -> f64 {
        self.boundary as f64 / self.small_side_volume() as f64
    }

    /// Balance `bal(S) = min{Vol(S), Vol(S̄)} / Vol(V)`.
    pub fn balance(&self) -> f64 {
        self.small_side_volume() as f64 / self.vol_total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = VertexSet::empty(5);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = VertexSet::full(5);
        assert_eq!(f.len(), 5);
        assert!(f.contains(4));
    }

    #[test]
    fn complement_roundtrip() {
        let s = VertexSet::from_iter(6, [0u32, 2, 4]);
        let c = s.complement();
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(c.complement(), s);
    }

    #[test]
    fn set_algebra() {
        let a = VertexSet::from_iter(6, [0u32, 1, 2]);
        let b = VertexSet::from_iter(6, [2u32, 3]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let mut s = VertexSet::empty(8);
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(!s.insert(5));
        assert_eq!(s.as_slice(), &[1, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_iter_panics_out_of_range() {
        let _ = VertexSet::from_iter(3, [7u32]);
    }

    #[test]
    fn sparse_and_dense_representations_agree() {
        // Same membership through different constructors and densities
        // must compare equal and answer identically.
        let n = 400;
        let sparse = VertexSet::from_iter(n, [3u32, 77, 200]);
        assert!(!sparse.is_dense());
        let dense_universe = VertexSet::from_fn(n, |v| v % 2 == 0);
        assert!(dense_universe.is_dense());
        for v in 0..n as VertexId {
            assert_eq!(sparse.contains(v), matches!(v, 3 | 77 | 200));
            assert_eq!(dense_universe.contains(v), v % 2 == 0);
        }
        // Equality ignores representation: grow a sparse set past the
        // threshold by inserts and compare against from_fn.
        let mut grown = VertexSet::empty(n);
        for v in (0..n as VertexId).filter(|v| v % 2 == 0) {
            grown.insert(v);
        }
        assert!(grown.is_dense(), "insert must promote past the threshold");
        assert_eq!(grown, dense_universe);
    }

    #[test]
    fn complement_of_sparse_set_is_dense_and_exact() {
        let n = 300;
        let s = VertexSet::from_iter(n, [0u32, 150, 299]);
        let c = s.complement();
        assert_eq!(c.len(), n - 3);
        assert!(c.is_dense());
        for v in 0..n as VertexId {
            assert_eq!(c.contains(v), !s.contains(v));
        }
        assert_eq!(c.complement(), s);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn sparse_contains_panics_outside_universe() {
        let s = VertexSet::from_iter(3, [1u32]);
        let _ = s.contains(9);
    }

    #[test]
    fn cut_statistics_on_barbell_bridge() {
        // K3 - K3 joined by one bridge.
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]).unwrap();
        let cut = Cut::new(&g, VertexSet::from_iter(6, [0u32, 1, 2])).unwrap();
        assert_eq!(cut.boundary(), 1);
        assert_eq!(cut.volume(), 7);
        assert_eq!(cut.small_side_volume(), 7);
        assert!((cut.conductance() - 1.0 / 7.0).abs() < 1e-12);
        assert!((cut.balance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cut_rejects_trivial_sides() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert!(Cut::new(&g, VertexSet::empty(3)).is_err());
        assert!(Cut::new(&g, VertexSet::full(3)).is_err());
    }

    #[test]
    fn cut_side_accessors() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let cut = Cut::new(&g, VertexSet::from_iter(3, [0u32])).unwrap();
        assert!(cut.side().contains(0));
        let side = cut.into_side();
        assert_eq!(side.len(), 1);
    }

    #[test]
    fn debug_output_truncates() {
        let s = VertexSet::full(40);
        let dbg = format!("{s:?}");
        assert!(dbg.contains("40/40"));
        assert!(dbg.contains('…'));
    }
}
