//! Vertex sets and cuts: `∂(S)`, conductance `Φ(S)`, balance `bal(S)`.

use crate::{Graph, GraphError, Result, VertexId};

/// A subset of the vertices of an `n`-vertex graph with `O(1)` membership
/// tests and ordered iteration.
///
/// Internally a sorted member list plus a dense membership mask; the
/// redundancy buys `O(1)` `contains` and cache-friendly iteration, which the
/// sweep-cut inner loops need.
///
/// # Example
///
/// ```
/// use graph::VertexSet;
///
/// let s = VertexSet::from_iter(10, [3u32, 1, 7, 3]);
/// assert_eq!(s.len(), 3); // duplicates collapse
/// assert!(s.contains(7));
/// assert!(!s.contains(2));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct VertexSet {
    members: Vec<VertexId>,
    mask: Vec<bool>,
}

impl VertexSet {
    /// The empty subset of an `n`-vertex graph.
    pub fn empty(n: usize) -> Self {
        VertexSet {
            members: Vec::new(),
            mask: vec![false; n],
        }
    }

    /// The full vertex set `{0, …, n-1}`.
    pub fn full(n: usize) -> Self {
        VertexSet {
            members: (0..n as VertexId).collect(),
            mask: vec![true; n],
        }
    }

    /// Builds a set from an iterator of vertex ids; duplicates collapse.
    ///
    /// # Panics
    ///
    /// Panics if any id is `>= n`.
    pub fn from_iter<I>(n: usize, iter: I) -> Self
    where
        I: IntoIterator<Item = VertexId>,
    {
        let mut mask = vec![false; n];
        for v in iter {
            assert!((v as usize) < n, "vertex {v} out of range for n = {n}");
            mask[v as usize] = true;
        }
        let members = (0..n as VertexId).filter(|&v| mask[v as usize]).collect();
        VertexSet { members, mask }
    }

    /// Builds a set from a membership predicate over `0..n`.
    pub fn from_fn<F>(n: usize, mut pred: F) -> Self
    where
        F: FnMut(VertexId) -> bool,
    {
        let mut mask = vec![false; n];
        let mut members = Vec::new();
        for v in 0..n as VertexId {
            if pred(v) {
                mask[v as usize] = true;
                members.push(v);
            }
        }
        VertexSet { members, mask }
    }

    /// Size of the universe `n` this set lives in.
    #[inline]
    pub fn universe(&self) -> usize {
        self.mask.len()
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `O(1)` membership test.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.mask[v as usize]
    }

    /// Iterator over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.members.iter().copied()
    }

    /// Sorted member slice.
    #[inline]
    pub fn as_slice(&self) -> &[VertexId] {
        &self.members
    }

    /// The complement `V ∖ S` within the same universe.
    pub fn complement(&self) -> VertexSet {
        let n = self.universe();
        VertexSet::from_fn(n, |v| !self.mask[v as usize])
    }

    /// Set union (universes must match).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union(&self, other: &VertexSet) -> VertexSet {
        assert_eq!(self.universe(), other.universe(), "universe mismatch");
        VertexSet::from_fn(self.universe(), |v| self.contains(v) || other.contains(v))
    }

    /// Set intersection (universes must match).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection(&self, other: &VertexSet) -> VertexSet {
        assert_eq!(self.universe(), other.universe(), "universe mismatch");
        VertexSet::from_fn(self.universe(), |v| self.contains(v) && other.contains(v))
    }

    /// Set difference `self ∖ other` (universes must match).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn difference(&self, other: &VertexSet) -> VertexSet {
        assert_eq!(self.universe(), other.universe(), "universe mismatch");
        VertexSet::from_fn(self.universe(), |v| self.contains(v) && !other.contains(v))
    }

    /// Adds a vertex; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    pub fn insert(&mut self, v: VertexId) -> bool {
        assert!((v as usize) < self.universe());
        if self.mask[v as usize] {
            return false;
        }
        self.mask[v as usize] = true;
        let pos = self.members.partition_point(|&m| m < v);
        self.members.insert(pos, v);
        true
    }
}

impl std::fmt::Debug for VertexSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VertexSet({}/{}; ", self.len(), self.universe())?;
        f.debug_set()
            .entries(self.members.iter().take(16))
            .finish()?;
        if self.len() > 16 {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

/// A cut `(S, S̄)` together with its quality statistics, all computed against
/// a fixed graph at construction time.
///
/// # Example
///
/// ```
/// use graph::{Graph, VertexSet, Cut};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
/// let cut = Cut::new(&g, VertexSet::from_iter(4, [0u32, 1])).unwrap();
/// assert_eq!(cut.boundary(), 1);
/// assert!((cut.conductance() - 1.0 / 3.0).abs() < 1e-12);
/// assert!((cut.balance() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cut {
    side: VertexSet,
    boundary: usize,
    vol_side: usize,
    vol_total: usize,
}

impl Cut {
    /// Evaluates the cut `(s, V∖s)` on `g`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ZeroVolumeSide`] when either side has zero
    /// volume (conductance would be undefined).
    pub fn new(g: &Graph, s: VertexSet) -> Result<Self> {
        let vol_side = g.volume(&s);
        let vol_total = g.total_volume();
        if vol_side == 0 || vol_side == vol_total {
            return Err(GraphError::ZeroVolumeSide);
        }
        let boundary = g.boundary(&s);
        Ok(Cut {
            side: s,
            boundary,
            vol_side,
            vol_total,
        })
    }

    /// The side `S` of the cut this object stores.
    pub fn side(&self) -> &VertexSet {
        &self.side
    }

    /// Consumes the cut and returns its side.
    pub fn into_side(self) -> VertexSet {
        self.side
    }

    /// `|∂(S)|`.
    pub fn boundary(&self) -> usize {
        self.boundary
    }

    /// `Vol(S)`.
    pub fn volume(&self) -> usize {
        self.vol_side
    }

    /// `min{Vol(S), Vol(S̄)}`.
    pub fn small_side_volume(&self) -> usize {
        self.vol_side.min(self.vol_total - self.vol_side)
    }

    /// Conductance `Φ(S) = |∂(S)| / min{Vol(S), Vol(S̄)}`.
    pub fn conductance(&self) -> f64 {
        self.boundary as f64 / self.small_side_volume() as f64
    }

    /// Balance `bal(S) = min{Vol(S), Vol(S̄)} / Vol(V)`.
    pub fn balance(&self) -> f64 {
        self.small_side_volume() as f64 / self.vol_total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = VertexSet::empty(5);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = VertexSet::full(5);
        assert_eq!(f.len(), 5);
        assert!(f.contains(4));
    }

    #[test]
    fn complement_roundtrip() {
        let s = VertexSet::from_iter(6, [0u32, 2, 4]);
        let c = s.complement();
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(c.complement(), s);
    }

    #[test]
    fn set_algebra() {
        let a = VertexSet::from_iter(6, [0u32, 1, 2]);
        let b = VertexSet::from_iter(6, [2u32, 3]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let mut s = VertexSet::empty(8);
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(!s.insert(5));
        assert_eq!(s.as_slice(), &[1, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_iter_panics_out_of_range() {
        let _ = VertexSet::from_iter(3, [7u32]);
    }

    #[test]
    fn cut_statistics_on_barbell_bridge() {
        // K3 - K3 joined by one bridge.
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]).unwrap();
        let cut = Cut::new(&g, VertexSet::from_iter(6, [0u32, 1, 2])).unwrap();
        assert_eq!(cut.boundary(), 1);
        assert_eq!(cut.volume(), 7);
        assert_eq!(cut.small_side_volume(), 7);
        assert!((cut.conductance() - 1.0 / 7.0).abs() < 1e-12);
        assert!((cut.balance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cut_rejects_trivial_sides() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert!(Cut::new(&g, VertexSet::empty(3)).is_err());
        assert!(Cut::new(&g, VertexSet::full(3)).is_err());
    }

    #[test]
    fn cut_side_accessors() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let cut = Cut::new(&g, VertexSet::from_iter(3, [0u32])).unwrap();
        assert!(cut.side().contains(0));
        let side = cut.into_side();
        assert_eq!(side.len(), 1);
    }

    #[test]
    fn debug_output_truncates() {
        let s = VertexSet::full(40);
        let dbg = format!("{s:?}");
        assert!(dbg.contains("40/40"));
        assert!(dbg.contains('…'));
    }
}
