//! The workspace-wide seed-derivation scheme.
//!
//! Every layer that fans a computation out into independent jobs (the
//! chunk-parallel generators in [`crate::gen::scale`], the expander
//! crate's recursion scheduler, the triangle pipeline's per-cluster runs)
//! derives each job's RNG seed from its parent seed and the job's
//! *logical* index with [`derive_seed`] — never from the worker thread or
//! the execution order. That is the whole determinism argument in one
//! line: job `i` sees the same seed whether it runs first, last, or on
//! another thread, so parallel output is bit-for-bit the sequential
//! output once results are merged in index order.

/// Derives a child seed from `parent` and a logical `child` index.
///
/// The mix is one SplitMix64 round over `parent ⊕ (child + 1)·φ₆₄` (the
/// 64-bit golden ratio). SplitMix64 is a bijection on `u64`, so distinct
/// `(parent, child)` pairs with the same parent never collide, and a
/// chain of derivations (`level → cluster → …`) keeps full 64-bit state.
///
/// # Example
///
/// ```
/// use graph::seed::derive_seed;
///
/// let level = derive_seed(42, 3);
/// assert_eq!(level, derive_seed(42, 3)); // pure
/// assert_ne!(level, derive_seed(42, 4));
/// assert_ne!(derive_seed(level, 0), derive_seed(level, 1));
/// ```
#[must_use]
pub fn derive_seed(parent: u64, child: u64) -> u64 {
    let mut z = parent ^ child.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_of_one_parent_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for child in 0..10_000u64 {
            assert!(seen.insert(derive_seed(7, child)), "collision at {child}");
        }
    }

    #[test]
    fn zero_inputs_do_not_fix() {
        assert_ne!(derive_seed(0, 0), 0);
        assert_ne!(derive_seed(0, 0), derive_seed(0, 1));
        assert_ne!(derive_seed(0, 0), derive_seed(1, 0));
    }

    #[test]
    fn chained_derivation_spreads() {
        // level -> cluster -> attempt chains stay distinct across paths.
        let a = derive_seed(derive_seed(5, 0), 1);
        let b = derive_seed(derive_seed(5, 1), 0);
        assert_ne!(a, b);
    }
}
